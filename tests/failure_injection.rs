//! Robustness under injected faults, across both backends, plus
//! model-conformance audits of the real schemes.

use anns::cellprobe::{CountingTable, ExecOptions, PurityAuditTable, RoundExecutor};
use anns::core::{
    alg1, AnnIndex, AnnsInstance, BuildOptions, ErasureModel, ErrorModel, LambdaScheme,
    OutcomeKind, SyntheticInstance, SyntheticProfile,
};
use anns::hamming::gen;
use anns::sketch::SketchParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

const GAMMA: f64 = 2.0;

/// Erasure sweep on a concrete index: success degrades with the erasure
/// probability but never panics, never loops, and never reports a point
/// that is not a database member.
#[test]
fn concrete_erasure_sweep_degrades_gracefully() {
    let mut rng = StdRng::seed_from_u64(1);
    let planted = gen::planted(128, 256, 8, &mut rng);
    let mut successes = Vec::new();
    for &p in &[0.0f64, 0.25, 0.5, 0.9, 1.0] {
        let index = AnnIndex::build(
            planted.dataset.clone(),
            SketchParams::practical(GAMMA, 7),
            BuildOptions {
                erasures: Some(ErasureModel {
                    probability: p,
                    seed: 13,
                }),
                ..BuildOptions::default()
            },
        );
        let mut ok = 0usize;
        for k in 1..=4u32 {
            let (outcome, ledger) = index.query(&planted.query, k);
            assert!(ledger.rounds() <= (index.top() + 3) as usize, "p={p}");
            if let Some(idx) = outcome.index() {
                assert!((idx as usize) < index.dataset().len());
                if index.verify_gamma(&planted.query, &outcome) {
                    ok += 1;
                }
            }
        }
        successes.push((p, ok));
    }
    // Clean index solves all four budgets; fully erased solves none.
    assert_eq!(successes.first().unwrap().1, 4);
    assert_eq!(successes.last().unwrap().1, 0);
}

/// Synthetic error sweep: same graceful-degradation contract at asymptotic
/// scale, where every T-cell answer can lie.
#[test]
fn synthetic_error_sweep_terminates_and_degrades() {
    let profile = SyntheticProfile::point_mass(500, 123, 32.0);
    let mut exact = 0usize;
    for &p in &[0.0f64, 0.01, 0.1, 0.5] {
        let inst = SyntheticInstance::with_errors(
            profile.clone(),
            2.0,
            ErrorModel {
                flip_probability: p,
                seed: 3,
            },
        );
        let table = inst.table();
        let mut exec = RoundExecutor::new(table, ExecOptions::default());
        let outcome = alg1(&inst, &(), 5, None, &mut exec);
        let (ledger, _) = exec.finish();
        assert!(ledger.rounds() <= 502, "p={p} must terminate promptly");
        if outcome.scale() == Some(123) {
            exact += 1;
        }
    }
    assert!(exact >= 1, "the clean run must find the planted scale");
}

/// Purity audit over the real lazy oracle: a full Algorithm 1 run touches
/// only pure cells (every address re-readable with identical content).
#[test]
fn lazy_oracle_passes_the_purity_audit() {
    let mut rng = StdRng::seed_from_u64(4);
    let planted = gen::planted(128, 256, 8, &mut rng);
    let index = AnnIndex::build(
        planted.dataset,
        SketchParams::practical(GAMMA, 9),
        BuildOptions::default(),
    );
    let audit = PurityAuditTable::new(index.table());
    let mut exec = RoundExecutor::new(&audit, ExecOptions::default());
    let outcome = alg1(&index, &planted.query, 3, None, &mut exec);
    assert!(outcome.index().is_some());
    // Replay every touched address once more through the audit.
    let distinct = audit.distinct_cells();
    assert!(distinct > 0);
    let mut exec2 = RoundExecutor::new(&audit, ExecOptions::default());
    let outcome2 = alg1(&index, &planted.query, 3, None, &mut exec2);
    assert_eq!(outcome.index(), outcome2.index());
    assert_eq!(audit.distinct_cells(), distinct, "replay adds no new cells");
}

/// Probe attribution: λ-ANNS touches exactly one main-table cell and
/// nothing else; Algorithm 1 touches the two degenerate tables plus main
/// tables only (never the auxiliary range).
#[test]
fn probe_attribution_matches_scheme_structure() {
    let mut rng = StdRng::seed_from_u64(5);
    let planted = gen::planted(128, 256, 8, &mut rng);
    let index = AnnIndex::build(
        planted.dataset,
        SketchParams::practical(GAMMA, 11),
        BuildOptions::default(),
    );
    let aux_base = 2 + (1 << 28);

    // λ-ANNS: one probe, one main table.
    let counting = CountingTable::new(index.table());
    let mut exec = RoundExecutor::new(&counting, ExecOptions::default());
    let scheme = LambdaScheme {
        instance: &index,
        scale: 6,
    };
    use anns::cellprobe::CellProbeScheme;
    let _ = scheme.run(&planted.query, &mut exec);
    assert_eq!(counting.total(), 1);
    let snapshot = counting.snapshot();
    assert_eq!(snapshot.len(), 1);
    assert_eq!(snapshot[0].0, 2 + 6, "T_BASE + scale");

    // Algorithm 1: degenerate tables (ids 0, 1) + main tables; no aux.
    let counting = CountingTable::new(index.table());
    let mut exec = RoundExecutor::new(&counting, ExecOptions::default());
    let outcome = alg1(&index, &planted.query, 3, None, &mut exec);
    assert!(outcome.index().is_some());
    assert_eq!(counting.count(0), 1, "one exact-membership probe");
    assert_eq!(counting.count(1), 1, "one N1-membership probe");
    for (table, _) in counting.snapshot() {
        assert!(table < aux_base, "Algorithm 1 must not touch aux tables");
    }
}

/// Degenerate paths dominate under faults: an exact-member query answers
/// correctly even on a fully erased index (erasures only hit main tables).
#[test]
fn exact_members_survive_total_erasure() {
    let mut rng = StdRng::seed_from_u64(6);
    let planted = gen::planted(64, 128, 6, &mut rng);
    let index = AnnIndex::build(
        planted.dataset,
        SketchParams::practical(GAMMA, 12),
        BuildOptions {
            erasures: Some(ErasureModel {
                probability: 1.0,
                seed: 14,
            }),
            ..BuildOptions::default()
        },
    );
    for i in [0usize, 31, 63] {
        let member = index.dataset().point(i).clone();
        let (outcome, _) = index.query(&member, 2);
        match outcome.kind {
            OutcomeKind::Exact { index: idx } => {
                assert_eq!(index.dataset().point(idx as usize), &member);
            }
            ref other => panic!("expected Exact, got {other:?}"),
        }
    }
}
