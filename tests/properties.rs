//! Property-based tests over the algorithms' invariants, driven by random
//! synthetic profiles (so they cover instance shapes no fixed unit test
//! enumerates) and random concrete micro-instances.

use anns::cellprobe::execute;
use anns::core::{
    alg2_s, choose_tau_alg1, Alg1Scheme, Alg2Config, Alg2Scheme, AnnIndex, BuildOptions,
    LambdaScheme, SyntheticInstance, SyntheticProfile,
};
use anns::hamming::gen;
use anns::sketch::SketchParams;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random point-mass or geometric profile.
fn profile_strategy() -> impl Strategy<Value = SyntheticProfile> {
    (4u32..400, any::<bool>(), 4.0f64..80.0).prop_flat_map(|(top, geometric, n_log2)| {
        (2u32..=top, 0.25f64..4.0).prop_map(move |(i0, step)| {
            if geometric {
                SyntheticProfile::geometric(top, i0, step, n_log2)
            } else {
                SyntheticProfile::point_mass(top, i0, n_log2)
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Algorithm 1 finds the first non-empty scale on ANY profile, within
    /// its round budget and probe bound.
    #[test]
    fn alg1_invariants_on_random_profiles(profile in profile_strategy(), k in 1u32..12) {
        let expected = profile.first_nonempty().unwrap();
        let top = profile.top;
        let inst = SyntheticInstance::new(profile, 2.0);
        let scheme = Alg1Scheme { instance: &inst, k, tau_override: None };
        let (outcome, ledger) = execute(&scheme, &());
        prop_assert_eq!(outcome.scale(), Some(expected));
        prop_assert!(ledger.rounds() <= k as usize);
        let tau = choose_tau_alg1(top, k);
        prop_assert!(ledger.total_probes() <= (k * (tau - 1)) as usize);
        prop_assert!(ledger.max_round_probes() <= (tau - 1) as usize);
    }

    /// Algorithm 2 finds the first non-empty scale on ANY profile, and its
    /// phase structure bounds every non-final round.
    #[test]
    fn alg2_invariants_on_random_profiles(profile in profile_strategy(), k in 2u32..64) {
        let expected = profile.first_nonempty().unwrap();
        let cfg = Alg2Config::with_k(k);
        let s = alg2_s(k, cfg.c);
        let inst = SyntheticInstance::new(profile, s);
        let scheme = Alg2Scheme { instance: &inst, config: cfg };
        let (outcome, ledger) = execute(&scheme, &());
        prop_assert_eq!(outcome.scale(), Some(expected));
        // Every round is either a phase round (≤ 1 + ⌈(τ−1)/s⌉ probes), a
        // 1-probe second phase round, or the completion round.
        prop_assert!(ledger.rounds() >= 1);
    }

    /// The λ-scheme on synthetic profiles: probing at scale s answers
    /// NEIGHBOR iff s is at or above the first non-empty scale.
    #[test]
    fn lambda_threshold_behaviour(profile in profile_strategy(), frac in 0.0f64..1.0) {
        let i0 = profile.first_nonempty().unwrap();
        let top = profile.top;
        let scale = ((f64::from(top)) * frac) as u32;
        let inst = SyntheticInstance::new(profile, 2.0);
        let scheme = LambdaScheme { instance: &inst, scale };
        let (answer, ledger) = execute(&scheme, &());
        prop_assert_eq!(ledger.total_probes(), 1);
        let is_neighbor = matches!(answer, anns::core::lambda::LambdaAnswer::Neighbor { .. });
        prop_assert_eq!(is_neighbor, scale >= i0);
    }

    /// τ selection: the paper's inequality holds and τ is minimal, for all
    /// (top, k).
    #[test]
    fn tau_selection_is_sound(top in 1u32..100_000, k in 2u32..20) {
        let tau = choose_tau_alg1(top, k);
        let val = |t: u32| f64::from(t) * (f64::from(t) / 2.0).powi(k as i32 - 1);
        prop_assert!(val(tau) >= f64::from(top.max(1)));
        if tau > 2 {
            prop_assert!(val(tau - 1) < f64::from(top.max(1)));
        }
    }
}

proptest! {
    // Concrete micro-instances are slower; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-to-end on random concrete planted instances: the returned point
    /// is γ-approximate (the planted gap makes failures effectively
    /// impossible at these margins, any seed).
    #[test]
    fn concrete_planted_instances_are_solved(seed in any::<u64>(), k in 1u32..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let planted = gen::planted(96, 384, 6, &mut rng);
        let index = AnnIndex::build(
            planted.dataset,
            SketchParams::practical(2.0, seed ^ 0xA5A5),
            BuildOptions { threads: 1, ..BuildOptions::default() },
        );
        let (outcome, ledger) = index.query(&planted.query, k);
        prop_assert!(ledger.rounds() <= k as usize);
        prop_assert_eq!(outcome.index(), Some(planted.planted_index as u64));
    }
}
