//! Cross-crate integration tests: the full pipeline from workload
//! generation through sketching, lazy tables, round-structured queries and
//! ledger accounting.

use anns::cellprobe::{batch, execute_with, ExecOptions};
use anns::core::{Alg1Scheme, Alg2Config, AnnIndex, BuildOptions};
use anns::hamming::{gen, Point};
use anns::sketch::SketchParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

const GAMMA: f64 = 2.0;

fn build_planted(seed: u64, n: usize, d: u32, dist: u32) -> (AnnIndex, Point, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let planted = gen::planted(n, d, dist, &mut rng);
    let index = AnnIndex::build(
        planted.dataset,
        SketchParams::practical(GAMMA, seed),
        BuildOptions {
            threads: 4,
            ..BuildOptions::default()
        },
    );
    (index, planted.query, planted.planted_index)
}

#[test]
fn all_three_schemes_agree_on_a_planted_instance() {
    let (index, query, needle) = build_planted(11, 512, 512, 10);
    // Algorithm 1, all budgets.
    for k in 1..=5 {
        let (outcome, ledger) = index.query(&query, k);
        assert_eq!(outcome.index(), Some(needle as u64), "alg1 k={k}");
        assert!(ledger.rounds() <= k as usize);
    }
    // Algorithm 2.
    let (outcome, _) = index.query_alg2(&query, Alg2Config::with_k(10));
    assert_eq!(outcome.index(), Some(needle as u64), "alg2");
    // λ-ANNS at the planted radius.
    let (answer, ledger) = index.query_lambda(&query, 10.0);
    assert_eq!(ledger.total_probes(), 1);
    match answer {
        anns::core::lambda::LambdaAnswer::Neighbor { index: idx, .. } => {
            let dist = query.distance(index.dataset().point(idx as usize));
            assert!(f64::from(dist) <= GAMMA * 10.0);
        }
        anns::core::lambda::LambdaAnswer::No => panic!("YES instance answered NO"),
    }
}

#[test]
fn queries_are_deterministic_replays() {
    // The data structure is a fixed function of (database, randomness):
    // running the same query twice must produce identical transcripts,
    // ledgers and answers.
    let (index, query, _) = build_planted(13, 256, 256, 8);
    let scheme = Alg1Scheme {
        instance: &index,
        k: 3,
        tau_override: None,
    };
    let opts = ExecOptions::with_transcript();
    let (a1, l1, t1) = execute_with(&scheme, &query, opts);
    let (a2, l2, t2) = execute_with(&scheme, &query, opts);
    assert_eq!(a1, a2);
    assert_eq!(l1, l2);
    assert_eq!(t1, t2);
}

#[test]
fn parallel_in_round_probes_match_sequential() {
    // Probes within a round are independent by the model; executing them on
    // threads must not change anything observable.
    let (index, query, _) = build_planted(17, 512, 256, 8);
    let seq = index.query_with(&query, 2, ExecOptions::default());
    let par = index.query_with(&query, 2, ExecOptions::parallel_probes(8, 2));
    assert_eq!(seq.0, par.0);
    assert_eq!(seq.1, par.1);
}

#[test]
fn batch_driver_matches_individual_queries() {
    let (index, _, _) = build_planted(19, 256, 256, 8);
    let mut rng = StdRng::seed_from_u64(23);
    let queries: Vec<Point> = (0..16).map(|_| Point::random(256, &mut rng)).collect();
    let scheme = Alg1Scheme {
        instance: &index,
        k: 2,
        tau_override: None,
    };
    let batch_items = batch::run_batch(&scheme, &queries, 4, ExecOptions::default());
    for (q, item) in queries.iter().zip(batch_items.iter()) {
        let (outcome, ledger) = index.query(q, 2);
        assert_eq!(item.answer, outcome);
        assert_eq!(item.ledger, ledger);
    }
    let wc = batch::worst_case_ledger(&batch_items);
    assert!(wc.total_probes() >= batch_items[0].ledger.total_probes());
}

#[test]
fn transcript_respects_round_structure() {
    // Round r's entries must appear contiguously and in round order, and
    // the number of rounds in the transcript must match the ledger.
    let (index, query, _) = build_planted(29, 256, 256, 8);
    let scheme = Alg1Scheme {
        instance: &index,
        k: 4,
        tau_override: None,
    };
    let (_, ledger, transcript) = execute_with(&scheme, &query, ExecOptions::with_transcript());
    let transcript = transcript.expect("recorded");
    let mut last_round = 0usize;
    for entry in &transcript.0 {
        assert!(entry.round >= last_round, "rounds must be non-decreasing");
        last_round = entry.round;
    }
    assert_eq!(last_round + 1, ledger.rounds());
    for (round, &expected) in ledger.per_round.iter().enumerate() {
        assert_eq!(transcript.round_entries(round).count(), expected);
    }
}

#[test]
fn degenerate_and_main_paths_cover_all_query_types() {
    let (index, _, _) = build_planted(31, 256, 256, 8);
    let mut rng = StdRng::seed_from_u64(37);
    // Exact member.
    let member = index.dataset().point(3).clone();
    let (o, _) = index.query(&member, 3);
    assert!(matches!(o.kind, anns::core::OutcomeKind::Exact { .. }));
    // Distance-1 neighbor.
    let near = index.dataset().point(9).flipped(100);
    let (o, _) = index.query(&near, 3);
    assert!(o.index().is_some());
    assert!(
        near.distance(index.dataset().point(o.index().unwrap() as usize)) <= 1,
        "degenerate path must return a distance ≤ 1 point"
    );
    // Generic far query: main path, γ-approximation.
    let far = Point::random(256, &mut rng);
    let (o, ledger) = index.query(&far, 3);
    assert!(index.verify_gamma(&far, &o));
    assert!(ledger.rounds() <= 3);
}

#[test]
fn serialized_rounds_realize_one_probe_per_round() {
    // The paper's remark after Theorem 3: for large enough k the algorithm
    // can be implemented with a single probe per round. Serializing a run's
    // probes is a valid such implementation (no probe ever depended on
    // another in its own round); the serialized round count equals the
    // probe count and the answer is unchanged.
    let (index, query, needle) = build_planted(43, 256, 256, 8);
    let scheme = Alg1Scheme {
        instance: &index,
        k: 3,
        tau_override: None,
    };
    let (batched, ledger_batched, _) = execute_with(&scheme, &query, ExecOptions::default());
    let (serial, ledger_serial, _) = execute_with(&scheme, &query, ExecOptions::serialized());
    assert_eq!(batched, serial, "serialization must not change the answer");
    assert_eq!(batched.index(), Some(needle as u64));
    assert_eq!(
        ledger_serial.total_probes(),
        ledger_batched.total_probes(),
        "same probes"
    );
    assert_eq!(ledger_serial.rounds(), ledger_serial.total_probes());
    assert_eq!(ledger_serial.max_round_probes(), 1);
}

#[test]
fn success_probability_is_boostable_by_repetition() {
    // Paper §2: constant success probability boosts to any constant by
    // parallel repetition (independent copies of the public randomness),
    // with rounds unchanged. Three index copies with independent seeds,
    // answer = best of three.
    let mut rng = StdRng::seed_from_u64(41);
    let planted = gen::planted(256, 256, 8, &mut rng);
    let copies: Vec<AnnIndex> = (0..3)
        .map(|c| {
            AnnIndex::build(
                planted.dataset.clone(),
                SketchParams::practical(GAMMA, 1000 + c),
                BuildOptions {
                    threads: 2,
                    ..BuildOptions::default()
                },
            )
        })
        .collect();
    let mut best: Option<u32> = None;
    for index in &copies {
        let (outcome, ledger) = index.query(&planted.query, 2);
        assert!(ledger.rounds() <= 2, "repetition must not add rounds");
        if let Some(p) = index.outcome_point(&outcome) {
            let dist = planted.query.distance(p);
            best = Some(best.map_or(dist, |b| b.min(dist)));
        }
    }
    assert_eq!(best, Some(8), "boosted answer must hit the needle");
}
