//! Model-level integration tests: lazy-vs-materialized equivalence
//! (substitution S1 / ablation A4), space accounting, and the
//! communication translation.

use anns::cellprobe::{
    execute_with, newman_private_coin_cells_log2, Address, ExecOptions, MaterializedTable, Table,
};
use anns::core::{Alg1Scheme, AnnIndex, AnnsInstance, BuildOptions};
use anns::hamming::gen;
use anns::lpm::ProtocolShape;
use anns::lsh::{LinearScan, LshIndex, LshParams};
use anns::sketch::SketchParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

const GAMMA: f64 = 2.0;

/// A4: cells computed by the lazy oracle, frozen into a materialized table,
/// must replay to exactly the same words — i.e. the lazy oracle *is* the
/// materialized table restricted to the touched address set.
#[test]
fn lazy_oracle_agrees_with_materialization() {
    let mut rng = StdRng::seed_from_u64(1);
    let planted = gen::planted(128, 256, 8, &mut rng);
    let index = AnnIndex::build(
        planted.dataset,
        SketchParams::practical(GAMMA, 5),
        BuildOptions {
            threads: 2,
            ..BuildOptions::default()
        },
    );
    let scheme = Alg1Scheme {
        instance: &index,
        k: 3,
        tau_override: None,
    };
    let (_, _, transcript) = execute_with(&scheme, &planted.query, ExecOptions::with_transcript());
    let transcript = transcript.expect("recorded");
    // Freeze the touched cells.
    let frozen = MaterializedTable::new(index.table().space_model());
    for entry in &transcript.0 {
        frozen.write(entry.addr.clone(), entry.word.clone());
    }
    // Replay: frozen table and lazy oracle agree on every touched address,
    // and the lazy oracle re-reads identically (purity).
    for entry in &transcript.0 {
        assert_eq!(frozen.read(&entry.addr), entry.word);
        assert_eq!(index.table().read(&entry.addr), entry.word);
    }
    assert!(frozen.populated_cells() > 0);
}

/// The strong form of S1: at a tiny instance the *entire* main-table
/// address space is enumerable, so the paper's literal data structure can
/// be fully materialized and the lazy oracle compared against it cell by
/// cell — and a full query replayed against the materialization.
#[test]
fn full_materialization_equals_lazy_oracle_on_tiny_instance() {
    use anns::sketch::ThresholdMode;
    let mut rng = StdRng::seed_from_u64(7);
    // n = 4, c1 such that m_rows hits its floor of 8 → 2^8 = 256 cells per
    // main table: fully enumerable.
    let ds = gen::uniform(4, 32, &mut rng);
    let params = SketchParams {
        gamma: GAMMA,
        c1: 1.0,
        c2: 1.0,
        s: 2.0,
        threshold_mode: ThresholdMode::Midpoint,
        seed: 3,
    };
    let index = AnnIndex::build(ds, params, BuildOptions::default());
    let m_rows = index.family().m_rows();
    assert_eq!(m_rows, 8, "tiny instance must hit the row floor");
    let top = index.top();
    // Materialize every cell of every main table.
    let frozen = MaterializedTable::new(index.table().space_model());
    for i in 0..=top {
        for cell in 0u32..(1 << m_rows) {
            let key = u64::from(cell).to_le_bytes().to_vec();
            let addr = Address::new(2 + i, key); // T_BASE + i
            frozen.write(addr.clone(), index.table().read(&addr));
        }
    }
    assert_eq!(frozen.populated_cells(), ((top + 1) << m_rows) as usize);
    // Every cell agrees on a second lazy read.
    for i in 0..=top {
        for cell in (0u32..(1 << m_rows)).step_by(7) {
            let addr = Address::new(2 + i, u64::from(cell).to_le_bytes().to_vec());
            assert_eq!(frozen.read(&addr), index.table().read(&addr));
        }
    }
    // And a real query's main-table probes route identically: replay the
    // transcript against the materialization.
    let q = anns::hamming::Point::random(32, &mut rng);
    let scheme = Alg1Scheme {
        instance: &index,
        k: 2,
        tau_override: None,
    };
    let (_, _, transcript) = execute_with(&scheme, &q, ExecOptions::with_transcript());
    for entry in &transcript.unwrap().0 {
        if entry.addr.table >= 2 && entry.addr.table < 2 + (1 << 28) {
            assert_eq!(frozen.read(&entry.addr), entry.word);
        }
    }
}

/// Probing an address the algorithm would never emit still works and is
/// consistent — the lazy table is total, like a materialized one.
#[test]
fn lazy_oracle_is_total_over_the_address_space() {
    let mut rng = StdRng::seed_from_u64(2);
    let ds = gen::uniform(64, 128, &mut rng);
    let index = AnnIndex::build(
        ds,
        SketchParams::practical(GAMMA, 6),
        BuildOptions {
            threads: 1,
            ..BuildOptions::default()
        },
    );
    // A made-up sketch address (all zeros) at every scale: must return
    // *some* deterministic word without panicking.
    let m_limbs = (index.family().m_rows().div_ceil(64)) as usize;
    for i in 0..=index.family().top() {
        let addr = Address::new(2 + i, vec![0u8; m_limbs * 8]);
        let w1 = index.table().read(&addr);
        let w2 = index.table().read(&addr);
        assert_eq!(w1, w2);
    }
}

/// E9 backbone: every scheme's declared space model is polynomial in n with
/// its documented exponent, and word sizes are O(d).
#[test]
fn space_models_are_polynomial_with_documented_exponents() {
    let mut rng = StdRng::seed_from_u64(3);
    let n = 256usize;
    let d = 256u32;
    let ds = gen::uniform(n, d, &mut rng);

    let index = AnnIndex::build(
        ds.clone(),
        SketchParams::practical(GAMMA, 7),
        BuildOptions {
            threads: 2,
            ..BuildOptions::default()
        },
    );
    let m = index.table().space_model();
    // Main tables dominate: log₂ cells ≈ c₁·log₂ n ⇒ exponent ≈ c₁ = 24
    // (plus the coarse/aux contribution bounded by c₂·s on top).
    assert!(m.is_poly_in(n as u64, 64.0));
    assert!(m.word_bits <= 8 * (13 + 8 * u64::from(d.div_ceil(64))));

    let lsh = LshIndex::build(
        ds.clone(),
        LshParams::for_radius(n, d, 8.0, GAMMA, 1.0),
        &mut rng,
    );
    // LSH: n^{1+ρ}-ish cells — exponent well under 3 here.
    assert!(Table::space_model(&lsh).is_poly_in(n as u64, 16.0));

    let scan = LinearScan::new(ds);
    assert!(Table::space_model(&scan).is_poly_in(n as u64, 1.01));
}

/// Lemma 5 / Proposition 6 accounting: the public→private translation
/// multiplies the table size by (log|A| + log|B| + O(1)) and keeps t, k, w.
#[test]
fn newman_translation_grows_cells_but_not_probes() {
    let mut rng = StdRng::seed_from_u64(4);
    let planted = gen::planted(128, 128, 6, &mut rng);
    let index = AnnIndex::build(
        planted.dataset,
        SketchParams::practical(GAMMA, 8),
        BuildOptions {
            threads: 1,
            ..BuildOptions::default()
        },
    );
    let (outcome, ledger) = index.query(&planted.query, 2);
    assert!(outcome.index().is_some());
    let public_cells = index.table().space_model().cells_log2;
    let d = 128.0f64;
    let n = 128.0f64;
    let private_cells = newman_private_coin_cells_log2(public_cells, d, d * n);
    assert!(private_cells > public_cells);
    // log grows by log₂(d + dn + O(1)) ≈ 14 bits here — still polynomial.
    assert!(private_cells - public_cells < 20.0);
    // Probes and rounds are untouched by the translation (it only clones
    // tables per random string): the ledger is the authority.
    assert!(ledger.rounds() <= 2);
}

/// Proposition 18: the measured ledger translates to a 2k-round protocol
/// with the right message sizes.
#[test]
fn ledger_to_protocol_translation() {
    let mut rng = StdRng::seed_from_u64(5);
    let planted = gen::planted(128, 128, 6, &mut rng);
    let index = AnnIndex::build(
        planted.dataset,
        SketchParams::practical(GAMMA, 9),
        BuildOptions {
            threads: 1,
            ..BuildOptions::default()
        },
    );
    let (_, ledger) = index.query(&planted.query, 3);
    let model = index.table().space_model();
    let shape = ProtocolShape::from_ledger(&ledger, model.cells_log2, model.word_bits);
    assert_eq!(shape.comm_rounds(), 2 * ledger.rounds());
    assert_eq!(shape.a.len(), ledger.per_round.len());
    for (i, &t_i) in ledger.per_round.iter().enumerate() {
        assert!((shape.a[i] - t_i as f64 * model.cells_log2.ceil()).abs() < 1e-9);
        assert!((shape.b[i] - t_i as f64 * model.word_bits as f64).abs() < 1e-9);
    }
}

/// The executor's word-size enforcement really binds across schemes: the
/// widest word actually read stays within the declared O(d) bound.
#[test]
fn word_bound_holds_across_schemes() {
    let mut rng = StdRng::seed_from_u64(6);
    let planted = gen::planted(256, 320, 8, &mut rng);
    let index = AnnIndex::build(
        planted.dataset.clone(),
        SketchParams::practical(GAMMA, 10),
        BuildOptions {
            threads: 2,
            ..BuildOptions::default()
        },
    );
    let (_, ledger) = index.query(&planted.query, 2);
    assert!(ledger.max_word_bits <= index.word_bits());
    let scan = LinearScan::new(planted.dataset);
    let (_, ledger) = scan.query(&planted.query);
    assert!(ledger.max_word_bits <= Table::space_model(&scan).word_bits);
}
