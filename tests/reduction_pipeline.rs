//! The flagship cross-crate test: solving longest prefix match through the
//! paper's *own* ANNS data structure, via the Lemma 14 reduction.
//!
//! LPM instance → γ-separated ball tree → ANNS instance → `AnnIndex`
//! (sketches + lazy tables) → k-round query → pulled-back LPM answer,
//! checked against the exhaustive LPM solver. This exercises every crate in
//! the workspace in one pipeline and is exactly the object the lower-bound
//! argument reasons about.

use anns::core::{Alg2Config, AnnIndex, BuildOptions};
use anns::hamming::Point;
use anns::lpm::{LpmInstance, LpmReduction};
use anns::sketch::SketchParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GAMMA: f64 = 2.0;

fn pipeline(seed: u64) -> (LpmReduction, AnnIndex) {
    let mut rng = StdRng::seed_from_u64(seed);
    let instance = LpmInstance::random(4, 2, 12, &mut rng);
    let reduction = LpmReduction::build(instance, 2048, GAMMA, 50_000, &mut rng)
        .expect("tree construction feasible at these parameters");
    let index = AnnIndex::build(
        reduction.dataset().clone(),
        SketchParams::practical(GAMMA, seed ^ 0xFEED),
        BuildOptions {
            threads: 4,
            ..BuildOptions::default()
        },
    );
    (reduction, index)
}

#[test]
fn lpm_solved_through_the_anns_index() {
    let (reduction, index) = pipeline(51);
    let mut rng = StdRng::seed_from_u64(52);
    let mut solved = 0usize;
    let trials = 24usize;
    for _ in 0..trials {
        let q: Vec<u16> = (0..2).map(|_| rng.gen_range(0..4)).collect();
        let x: Point = reduction.map_query(&q);
        let (outcome, ledger) = index.query(&x, 3);
        assert!(ledger.rounds() <= 3);
        let answer = index
            .outcome_point(&outcome)
            .expect("query must return a point");
        if reduction.answer_is_correct(&q, answer) {
            solved += 1;
        }
    }
    // The reduction guarantees any γ-approximate answer is LPM-correct; the
    // index's γ-approximation holds with the scheme's success probability.
    assert!(
        solved * 4 >= trials * 3,
        "LPM solved for only {solved}/{trials} queries"
    );
}

#[test]
fn lpm_solved_through_algorithm_2_as_well() {
    let (reduction, index) = pipeline(61);
    let mut rng = StdRng::seed_from_u64(62);
    let mut solved = 0usize;
    let trials = 12usize;
    for _ in 0..trials {
        let q: Vec<u16> = (0..2).map(|_| rng.gen_range(0..4)).collect();
        let x = reduction.map_query(&q);
        let (outcome, _) = index.query_alg2(&x, Alg2Config::with_k(8));
        if let Some(answer) = index.outcome_point(&outcome) {
            if reduction.answer_is_correct(&q, answer) {
                solved += 1;
            }
        }
    }
    assert!(solved * 4 >= trials * 3, "{solved}/{trials}");
}

#[test]
fn database_string_queries_come_back_exactly() {
    // Querying the image of a database string: distance 0, the degenerate
    // path fires, the pulled-back answer has LCP = m.
    let (reduction, index) = pipeline(71);
    for i in 0..reduction.instance().len() {
        let s = reduction.instance().database[i].clone();
        let x = reduction.map_query(&s);
        let (outcome, ledger) = index.query(&x, 2);
        assert_eq!(ledger.rounds(), 1, "degenerate exact hit is one round");
        let answer = index.outcome_point(&outcome).expect("must answer");
        assert!(
            reduction.answer_is_correct(&s, answer),
            "string {i} must match itself"
        );
    }
}

#[test]
fn exact_nn_ground_truth_matches_reduction_semantics() {
    // Sanity tie-break: for every query string, the *exact* NN in the
    // reduced dataset maximizes the LCP (Lemma 14's easy direction), so the
    // ANNS index's job is only to γ-approximate it.
    let (reduction, _) = pipeline(81);
    let mut rng = StdRng::seed_from_u64(82);
    for _ in 0..40 {
        let q: Vec<u16> = (0..2).map(|_| rng.gen_range(0..4)).collect();
        let x = reduction.map_query(&q);
        let nn = reduction.dataset().exact_nn(&x);
        assert!(reduction.answer_is_correct(&q, reduction.dataset().point(nn.index)));
    }
}
