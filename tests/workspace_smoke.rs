//! Workspace smoke test: the facade re-exports resolve and the quickstart
//! path works end to end on a small planted instance. This is the first
//! test a fresh checkout should run — it fails loudly if the workspace
//! wiring (manifests, re-exports, vendored shims) regresses.

use anns::core::{AnnIndex, BuildOptions};
use anns::hamming::gen;
use anns::sketch::SketchParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Every facade module path resolves to the workspace crate behind it.
#[test]
fn facade_reexports_resolve() {
    // One representative symbol per re-exported crate; a rename or a
    // dropped manifest dependency turns this into a compile error.
    let _: fn(u32, &mut StdRng) -> anns::hamming::Point = anns::hamming::Point::random;
    let _ = anns::cellprobe::ProbeLedger::default();
    let _ = anns::sketch::SketchParams::practical(2.0, 1);
    let _ = anns::core::Alg2Config::with_k(4);
    let _ = anns::lsh::LshParams::for_radius(64, 64, 4.0, 2.0, 1.0);
    let _ = anns::lpm::lcp_len(&[1, 2, 3], &[1, 2, 9]);
    let _ = anns::engine::Registry::new();
    let _ = anns::engine::EngineOptions::default();
}

/// The engine serves the quickstart index through the facade: registry →
/// engine → submit_batch, with coalesced answers equal to direct queries.
#[test]
fn engine_serves_through_the_facade() {
    use std::sync::Arc;
    let mut rng = StdRng::seed_from_u64(7);
    let planted = gen::planted(128, 128, 5, &mut rng);
    let query = planted.query.clone();
    let index = Arc::new(AnnIndex::build(
        planted.dataset,
        SketchParams::practical(2.0, 7),
        BuildOptions::default(),
    ));
    let mut registry = anns::engine::Registry::new();
    let shard = registry.register_alg1("alg1-k3", Arc::clone(&index), 3);
    let engine = anns::engine::Engine::new(registry, anns::engine::EngineOptions::default());
    let requests: Vec<anns::engine::QueryRequest> = (0..8)
        .map(|_| anns::engine::QueryRequest {
            shard,
            query: query.clone(),
        })
        .collect();
    let served = engine.submit_batch(&requests);
    let (direct, direct_ledger) = index.query(&query, 3);
    for s in &served {
        assert_eq!(s.answer.index(), direct.index());
        assert_eq!(s.ledger, direct_ledger);
    }
    // Eight copies of one query: one query's worth of unique probes.
    let stats = engine.stats();
    assert_eq!(stats.probes_executed * 8, stats.probes_submitted);
}

/// The `src/lib.rs` quickstart, as a plain test: build → query →
/// verify_gamma, with the round budget respected.
#[test]
fn quickstart_path_works_on_planted_instance() {
    let mut rng = StdRng::seed_from_u64(7);
    let planted = gen::planted(256, 256, 6, &mut rng);
    let index = AnnIndex::build(
        planted.dataset,
        SketchParams::practical(2.0, 7),
        BuildOptions::default(),
    );

    let k = 3;
    let (outcome, ledger) = index.query(&planted.query, k);
    assert!(
        index.verify_gamma(&planted.query, &outcome),
        "answer must be gamma-approximate"
    );
    assert!(ledger.rounds() <= k as usize, "round budget exceeded");
    assert_eq!(
        outcome.index(),
        Some(planted.planted_index as u64),
        "planted neighbor should be found at this margin"
    );
}

/// Snapshot JSON round-trip through the vendored serde/serde_json shims:
/// a restored index answers identically.
#[test]
fn snapshot_round_trip_preserves_answers() {
    let mut rng = StdRng::seed_from_u64(11);
    let planted = gen::planted(128, 128, 5, &mut rng);
    let index = AnnIndex::build(
        planted.dataset,
        SketchParams::practical(2.0, 11),
        BuildOptions::default(),
    );
    let json = serde_json::to_string(&index.snapshot()).expect("serialize snapshot");
    let restored = AnnIndex::from_snapshot(serde_json::from_str(&json).expect("parse snapshot"));
    let (a, _) = index.query(&planted.query, 3);
    let (b, _) = restored.query(&planted.query, 3);
    assert_eq!(a, b, "restored index must answer identically");
}
