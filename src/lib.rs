//! # limited-adaptivity-anns
//!
//! A full reproduction of *"Randomized approximate nearest neighbor search
//! with limited adaptivity"* (Liu, Pan, Yin — SPAA 2016, arXiv:1602.04421):
//! approximate nearest neighbor search in the Hamming cube, in the
//! cell-probe model, with the query's probes organized into `k` rounds.
//!
//! This crate re-exports the workspace's public API under one roof:
//!
//! * [`hamming`] — the metric space: bit-packed points, datasets, workload
//!   generators, Hamming balls, greedy codes;
//! * [`cellprobe`] — the executable cell-probe model: tables, rounds,
//!   probe ledgers, batch drivers;
//! * [`sketch`] — the Definition 7 machinery: sparse GF(2) sketches and the
//!   `C_i`/`D_{i,j}` ball approximations with their Lemma 8 validator;
//! * [`core`] — the paper's algorithms: Algorithm 1 (`O(k(log d)^{1/k})`
//!   probes), Algorithm 2 (`O(k + ((log d)/k)^{c/k})`), the 1-probe
//!   λ-ANNS scheme, plus concrete (real data) and synthetic (asymptotic
//!   scale) backends;
//! * [`lsh`] — the baselines: bit-sampling LSH and linear scan;
//! * [`lpm`] — the lower-bound side: longest prefix match, the
//!   ball-tree reduction, and the round-elimination calculator;
//! * [`obs`] — structured observability: typed trace events, the
//!   bounded ring / flight recorders, and the injectable clock the
//!   serving stack tells time by;
//! * [`engine`] — the serving subsystem: a sharded registry of built
//!   instances behind one trait surface, and a round-synchronous
//!   scheduler that coalesces each round's probes across all in-flight
//!   queries into one sorted batch per shard;
//! * [`store`] — the persistent index store: a versioned binary snapshot
//!   format (checksummed sections, typed errors) that persists every
//!   servable scheme and whole registry bundles, so instances build once
//!   and warm-start in milliseconds;
//! * [`server`] — the network tier: a framed TCP protocol over the
//!   admission queue, per-tenant token-bucket rate limiting with exact
//!   usage accounting, and a blocking client that measures
//!   socket-to-ticket and socket-to-answer latency.
//!
//! ## Quickstart
//!
//! ```
//! use anns::core::{AnnIndex, BuildOptions};
//! use anns::hamming::gen;
//! use anns::sketch::SketchParams;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! // 256 points in {0,1}^256, one planted neighbor at distance 6.
//! let planted = gen::planted(256, 256, 6, &mut rng);
//! let index = AnnIndex::build(
//!     planted.dataset,
//!     SketchParams::practical(2.0, 7),
//!     BuildOptions::default(),
//! );
//! // k = 3 rounds of parallel cell-probes.
//! let (outcome, ledger) = index.query(&planted.query, 3);
//! assert!(index.verify_gamma(&planted.query, &outcome));
//! assert!(ledger.rounds() <= 3);
//! ```

pub use anns_cellprobe as cellprobe;
pub use anns_core as core;
pub use anns_engine as engine;
pub use anns_hamming as hamming;
pub use anns_lpm as lpm;
pub use anns_lsh as lsh;
pub use anns_obs as obs;
pub use anns_server as server;
pub use anns_sketch as sketch;
pub use anns_store as store;
