//! The 1-probe λ-near-neighbor search scheme (Theorem 11 / §3.3).
//!
//! The folklore result the paper includes for contrast: once the *nearest*
//! requirement is relaxed to a fixed radius λ, a single probe suffices. Set
//! `i = ⌈log_α λ⌉` and read `T_i[M_i x]`:
//!
//! * if some database point is within λ of the query then `B_i ≠ ∅`, so by
//!   the sandwich `C_i ≠ ∅` and the cell holds a point of
//!   `C_i ⊆ B_{i+1}`, i.e. within `α^{i+1} ≤ α²λ = γλ` — a valid answer
//!   for the search version `λ-ANNS`;
//! * if no point is within γλ then `B_{i+1} = ∅ ⊇ C_i`, the cell reads
//!   `EMPTY`, and the scheme answers NO.
//!
//! This is why the paper's lower bound must target the *search* problem:
//! the decision version collapses to `O(1)` probes (§1, §4 prelude).

use anns_cellprobe::{CellProbeScheme, RoundExecutor, Table};
use serde::{Deserialize, Serialize};

use crate::instance::AnnsInstance;
use crate::outcome::decode_t_cell;

/// The probed scale: smallest `i` with `α^i ≥ λ`.
pub fn lambda_scale(lambda: f64, alpha: f64, top: u32) -> u32 {
    assert!(
        lambda >= 1.0,
        "radii below 1 degenerate to exact membership"
    );
    assert!(alpha > 1.0);
    let i = (lambda.ln() / alpha.ln()).ceil().max(0.0) as u32;
    // Guard float rounding at exact powers.
    let i = if alpha.powi(i as i32) < lambda {
        i + 1
    } else {
        i
    };
    i.min(top)
}

/// Answer of the λ-ANNS scheme.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LambdaAnswer {
    /// A database point within `γλ` of the query (index, bits if carried).
    Neighbor {
        /// Index of the returned point.
        index: u64,
        /// The point's bits (concrete mode).
        point: Option<anns_hamming::Point>,
    },
    /// No database point within `γλ` (valid whenever none is within λ).
    No,
}

/// Runs the 1-probe λ-ANNS scheme: reads `T_i[M_i x]` at `i = ⌈log_α λ⌉`.
pub fn lambda_ann<I: AnnsInstance>(
    instance: &I,
    query: &I::Query,
    scale: u32,
    exec: &mut RoundExecutor<'_>,
) -> LambdaAnswer {
    let words = exec.round(&[instance.t_address(query, scale)]);
    match decode_t_cell(&words[0]) {
        Some((index, point)) => LambdaAnswer::Neighbor { index, point },
        None => LambdaAnswer::No,
    }
}

/// [`CellProbeScheme`] adapter for the λ-ANNS scheme.
pub struct LambdaScheme<'a, I: AnnsInstance> {
    /// The instance to query.
    pub instance: &'a I,
    /// The probed scale (precomputed via [`lambda_scale`]).
    pub scale: u32,
}

impl<I: AnnsInstance> CellProbeScheme for LambdaScheme<'_, I> {
    type Query = I::Query;
    type Answer = LambdaAnswer;

    fn table(&self) -> &dyn Table {
        self.instance.table()
    }

    fn word_bits(&self) -> u64 {
        self.instance.word_bits()
    }

    fn run(&self, query: &Self::Query, exec: &mut RoundExecutor<'_>) -> LambdaAnswer {
        lambda_ann(self.instance, query, self.scale, exec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{SyntheticInstance, SyntheticProfile};
    use anns_cellprobe::execute;

    #[test]
    fn lambda_scale_is_minimal_exponent() {
        let alpha = std::f64::consts::SQRT_2;
        for lambda in [1.0f64, 1.5, 2.0, 4.0, 100.0] {
            let i = lambda_scale(lambda, alpha, 1000);
            assert!(alpha.powi(i as i32) >= lambda - 1e-9, "λ={lambda}");
            if i > 0 {
                assert!(alpha.powi(i as i32 - 1) < lambda, "λ={lambda} not minimal");
            }
        }
    }

    #[test]
    fn lambda_scale_clamps_to_top() {
        assert_eq!(lambda_scale(1e30, 1.5, 17), 17);
    }

    #[test]
    fn one_probe_yes_and_no_instances() {
        let top = 60u32;
        let i0 = 20u32;
        let inst = SyntheticInstance::new(SyntheticProfile::point_mass(top, i0, 24.0), 2.0);
        // Probing at a scale ≥ i0 (λ at least the planted distance): YES.
        let yes = LambdaScheme {
            instance: &inst,
            scale: i0 + 1,
        };
        let (answer, ledger) = execute(&yes, &());
        assert!(matches!(answer, LambdaAnswer::Neighbor { .. }));
        assert_eq!(ledger.total_probes(), 1, "exactly one probe");
        assert_eq!(ledger.rounds(), 1);
        // Probing below i0 (no point within λ or even γλ): NO.
        let no = LambdaScheme {
            instance: &inst,
            scale: i0 - 2,
        };
        let (answer, ledger) = execute(&no, &());
        assert_eq!(answer, LambdaAnswer::No);
        assert_eq!(ledger.total_probes(), 1);
    }

    #[test]
    #[should_panic]
    fn sub_unit_lambda_rejected() {
        let _ = lambda_scale(0.5, 1.5, 10);
    }
}
