//! Binary store codecs for built indexes and the paper's served schemes.
//!
//! The persistence boundary follows the build-once/serve-many split: an
//! [`AnnIndex`] payload is everything preprocessing produced (database,
//! sampled sketch family, database sketches, fault model), and a
//! [`SchemeSpec`] is the cheap query-side configuration layered over it
//! (Algorithm 1's `k`, an [`Alg2Config`], λ). A registry bundle stores
//! each index once and any number of specs pointing at it — reloading
//! restores the exact `Arc`-shared layout a serving deployment uses.
//!
//! [`StoredScheme`] is how trait-object schemes opt into persistence:
//! [`crate::serve::ServableScheme::stored`] returns the scheme's stored
//! form, with baseline schemes owned by other crates (LSH, linear scan)
//! contributing opaque payloads under their registered kind tags.

use std::sync::Arc;

use anns_store::{scheme_kind, ByteReader, ByteWriter, Codec, StoreError};

use crate::alg2::Alg2Config;
use crate::concrete::{AnnIndex, ErasureModel};
use crate::serve::{ServableScheme, ServeAlg1, ServeAlg2, ServeLambda};

impl Codec for ErasureModel {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_f64(self.probability);
        w.put_u64(self.seed);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(ErasureModel {
            probability: r.f64()?,
            seed: r.u64()?,
        })
    }
}

impl Codec for Alg2Config {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.k);
        w.put_f64(self.c);
        self.tau_override.encode(w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(Alg2Config {
            k: r.u32()?,
            c: r.f64()?,
            tau_override: Option::decode(r)?,
        })
    }
}

impl Codec for AnnIndex {
    fn encode(&self, w: &mut ByteWriter) {
        self.dataset().encode(w);
        self.family().encode(w);
        self.db_sketches().encode(w);
        self.erasure_model().encode(w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let dataset = anns_hamming::Dataset::decode(r)?;
        let family = anns_sketch::SketchFamily::decode(r)?;
        let db = anns_sketch::DbSketches::decode(r)?;
        let erasures = Option::decode(r)?;
        AnnIndex::from_parts(dataset, family, db, erasures).map_err(StoreError::Malformed)
    }
}

/// Query-side configuration of a core scheme, independent of the index
/// payload it runs over.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SchemeSpec {
    /// Algorithm 1 at round budget `k`.
    Alg1 {
        /// Round budget.
        k: u32,
        /// Optional grid-width override.
        tau_override: Option<u32>,
    },
    /// Algorithm 2 under a full configuration.
    Alg2(Alg2Config),
    /// The 1-probe λ-ANNS scheme.
    Lambda {
        /// Distance threshold λ.
        lambda: f64,
    },
    /// Subsampled repetition over inner schemes
    /// ([`crate::subsample::SubsampledRepetition`]). This spec is only
    /// the wrapper's own parameters; the inner schemes ride in the
    /// shard record itself (see the bundle codec in `anns-engine`), so
    /// [`SchemeSpec::instantiate`] cannot build it from one index.
    Subsampled {
        /// Subsample size `K`.
        sample: u32,
        /// Subsample-selection seed.
        seed: u64,
        /// Aggregation rule over the `K` answers.
        agg: crate::subsample::Aggregation,
    },
}

impl SchemeSpec {
    /// The scheme-kind tag this spec encodes under.
    pub fn kind(&self) -> u8 {
        match self {
            SchemeSpec::Alg1 { .. } => scheme_kind::ALG1,
            SchemeSpec::Alg2(_) => scheme_kind::ALG2,
            SchemeSpec::Lambda { .. } => scheme_kind::LAMBDA,
            SchemeSpec::Subsampled { .. } => scheme_kind::SUBSAMPLE,
        }
    }

    /// Instantiates the servable scheme over a (shared) index.
    ///
    /// # Panics
    ///
    /// For [`SchemeSpec::Subsampled`]: the wrapper's record carries its
    /// inner schemes and is instantiated by the bundle loader through
    /// [`crate::subsample::SubsampledRepetition::new`], never here.
    pub fn instantiate(&self, index: Arc<AnnIndex>) -> Box<dyn ServableScheme> {
        match *self {
            SchemeSpec::Alg1 { k, tau_override } => Box::new(ServeAlg1 {
                index,
                k,
                tau_override,
            }),
            SchemeSpec::Alg2(config) => Box::new(ServeAlg2 { index, config }),
            SchemeSpec::Lambda { lambda } => Box::new(ServeLambda { index, lambda }),
            SchemeSpec::Subsampled { .. } => {
                panic!("SchemeSpec::Subsampled carries inner schemes; use the bundle loader")
            }
        }
    }

    /// Decodes a spec of a known core kind (the shard record's kind byte
    /// is read by the bundle loader before the spec payload).
    pub fn decode_kind(kind: u8, r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        match kind {
            scheme_kind::ALG1 => Ok(SchemeSpec::Alg1 {
                k: r.u32()?,
                tau_override: Option::decode(r)?,
            }),
            scheme_kind::ALG2 => Ok(SchemeSpec::Alg2(Alg2Config::decode(r)?)),
            scheme_kind::LAMBDA => Ok(SchemeSpec::Lambda { lambda: r.f64()? }),
            scheme_kind::SUBSAMPLE => {
                let sample = r.u32()?;
                let seed = r.u64()?;
                let byte = r.u8()?;
                let agg = crate::subsample::Aggregation::from_byte(byte).ok_or_else(|| {
                    StoreError::Malformed(format!("unknown aggregation byte {byte}"))
                })?;
                Ok(SchemeSpec::Subsampled { sample, seed, agg })
            }
            other => Err(StoreError::UnknownSchemeKind(other)),
        }
    }

    /// Encodes the spec payload (kind byte excluded — the shard record
    /// owns it).
    pub fn encode_payload(&self, w: &mut ByteWriter) {
        match *self {
            SchemeSpec::Alg1 { k, tau_override } => {
                w.put_u32(k);
                tau_override.encode(w);
            }
            SchemeSpec::Alg2(config) => config.encode(w),
            SchemeSpec::Lambda { lambda } => w.put_f64(lambda),
            SchemeSpec::Subsampled { sample, seed, agg } => {
                w.put_u32(sample);
                w.put_u64(seed);
                w.put_u8(agg.to_byte());
            }
        }
    }
}

/// The stored form of a servable scheme: a core spec over a shared index,
/// or an opaque foreign payload another crate encodes and decodes.
pub enum StoredScheme {
    /// A core scheme: index payload (pooled by the bundle writer) + spec.
    Core {
        /// The shared built index.
        index: Arc<AnnIndex>,
        /// Query-side configuration.
        spec: SchemeSpec,
    },
    /// A scheme whose payload another crate owns (kind ≥ 16).
    Foreign {
        /// Registered scheme-kind tag.
        kind: u8,
        /// The scheme's self-contained encoding.
        payload: Vec<u8>,
    },
    /// Subsampled repetition: wrapper parameters plus the stored form
    /// of every inner replica (which may be `Core` or `Foreign`, but
    /// not nested `Subsampled` — the bundle codec rejects that).
    Subsampled {
        /// Subsample size `K`.
        sample: u32,
        /// Subsample-selection seed.
        seed: u64,
        /// Aggregation rule.
        agg: crate::subsample::Aggregation,
        /// Stored inner replicas, in replica order.
        inners: Vec<StoredScheme>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concrete::BuildOptions;
    use anns_hamming::gen;
    use anns_sketch::SketchParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_index(erasures: Option<ErasureModel>) -> (AnnIndex, anns_hamming::Point) {
        let mut rng = StdRng::seed_from_u64(31);
        let inst = gen::planted(48, 96, 5, &mut rng);
        let index = AnnIndex::build(
            inst.dataset,
            SketchParams::practical(2.0, 8),
            BuildOptions {
                erasures,
                ..BuildOptions::default()
            },
        );
        (index, inst.query)
    }

    #[test]
    fn index_roundtrip_preserves_query_behaviour() {
        let (index, query) = small_index(None);
        let back = AnnIndex::from_bytes(&index.to_bytes()).unwrap();
        for k in 1..=3u32 {
            let (o1, l1) = index.query(&query, k);
            let (o2, l2) = back.query(&query, k);
            assert_eq!(o1, o2, "k={k}");
            assert_eq!(l1, l2, "k={k}");
        }
    }

    #[test]
    fn erasure_model_survives_the_store() {
        let model = ErasureModel {
            probability: 0.5,
            seed: 77,
        };
        let (index, query) = small_index(Some(model));
        let back = AnnIndex::from_bytes(&index.to_bytes()).unwrap();
        let got = back.erasure_model().expect("model persisted");
        assert_eq!(got.probability, model.probability);
        assert_eq!(got.seed, model.seed);
        let (o1, l1) = index.query(&query, 3);
        let (o2, l2) = back.query(&query, 3);
        assert_eq!(o1, o2);
        assert_eq!(l1, l2);
    }

    #[test]
    fn spec_roundtrip_over_every_kind() {
        let specs = [
            SchemeSpec::Alg1 {
                k: 4,
                tau_override: Some(9),
            },
            SchemeSpec::Alg2(Alg2Config::with_k(12)),
            SchemeSpec::Lambda { lambda: 6.5 },
        ];
        for spec in specs {
            let mut w = ByteWriter::new();
            spec.encode_payload(&mut w);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            let back = SchemeSpec::decode_kind(spec.kind(), &mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn unknown_spec_kind_is_typed() {
        let mut r = ByteReader::new(&[]);
        assert!(matches!(
            SchemeSpec::decode_kind(200, &mut r),
            Err(StoreError::UnknownSchemeKind(200))
        ));
    }

    #[test]
    fn specs_instantiate_the_matching_scheme() {
        let (index, _) = small_index(None);
        let index = Arc::new(index);
        let labels = [
            (
                SchemeSpec::Alg1 {
                    k: 3,
                    tau_override: None,
                },
                "alg1[k=3]",
            ),
            (SchemeSpec::Alg2(Alg2Config::with_k(8)), "alg2[k=8]"),
            (SchemeSpec::Lambda { lambda: 4.0 }, "lambda[4]"),
        ];
        for (spec, label) in labels {
            assert_eq!(spec.instantiate(Arc::clone(&index)).label(), label);
        }
    }
}
