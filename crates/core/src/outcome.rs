//! Query answers and the cell-content codecs.
//!
//! Table cells carry scheme-defined payloads inside [`Word`]s. Both table
//! backends (concrete lazy oracles, synthetic profile oracles) *encode* with
//! the functions here, and the algorithms *decode* with the matching
//! functions, so the two sides can never drift apart.
//!
//! Encodings (first byte is a tag):
//!
//! * `T_i` cells (also the degenerate-case cells): `[0]` = `EMPTY`;
//!   `[1 | idx:u64 | dim:u32 | limbs…]` = a database point (index + bits,
//!   `O(d)` bits total — the paper's word size); `[2 | idx:u64]` = a point
//!   index without bits (synthetic backend, where points are notional).
//! * Auxiliary cells (Algorithm 2): `[0]` = "no `r` in this group"
//!   (the paper's `s+1` sentinel); `[1 | r:u32]` = smallest in-group `r`
//!   with `|D_{i,ρ(r)}| > n^{-1/s}·|C_i|`.

use anns_cellprobe::Word;
use anns_hamming::Point;
use serde::{Deserialize, Serialize};

/// What a query returned.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QueryOutcome {
    /// The classified result.
    pub kind: OutcomeKind,
}

/// Result classification for the ANNS schemes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum OutcomeKind {
    /// Degenerate case 1: the query itself is a database point (`B_0 ≠ ∅`).
    Exact {
        /// Index of the matching database point.
        index: u64,
    },
    /// Degenerate case 2: a database point within distance 1 (`B_1 ≠ ∅`).
    NearOne {
        /// Index of the near database point.
        index: u64,
        /// The point's bits (present in concrete mode).
        point: Option<Point>,
    },
    /// Main case: a point from the first non-empty `C_{i*}` was returned.
    AtScale {
        /// The scale `i*` the answer was found at.
        scale: u32,
        /// Index of the returned database point.
        index: u64,
        /// The point's bits (present in concrete mode).
        point: Option<Point>,
    },
    /// The search failed (possible only when the Lemma 8 assumptions were
    /// violated by the sampled sketches, or under injected errors).
    NotFound,
}

impl QueryOutcome {
    /// The returned database point index, if the query succeeded.
    pub fn index(&self) -> Option<u64> {
        match &self.kind {
            OutcomeKind::Exact { index } => Some(*index),
            OutcomeKind::NearOne { index, .. } => Some(*index),
            OutcomeKind::AtScale { index, .. } => Some(*index),
            OutcomeKind::NotFound => None,
        }
    }

    /// The returned point bits, if carried.
    pub fn point(&self) -> Option<&Point> {
        match &self.kind {
            OutcomeKind::NearOne { point, .. } => point.as_ref(),
            OutcomeKind::AtScale { point, .. } => point.as_ref(),
            _ => None,
        }
    }

    /// The scale the answer was found at (main case only).
    pub fn scale(&self) -> Option<u32> {
        match &self.kind {
            OutcomeKind::AtScale { scale, .. } => Some(*scale),
            _ => None,
        }
    }
}

/// Encodes a `T_i`-style cell: `EMPTY` or a stored point.
pub fn encode_t_cell(content: Option<(u64, &Point)>) -> Word {
    match content {
        None => Word::from_bytes(vec![0]),
        Some((idx, point)) => {
            let mut bytes = Vec::with_capacity(13 + point.limbs().len() * 8);
            bytes.push(1);
            bytes.extend_from_slice(&idx.to_le_bytes());
            bytes.extend_from_slice(&point.dim().to_le_bytes());
            for limb in point.limbs() {
                bytes.extend_from_slice(&limb.to_le_bytes());
            }
            Word::from_bytes(bytes)
        }
    }
}

/// Encodes a `T_i`-style cell that stores an index without point bits
/// (synthetic backend).
pub fn encode_t_cell_indexed(content: Option<u64>) -> Word {
    match content {
        None => Word::from_bytes(vec![0]),
        Some(idx) => {
            let mut bytes = Vec::with_capacity(9);
            bytes.push(2);
            bytes.extend_from_slice(&idx.to_le_bytes());
            Word::from_bytes(bytes)
        }
    }
}

/// Decodes a `T_i`-style cell: `None` = `EMPTY`, otherwise the stored index
/// and (if carried) the point bits.
///
/// # Panics
/// Panics on malformed payloads — cells are produced by this module's
/// encoders, so corruption is a bug, not an input condition.
pub fn decode_t_cell(word: &Word) -> Option<(u64, Option<Point>)> {
    let bytes = word.bytes();
    match bytes.first() {
        Some(0) => None,
        Some(1) => {
            let idx = u64::from_le_bytes(bytes[1..9].try_into().expect("t-cell index"));
            let dim = u32::from_le_bytes(bytes[9..13].try_into().expect("t-cell dim"));
            let n_limbs = dim.div_ceil(64) as usize;
            let mut limbs = Vec::with_capacity(n_limbs);
            for chunk in bytes[13..13 + n_limbs * 8].chunks_exact(8) {
                limbs.push(u64::from_le_bytes(chunk.try_into().expect("t-cell limb")));
            }
            Some((idx, Some(Point::from_limbs(dim, limbs))))
        }
        Some(2) => {
            let idx = u64::from_le_bytes(bytes[1..9].try_into().expect("t-cell index"));
            Some((idx, None))
        }
        other => panic!("malformed T-cell tag {other:?}"),
    }
}

/// Encodes an auxiliary cell (Algorithm 2): the smallest in-group `r`
/// (1-based) whose `D`-set is large, or `None` for the `s+1` sentinel.
pub fn encode_aux_cell(r: Option<u32>) -> Word {
    match r {
        None => Word::from_bytes(vec![0]),
        Some(r) => {
            let mut bytes = Vec::with_capacity(5);
            bytes.push(1);
            bytes.extend_from_slice(&r.to_le_bytes());
            Word::from_bytes(bytes)
        }
    }
}

/// Decodes an auxiliary cell.
///
/// # Panics
/// Panics on malformed payloads (same contract as [`decode_t_cell`]).
pub fn decode_aux_cell(word: &Word) -> Option<u32> {
    let bytes = word.bytes();
    match bytes.first() {
        Some(0) => None,
        Some(1) => Some(u32::from_le_bytes(
            bytes[1..5].try_into().expect("aux-cell r"),
        )),
        other => panic!("malformed aux-cell tag {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn t_cell_roundtrip_with_point() {
        let mut rng = StdRng::seed_from_u64(1);
        for dim in [1u32, 63, 64, 65, 130, 500] {
            let p = Point::random(dim, &mut rng);
            let word = encode_t_cell(Some((42, &p)));
            let (idx, point) = decode_t_cell(&word).expect("non-empty");
            assert_eq!(idx, 42);
            assert_eq!(point.as_ref(), Some(&p), "dim {dim}");
        }
    }

    #[test]
    fn t_cell_empty_roundtrip() {
        assert_eq!(decode_t_cell(&encode_t_cell(None)), None);
    }

    #[test]
    fn t_cell_indexed_roundtrip() {
        let word = encode_t_cell_indexed(Some(7));
        assert_eq!(decode_t_cell(&word), Some((7, None)));
        assert_eq!(decode_t_cell(&encode_t_cell_indexed(None)), None);
    }

    #[test]
    fn t_cell_word_size_is_o_of_d() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = Point::random(1024, &mut rng);
        let word = encode_t_cell(Some((1, &p)));
        // 1 tag + 8 idx + 4 dim + 128 limbs bytes = 141 bytes ≈ d/8 + O(1).
        assert!(word.bits() <= 1024 + 256, "word {} bits", word.bits());
    }

    #[test]
    fn aux_cell_roundtrip() {
        for r in [None, Some(1), Some(5), Some(u32::MAX)] {
            assert_eq!(decode_aux_cell(&encode_aux_cell(r)), r);
        }
    }

    #[test]
    fn outcome_accessors() {
        let exact = QueryOutcome {
            kind: OutcomeKind::Exact { index: 3 },
        };
        assert_eq!(exact.index(), Some(3));
        assert_eq!(exact.scale(), None);
        let not_found = QueryOutcome {
            kind: OutcomeKind::NotFound,
        };
        assert_eq!(not_found.index(), None);
        let at_scale = QueryOutcome {
            kind: OutcomeKind::AtScale {
                scale: 9,
                index: 4,
                point: None,
            },
        };
        assert_eq!(at_scale.scale(), Some(9));
        assert_eq!(at_scale.index(), Some(4));
        assert!(at_scale.point().is_none());
    }

    #[test]
    #[should_panic]
    fn malformed_t_cell_panics() {
        let _ = decode_t_cell(&Word::from_bytes(vec![9, 9]));
    }
}
