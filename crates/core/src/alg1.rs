//! **Algorithm 1** — the simple k-round scheme (Theorem 2 / §3.1).
//!
//! The algorithm maintains thresholds `l < u` with the invariant
//! `C_l = ∅ ∧ C_u ≠ ∅` (initially `l = 0, u = ⌈log_α d⌉`: `C_0 ⊆ B_1 = ∅`
//! by Assumption 1+2 and `C_top ⊇ B_top = B`). Each *shrinking round* probes
//! the `τ−1` interior grid points `ρ(r) = ⌊l + r(u−l)/τ⌋` in parallel and
//! jumps to the first non-empty one, cutting the gap to `≤ (u−l)/τ + 1`.
//! Once the gap drops below `τ`, the *completion round* probes every
//! remaining scale at once and returns the point stored at the first
//! non-empty `C_{i*}`; by the sandwich `B_{i*−1} ⊆ C_{i*−1} = ∅` and
//! `C_{i*} ⊆ B_{i*+1}`, that point is a `γ = α²`-approximate nearest
//! neighbor.
//!
//! With `τ` chosen so `τ·(τ/2)^{k−1} ≥ ⌈log_α d⌉` ([`choose_tau_alg1`])
//! there are at most `k−1` shrinking rounds, giving `k` rounds and
//! `O(k·(log d)^{1/k})` probes total. The two degenerate-case probes
//! (`x ∈ B?`, `x ∈ N1(B)?`) ride along in the first round, exactly as in
//! the paper.

use anns_cellprobe::{Address, CellProbeScheme, RoundExecutor, Table};

use crate::instance::AnnsInstance;
use crate::outcome::{decode_t_cell, OutcomeKind, QueryOutcome};

/// Smallest grid width `τ ≥ 2` with `τ·(τ/2)^{k−1} ≥ top` — the paper's
/// requirement guaranteeing at most `k−1` shrinking rounds (§3.1 sets
/// `τ = c'·(log d)^{1/k}` for a constant `c' ≥ log_α 4`; solving the actual
/// inequality gives the same `Θ((log d)^{1/k})` growth without slack).
///
/// For `k = 1` returns `top + 1`, so the algorithm is a single
/// (non-adaptive) completion round over all scales — the `O(log d)` 1-round
/// scheme the paper contrasts with LSH.
pub fn choose_tau_alg1(top: u32, k: u32) -> u32 {
    assert!(k >= 1, "at least one round");
    if k == 1 {
        return top + 1;
    }
    let target = f64::from(top.max(1));
    let mut tau = 2u32;
    loop {
        let val = f64::from(tau) * (f64::from(tau) / 2.0).powi(k as i32 - 1);
        if val >= target {
            return tau;
        }
        tau += 1;
    }
}

/// Runs Algorithm 1 for `k` rounds against any instance backend.
///
/// `tau_override` forces a grid width (used by the fully-adaptive baseline,
/// `τ = 2`, and by the A2 τ-sensitivity ablation); `None` uses
/// [`choose_tau_alg1`].
pub fn alg1<I: AnnsInstance>(
    instance: &I,
    query: &I::Query,
    k: u32,
    tau_override: Option<u32>,
    exec: &mut RoundExecutor<'_>,
) -> QueryOutcome {
    let top = instance.top();
    let tau = tau_override.unwrap_or_else(|| choose_tau_alg1(top, k));
    assert!(tau >= 2, "grid width must be at least 2");
    let degen = instance.degen_addresses(query);
    let mut l: u32 = 0;
    let mut u: u32 = top;
    let mut first_round = true;
    // Defensive cap: the gap strictly shrinks every round, so `top + 2`
    // rounds are impossible unless an (error-injected) oracle breaks the
    // invariant; bail out rather than loop.
    let mut rounds_left = top + 2;
    loop {
        let completing = u - l < tau;
        // Scales probed this round.
        let scales: Vec<u32> = if completing {
            (l + 1..=u).collect()
        } else {
            let gap = u64::from(u - l);
            (1..tau)
                .map(|r| l + ((u64::from(r) * gap) / u64::from(tau)) as u32)
                .collect()
        };
        let mut addrs: Vec<Address> = Vec::with_capacity(scales.len() + 2);
        let degen_probes = if first_round {
            if let Some(two) = &degen {
                addrs.extend(two.iter().cloned());
                2
            } else {
                0
            }
        } else {
            0
        };
        addrs.extend(scales.iter().map(|&i| instance.t_address(query, i)));
        let words = exec.round(&addrs);
        if degen_probes == 2 {
            // Degenerate hits take precedence: they are exact / distance-1
            // answers and short-circuit the main search.
            if let Some((index, _)) = decode_t_cell(&words[0]) {
                return QueryOutcome {
                    kind: OutcomeKind::Exact { index },
                };
            }
            if let Some((index, point)) = decode_t_cell(&words[1]) {
                return QueryOutcome {
                    kind: OutcomeKind::NearOne { index, point },
                };
            }
        }
        first_round = false;
        let cells = &words[degen_probes..];
        if completing {
            for (pos, word) in cells.iter().enumerate() {
                if let Some((index, point)) = decode_t_cell(word) {
                    return QueryOutcome {
                        kind: OutcomeKind::AtScale {
                            scale: scales[pos],
                            index,
                            point,
                        },
                    };
                }
            }
            // Possible only when the sketch assumptions failed: C_u read
            // empty although the invariant said otherwise.
            return QueryOutcome {
                kind: OutcomeKind::NotFound,
            };
        }
        // Shrinking round: r* = smallest r with C_ρ(r) ≠ ∅, else τ.
        let r_star = cells
            .iter()
            .position(|w| decode_t_cell(w).is_some())
            .map(|pos| pos as u32 + 1)
            .unwrap_or(tau);
        let gap = u64::from(u - l);
        let rho = |r: u32| l + ((u64::from(r) * gap) / u64::from(tau)) as u32;
        let (new_l, new_u) = (rho(r_star - 1), rho(r_star));
        debug_assert!(new_l < new_u, "grid points must be distinct when gap ≥ τ");
        debug_assert!(new_u - new_l <= (u - l) / tau + 1, "paper's gap bound");
        l = new_l;
        u = new_u;
        rounds_left -= 1;
        if rounds_left == 0 {
            return QueryOutcome {
                kind: OutcomeKind::NotFound,
            };
        }
    }
}

/// [`CellProbeScheme`] adapter for Algorithm 1, so executions share the
/// uniform ledger accounting of `anns-cellprobe`.
pub struct Alg1Scheme<'a, I: AnnsInstance> {
    /// The instance to query.
    pub instance: &'a I,
    /// Round budget `k ≥ 1`.
    pub k: u32,
    /// Optional grid-width override (see [`alg1`]).
    pub tau_override: Option<u32>,
}

impl<I: AnnsInstance> CellProbeScheme for Alg1Scheme<'_, I> {
    type Query = I::Query;
    type Answer = QueryOutcome;

    fn table(&self) -> &dyn Table {
        self.instance.table()
    }

    fn word_bits(&self) -> u64 {
        self.instance.word_bits()
    }

    fn run(&self, query: &Self::Query, exec: &mut RoundExecutor<'_>) -> QueryOutcome {
        alg1(self.instance, query, self.k, self.tau_override, exec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{ErrorModel, SyntheticInstance, SyntheticProfile};
    use anns_cellprobe::execute;

    fn run_k(inst: &SyntheticInstance, k: u32) -> (QueryOutcome, anns_cellprobe::ProbeLedger) {
        let scheme = Alg1Scheme {
            instance: inst,
            k,
            tau_override: None,
        };
        execute(&scheme, &())
    }

    #[test]
    fn finds_the_planted_scale_for_every_k() {
        let top = 40u32;
        for i0 in [2u32, 3, 17, 39, 40] {
            let inst = SyntheticInstance::new(SyntheticProfile::point_mass(top, i0, 20.0), 2.0);
            for k in 1..=10u32 {
                let (outcome, ledger) = run_k(&inst, k);
                assert_eq!(
                    outcome.scale(),
                    Some(i0),
                    "k={k}, i0={i0}: wrong scale ({outcome:?})"
                );
                assert!(
                    ledger.rounds() <= k as usize,
                    "k={k}, i0={i0}: used {} rounds",
                    ledger.rounds()
                );
            }
        }
    }

    #[test]
    fn round_budget_is_respected_at_large_top() {
        // top = 2000 ≈ log_α d for d ≈ 2^1000 at α = √2: far beyond
        // concrete instances — the point of the synthetic backend.
        let top = 2000u32;
        let inst = SyntheticInstance::new(SyntheticProfile::point_mass(top, 747, 64.0), 2.0);
        for k in 1..=14u32 {
            let (outcome, ledger) = run_k(&inst, k);
            assert_eq!(outcome.scale(), Some(747), "k={k}");
            assert!(
                ledger.rounds() <= k as usize,
                "k={k}: rounds {}",
                ledger.rounds()
            );
        }
    }

    #[test]
    fn probe_totals_track_k_times_tau() {
        // Worst-case probes ≤ (k−1)·(τ−1) + (τ−1): each round probes at
        // most τ−1 cells (no degenerate probes in synthetic mode).
        let top = 500u32;
        let inst = SyntheticInstance::new(SyntheticProfile::point_mass(top, 100, 32.0), 2.0);
        for k in 2..=10u32 {
            let tau = choose_tau_alg1(top, k);
            let (_, ledger) = run_k(&inst, k);
            assert!(
                ledger.max_round_probes() <= (tau - 1) as usize,
                "k={k}: round width {} exceeds τ−1 = {}",
                ledger.max_round_probes(),
                tau - 1
            );
            assert!(
                ledger.total_probes() <= (k * (tau - 1)) as usize,
                "k={k}: {} probes",
                ledger.total_probes()
            );
        }
    }

    #[test]
    fn k_equals_one_is_nonadaptive_full_scan_of_scales() {
        let top = 64u32;
        let inst = SyntheticInstance::new(SyntheticProfile::point_mass(top, 9, 16.0), 2.0);
        let (outcome, ledger) = run_k(&inst, 1);
        assert_eq!(outcome.scale(), Some(9));
        assert_eq!(ledger.rounds(), 1, "k=1 must be non-adaptive");
        assert_eq!(ledger.total_probes(), top as usize, "reads scales 1..=top");
    }

    #[test]
    fn tau_override_two_gives_binary_search() {
        // τ = 2 degenerates into adaptive binary search: 1 probe per round,
        // ~log₂(top) rounds — the fully-adaptive O(log log d) regime.
        let top = 1024u32;
        let inst = SyntheticInstance::new(SyntheticProfile::point_mass(top, 100, 16.0), 2.0);
        let scheme = Alg1Scheme {
            instance: &inst,
            k: 30,
            tau_override: Some(2),
        };
        let (outcome, ledger) = execute(&scheme, &());
        assert_eq!(outcome.scale(), Some(100));
        assert_eq!(ledger.max_round_probes(), 1);
        assert!(
            ledger.rounds() <= 12,
            "binary search should need ≈ log₂ 1024 rounds, used {}",
            ledger.rounds()
        );
    }

    #[test]
    fn choose_tau_satisfies_paper_inequality_and_is_minimal() {
        for top in [4u32, 40, 400, 4000] {
            for k in 2..=12u32 {
                let tau = choose_tau_alg1(top, k);
                let val = |t: u32| f64::from(t) * (f64::from(t) / 2.0).powi(k as i32 - 1);
                assert!(val(tau) >= f64::from(top), "top={top}, k={k}");
                if tau > 2 {
                    assert!(
                        val(tau - 1) < f64::from(top),
                        "not minimal: top={top}, k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn tau_shrinks_as_k_grows() {
        let top = 2000u32;
        let mut prev = u32::MAX;
        for k in 1..=16u32 {
            let tau = choose_tau_alg1(top, k);
            assert!(tau <= prev, "τ must be non-increasing in k");
            prev = tau;
        }
        assert_eq!(choose_tau_alg1(top, 1), top + 1);
    }

    #[test]
    fn geometric_profiles_are_also_solved() {
        let inst = SyntheticInstance::new(SyntheticProfile::geometric(200, 23, 0.5, 40.0), 2.0);
        for k in 1..=8u32 {
            let (outcome, _) = run_k(&inst, k);
            assert_eq!(outcome.scale(), Some(23), "k={k}");
        }
    }

    #[test]
    fn heavy_errors_degrade_gracefully_not_catastrophically() {
        // With flip probability 0 the answer is exact; the error path must
        // terminate and return *something* (possibly NotFound) without
        // panicking or looping.
        let profile = SyntheticProfile::point_mass(100, 37, 24.0);
        for flip in [0.0f64, 0.2, 0.8] {
            let inst = SyntheticInstance::with_errors(
                profile.clone(),
                2.0,
                ErrorModel {
                    flip_probability: flip,
                    seed: 5,
                },
            );
            let (outcome, ledger) = run_k(&inst, 4);
            assert!(ledger.rounds() <= 102);
            if flip == 0.0 {
                assert_eq!(outcome.scale(), Some(37));
            }
        }
    }
}
