//! **Algorithm 2** — the sophisticated k-round scheme for large `k`
//! (Theorem 3 / §3.2).
//!
//! Like Algorithm 1 it maintains `l < u` with `C_l = ∅ ∧ C_u ≠ ∅`, but each
//! *shrinking phase* (≤ 2 rounds) makes a stronger dichotomy: it either
//! shrinks the gap by a `τ` factor **or** shrinks `|C_u|` by `n^{-1/2s}`.
//! The first round of a phase probes `T_u[M_u x]` plus `⌈(τ−1)/s⌉`
//! *auxiliary* cells, each answering — in a single word — which of `s`
//! grouped coarse queries `|D_{u,ρ(r)}| > n^{-1/s}·|C_u|` fires first; the
//! optional second round probes one accurate cell `T_{ρ(r*−1)−1}` to decide
//! between CASE 2 (both thresholds move) and CASE 3 (`|C_u|` shrinks).
//! Once `u − l < max(3τ, k)` a completion round finishes as in Algorithm 1.
//!
//! With `s = (1/4 − 1/(2c))·k − 1/4` and `τ` s.t.
//! `(τ/2)^{(k−1)/2−2s} ≥ ⌈log_α d / k⌉` — exponent `k/c` — the phase count
//! is at most `(k−1)/2` and the probe total is
//! `O(k + ((log d)/k)^{c/k})` (paper eq. (4)).

use anns_cellprobe::{Address, CellProbeScheme, RoundExecutor, Table};
use serde::{Deserialize, Serialize};

use crate::alg1::choose_tau_alg1;
use crate::instance::{AnnsInstance, AuxGroupSpec};
use crate::outcome::{decode_aux_cell, decode_t_cell, OutcomeKind, QueryOutcome};

/// Configuration of Algorithm 2.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Alg2Config {
    /// Round budget `k` (the theorem needs `k > 5c²/(c−2)`; smaller `k`
    /// falls back to an Algorithm 1-style grid, documented in `DESIGN.md`).
    pub k: u32,
    /// The constant `c > 2` of Theorem 3.
    pub c: f64,
    /// Optional grid-width override for ablations.
    pub tau_override: Option<u32>,
}

impl Alg2Config {
    /// Standard configuration at a given round budget (`c = 3`).
    pub fn with_k(k: u32) -> Self {
        Alg2Config {
            k,
            c: 3.0,
            tau_override: None,
        }
    }
}

/// The paper's `s = (1/4 − 1/(2c))·k − 1/4`, clamped to `≥ 1` (the theorem
/// regime `k > 5c²/(c−2)` guarantees `s > 1` by itself).
pub fn alg2_s(k: u32, c: f64) -> f64 {
    assert!(c > 2.0, "Theorem 3 requires c > 2");
    ((0.25 - 0.5 / c) * f64::from(k) - 0.25).max(1.0)
}

/// Grid width `τ` satisfying `(τ/2)^{(k−1)/2−2s} ≥ ⌈top/k⌉` — the paper's
/// requirement bounding the gap-shrinking phases by `(k−1)/2 − 2s`.
///
/// The exponent equals `k/c` when `s` is unclamped; below the theorem's
/// validity range (exponent < 1/2) this falls back to Algorithm 1's grid.
pub fn choose_tau_alg2(top: u32, k: u32, c: f64) -> u32 {
    assert!(k >= 2, "Algorithm 2 needs at least two rounds");
    assert!(c > 2.0, "Theorem 3 requires c > 2");
    // The regime test must use the *unclamped* s: below the theorem's
    // validity (s_raw < 1) the exponent bookkeeping is meaningless and the
    // safe grid is Algorithm 1's.
    let s_raw = (0.25 - 0.5 / c) * f64::from(k) - 0.25;
    let exponent = (f64::from(k) - 1.0) / 2.0 - 2.0 * s_raw;
    let target = (f64::from(top) / f64::from(k)).ceil().max(1.0);
    if s_raw >= 1.0 && exponent >= 0.5 {
        let tau = (2.0 * target.powf(1.0 / exponent)).ceil() as u32;
        tau.max(3)
    } else {
        choose_tau_alg1(top, k).max(3)
    }
}

/// Runs Algorithm 2 against any instance backend.
pub fn alg2<I: AnnsInstance>(
    instance: &I,
    query: &I::Query,
    cfg: &Alg2Config,
    exec: &mut RoundExecutor<'_>,
) -> QueryOutcome {
    let top = instance.top();
    let k = cfg.k;
    assert!(k >= 2, "Algorithm 2 needs at least two rounds");
    // Group size: the instance's tables were built for a fixed s (it enters
    // the n^{-1/s} threshold on the table side), so the query side takes it
    // from the instance rather than recomputing from (k, c).
    let s_int = (instance.s().floor() as u32).max(1);
    let tau = cfg
        .tau_override
        .unwrap_or_else(|| choose_tau_alg2(top, k, cfg.c));
    assert!(tau >= 3, "grid width must be at least 3");
    let completion_width = (3 * tau).max(k);
    let degen = instance.degen_addresses(query);
    let mut l: u32 = 0;
    let mut u: u32 = top;
    let mut first_round = true;
    // The gap strictly shrinks every phase; cap defensively for
    // error-injected oracles.
    let mut phases_left = 2 * top + 8;
    loop {
        if u - l < completion_width {
            // Completion round (shared logic with Algorithm 1's final round).
            let scales: Vec<u32> = (l + 1..=u).collect();
            let mut addrs: Vec<Address> = Vec::with_capacity(scales.len() + 2);
            let degen_probes = if first_round {
                degen.as_ref().map_or(0, |two| {
                    addrs.extend(two.iter().cloned());
                    2
                })
            } else {
                0
            };
            addrs.extend(scales.iter().map(|&i| instance.t_address(query, i)));
            let words = exec.round(&addrs);
            if degen_probes == 2 {
                if let Some((index, _)) = decode_t_cell(&words[0]) {
                    return QueryOutcome {
                        kind: OutcomeKind::Exact { index },
                    };
                }
                if let Some((index, point)) = decode_t_cell(&words[1]) {
                    return QueryOutcome {
                        kind: OutcomeKind::NearOne { index, point },
                    };
                }
            }
            for (pos, word) in words[degen_probes..].iter().enumerate() {
                if let Some((index, point)) = decode_t_cell(word) {
                    return QueryOutcome {
                        kind: OutcomeKind::AtScale {
                            scale: scales[pos],
                            index,
                            point,
                        },
                    };
                }
            }
            return QueryOutcome {
                kind: OutcomeKind::NotFound,
            };
        }

        // ---- Shrinking phase, first round ----
        let gap = u64::from(u - l);
        let l_snapshot = l;
        let rho = move |r: u32| l_snapshot + ((u64::from(r) * gap) / u64::from(tau)) as u32;
        // Arrange the τ−1 coarse queries into groups of (at most) s.
        let num_groups = (tau - 1).div_ceil(s_int);
        let mut groups: Vec<AuxGroupSpec> = Vec::with_capacity(num_groups as usize);
        for j in 1..=num_groups {
            let r_start = 1 + (j - 1) * s_int;
            let r_end = (j * s_int).min(tau - 1);
            let indices: Vec<u32> = (r_start..=r_end).map(rho).collect();
            groups.push(AuxGroupSpec {
                u_scale: u,
                lo: indices[0],
                hi: *indices.last().expect("groups are non-empty"),
                indices,
            });
        }
        let mut addrs: Vec<Address> = Vec::with_capacity(groups.len() + 3);
        let degen_probes = if first_round {
            degen.as_ref().map_or(0, |two| {
                addrs.extend(two.iter().cloned());
                2
            })
        } else {
            0
        };
        addrs.push(instance.t_address(query, u)); // T_u[M_u x], per the paper
        addrs.extend(groups.iter().map(|g| instance.aux_address(query, g)));
        let words = exec.round(&addrs);
        if degen_probes == 2 {
            if let Some((index, _)) = decode_t_cell(&words[0]) {
                return QueryOutcome {
                    kind: OutcomeKind::Exact { index },
                };
            }
            if let Some((index, point)) = decode_t_cell(&words[1]) {
                return QueryOutcome {
                    kind: OutcomeKind::NearOne { index, point },
                };
            }
        }
        first_round = false;
        // r* = smallest r ∈ [τ] with |D_{u,ρ(r)}| > n^{-1/s}|C_u|, else τ.
        let aux_words = &words[degen_probes + 1..];
        let mut r_star = tau;
        for (jpos, word) in aux_words.iter().enumerate() {
            if let Some(r_in_group) = decode_aux_cell(word) {
                r_star = jpos as u32 * s_int + r_in_group;
                break;
            }
        }
        debug_assert!((1..=tau).contains(&r_star));

        if r_star == 1 {
            // CASE 1: gap shrinks to ρ(1)+1 − l; no second round.
            u = rho(1) + 1;
        } else {
            // ---- Shrinking phase, second round ----
            let probe_scale = rho(r_star - 1) - 1;
            let word = exec.round(&[instance.t_address(query, probe_scale)]);
            if decode_t_cell(&word[0]).is_none() {
                // CASE 2: C_{ρ(r*−1)−1} = ∅ — raise l (and trim u if r* < τ).
                l = probe_scale;
                if r_star < tau {
                    u = rho(r_star) + 1;
                }
            } else {
                // CASE 3: C_{ρ(r*−1)−1} ≠ ∅ — |C_u| shrinks by ≈ n^{-1/2s}.
                u = probe_scale;
            }
        }
        if u <= l {
            // Unreachable with a consistent oracle (the paper's invariant
            // argument); reachable only under injected errors.
            return QueryOutcome {
                kind: OutcomeKind::NotFound,
            };
        }
        phases_left -= 1;
        if phases_left == 0 {
            return QueryOutcome {
                kind: OutcomeKind::NotFound,
            };
        }
    }
}

/// [`CellProbeScheme`] adapter for Algorithm 2.
pub struct Alg2Scheme<'a, I: AnnsInstance> {
    /// The instance to query.
    pub instance: &'a I,
    /// Algorithm configuration.
    pub config: Alg2Config,
}

impl<I: AnnsInstance> CellProbeScheme for Alg2Scheme<'_, I> {
    type Query = I::Query;
    type Answer = QueryOutcome;

    fn table(&self) -> &dyn Table {
        self.instance.table()
    }

    fn word_bits(&self) -> u64 {
        self.instance.word_bits()
    }

    fn run(&self, query: &Self::Query, exec: &mut RoundExecutor<'_>) -> QueryOutcome {
        alg2(self.instance, query, &self.config, exec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{SyntheticInstance, SyntheticProfile};
    use anns_cellprobe::execute;

    fn instance_for(profile: SyntheticProfile, k: u32, c: f64) -> SyntheticInstance {
        SyntheticInstance::new(profile, alg2_s(k, c))
    }

    fn run(
        inst: &SyntheticInstance,
        cfg: Alg2Config,
    ) -> (QueryOutcome, anns_cellprobe::ProbeLedger) {
        let scheme = Alg2Scheme {
            instance: inst,
            config: cfg,
        };
        execute(&scheme, &())
    }

    #[test]
    fn finds_the_planted_scale_point_mass() {
        let top = 300u32;
        for i0 in [2u32, 50, 177, 300] {
            for k in [46u32, 60, 100] {
                let cfg = Alg2Config::with_k(k);
                let inst = instance_for(SyntheticProfile::point_mass(top, i0, 40.0), k, cfg.c);
                let (outcome, _) = run(&inst, cfg);
                assert_eq!(outcome.scale(), Some(i0), "k={k}, i0={i0}");
            }
        }
    }

    #[test]
    fn finds_the_planted_scale_geometric() {
        // Gradually filling balls exercise CASE 3 (|C_u| shrinking).
        let top = 400u32;
        let k = 60u32;
        let cfg = Alg2Config::with_k(k);
        let profile = SyntheticProfile::geometric(top, 10, 0.5, 40.0);
        let inst = SyntheticInstance::new(profile, 4.0);
        let (outcome, ledger) = run(&inst, cfg);
        assert_eq!(outcome.scale(), Some(10));
        assert!(ledger.rounds() >= 2);
    }

    #[test]
    fn round_structure_phases_of_at_most_two_rounds() {
        // All rounds except the completion have at most 1 + ⌈(τ−1)/s⌉
        // probes (first round of a phase) or exactly 1 probe (second round).
        let top = 2000u32;
        let k = 80u32;
        let cfg = Alg2Config::with_k(k);
        let s = alg2_s(k, cfg.c);
        let s_int = s.floor() as u32;
        let tau = choose_tau_alg2(top, k, cfg.c);
        let inst = SyntheticInstance::new(SyntheticProfile::point_mass(top, 321, 64.0), s);
        let (outcome, ledger) = run(&inst, cfg);
        assert_eq!(outcome.scale(), Some(321));
        let completion_width = (3 * tau).max(k) as usize;
        let phase_round_width = 1 + (tau - 1).div_ceil(s_int) as usize;
        for (idx, &probes) in ledger.per_round.iter().enumerate() {
            let last = idx + 1 == ledger.per_round.len();
            if last {
                assert!(probes <= completion_width, "completion width {probes}");
            } else {
                assert!(
                    probes == 1 || probes <= phase_round_width,
                    "round {idx} has {probes} probes (limit {phase_round_width})"
                );
            }
        }
    }

    #[test]
    fn round_budget_respected_in_theorem_regime() {
        // c = 3 ⇒ theorem regime k > 5·9/1 = 45. At k ≥ 46 the phase budget
        // (k−1)/2 plus completion must hold.
        let top = 1000u32;
        for k in [46u32, 64, 100, 200] {
            let cfg = Alg2Config::with_k(k);
            let inst = instance_for(SyntheticProfile::point_mass(top, 123, 40.0), k, cfg.c);
            let (outcome, ledger) = run(&inst, cfg);
            assert_eq!(outcome.scale(), Some(123), "k={k}");
            assert!(
                ledger.rounds() <= k as usize,
                "k={k}: used {} rounds",
                ledger.rounds()
            );
        }
    }

    #[test]
    fn probe_total_matches_paper_formula_shape() {
        // Paper eq. (4): probes ≤ (k−1)/2·(⌈(τ−1)/s⌉+2) + max(3τ, k).
        let top = 5000u32;
        for k in [50u32, 80, 140] {
            let cfg = Alg2Config::with_k(k);
            let s = alg2_s(k, cfg.c);
            let s_int = s.floor() as u32;
            let tau = choose_tau_alg2(top, k, cfg.c);
            let inst = SyntheticInstance::new(SyntheticProfile::point_mass(top, 999, 64.0), s);
            let (_, ledger) = run(&inst, cfg);
            let bound = ((k - 1) / 2 + 1) as usize * ((tau - 1).div_ceil(s_int) as usize + 2)
                + (3 * tau).max(k) as usize;
            assert!(
                ledger.total_probes() <= bound,
                "k={k}: {} probes > bound {bound}",
                ledger.total_probes()
            );
        }
    }

    #[test]
    fn small_k_fallback_still_correct() {
        // Below the theorem regime the τ fallback keeps the algorithm
        // correct (this is the documented practical extension).
        let top = 120u32;
        for k in [2u32, 4, 8, 16] {
            let cfg = Alg2Config::with_k(k);
            let inst = instance_for(SyntheticProfile::point_mass(top, 77, 24.0), k, cfg.c);
            let (outcome, _) = run(&inst, cfg);
            assert_eq!(outcome.scale(), Some(77), "k={k}");
        }
    }

    #[test]
    fn s_and_tau_formulas() {
        // s grows linearly in k; τ shrinks as k grows (for fixed top).
        assert!((alg2_s(46, 3.0) - (0.25 - 1.0 / 6.0) * 46.0 + 0.25).abs() < 1e-9);
        assert_eq!(alg2_s(2, 3.0), 1.0, "clamped below theorem regime");
        let top = 100_000u32;
        let mut prev = u32::MAX;
        for k in [46u32, 60, 90, 140, 220] {
            let tau = choose_tau_alg2(top, k, 3.0);
            assert!(tau <= prev, "τ not non-increasing at k={k}");
            prev = tau;
        }
    }

    #[test]
    fn approaches_one_probe_per_round_at_large_k() {
        // The phase-transition claim: for large enough
        // k = Θ(log log d / log log log d) the total probes are O(k), i.e.
        // amortized O(1) per round of the budget — each parallel probe could
        // be serialized into its own round. (The used-rounds count is much
        // smaller than k here because the synthetic profile converges fast;
        // the claim is about t/k, the worst-case budget ratio.)
        let top = 4000u32; // log_α d ≈ 4000 → "d ≈ 2^2000"
        let k = 300u32;
        let cfg = Alg2Config::with_k(k);
        let inst = instance_for(SyntheticProfile::point_mass(top, 1234, 64.0), k, cfg.c);
        let (outcome, ledger) = run(&inst, cfg);
        assert_eq!(outcome.scale(), Some(1234));
        let ratio = ledger.total_probes() as f64 / f64::from(k);
        assert!(ratio <= 2.0, "t/k = {ratio}");
        assert!(ledger.rounds() <= k as usize);
    }
}
