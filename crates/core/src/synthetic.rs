//! The synthetic (asymptotic-scale) instance backend — substitution S4.
//!
//! The interesting regimes of the paper's bounds live at dimensions no
//! concrete instance can touch: `k = Θ(log log d / log log log d)` only
//! varies meaningfully once `log_α d` is in the thousands, i.e.
//! `d ≈ 2^{1000+}`. What the theorems actually constrain — probe counts and
//! round counts — depends on the instance only through the *emptiness
//! pattern of the balls* `B_i` (and, for Algorithm 2, the relative sizes
//! driving the `|D_{u,j}| > n^{-1/s}|C_u|` comparisons).
//!
//! A [`SyntheticInstance`] is exactly that information: a [`SyntheticProfile`]
//! of `log₂|B_i|` per scale. Its table oracle answers the same cell queries
//! the concrete lazy tables answer, with the idealized semantics
//! `C_i = B_i` (the Lemma 8 sandwich taken as exact) and
//! `|D_{u,j}| ≈ |B_j|` (Assumption 3 taken as exact, which is precisely the
//! two directions the algorithm's correctness argument uses). An optional
//! [`ErrorModel`] flips emptiness answers with a per-cell deterministic
//! probability, to measure the schemes' robustness when Lemma 8's events
//! fail — deterministic per cell, because the paper's tables are fixed
//! functions of the database and randomness: re-probing a cell must return
//! the same word.

use anns_cellprobe::{Address, SpaceModel, Table, Word};

use crate::instance::{table_ids, AnnsInstance, AuxGroupSpec};
use crate::outcome::{encode_aux_cell, encode_t_cell_indexed};

/// Ball-size profile: `log₂|B_i|` for `i = 0..=top`.
#[derive(Clone, Debug)]
pub struct SyntheticProfile {
    /// Top scale `⌈log_α d⌉`. For a synthetic instance standing in for
    /// dimension `d` at `α = √2` this is `≈ 2·log₂ d`.
    pub top: u32,
    /// `log₂ n` — the database size (can exceed anything storable).
    pub n_log2: f64,
    /// `log₂|B_i|` per scale; `f64::NEG_INFINITY` marks an empty ball.
    pub sizes_log2: Vec<f64>,
}

impl SyntheticProfile {
    /// The uniform-data shape: every ball below `i0` empty, everything at
    /// `i0` and above full (`|B_i| = n`). This is what a uniform random
    /// database looks like around a uniform query (all points concentrate
    /// at one distance scale), and it is the worst case for the multi-way
    /// search (no early mass to exploit).
    ///
    /// # Panics
    /// Panics unless `2 ≤ i0 ≤ top` (`i0 ≥ 2` is Assumption 1: the
    /// degenerate cases `B_0, B_1 ≠ ∅` are handled separately).
    pub fn point_mass(top: u32, i0: u32, n_log2: f64) -> Self {
        assert!(top >= 2, "need at least three scales");
        assert!((2..=top).contains(&i0), "planted scale out of range");
        let sizes_log2 = (0..=top)
            .map(|i| if i < i0 { f64::NEG_INFINITY } else { n_log2 })
            .collect();
        SyntheticProfile {
            top,
            n_log2,
            sizes_log2,
        }
    }

    /// A geometric-growth shape: `log₂|B_i| = min((i − i0 + 1)·step, log₂ n)`
    /// for `i ≥ i0` — clustered-like data where balls fill gradually. This
    /// populates the `|C_u|`-shrinking branch (CASE 3) of Algorithm 2.
    pub fn geometric(top: u32, i0: u32, step_log2: f64, n_log2: f64) -> Self {
        assert!(top >= 2);
        assert!((2..=top).contains(&i0), "planted scale out of range");
        assert!(step_log2 > 0.0);
        let sizes_log2 = (0..=top)
            .map(|i| {
                if i < i0 {
                    f64::NEG_INFINITY
                } else {
                    (f64::from(i - i0) + 1.0) * step_log2
                }
                .min(n_log2)
            })
            .collect();
        SyntheticProfile {
            top,
            n_log2,
            sizes_log2,
        }
    }

    /// Smallest non-empty scale, if any.
    pub fn first_nonempty(&self) -> Option<u32> {
        self.sizes_log2
            .iter()
            .position(|&s| s > f64::NEG_INFINITY)
            .map(|i| i as u32)
    }

    /// `log₂|B_i|`.
    pub fn size_log2(&self, i: u32) -> f64 {
        self.sizes_log2[i as usize]
    }

    /// Validates monotonicity and shape.
    fn validate(&self) {
        assert_eq!(self.sizes_log2.len(), self.top as usize + 1);
        for w in self.sizes_log2.windows(2) {
            assert!(w[0] <= w[1], "ball sizes must be monotone in the scale");
        }
        assert!(
            self.sizes_log2[self.top as usize] > f64::NEG_INFINITY,
            "B_top is the whole database and cannot be empty"
        );
        assert!(
            self.sizes_log2[0] == f64::NEG_INFINITY && self.sizes_log2[1] == f64::NEG_INFINITY,
            "Assumption 1 requires B_0 = B_1 = ∅ (degenerate cases handled separately)"
        );
    }
}

/// Deterministic per-cell error injection for robustness experiments.
#[derive(Clone, Copy, Debug)]
pub struct ErrorModel {
    /// Probability that a T-cell's emptiness answer is flipped.
    pub flip_probability: f64,
    /// Seed of the deterministic per-cell coin.
    pub seed: u64,
}

impl ErrorModel {
    /// Deterministic coin for a cell: same cell, same outcome, always.
    fn flips(&self, table: u32, key: &[u8]) -> bool {
        deterministic_cell_unit(self.seed, table, key) < self.flip_probability
    }
}

/// Deterministic per-cell value in `[0, 1)` — the shared coin behind both
/// backends' error injection. The table is a fixed function of the database
/// and randomness, so injected faults must be too.
pub(crate) fn deterministic_cell_unit(seed: u64, table: u32, key: &[u8]) -> f64 {
    let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
    h = splitmix64(h ^ u64::from(table));
    for &b in key {
        h = splitmix64(h ^ u64::from(b));
    }
    (h >> 11) as f64 / (1u64 << 53) as f64
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Table oracle answering from the profile.
struct SyntheticTable {
    profile: SyntheticProfile,
    s: f64,
    error: Option<ErrorModel>,
}

impl SyntheticTable {
    fn ball_empty(&self, i: u32) -> bool {
        self.profile.size_log2(i) == f64::NEG_INFINITY
    }
}

impl Table for SyntheticTable {
    fn read(&self, addr: &Address) -> Word {
        if addr.table >= table_ids::AUX_BASE {
            // Auxiliary cell: key carries the covered indices; answer the
            // smallest in-group q with |D_{u,idx_q}| > n^{-1/s}|C_u|,
            // modeled as log₂|B_idx| > log₂|B_u| − (log₂ n)/s.
            let u = addr.table - table_ids::AUX_BASE;
            let indices = decode_index_list(&addr.key);
            let cu_log2 = self.profile.size_log2(u);
            let threshold = cu_log2 - self.profile.n_log2 / self.s;
            let hit = indices
                .iter()
                .position(|&idx| self.profile.size_log2(idx) > threshold)
                .map(|pos| pos as u32 + 1);
            return encode_aux_cell(hit);
        }
        if addr.table >= table_ids::T_BASE {
            let i = addr.table - table_ids::T_BASE;
            let mut empty = self.ball_empty(i);
            if let Some(err) = &self.error {
                if err.flips(addr.table, &addr.key) {
                    empty = !empty;
                }
            }
            return if empty {
                encode_t_cell_indexed(None)
            } else {
                encode_t_cell_indexed(Some(u64::from(i)))
            };
        }
        // Degenerate tables are not modeled (Assumption 1 holds by
        // construction); reading them is a backend-usage bug.
        panic!("synthetic instance has no degenerate tables");
    }

    fn space_model(&self) -> SpaceModel {
        // Notional: the paper's structure would hold (top+1) main tables of
        // n^{c₁} cells plus polynomially many auxiliary cells. Report the
        // main-table count with a nominal c₁ = 2 exponent; the space
        // experiments (E9) use the concrete backend where the accounting is
        // real.
        SpaceModel::from_cells(
            ((self.profile.top + 1) as f64).log2() + 2.0 * self.profile.n_log2,
            128,
        )
    }
}

/// Encodes a scale-index list into address-key bytes.
pub(crate) fn encode_index_list(indices: &[u32]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(4 + indices.len() * 4);
    bytes.extend_from_slice(&(indices.len() as u32).to_le_bytes());
    for &i in indices {
        bytes.extend_from_slice(&i.to_le_bytes());
    }
    bytes
}

/// Decodes a scale-index list from address-key bytes.
pub(crate) fn decode_index_list(bytes: &[u8]) -> Vec<u32> {
    let count = u32::from_le_bytes(bytes[0..4].try_into().expect("index count")) as usize;
    let mut out = Vec::with_capacity(count);
    for c in bytes[4..4 + count * 4].chunks_exact(4) {
        out.push(u32::from_le_bytes(c.try_into().expect("index")));
    }
    out
}

/// A synthetic ANNS instance: profile + oracle, implementing
/// [`AnnsInstance`] with `Query = ()`.
pub struct SyntheticInstance {
    profile: SyntheticProfile,
    s: f64,
    table: SyntheticTable,
}

impl SyntheticInstance {
    /// Builds an instance from a profile. `s` is Algorithm 2's coarseness
    /// parameter (irrelevant to Algorithm 1 queries).
    ///
    /// # Panics
    /// Panics if the profile is malformed (non-monotone, empty `B_top`,
    /// populated `B_0`/`B_1`).
    pub fn new(profile: SyntheticProfile, s: f64) -> Self {
        profile.validate();
        assert!(
            profile.top < (1 << 28),
            "scale count exceeds the table-id layout (see instance::table_ids)"
        );
        assert!(s >= 1.0, "s must be at least 1");
        SyntheticInstance {
            table: SyntheticTable {
                profile: profile.clone(),
                s,
                error: None,
            },
            profile,
            s,
        }
    }

    /// Same, with error injection on the T-cells.
    pub fn with_errors(profile: SyntheticProfile, s: f64, error: ErrorModel) -> Self {
        profile.validate();
        assert!(s >= 1.0);
        assert!((0.0..=1.0).contains(&error.flip_probability));
        SyntheticInstance {
            table: SyntheticTable {
                profile: profile.clone(),
                s,
                error: Some(error),
            },
            profile,
            s,
        }
    }

    /// The profile.
    pub fn profile(&self) -> &SyntheticProfile {
        &self.profile
    }

    /// Ground truth: the scale a correct main-case answer must identify —
    /// the smallest non-empty scale (with `C_i = B_i` exactly, the paper's
    /// invariant pins `i*` to exactly this index).
    pub fn expected_scale(&self) -> u32 {
        self.profile
            .first_nonempty()
            .expect("profile has a non-empty top ball")
    }
}

impl AnnsInstance for SyntheticInstance {
    type Query = ();

    fn top(&self) -> u32 {
        self.profile.top
    }

    fn table(&self) -> &dyn Table {
        &self.table
    }

    fn word_bits(&self) -> u64 {
        128
    }

    fn s(&self) -> f64 {
        self.s
    }

    fn degen_addresses(&self, _query: &()) -> Option<[Address; 2]> {
        None
    }

    fn t_address(&self, _query: &(), i: u32) -> Address {
        debug_assert!(i <= self.profile.top);
        Address::new(table_ids::T_BASE + i, Vec::new())
    }

    fn aux_address(&self, _query: &(), group: &AuxGroupSpec) -> Address {
        Address::new(
            table_ids::AUX_BASE + group.u_scale,
            encode_index_list(&group.indices),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::{decode_aux_cell, decode_t_cell};

    #[test]
    fn point_mass_profile_shape() {
        let p = SyntheticProfile::point_mass(20, 7, 30.0);
        assert_eq!(p.first_nonempty(), Some(7));
        for i in 0..7 {
            assert_eq!(p.size_log2(i), f64::NEG_INFINITY);
        }
        for i in 7..=20 {
            assert_eq!(p.size_log2(i), 30.0);
        }
    }

    #[test]
    fn geometric_profile_is_monotone_and_capped() {
        let p = SyntheticProfile::geometric(30, 5, 2.0, 20.0);
        assert_eq!(p.first_nonempty(), Some(5));
        for w in p.sizes_log2.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(p.size_log2(30), 20.0, "capped at n");
        assert_eq!(p.size_log2(5), 2.0);
    }

    #[test]
    #[should_panic]
    fn profile_rejects_planted_scale_zero() {
        // i0 = 0 violates Assumption 1.
        let _ = SyntheticProfile::point_mass(10, 0, 5.0);
    }

    #[test]
    fn t_cells_reflect_emptiness() {
        let inst = SyntheticInstance::new(SyntheticProfile::point_mass(12, 4, 10.0), 2.0);
        for i in 0..=12u32 {
            let addr = inst.t_address(&(), i);
            let word = inst.table().read(&addr);
            let content = decode_t_cell(&word);
            assert_eq!(content.is_some(), i >= 4, "scale {i}");
            if let Some((idx, point)) = content {
                assert_eq!(idx, u64::from(i));
                assert!(point.is_none());
            }
        }
    }

    #[test]
    fn aux_cells_find_smallest_large_d() {
        // Geometric profile: |B_i| = 2^{2(i-4)}·4 for i ≥ 5... sizes grow by
        // 2 bits per scale; |C_u| at u=20 is capped at n. Threshold is
        // n^{-1/s}|C_u| → log2 terms: size(u) − n_log2/s.
        let profile = SyntheticProfile::geometric(20, 5, 2.0, 24.0);
        let inst = SyntheticInstance::new(profile.clone(), 2.0);
        let u = 20u32;
        let threshold = profile.size_log2(u) - 24.0 / 2.0; // 24 - 12 = 12
        let indices: Vec<u32> = (5..=15).collect();
        let group = AuxGroupSpec {
            u_scale: u,
            lo: 5,
            hi: 15,
            indices: indices.clone(),
        };
        let word = inst.table().read(&inst.aux_address(&(), &group));
        let got = decode_aux_cell(&word);
        let expect = indices
            .iter()
            .position(|&i| profile.size_log2(i) > threshold)
            .map(|p| p as u32 + 1);
        assert_eq!(got, expect);
        assert!(got.is_some(), "some scale must exceed the threshold");
    }

    #[test]
    fn aux_cell_sentinel_when_no_scale_is_large() {
        let profile = SyntheticProfile::point_mass(20, 18, 24.0);
        let inst = SyntheticInstance::new(profile, 2.0);
        let group = AuxGroupSpec {
            u_scale: 20,
            lo: 2,
            hi: 10,
            indices: (2..=10).collect(),
        };
        let word = inst.table().read(&inst.aux_address(&(), &group));
        assert_eq!(decode_aux_cell(&word), None, "all balls empty below 18");
    }

    #[test]
    fn error_injection_is_deterministic_per_cell() {
        let profile = SyntheticProfile::point_mass(16, 8, 12.0);
        let inst = SyntheticInstance::with_errors(
            profile,
            2.0,
            ErrorModel {
                flip_probability: 0.5,
                seed: 99,
            },
        );
        for i in 0..=16u32 {
            let addr = inst.t_address(&(), i);
            let w1 = inst.table().read(&addr);
            let w2 = inst.table().read(&addr);
            assert_eq!(w1, w2, "cell {i} must be a fixed function");
        }
    }

    #[test]
    fn error_injection_rate_is_roughly_right() {
        // Over many scales, ~half the cells flip at p = 0.5.
        let top = 400u32;
        let profile = SyntheticProfile::point_mass(top, 200, 12.0);
        let clean = SyntheticInstance::new(profile.clone(), 2.0);
        let noisy = SyntheticInstance::with_errors(
            profile,
            2.0,
            ErrorModel {
                flip_probability: 0.5,
                seed: 7,
            },
        );
        let mut flips = 0;
        for i in 0..=top {
            let a = clean.table().read(&clean.t_address(&(), i));
            let b = noisy.table().read(&noisy.t_address(&(), i));
            if decode_t_cell(&a).is_some() != decode_t_cell(&b).is_some() {
                flips += 1;
            }
        }
        assert!(
            (100..=300).contains(&flips),
            "flip count {flips} wildly off p=0.5"
        );
    }

    #[test]
    fn index_list_codec_roundtrip() {
        for list in [vec![], vec![5u32], vec![1, 2, 3, 1000, u32::MAX]] {
            assert_eq!(decode_index_list(&encode_index_list(&list)), list);
        }
    }

    #[test]
    fn expected_scale_matches_first_nonempty() {
        let inst = SyntheticInstance::new(SyntheticProfile::point_mass(40, 13, 20.0), 2.0);
        assert_eq!(inst.expected_scale(), 13);
    }
}
