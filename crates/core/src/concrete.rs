//! The concrete (real-data) instance backend: [`AnnIndex`].
//!
//! This realizes the paper's data structure over an actual database:
//!
//! * the main tables `T_i` (§3.1 "Table construction") — cell `T_i[j]`
//!   holds a database point `z` with `dist(j, M_i z) ≤ threshold_i`, or
//!   `EMPTY`;
//! * the auxiliary tables `T̃_{u,·}` (§3.2) answering grouped
//!   `|D_{u,ρ(r)}| > n^{-1/s}·|C_u|` comparisons in one word;
//! * the two degenerate-case structures (§3.1): exact membership `x ∈ B`
//!   and membership in the 1-neighborhood `N1(B)`, each answerable with one
//!   probe.
//!
//! Per substitution S1 (`DESIGN.md`): the paper materializes `n^{c₁}` cells
//! per table; here every cell's content is computed on demand from the
//! stored database sketches, as the *same deterministic function of
//! (database, randomness, address)* that the paper's preprocessing would
//! tabulate. A probe reveals exactly the cell's content and nothing else,
//! so probe/round accounting and correctness are unaffected; only
//! preprocessing cost moves from table-fill time to probe time.

use std::collections::HashMap;
use std::sync::Arc;

use anns_cellprobe::{execute_with, Address, ExecOptions, ProbeLedger, SpaceModel, Table, Word};
use anns_hamming::{Dataset, Point};
use anns_sketch::{DbSketches, Sketch, SketchFamily, SketchParams};

use crate::alg1::Alg1Scheme;
use crate::alg2::{Alg2Config, Alg2Scheme};
use crate::instance::{table_ids, AnnsInstance, AuxGroupSpec};
use crate::lambda::{lambda_scale, LambdaAnswer, LambdaScheme};
use crate::outcome::{encode_aux_cell, encode_t_cell, QueryOutcome};

/// Deterministic erasure injection on the main tables: a non-empty `T_i`
/// cell reads `EMPTY` with the given probability (per cell, fixed once —
/// the table stays a function of database + randomness). Models the
/// lower-violation direction of a Lemma 8 failure (`C_i` losing members)
/// for robustness experiments; degenerate-case and auxiliary cells are
/// untouched.
#[derive(Clone, Copy, Debug, serde::Serialize, serde::Deserialize)]
pub struct ErasureModel {
    /// Per-cell erasure probability.
    pub probability: f64,
    /// Seed of the deterministic per-cell coin.
    pub seed: u64,
}

/// Build-time options.
#[derive(Clone, Copy, Debug)]
pub struct BuildOptions {
    /// Worker threads for sketching the database.
    pub threads: usize,
    /// Optional fault injection on the main tables.
    pub erasures: Option<ErasureModel>,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            threads: 4,
            erasures: None,
        }
    }
}

/// Shared immutable state between the index (query side) and its table
/// oracle (database side). In the public-coin model both sides legitimately
/// hold the sketch family; only the oracle holds the database.
struct Inner {
    dataset: Dataset,
    family: SketchFamily,
    db: DbSketches,
    /// Exact-membership structure (degenerate case 1), also the backbone of
    /// the `N1(B)` oracle (degenerate case 2: d hash lookups per probe).
    exact: HashMap<Point, usize>,
    /// Optional deterministic fault injection on `T_i` cells.
    erasures: Option<ErasureModel>,
}

/// The lazy table oracle over the index's shared state.
pub struct ConcreteTables {
    inner: Arc<Inner>,
}

/// Encodes a point as an address key (degenerate-case probes).
fn point_key(p: &Point) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(4 + p.limbs().len() * 8);
    bytes.extend_from_slice(&p.dim().to_le_bytes());
    for limb in p.limbs() {
        bytes.extend_from_slice(&limb.to_le_bytes());
    }
    bytes
}

/// Decodes a point from an address key.
fn decode_point_key(bytes: &[u8]) -> Point {
    let dim = u32::from_le_bytes(bytes[0..4].try_into().expect("point dim"));
    let n_limbs = dim.div_ceil(64) as usize;
    let mut limbs = Vec::with_capacity(n_limbs);
    for chunk in bytes[4..4 + n_limbs * 8].chunks_exact(8) {
        limbs.push(u64::from_le_bytes(chunk.try_into().expect("point limb")));
    }
    Point::from_limbs(dim, limbs)
}

/// Decodes a sketch from raw limb bytes given its bit width.
fn sketch_from_bytes(bytes: &[u8], bits: u32) -> Sketch {
    let n_limbs = bits.div_ceil(64) as usize;
    let mut limbs = Vec::with_capacity(n_limbs);
    for chunk in bytes[..n_limbs * 8].chunks_exact(8) {
        limbs.push(u64::from_le_bytes(chunk.try_into().expect("sketch limb")));
    }
    Sketch::from_point(Point::from_limbs(bits, limbs))
}

/// Auxiliary-cell address payload: the paper's `⟨l, u, w₀, w₁ … w_{w₀}⟩`
/// plus the `M_u x` sketch that names the table `T̃_{u, M_u x}` (folded into
/// the key — same information, same polynomial address space) and the
/// explicit covered indices (see `AuxGroupSpec`).
struct AuxKey {
    m_sketch: Sketch,
    indices: Vec<u32>,
    n_sketches: Vec<Sketch>,
}

fn encode_aux_key(
    lo: u32,
    hi: u32,
    m_sketch: &Sketch,
    indices: &[u32],
    n_sketches: &[Sketch],
) -> Vec<u8> {
    debug_assert_eq!(indices.len(), n_sketches.len());
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&lo.to_le_bytes());
    bytes.extend_from_slice(&hi.to_le_bytes());
    bytes.extend_from_slice(&(indices.len() as u32).to_le_bytes());
    for &i in indices {
        bytes.extend_from_slice(&i.to_le_bytes());
    }
    bytes.extend_from_slice(&m_sketch.address_bytes());
    for sk in n_sketches {
        bytes.extend_from_slice(&sk.address_bytes());
    }
    bytes
}

fn decode_aux_key(bytes: &[u8], m_bits: u32, n_bits: u32) -> AuxKey {
    let count = u32::from_le_bytes(bytes[8..12].try_into().expect("aux count")) as usize;
    let mut offset = 12;
    let mut indices = Vec::with_capacity(count);
    for _ in 0..count {
        indices.push(u32::from_le_bytes(
            bytes[offset..offset + 4].try_into().expect("aux index"),
        ));
        offset += 4;
    }
    let m_len = m_bits.div_ceil(64) as usize * 8;
    let m_sketch = sketch_from_bytes(&bytes[offset..offset + m_len], m_bits);
    offset += m_len;
    let n_len = n_bits.div_ceil(64) as usize * 8;
    let mut n_sketches = Vec::with_capacity(count);
    for _ in 0..count {
        n_sketches.push(sketch_from_bytes(&bytes[offset..offset + n_len], n_bits));
        offset += n_len;
    }
    AuxKey {
        m_sketch,
        indices,
        n_sketches,
    }
}

impl Table for ConcreteTables {
    fn read(&self, addr: &Address) -> Word {
        let inner = &*self.inner;
        match addr.table {
            table_ids::DEGEN_EXACT => {
                let x = decode_point_key(&addr.key);
                match inner.exact.get(&x) {
                    Some(&idx) => encode_t_cell(Some((idx as u64, inner.dataset.point(idx)))),
                    None => encode_t_cell(None),
                }
            }
            table_ids::DEGEN_N1 => {
                let x = decode_point_key(&addr.key);
                if let Some(&idx) = inner.exact.get(&x) {
                    return encode_t_cell(Some((idx as u64, inner.dataset.point(idx))));
                }
                for i in 0..x.dim() {
                    if let Some(&idx) = inner.exact.get(&x.flipped(i)) {
                        return encode_t_cell(Some((idx as u64, inner.dataset.point(idx))));
                    }
                }
                encode_t_cell(None)
            }
            t if t >= table_ids::AUX_BASE => {
                let u = t - table_ids::AUX_BASE;
                let key = decode_aux_key(&addr.key, inner.family.m_rows(), inner.family.n_rows());
                let c_members: Vec<usize> = inner
                    .db
                    .c_members(&inner.family, u, &key.m_sketch)
                    .collect();
                let threshold = c_members.len() as f64
                    * (inner.dataset.len() as f64).powf(-1.0 / inner.family.params().s);
                for (pos, (&scale, n_sketch)) in
                    key.indices.iter().zip(key.n_sketches.iter()).enumerate()
                {
                    let d_count = c_members
                        .iter()
                        .filter(|&&z| {
                            inner
                                .family
                                .n_passes(scale, n_sketch, inner.db.n_sketch(scale, z))
                        })
                        .count();
                    if d_count as f64 > threshold {
                        return encode_aux_cell(Some(pos as u32 + 1));
                    }
                }
                encode_aux_cell(None)
            }
            t if t >= table_ids::T_BASE => {
                let i = t - table_ids::T_BASE;
                if let Some(model) = &inner.erasures {
                    let coin = crate::synthetic::deterministic_cell_unit(
                        model.seed, addr.table, &addr.key,
                    );
                    if coin < model.probability {
                        return encode_t_cell(None);
                    }
                }
                let sketch = sketch_from_bytes(&addr.key, inner.family.m_rows());
                match inner.db.c_first(&inner.family, i, &sketch) {
                    Some(z) => encode_t_cell(Some((z as u64, inner.dataset.point(z)))),
                    None => encode_t_cell(None),
                }
            }
            other => panic!("unknown table id {other}"),
        }
    }

    fn space_model(&self) -> SpaceModel {
        let inner = &*self.inner;
        let top = inner.family.top() as f64;
        let n = inner.dataset.len() as f64;
        let d = f64::from(inner.dataset.dim());
        let w = self.inner_word_bits();
        // Main tables: (top+1) tables of 2^{c₁ log n} = 2^{m_rows} cells.
        let main = SpaceModel::from_cells((top + 1.0).log2() + f64::from(inner.family.m_rows()), w);
        // Auxiliary tables: (top+1)·2^{c₁ log n} tables, each with
        // (log_α d)^s · 2^{c₂ log n} cells (paper §3.2); address entropy =
        // m_rows + s·(n_rows + log top) + O(log top).
        let s_int = inner.family.params().s.floor().max(1.0);
        let aux = SpaceModel::from_cells(
            (top + 1.0).log2()
                + f64::from(inner.family.m_rows())
                + s_int * (f64::from(inner.family.n_rows()) + (top + 2.0).log2())
                + 2.0 * (top + 2.0).log2(),
            w,
        );
        // Degenerate structures: perfect hashing of n points (O(n²) cells)
        // and of the (d+1)·n points of N1(B) (quadratic again).
        let degen = SpaceModel::from_cells(2.0 * n.log2(), w)
            .combine(SpaceModel::from_cells(2.0 * ((d + 1.0) * n).log2(), w));
        main.combine(aux).combine(degen)
    }
}

impl ConcreteTables {
    fn inner_word_bits(&self) -> u64 {
        word_bits_for_dim(self.inner.dataset.dim())
    }
}

/// Declared word size for dimension `d`: a T-cell stores a tag, an index,
/// and the point bits — `O(d)` as the paper requires.
fn word_bits_for_dim(d: u32) -> u64 {
    8 * (13 + u64::from(d.div_ceil(64)) * 8)
}

/// Serializable index state (see [`AnnIndex::snapshot`]).
#[derive(serde::Serialize, serde::Deserialize)]
pub struct IndexSnapshot {
    dataset: Dataset,
    family: SketchFamily,
    db: DbSketches,
}

/// The public index: build once, query with any of the paper's schemes.
pub struct AnnIndex {
    inner: Arc<Inner>,
    tables: ConcreteTables,
}

impl AnnIndex {
    /// Preprocesses a database: samples the sketch family (public coins)
    /// and sketches every point.
    pub fn build(dataset: Dataset, params: SketchParams, opts: BuildOptions) -> Self {
        let family = SketchFamily::generate(dataset.dim(), dataset.len(), &params);
        let db = DbSketches::build(&family, &dataset, opts.threads);
        Self::assemble(dataset, family, db, opts.erasures)
    }

    fn assemble(
        dataset: Dataset,
        family: SketchFamily,
        db: DbSketches,
        erasures: Option<ErasureModel>,
    ) -> Self {
        let mut exact = HashMap::with_capacity(dataset.len());
        for (idx, p) in dataset.points().iter().enumerate() {
            exact.entry(p.clone()).or_insert(idx);
        }
        let inner = Arc::new(Inner {
            dataset,
            family,
            db,
            exact,
            erasures,
        });
        AnnIndex {
            tables: ConcreteTables {
                inner: Arc::clone(&inner),
            },
            inner,
        }
    }

    /// Serializes the index state: database, sketch family (the public
    /// coins) and database sketches. Reloading skips re-sketching.
    pub fn snapshot(&self) -> IndexSnapshot {
        IndexSnapshot {
            dataset: self.inner.dataset.clone(),
            family: self.inner.family.clone(),
            db: self.inner.db.clone(),
        }
    }

    /// Restores an index from a snapshot (rebuilds only the hash
    /// structures; sketches are taken as stored).
    pub fn from_snapshot(snapshot: IndexSnapshot) -> Self {
        assert_eq!(snapshot.dataset.dim(), snapshot.family.dim());
        Self::assemble(snapshot.dataset, snapshot.family, snapshot.db, None)
    }

    /// Reassembles an index from its stored parts — the binary-store
    /// decode path (`anns_core::store`). Unlike [`AnnIndex::from_snapshot`]
    /// this carries the erasure model too, so a reloaded fault-injection
    /// instance probes identically to the freshly built one.
    pub fn from_parts(
        dataset: Dataset,
        family: SketchFamily,
        db: DbSketches,
        erasures: Option<ErasureModel>,
    ) -> Result<Self, String> {
        if dataset.dim() != family.dim() {
            return Err(format!(
                "dataset dimension {} != family dimension {}",
                dataset.dim(),
                family.dim()
            ));
        }
        if db.len() != dataset.len() {
            return Err(format!(
                "db sketches cover {} points, dataset has {}",
                db.len(),
                dataset.len()
            ));
        }
        Ok(Self::assemble(dataset, family, db, erasures))
    }

    /// The database-side sketches (the store encode path).
    pub fn db_sketches(&self) -> &DbSketches {
        &self.inner.db
    }

    /// The fault-injection model the index was built with, if any.
    pub fn erasure_model(&self) -> Option<ErasureModel> {
        self.inner.erasures
    }

    /// The indexed database.
    pub fn dataset(&self) -> &Dataset {
        &self.inner.dataset
    }

    /// The sketch family (public randomness).
    pub fn family(&self) -> &SketchFamily {
        &self.inner.family
    }

    /// Runs Algorithm 1 with `k` rounds.
    pub fn query(&self, x: &Point, k: u32) -> (QueryOutcome, ProbeLedger) {
        self.query_with(x, k, ExecOptions::default())
    }

    /// Runs Algorithm 1 with explicit executor options (e.g. parallel
    /// in-round probes).
    pub fn query_with(&self, x: &Point, k: u32, opts: ExecOptions) -> (QueryOutcome, ProbeLedger) {
        let scheme = Alg1Scheme {
            instance: self,
            k,
            tau_override: None,
        };
        let (outcome, ledger, _) = execute_with(&scheme, x, opts);
        (outcome, ledger)
    }

    /// Runs Algorithm 2.
    pub fn query_alg2(&self, x: &Point, config: Alg2Config) -> (QueryOutcome, ProbeLedger) {
        let scheme = Alg2Scheme {
            instance: self,
            config,
        };
        let (outcome, ledger, _) = execute_with(&scheme, x, ExecOptions::default());
        (outcome, ledger)
    }

    /// Runs the 1-probe λ-ANNS scheme (Theorem 11).
    pub fn query_lambda(&self, x: &Point, lambda: f64) -> (LambdaAnswer, ProbeLedger) {
        let scale = lambda_scale(lambda, self.inner.family.alpha(), self.inner.family.top());
        let scheme = LambdaScheme {
            instance: self,
            scale,
        };
        let (answer, ledger, _) = execute_with(&scheme, x, ExecOptions::default());
        (answer, ledger)
    }

    /// Resolves an outcome to the returned database point, if any.
    pub fn outcome_point<'a>(&'a self, outcome: &'a QueryOutcome) -> Option<&'a Point> {
        outcome
            .index()
            .map(|idx| self.inner.dataset.point(idx as usize))
    }

    /// Checks the paper's guarantee: is the returned point a γ-approximate
    /// nearest neighbor of `x`? Returns `false` for failed queries.
    pub fn verify_gamma(&self, x: &Point, outcome: &QueryOutcome) -> bool {
        match self.outcome_point(outcome) {
            Some(z) => {
                self.inner
                    .dataset
                    .is_gamma_approximate_nn(x, z, self.inner.family.params().gamma)
            }
            None => false,
        }
    }
}

impl AnnsInstance for AnnIndex {
    type Query = Point;

    fn top(&self) -> u32 {
        self.inner.family.top()
    }

    fn table(&self) -> &dyn Table {
        &self.tables
    }

    fn word_bits(&self) -> u64 {
        word_bits_for_dim(self.inner.dataset.dim())
    }

    fn s(&self) -> f64 {
        self.inner.family.params().s
    }

    fn degen_addresses(&self, query: &Point) -> Option<[Address; 2]> {
        let key = point_key(query);
        Some([
            Address::new(table_ids::DEGEN_EXACT, key.clone()),
            Address::new(table_ids::DEGEN_N1, key),
        ])
    }

    fn t_address(&self, query: &Point, i: u32) -> Address {
        Address::new(
            table_ids::T_BASE + i,
            self.inner.family.sketch_m(i, query).address_bytes(),
        )
    }

    fn aux_address(&self, query: &Point, group: &AuxGroupSpec) -> Address {
        let m_sketch = self.inner.family.sketch_m(group.u_scale, query);
        let n_sketches: Vec<Sketch> = group
            .indices
            .iter()
            .map(|&j| self.inner.family.sketch_n(j, query))
            .collect();
        Address::new(
            table_ids::AUX_BASE + group.u_scale,
            encode_aux_key(group.lo, group.hi, &m_sketch, &group.indices, &n_sketches),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anns_hamming::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const GAMMA: f64 = 2.0;

    fn planted_index(seed: u64, n: usize, d: u32, dist: u32) -> (AnnIndex, Point, usize) {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = gen::planted(n, d, dist, &mut rng);
        let index = AnnIndex::build(
            inst.dataset,
            SketchParams::practical(GAMMA, seed ^ 0x5555),
            BuildOptions {
                threads: 2,
                ..BuildOptions::default()
            },
        );
        (index, inst.query, inst.planted_index)
    }

    #[test]
    fn planted_needle_is_found_for_various_k() {
        let (index, query, needle) = planted_index(1, 128, 512, 8);
        for k in 1..=6u32 {
            let (outcome, ledger) = index.query(&query, k);
            assert_eq!(
                outcome.index(),
                Some(needle as u64),
                "k={k}: outcome {outcome:?}"
            );
            assert!(ledger.rounds() <= k as usize, "k={k}");
            assert!(index.verify_gamma(&query, &outcome), "k={k}");
        }
    }

    #[test]
    fn degenerate_exact_hit_resolves_in_one_round() {
        let (index, _, _) = planted_index(2, 64, 256, 6);
        let x = index.dataset().point(17).clone();
        let (outcome, ledger) = index.query(&x, 4);
        match outcome.kind {
            crate::outcome::OutcomeKind::Exact { index: idx } => {
                assert_eq!(index.dataset().point(idx as usize), &x);
            }
            ref other => panic!("expected Exact, got {other:?}"),
        }
        assert_eq!(ledger.rounds(), 1, "degenerate hit short-circuits");
    }

    #[test]
    fn degenerate_near_one_hit() {
        let (index, _, _) = planted_index(3, 64, 256, 6);
        let x = index.dataset().point(5).flipped(100);
        let (outcome, _) = index.query(&x, 4);
        match outcome.kind {
            crate::outcome::OutcomeKind::Exact { index: idx }
            | crate::outcome::OutcomeKind::NearOne { index: idx, .. } => {
                assert!(x.distance(index.dataset().point(idx as usize)) <= 1);
            }
            ref other => panic!("expected degenerate hit, got {other:?}"),
        }
    }

    #[test]
    fn alg2_on_concrete_instance() {
        let (index, query, needle) = planted_index(4, 128, 512, 8);
        let (outcome, _) = index.query_alg2(&query, Alg2Config::with_k(8));
        assert_eq!(outcome.index(), Some(needle as u64));
        assert!(index.verify_gamma(&query, &outcome));
    }

    #[test]
    fn lambda_yes_and_no() {
        let (index, query, needle) = planted_index(5, 128, 512, 8);
        // YES at λ = 8 (needle within 8): must return a point within γλ=16.
        let (answer, ledger) = index.query_lambda(&query, 8.0);
        assert_eq!(ledger.total_probes(), 1);
        match answer {
            LambdaAnswer::Neighbor { index: idx, point } => {
                let z = index.dataset().point(idx as usize);
                assert!(query.distance(z) as f64 <= GAMMA * 8.0);
                assert_eq!(point.as_ref(), Some(z));
                let _ = needle;
            }
            LambdaAnswer::No => panic!("YES instance answered NO"),
        }
        // NO at λ = 2 (nothing within γλ = 4): must answer NO.
        let (answer, ledger) = index.query_lambda(&query, 2.0);
        assert_eq!(ledger.total_probes(), 1);
        assert_eq!(answer, LambdaAnswer::No);
    }

    #[test]
    fn success_rate_on_uniform_data() {
        let mut rng = StdRng::seed_from_u64(6);
        let ds = gen::uniform(256, 256, &mut rng);
        let index = AnnIndex::build(
            ds,
            SketchParams::practical(GAMMA, 99),
            BuildOptions {
                threads: 2,
                ..BuildOptions::default()
            },
        );
        let mut ok = 0;
        let trials = 20;
        for _ in 0..trials {
            let q = Point::random(256, &mut rng);
            let (outcome, _) = index.query(&q, 3);
            if index.verify_gamma(&q, &outcome) {
                ok += 1;
            }
        }
        assert!(
            ok * 4 >= trials * 3,
            "γ-approximation held for only {ok}/{trials} queries"
        );
    }

    #[test]
    fn probe_counts_match_alg1_bound_on_concrete() {
        let (index, query, _) = planted_index(7, 256, 512, 10);
        let top = index.top();
        for k in 1..=5u32 {
            let tau = crate::alg1::choose_tau_alg1(top, k);
            let (_, ledger) = index.query(&query, k);
            // +2 degenerate probes in round 1.
            assert!(
                ledger.total_probes() <= (k * (tau - 1) + 2) as usize,
                "k={k}: {} probes, τ={tau}",
                ledger.total_probes()
            );
        }
    }

    #[test]
    fn aux_key_codec_roundtrip() {
        let mut rng = StdRng::seed_from_u64(8);
        let ds = gen::uniform(32, 128, &mut rng);
        let params = SketchParams::practical(GAMMA, 3);
        let family = SketchFamily::generate(128, 32, &params);
        let x = Point::random(128, &mut rng);
        let m_sketch = family.sketch_m(5, &x);
        let indices = vec![1u32, 3, 4];
        let n_sketches: Vec<Sketch> = indices.iter().map(|&j| family.sketch_n(j, &x)).collect();
        let bytes = encode_aux_key(1, 4, &m_sketch, &indices, &n_sketches);
        let key = decode_aux_key(&bytes, family.m_rows(), family.n_rows());
        assert_eq!(key.indices, indices);
        assert_eq!(key.m_sketch, m_sketch);
        assert_eq!(key.n_sketches, n_sketches);
        let _ = ds;
    }

    #[test]
    fn point_key_codec_roundtrip() {
        let mut rng = StdRng::seed_from_u64(9);
        for d in [1u32, 64, 65, 300] {
            let p = Point::random(d, &mut rng);
            assert_eq!(decode_point_key(&point_key(&p)), p);
        }
    }

    #[test]
    fn space_model_is_polynomial() {
        let (index, _, _) = planted_index(10, 128, 256, 8);
        let model = index.table().space_model();
        // Polynomial in n with the practical constants: log₂ cells ≈
        // m_rows + … = c₁·log₂ n + lower order ⇒ exponent ≈ c₁ = 24.
        assert!(model.is_poly_in(128, 64.0));
        assert!(!model.is_poly_in(128, 1.0));
        assert_eq!(model.word_bits, word_bits_for_dim(256));
    }

    #[test]
    fn word_size_is_linear_in_d() {
        assert!(word_bits_for_dim(1024) <= 8 * (13 + 16 * 8));
        assert!(word_bits_for_dim(64) < word_bits_for_dim(1024));
    }

    #[test]
    fn aux_cell_content_matches_reference_computation() {
        // Read an auxiliary cell through the oracle and re-derive its
        // answer from first principles: C_u from the M-sketches, each
        // |D_{u,idx}| from the N-sketches, compared against n^{-1/s}|C_u|.
        let mut rng = StdRng::seed_from_u64(30);
        let ds = gen::clustered(8, 16, 256, 0.04, &mut rng);
        let index = AnnIndex::build(
            ds,
            SketchParams::practical(GAMMA, 6),
            BuildOptions::default(),
        );
        let x = gen::corrupt(index.dataset().point(3), 0.02, &mut rng);
        let u = index.top() - 2;
        let indices: Vec<u32> = vec![u / 4, u / 2, 3 * u / 4];
        let group = AuxGroupSpec {
            u_scale: u,
            lo: indices[0],
            hi: *indices.last().unwrap(),
            indices: indices.clone(),
        };
        let word = index.table().read(&index.aux_address(&x, &group));
        let got = crate::outcome::decode_aux_cell(&word);
        // Reference: recompute via the sketch-family oracles.
        let family = index.family();
        let db = anns_sketch::DbSketches::build(family, index.dataset(), 1);
        let m_sketch = family.sketch_m(u, &x);
        let c_count = db.c_count(family, u, &m_sketch);
        let threshold =
            c_count as f64 * (index.dataset().len() as f64).powf(-1.0 / family.params().s);
        let expect = indices
            .iter()
            .position(|&j| {
                let n_sketch = family.sketch_n(j, &x);
                db.d_count(family, u, j, &m_sketch, &n_sketch) as f64 > threshold
            })
            .map(|p| p as u32 + 1);
        assert_eq!(got, expect);
    }

    #[test]
    fn snapshot_roundtrip_preserves_query_behaviour() {
        let (index, query, needle) = planted_index(20, 64, 128, 6);
        let json = serde_json::to_string(&index.snapshot()).expect("serialize");
        let restored = AnnIndex::from_snapshot(serde_json::from_str(&json).expect("deserialize"));
        for k in 1..=3u32 {
            let (o1, l1) = index.query(&query, k);
            let (o2, l2) = restored.query(&query, k);
            assert_eq!(o1, o2, "k={k}");
            assert_eq!(l1, l2, "k={k}");
            assert_eq!(o1.index(), Some(needle as u64));
        }
    }

    #[test]
    fn zero_erasures_change_nothing() {
        let mut rng = StdRng::seed_from_u64(21);
        let planted = gen::planted(64, 128, 6, &mut rng);
        let clean = AnnIndex::build(
            planted.dataset.clone(),
            SketchParams::practical(GAMMA, 3),
            BuildOptions::default(),
        );
        let faulty = AnnIndex::build(
            planted.dataset,
            SketchParams::practical(GAMMA, 3),
            BuildOptions {
                erasures: Some(ErasureModel {
                    probability: 0.0,
                    seed: 9,
                }),
                ..BuildOptions::default()
            },
        );
        let (o1, l1) = clean.query(&planted.query, 3);
        let (o2, l2) = faulty.query(&planted.query, 3);
        assert_eq!(o1, o2);
        assert_eq!(l1, l2);
    }

    #[test]
    fn full_erasures_leave_only_the_degenerate_paths() {
        let mut rng = StdRng::seed_from_u64(22);
        let planted = gen::planted(64, 128, 6, &mut rng);
        let index = AnnIndex::build(
            planted.dataset,
            SketchParams::practical(GAMMA, 4),
            BuildOptions {
                erasures: Some(ErasureModel {
                    probability: 1.0,
                    seed: 10,
                }),
                ..BuildOptions::default()
            },
        );
        // Main path: every T-cell erased → the search cannot find anything.
        let (outcome, _) = index.query(&planted.query, 3);
        assert_eq!(outcome.kind, crate::outcome::OutcomeKind::NotFound);
        // Degenerate path is untouched.
        let member = index.dataset().point(0).clone();
        let (outcome, _) = index.query(&member, 3);
        assert!(matches!(
            outcome.kind,
            crate::outcome::OutcomeKind::Exact { .. }
        ));
    }

    #[test]
    fn erasures_are_deterministic_per_cell() {
        let mut rng = StdRng::seed_from_u64(23);
        let planted = gen::planted(64, 128, 6, &mut rng);
        let index = AnnIndex::build(
            planted.dataset,
            SketchParams::practical(GAMMA, 5),
            BuildOptions {
                erasures: Some(ErasureModel {
                    probability: 0.5,
                    seed: 11,
                }),
                ..BuildOptions::default()
            },
        );
        let (o1, l1) = index.query(&planted.query, 2);
        let (o2, l2) = index.query(&planted.query, 2);
        assert_eq!(o1, o2);
        assert_eq!(l1, l2);
    }
}
