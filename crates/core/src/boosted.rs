//! Success-probability boosting by parallel repetition (paper §2).
//!
//! "Any positive constant success probability is enough: we can boost it to
//! any constant accuracy 1 − ε by independent repetition of the cell-probing
//! algorithm for constant many times **in parallel**, which will keep the
//! asymptotic cell-probe complexity and the number of rounds" — because the
//! nearest-neighbor relation has a monotone order over answers, the best of
//! r independent answers is correct whenever any copy is.
//!
//! [`BoostedIndex`] packages that: `r` copies of the data structure with
//! independent public coins over the same database; a query runs all copies
//! (conceptually in the same rounds — the ledger reports both the
//! per-copy maximum, which is the model's round/probe cost under parallel
//! composition, and the total work).

use anns_cellprobe::ProbeLedger;
use anns_hamming::{Dataset, Point};
use anns_sketch::SketchParams;

use crate::concrete::{AnnIndex, BuildOptions};
use crate::outcome::QueryOutcome;

/// `r` independently seeded copies of [`AnnIndex`] over one database.
pub struct BoostedIndex {
    copies: Vec<AnnIndex>,
}

/// Ledger of a boosted query.
#[derive(Clone, Debug)]
pub struct BoostedLedger {
    /// Per-round maxima over the copies — the cost of the parallel
    /// composition in the model (copies run side by side; a round's width
    /// is the sum, but the *rounds* don't grow; we report widths summed).
    pub parallel: ProbeLedger,
    /// Total probes across all copies (the work a serial host would do).
    pub total_probes: usize,
}

impl BoostedIndex {
    /// Builds `r` copies with seeds `base_seed, base_seed+1, …`.
    pub fn build(dataset: Dataset, mut params: SketchParams, r: usize, opts: BuildOptions) -> Self {
        assert!(r >= 1, "at least one copy");
        let base_seed = params.seed;
        let copies = (0..r)
            .map(|c| {
                params.seed = base_seed.wrapping_add(c as u64);
                AnnIndex::build(dataset.clone(), params, opts)
            })
            .collect();
        BoostedIndex { copies }
    }

    /// Number of copies `r`.
    pub fn repetitions(&self) -> usize {
        self.copies.len()
    }

    /// Access to one copy (e.g. for verification helpers).
    pub fn copy(&self, i: usize) -> &AnnIndex {
        &self.copies[i]
    }

    /// Runs Algorithm 1 on every copy and returns the best answer (smallest
    /// distance to the query; degenerate hits dominate).
    pub fn query(&self, x: &Point, k: u32) -> (QueryOutcome, BoostedLedger) {
        let mut best: Option<(u32, QueryOutcome)> = None;
        let mut parallel = ProbeLedger::default();
        let mut total = 0usize;
        for index in &self.copies {
            let (outcome, ledger) = index.query(x, k);
            total += ledger.total_probes();
            // Parallel composition: per-round widths add, rounds take max.
            while parallel.per_round.len() < ledger.per_round.len() {
                parallel.per_round.push(0);
            }
            for (slot, &probes) in parallel.per_round.iter_mut().zip(ledger.per_round.iter()) {
                *slot += probes;
            }
            parallel.word_bits_read += ledger.word_bits_read;
            parallel.max_word_bits = parallel.max_word_bits.max(ledger.max_word_bits);
            parallel.address_bits_sent += ledger.address_bits_sent;
            if let Some(p) = index.outcome_point(&outcome) {
                let dist = x.distance(p);
                if best.as_ref().is_none_or(|(b, _)| dist < *b) {
                    best = Some((dist, outcome));
                }
            }
        }
        let outcome = best.map(|(_, o)| o).unwrap_or(QueryOutcome {
            kind: crate::outcome::OutcomeKind::NotFound,
        });
        (
            outcome,
            BoostedLedger {
                parallel,
                total_probes: total,
            },
        )
    }

    /// Whether the boosted answer is γ-approximate (judged against copy 0's
    /// dataset — all copies share it).
    pub fn verify_gamma(&self, x: &Point, outcome: &QueryOutcome) -> bool {
        self.copies[0].verify_gamma(x, outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anns_hamming::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn boosted_query_finds_the_needle_and_keeps_rounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let planted = gen::planted(256, 256, 8, &mut rng);
        let boosted = BoostedIndex::build(
            planted.dataset,
            SketchParams::practical(2.0, 500),
            3,
            BuildOptions {
                threads: 2,
                ..BuildOptions::default()
            },
        );
        assert_eq!(boosted.repetitions(), 3);
        let (outcome, ledger) = boosted.query(&planted.query, 3);
        assert_eq!(outcome.index(), Some(planted.planted_index as u64));
        assert!(boosted.verify_gamma(&planted.query, &outcome));
        // Parallel composition: rounds bounded by k, not by r·k.
        assert!(ledger.parallel.rounds() <= 3);
        assert!(ledger.total_probes >= ledger.parallel.max_round_probes());
    }

    #[test]
    fn boosting_rescues_erased_copies() {
        // Two copies with full erasures (main path dead) plus one clean
        // copy: the boosted answer must come from the clean one.
        let mut rng = StdRng::seed_from_u64(2);
        let planted = gen::planted(128, 256, 8, &mut rng);
        let dead = |seed: u64| {
            AnnIndex::build(
                planted.dataset.clone(),
                SketchParams::practical(2.0, seed),
                BuildOptions {
                    erasures: Some(crate::concrete::ErasureModel {
                        probability: 1.0,
                        seed,
                    }),
                    ..BuildOptions::default()
                },
            )
        };
        let clean = AnnIndex::build(
            planted.dataset.clone(),
            SketchParams::practical(2.0, 77),
            BuildOptions::default(),
        );
        let boosted = BoostedIndex {
            copies: vec![dead(1), clean, dead(2)],
        };
        let (outcome, _) = boosted.query(&planted.query, 3);
        assert_eq!(outcome.index(), Some(planted.planted_index as u64));
    }

    #[test]
    fn single_copy_boost_matches_plain_index() {
        let mut rng = StdRng::seed_from_u64(3);
        let planted = gen::planted(96, 128, 6, &mut rng);
        let plain = AnnIndex::build(
            planted.dataset.clone(),
            SketchParams::practical(2.0, 42),
            BuildOptions::default(),
        );
        let boosted = BoostedIndex::build(
            planted.dataset,
            SketchParams::practical(2.0, 42),
            1,
            BuildOptions::default(),
        );
        let (o1, l1) = plain.query(&planted.query, 2);
        let (o2, l2) = boosted.query(&planted.query, 2);
        assert_eq!(o1, o2);
        assert_eq!(l1.per_round, l2.parallel.per_round);
    }
}
