//! The instance abstraction both algorithm backends implement.
//!
//! Algorithms 1 and 2 never look at raw points; all they do is (a) compute
//! addresses from the query and the public randomness — a free query-side
//! computation in the cell-probe model — and (b) decode probed words. An
//! [`AnnsInstance`] packages exactly that surface:
//!
//! * the table oracle and its declared word size,
//! * the top scale `⌈log_α d⌉`,
//! * address builders for the main tables `T_i`, the auxiliary tables
//!   `T̃_{u,·}` (Algorithm 2), and the two degenerate-case structures.
//!
//! The concrete backend ([`crate::concrete`]) computes sketch addresses from
//! real points; the synthetic backend ([`crate::synthetic`]) addresses by
//! scale index directly, which lets the same algorithm code run at
//! `d = 2^{4096}`-class instance shapes (substitution S4 in `DESIGN.md`).

use anns_cellprobe::{Address, Table};

/// Table-id layout shared by all backends.
pub mod table_ids {
    /// Degenerate case 1: exact membership `x ∈ B`.
    pub const DEGEN_EXACT: u32 = 0;
    /// Degenerate case 2: membership in the 1-neighborhood `N1(B)`.
    pub const DEGEN_N1: u32 = 1;
    /// Main tables: scale `i` lives at `T_BASE + i`.
    pub const T_BASE: u32 = 2;
    /// Auxiliary tables (Algorithm 2): scale `u` lives at `AUX_BASE + u`.
    /// Leaves room for 2^28 main scales (synthetic instances go far beyond
    /// any storable dimension: top = 2^21 appears in experiment E4).
    pub const AUX_BASE: u32 = 2 + (1 << 28);
}

/// One auxiliary-table query group of Algorithm 2 (paper §3.2).
///
/// The group covers the τ-grid points `ρ(1+(j−1)s) … ρ(js)`; the paper's
/// address is `⟨l_j, u_j, w₀, w₁ … w_{w₀}⟩` with the covered indices
/// reconstructed from `(l_j, u_j)`. We carry the covered indices explicitly
/// (`indices`), which is the same information under the grid convention and
/// keeps both sides of the oracle in exact agreement (see `DESIGN.md`, the
/// Lemma 8/address-derivation note in §1.4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuxGroupSpec {
    /// The current upper scale `u` (selects the auxiliary table).
    pub u_scale: u32,
    /// Group lower threshold `l_j` (first covered index).
    pub lo: u32,
    /// Group upper threshold `u_j` (last covered index).
    pub hi: u32,
    /// The covered scale indices `ρ(1+(j−1)s+q−1)`, `q = 1..=w₀`.
    pub indices: Vec<u32>,
}

/// An ANNS instance: table oracle + query-side address computation.
pub trait AnnsInstance: Sync {
    /// The query type (a point for concrete instances, `()` for synthetic
    /// ones whose profile already fixes the query).
    type Query: Sync;

    /// Top scale index `⌈log_α d⌉`.
    fn top(&self) -> u32;

    /// The table oracle.
    fn table(&self) -> &dyn Table;

    /// Declared word size `w` in bits (`O(d)` for the paper's schemes).
    fn word_bits(&self) -> u64;

    /// The Algorithm 2 coarseness parameter `s` the instance's auxiliary
    /// tables were built for (`1 < s < ln ln n` in the paper; ≥ 1 here).
    fn s(&self) -> f64;

    /// Addresses of the two degenerate-case probes (`x ∈ B?`,
    /// `x ∈ N1(B)?`), or `None` if the backend does not model them
    /// (synthetic instances encode the degenerate cases in their profile).
    fn degen_addresses(&self, query: &Self::Query) -> Option<[Address; 2]>;

    /// Address of the main-table cell `T_i[M_i x]`.
    fn t_address(&self, query: &Self::Query, i: u32) -> Address;

    /// Address of the auxiliary cell for one query group.
    fn aux_address(&self, query: &Self::Query, group: &AuxGroupSpec) -> Address;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_id_layout_does_not_collide() {
        // Evaluated through locals so the (constant) layout is checked by a
        // real comparison rather than folded away.
        let (exact, n1, t_base, aux_base) = (
            table_ids::DEGEN_EXACT,
            table_ids::DEGEN_N1,
            table_ids::T_BASE,
            table_ids::AUX_BASE,
        );
        assert!(exact < t_base);
        assert!(n1 < t_base);
        // 2^28 scales fit between the bases (E4 uses top = 2^21), and the
        // aux range still fits in u32 with the same headroom.
        assert!(aux_base - t_base >= (1 << 28));
        assert!(u32::MAX - aux_base >= (1 << 28));
    }

    #[test]
    fn aux_group_spec_is_plain_data() {
        let g = AuxGroupSpec {
            u_scale: 9,
            lo: 2,
            hi: 5,
            indices: vec![2, 3, 5],
        };
        let g2 = g.clone();
        assert_eq!(g, g2);
    }
}
