//! Subsampled repetition: the adaptive-adversary defense from the
//! robustness literature as a [`ServableScheme`] wrapper.
//!
//! A single randomized structure answering a long-lived query stream
//! leaks its internal randomness through its answers: an adaptive
//! attacker can walk queries toward the failure region and then stay
//! there, because the *same* coins decide every query
//! (Cherapanamjeri–Nelson 2020; Andoni–Haris–Kelman–Onak 2026 — see
//! `PAPERS.md`). The standard repair is **independent repetition with
//! per-query subsampling**: build `R` independent instances of the
//! scheme, and answer each query from a pseudorandom subsample of `K`
//! of them. A query that defeats one instance's coins says nothing
//! about its siblings, so a latched failure does not transfer — the
//! attacker is back to the non-adaptive failure probability, now
//! amplified to roughly `p^K` by the aggregation.
//!
//! [`SubsampledRepetition`] implements exactly that over any inner
//! [`ServableScheme`]s. Every inner probe is re-routed into the
//! *outer* [`RoundExecutor`] (replica `i`'s table ids are offset by
//! `i × REPLICA_STRIDE`), so the whole ensemble's probe cost lands in
//! one ledger and the wrapper composes with the engine's cross-query
//! coalescing unchanged. The subsample is derandomized per query —
//! a keyed hash of the query bits picks the `K` replicas — which keeps
//! answers byte-stable under repetition (the determinism baseline the
//! attack harness and the store replay tests rely on) while still
//! decorrelating *distinct* queries, which is what defeats the
//! hill-climbing adversary.
//!
//! Persistence: the wrapper saves as `scheme_kind::SUBSAMPLE` records
//! carrying its inner schemes (see [`crate::store::StoredScheme`] and
//! the bundle codec in `anns-engine`), so a defended shard mounts,
//! hot-swaps, and warm-starts like any other.

use std::sync::{Arc, Mutex};

use anns_cellprobe::{
    Address, ExecOptions, RoundExecutor, RoundSource, SpaceModel, Table, TableId,
};
use anns_hamming::Point;

use crate::lambda::LambdaAnswer;
use crate::serve::{ServableScheme, ServedAnswer};

/// Table-id block reserved per replica: replica `i`'s inner table `t`
/// appears on the shared oracle as `i × REPLICA_STRIDE + t`.
pub const REPLICA_STRIDE: TableId = 1 << 24;

/// How the `K` subsampled answers collapse into one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Aggregation {
    /// Plurality vote over the returned database index (`None` votes
    /// too); earliest replica breaks ties.
    Majority,
    /// The answer closest to the query, judged by the carried
    /// candidate distance or returned point; answers without a point
    /// rank below measured ones, and `None` ranks last.
    BestOf,
}

impl Aggregation {
    /// Store-codec byte (stable across releases).
    pub fn to_byte(self) -> u8 {
        match self {
            Aggregation::Majority => 0,
            Aggregation::BestOf => 1,
        }
    }

    /// Inverse of [`Aggregation::to_byte`]; `None` on unknown bytes.
    pub fn from_byte(byte: u8) -> Option<Aggregation> {
        match byte {
            0 => Some(Aggregation::Majority),
            1 => Some(Aggregation::BestOf),
            _ => None,
        }
    }

    /// Short label for scheme listings.
    pub fn label(self) -> &'static str {
        match self {
            Aggregation::Majority => "maj",
            Aggregation::BestOf => "best",
        }
    }
}

/// `R` independently-built inner instances; each query is answered by
/// a per-query pseudorandom subsample of `K` of them. See the module
/// docs for why this defeats adaptive attackers.
pub struct SubsampledRepetition {
    inners: Vec<Arc<dyn ServableScheme>>,
    sample: u32,
    seed: u64,
    agg: Aggregation,
    router: ReplicaRouter,
}

impl SubsampledRepetition {
    /// Replica count ceiling (the table-id striding reserves
    /// `REPLICA_STRIDE` ids per replica within a `u32`).
    pub const MAX_REPLICAS: usize = 255;

    /// Wraps `inners` (the `R` independently-built instances),
    /// answering each query from `sample` (`K`) of them chosen by a
    /// hash keyed on `seed`. Fails on an empty ensemble, `K` outside
    /// `1..=R`, `R > MAX_REPLICAS`, or inners that disagree on the
    /// query dimension.
    pub fn new(
        inners: Vec<Arc<dyn ServableScheme>>,
        sample: u32,
        seed: u64,
        agg: Aggregation,
    ) -> Result<SubsampledRepetition, String> {
        if inners.is_empty() {
            return Err("subsampled repetition needs at least one inner scheme".into());
        }
        if inners.len() > Self::MAX_REPLICAS {
            return Err(format!(
                "{} replicas exceed the maximum of {}",
                inners.len(),
                Self::MAX_REPLICAS
            ));
        }
        if sample == 0 || sample as usize > inners.len() {
            return Err(format!(
                "sample K = {sample} must be in 1..={}",
                inners.len()
            ));
        }
        let dim = inners[0].query_dim();
        if inners.iter().any(|inner| inner.query_dim() != dim) {
            return Err("inner schemes disagree on query dimension".into());
        }
        let router = ReplicaRouter {
            inners: inners.iter().map(Arc::clone).collect(),
        };
        Ok(SubsampledRepetition {
            inners,
            sample,
            seed,
            agg,
            router,
        })
    }

    /// Replica count `R`.
    pub fn replicas(&self) -> usize {
        self.inners.len()
    }

    /// Subsample size `K`.
    pub fn sample(&self) -> u32 {
        self.sample
    }

    /// The subsample-selection seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The aggregation rule.
    pub fn aggregation(&self) -> Aggregation {
        self.agg
    }

    /// One inner replica (test/introspection surface).
    pub fn inner(&self, replica: usize) -> &Arc<dyn ServableScheme> {
        &self.inners[replica]
    }

    /// The replica indices that answer `query`: a partial
    /// Fisher–Yates shuffle driven by a splitmix64 chain over
    /// `(seed, query bits)`. Identical queries always draw the same
    /// subsample; distinct queries draw fresh, decorrelated ones.
    pub fn subsample_for(&self, query: &Point) -> Vec<usize> {
        let mut h = splitmix64(self.seed ^ u64::from(query.dim()));
        for &limb in query.limbs() {
            h = splitmix64(h ^ limb);
        }
        let r = self.inners.len();
        let mut order: Vec<usize> = (0..r).collect();
        for i in 0..self.sample as usize {
            h = splitmix64(h);
            let j = i + (h % (r - i) as u64) as usize;
            order.swap(i, j);
        }
        order.truncate(self.sample as usize);
        order
    }

    fn aggregate(&self, query: &Point, answers: &[(usize, ServedAnswer)]) -> ServedAnswer {
        match self.agg {
            Aggregation::BestOf => {
                let mut best = 0;
                for i in 1..answers.len() {
                    if quality(query, &answers[i].1) < quality(query, &answers[best].1) {
                        best = i;
                    }
                }
                answers[best].1.clone()
            }
            Aggregation::Majority => {
                // Plurality over the returned index; first occurrence
                // in subsample order breaks count ties.
                let mut tally: Vec<(Option<u64>, usize, usize)> = Vec::new();
                for (pos, (_, answer)) in answers.iter().enumerate() {
                    let key = answer.index();
                    match tally.iter_mut().find(|(k, _, _)| *k == key) {
                        Some(entry) => entry.1 += 1,
                        None => tally.push((key, 1, pos)),
                    }
                }
                let winner = tally
                    .iter()
                    .max_by(|a, b| a.1.cmp(&b.1).then(b.2.cmp(&a.2)))
                    .expect("aggregation over a non-empty subsample");
                answers[winner.2].1.clone()
            }
        }
    }
}

/// Ranking key for best-of aggregation: lower is better. Class 0 =
/// a measurable distance, class 1 = an index without a point, class
/// 2 = no answer.
fn quality(query: &Point, answer: &ServedAnswer) -> (u8, u32) {
    match answer {
        ServedAnswer::Candidate(Some(c)) => (0, c.distance),
        ServedAnswer::Candidate(None) => (2, 0),
        ServedAnswer::Outcome(o) => match (o.index(), o.point()) {
            (Some(_), Some(p)) => (0, query.distance(p)),
            (Some(_), None) => (1, 0),
            _ => (2, 0),
        },
        ServedAnswer::Lambda(LambdaAnswer::Neighbor { point, .. }) => match point {
            Some(p) => (0, query.distance(p)),
            None => (1, 0),
        },
        ServedAnswer::Lambda(LambdaAnswer::No) => (2, 0),
    }
}

impl ServableScheme for SubsampledRepetition {
    fn label(&self) -> String {
        format!(
            "subsampled[R={},K={},{}|{}]",
            self.inners.len(),
            self.sample,
            self.agg.label(),
            self.inners[0].label()
        )
    }

    fn table(&self) -> &dyn Table {
        &self.router
    }

    fn word_bits(&self) -> u64 {
        self.inners
            .iter()
            .map(|inner| inner.word_bits())
            .max()
            .unwrap_or(0)
    }

    fn query_dim(&self) -> Option<u32> {
        self.inners[0].query_dim()
    }

    fn round_budget(&self) -> Option<u32> {
        // The K subsampled instances run sequentially, so rounds add:
        // K × the worst inner budget. None if any inner declines.
        let worst = self
            .inners
            .iter()
            .map(|inner| inner.round_budget())
            .collect::<Option<Vec<u32>>>()?;
        Some(self.sample * worst.into_iter().max().unwrap_or(0))
    }

    fn probe_budget(&self) -> Option<u64> {
        let worst = self
            .inners
            .iter()
            .map(|inner| inner.probe_budget())
            .collect::<Option<Vec<u64>>>()?;
        Some(u64::from(self.sample) * worst.into_iter().max().unwrap_or(0))
    }

    fn serve(&self, query: &Point, exec: &mut RoundExecutor<'_>) -> ServedAnswer {
        let picks = self.subsample_for(query);
        let mut answers = Vec::with_capacity(picks.len());
        for &replica in &picks {
            // Each inner runs on its own executor whose rounds are
            // re-issued (table ids offset into the replica's block)
            // against the *outer* executor: the outer ledger sees
            // every probe and the engine's coalescing seam still
            // carries them all.
            let source = OffsetSource {
                outer: Mutex::new(&mut *exec),
                base: replica as TableId * REPLICA_STRIDE,
            };
            let mut sub = RoundExecutor::with_source(&source, ExecOptions::default());
            answers.push((replica, self.inners[replica].serve(query, &mut sub)));
        }
        self.aggregate(query, &answers)
    }

    fn stored(&self) -> Option<crate::store::StoredScheme> {
        let inners = self
            .inners
            .iter()
            .map(|inner| inner.stored())
            .collect::<Option<Vec<_>>>()?;
        Some(crate::store::StoredScheme::Subsampled {
            sample: self.sample,
            seed: self.seed,
            agg: self.agg,
            inners,
        })
    }
}

/// The ensemble's shared table oracle: routes each address to the
/// replica owning its table-id block.
struct ReplicaRouter {
    inners: Vec<Arc<dyn ServableScheme>>,
}

impl Table for ReplicaRouter {
    fn read(&self, addr: &Address) -> anns_cellprobe::Word {
        let replica = (addr.table / REPLICA_STRIDE) as usize;
        assert!(
            replica < self.inners.len(),
            "table id {} addresses replica {replica}, but only {} exist",
            addr.table,
            self.inners.len()
        );
        let inner = Address::new(addr.table % REPLICA_STRIDE, addr.key.clone());
        self.inners[replica].table().read(&inner)
    }

    fn space_model(&self) -> SpaceModel {
        self.inners.iter().fold(SpaceModel::zero(), |acc, inner| {
            acc.combine(inner.table().space_model())
        })
    }
}

/// Re-issues a sub-executor's rounds against the outer executor with
/// the replica's table-id offset applied. `Mutex` only to satisfy the
/// `Sync` bound on [`RoundSource`]; rounds arrive one at a time.
struct OffsetSource<'e, 'o> {
    outer: Mutex<&'e mut RoundExecutor<'o>>,
    base: TableId,
}

impl RoundSource for OffsetSource<'_, '_> {
    fn read_round(&self, addrs: &[Address]) -> Vec<anns_cellprobe::Word> {
        let shifted: Vec<Address> = addrs
            .iter()
            .map(|a| Address::new(self.base + a.table, a.key.clone()))
            .collect();
        self.outer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .round(&shifted)
    }
}

/// One step of the splitmix64 chain (Steele–Lea–Flood): the keyed
/// hash behind per-query subsample selection. Hand-rolled so the
/// subsample is a stable function of `(seed, query)` independent of
/// any RNG crate's stream details.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::{Candidate, SoloServable};
    use anns_cellprobe::execute;
    use anns_hamming::{gen, Dataset};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A deterministic toy scheme: one probe, answers with a fixed
    /// index and a distance derived from the query's first limb.
    struct Fixed {
        id: u64,
        table: anns_cellprobe::MaterializedTable,
    }

    impl Fixed {
        fn new(id: u64) -> Fixed {
            let table = anns_cellprobe::MaterializedTable::new(SpaceModel::from_exact_cells(1, 64));
            table.write(Address::with_u64(0, 0), anns_cellprobe::Word::from_u64(id));
            Fixed { id, table }
        }
    }

    impl ServableScheme for Fixed {
        fn label(&self) -> String {
            format!("fixed[{}]", self.id)
        }
        fn table(&self) -> &dyn Table {
            &self.table
        }
        fn word_bits(&self) -> u64 {
            64
        }
        fn round_budget(&self) -> Option<u32> {
            Some(1)
        }
        fn probe_budget(&self) -> Option<u64> {
            Some(1)
        }
        fn serve(&self, _query: &Point, exec: &mut RoundExecutor<'_>) -> ServedAnswer {
            let words = exec.round(&[Address::with_u64(0, 0)]);
            let id = words[0].to_u64();
            ServedAnswer::Candidate(Some(Candidate {
                index: id,
                distance: id as u32,
            }))
        }
    }

    fn ensemble(r: usize, sample: u32, agg: Aggregation) -> SubsampledRepetition {
        let inners: Vec<Arc<dyn ServableScheme>> = (0..r)
            .map(|i| Arc::new(Fixed::new(i as u64)) as Arc<dyn ServableScheme>)
            .collect();
        SubsampledRepetition::new(inners, sample, 42, agg).expect("valid ensemble")
    }

    #[test]
    fn constructor_validates() {
        assert!(SubsampledRepetition::new(Vec::new(), 1, 0, Aggregation::BestOf).is_err());
        let inners: Vec<Arc<dyn ServableScheme>> = vec![Arc::new(Fixed::new(0))];
        assert!(
            SubsampledRepetition::new(inners.clone(), 2, 0, Aggregation::BestOf).is_err(),
            "K > R rejected"
        );
        assert!(SubsampledRepetition::new(inners, 0, 0, Aggregation::BestOf).is_err());
    }

    #[test]
    fn subsample_is_deterministic_per_query_and_distinct_across_queries() {
        let s = ensemble(8, 3, Aggregation::BestOf);
        let mut rng = StdRng::seed_from_u64(7);
        let q1 = Point::random(128, &mut rng);
        let picks = s.subsample_for(&q1);
        assert_eq!(picks.len(), 3);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "replicas are distinct");
        assert_eq!(picks, s.subsample_for(&q1), "same query, same subsample");
        // Across many fresh queries every replica gets sampled: the
        // selection really varies with the query bits.
        let mut seen = [false; 8];
        for _ in 0..200 {
            let q = Point::random(128, &mut rng);
            for r in s.subsample_for(&q) {
                seen[r] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "all replicas reachable: {seen:?}");
    }

    #[test]
    fn probes_land_in_outer_ledger_with_replica_striding() {
        let s = ensemble(8, 3, Aggregation::BestOf);
        let mut rng = StdRng::seed_from_u64(9);
        let q = Point::random(128, &mut rng);
        let (answer, ledger) = execute(&SoloServable(&s), &q);
        // 3 subsampled one-probe inners, run sequentially: 3 rounds of
        // one probe each, all charged to the single outer ledger.
        assert_eq!(ledger.rounds(), 3);
        assert_eq!(ledger.total_probes(), 3);
        assert!(s.within_budget(&ledger));
        // Best-of over candidates whose distance equals their replica
        // id: the smallest sampled replica wins.
        let min = *s.subsample_for(&q).iter().min().unwrap() as u64;
        assert_eq!(answer.index(), Some(min));
    }

    #[test]
    fn majority_prefers_plurality_and_breaks_ties_earliest() {
        let s = ensemble(4, 3, Aggregation::Majority);
        let q = Point::from_fn(64, |_| false);
        let picks = s.subsample_for(&q);
        // Fixed inners all answer with distinct indices: a 3-way tie,
        // broken by the earliest pick.
        let (answer, _) = execute(&SoloServable(&s), &q);
        assert_eq!(answer.index(), Some(picks[0] as u64));
    }

    #[test]
    fn budgets_scale_with_sample_not_replicas() {
        let s = ensemble(8, 3, Aggregation::BestOf);
        assert_eq!(s.round_budget(), Some(3));
        assert_eq!(s.probe_budget(), Some(3));
        assert_eq!(s.word_bits(), 64);
        assert!(s.label().starts_with("subsampled[R=8,K=3,best|"));
    }

    #[test]
    fn defended_alg1_end_to_end() {
        // The real defense shape: R independently-built indexes over
        // one dataset (independent sketch coins per replica), wrapped
        // behind Algorithm 1. Identical queries stay byte-identical
        // and the planted neighbor is still found.
        let mut rng = StdRng::seed_from_u64(11);
        let inst = gen::planted(96, 128, 4, &mut rng);
        let ds: Dataset = inst.dataset;
        let inners: Vec<Arc<dyn ServableScheme>> = (0..4u64)
            .map(|i| {
                let index = crate::concrete::AnnIndex::build(
                    ds.clone(),
                    anns_sketch::SketchParams::practical(2.0, 100 + i),
                    crate::concrete::BuildOptions::default(),
                );
                Arc::new(crate::serve::ServeAlg1 {
                    index: Arc::new(index),
                    k: 2,
                    tau_override: None,
                }) as Arc<dyn ServableScheme>
            })
            .collect();
        let s = SubsampledRepetition::new(inners, 2, 7, Aggregation::BestOf).expect("ensemble");
        let q = inst.query;
        let (a1, l1) = execute(&SoloServable(&s), &q);
        let (a2, l2) = execute(&SoloServable(&s), &q);
        assert_eq!(a1, a2);
        assert_eq!(l1, l2);
        assert_eq!(a1.index(), Some(inst.planted_index as u64));
        assert!(s.within_budget(&l1));
    }
}
