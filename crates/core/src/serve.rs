//! The serving surface: one object-safe trait over every query scheme.
//!
//! The paper's algorithms differ in answer shape (`QueryOutcome` for
//! Algorithms 1/2, `LambdaAnswer` for the 1-probe λ-ANNS scheme, a bare
//! candidate for the LSH/linear baselines) and in configuration (round
//! budget `k`, `Alg2Config`, λ). A serving engine wants none of that
//! variety: it holds *instances* behind one trait-object surface, routes
//! `Point` queries at them, and accounts every probe through the same
//! [`RoundExecutor`]. [`ServableScheme`] is that surface, and
//! [`ServedAnswer`] the unified answer.
//!
//! The trait also declares the scheme's *budgets* — the round count `k`
//! and worst-case probe total the paper's theorems promise — so an engine
//! can track budget adherence as a first-class served metric (the
//! adaptive-distance-estimation and adversarially-robust-ANN lines of work
//! make exactly this accounting the object of study; see `PAPERS.md`).
//!
//! [`RoundExecutor`]: anns_cellprobe::RoundExecutor

use std::sync::Arc;

use anns_cellprobe::{CellProbeScheme, ProbeLedger, RoundExecutor, Table};
use anns_hamming::Point;

use crate::alg1::{alg1, choose_tau_alg1};
use crate::alg2::{alg2, Alg2Config};
use crate::concrete::AnnIndex;
use crate::instance::AnnsInstance;
use crate::lambda::{lambda_ann, lambda_scale, LambdaAnswer};
use crate::outcome::QueryOutcome;

/// A candidate neighbor returned by a baseline scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Candidate {
    /// Database index of the candidate.
    pub index: u64,
    /// Its Hamming distance from the query.
    pub distance: u32,
}

/// The unified answer type served by any [`ServableScheme`].
#[derive(Clone, Debug, PartialEq)]
pub enum ServedAnswer {
    /// An Algorithm 1/2 outcome.
    Outcome(QueryOutcome),
    /// A λ-ANNS answer.
    Lambda(LambdaAnswer),
    /// A best-candidate answer (LSH, linear scan); `None` = nothing found.
    Candidate(Option<Candidate>),
}

impl ServedAnswer {
    /// The returned database point index, if the query succeeded.
    pub fn index(&self) -> Option<u64> {
        match self {
            ServedAnswer::Outcome(o) => o.index(),
            ServedAnswer::Lambda(LambdaAnswer::Neighbor { index, .. }) => Some(*index),
            ServedAnswer::Lambda(LambdaAnswer::No) => None,
            ServedAnswer::Candidate(c) => c.map(|c| c.index),
        }
    }
}

/// An index instance servable behind a trait object: table oracle, declared
/// word size, declared budgets, and the query algorithm itself.
///
/// This is the object-safe sibling of [`CellProbeScheme`], with the query
/// type fixed to [`Point`] and the answer unified to [`ServedAnswer`];
/// [`SoloServable`] bridges back so servable instances run through the
/// ordinary `execute`/`run_batch` machinery too.
pub trait ServableScheme: Send + Sync {
    /// Display label for registry listings and reports, e.g. `alg1[k=3]`.
    fn label(&self) -> String;

    /// Forces any deferred loading this scheme carries (mmap-backed
    /// shards verify and decode their payload at first touch), returning
    /// the latched fault if the backing bytes are damaged. Eagerly
    /// loaded schemes are always ready. Engines call this before
    /// routing a query so corruption surfaces as a typed serve error
    /// rather than a panic mid-probe.
    fn ready(&self) -> Result<(), anns_store::PayloadFault> {
        Ok(())
    }

    /// The table oracle this scheme probes.
    fn table(&self) -> &dyn Table;

    /// Declared word size `w` in bits; enforced by the executor.
    fn word_bits(&self) -> u64;

    /// The query dimension this scheme expects (`None` if it accepts any
    /// [`Point`]). Serving layers use it to validate that one workload
    /// can be routed across a set of shards.
    fn query_dim(&self) -> Option<u32> {
        None
    }

    /// Declared round budget (`k`), if the scheme commits to one.
    fn round_budget(&self) -> Option<u32> {
        None
    }

    /// Declared worst-case total-probe budget, if the scheme commits to
    /// one.
    fn probe_budget(&self) -> Option<u64> {
        None
    }

    /// Whether an execution's accounting stayed within the declared
    /// budgets (`true` when no budget is declared). The single verdict
    /// every serving/benching surface reports, so they cannot drift.
    fn within_budget(&self, ledger: &ProbeLedger) -> bool {
        self.round_budget()
            .is_none_or(|k| ledger.rounds() as u32 <= k)
            && self
                .probe_budget()
                .is_none_or(|t| ledger.total_probes() as u64 <= t)
    }

    /// The query algorithm. All table access must go through `exec`.
    fn serve(&self, query: &Point, exec: &mut RoundExecutor<'_>) -> ServedAnswer;

    /// The scheme's persistent form for the binary store
    /// ([`crate::store`]), or `None` if it cannot be persisted (ad-hoc
    /// test schemes). `Registry::save_bundle` fails loudly on `None`
    /// rather than writing a bundle that silently drops shards.
    fn stored(&self) -> Option<crate::store::StoredScheme> {
        None
    }
}

/// [`CellProbeScheme`] adapter over a servable instance, so the solo
/// execution paths (`execute_with`, `run_one`, `run_batch`) and the
/// engine's coalesced path run *the same object* — the engine's
/// equivalence audits compare exactly these two executions.
pub struct SoloServable<'a>(pub &'a dyn ServableScheme);

impl CellProbeScheme for SoloServable<'_> {
    type Query = Point;
    type Answer = ServedAnswer;

    fn table(&self) -> &dyn Table {
        self.0.table()
    }

    fn word_bits(&self) -> u64 {
        self.0.word_bits()
    }

    fn run(&self, query: &Point, exec: &mut RoundExecutor<'_>) -> ServedAnswer {
        self.0.serve(query, exec)
    }
}

/// Algorithm 1 over a built [`AnnIndex`], served at a fixed round budget.
pub struct ServeAlg1 {
    /// The built index (shared with any other schemes serving it).
    pub index: Arc<AnnIndex>,
    /// Round budget `k ≥ 1`.
    pub k: u32,
    /// Optional grid-width override (see [`alg1`]).
    pub tau_override: Option<u32>,
}

impl ServableScheme for ServeAlg1 {
    fn label(&self) -> String {
        match self.tau_override {
            Some(tau) => format!("alg1[k={},tau={tau}]", self.k),
            None => format!("alg1[k={}]", self.k),
        }
    }

    fn table(&self) -> &dyn Table {
        crate::instance::AnnsInstance::table(&*self.index)
    }

    fn word_bits(&self) -> u64 {
        crate::instance::AnnsInstance::word_bits(&*self.index)
    }

    fn query_dim(&self) -> Option<u32> {
        Some(self.index.dataset().dim())
    }

    fn round_budget(&self) -> Option<u32> {
        Some(self.k)
    }

    fn probe_budget(&self) -> Option<u64> {
        // k rounds of ≤ τ−1 probes, plus the two degenerate-case probes
        // riding along in round 1 (§3.1).
        let tau = self
            .tau_override
            .unwrap_or_else(|| choose_tau_alg1(self.index.top(), self.k));
        Some(u64::from(self.k) * u64::from(tau - 1) + 2)
    }

    fn serve(&self, query: &Point, exec: &mut RoundExecutor<'_>) -> ServedAnswer {
        ServedAnswer::Outcome(alg1(&*self.index, query, self.k, self.tau_override, exec))
    }

    fn stored(&self) -> Option<crate::store::StoredScheme> {
        Some(crate::store::StoredScheme::Core {
            index: Arc::clone(&self.index),
            spec: crate::store::SchemeSpec::Alg1 {
                k: self.k,
                tau_override: self.tau_override,
            },
        })
    }
}

/// Algorithm 2 over a built [`AnnIndex`].
pub struct ServeAlg2 {
    /// The built index.
    pub index: Arc<AnnIndex>,
    /// Algorithm configuration (round budget, constant `c`).
    pub config: Alg2Config,
}

impl ServableScheme for ServeAlg2 {
    fn label(&self) -> String {
        format!("alg2[k={}]", self.config.k)
    }

    fn table(&self) -> &dyn Table {
        crate::instance::AnnsInstance::table(&*self.index)
    }

    fn word_bits(&self) -> u64 {
        crate::instance::AnnsInstance::word_bits(&*self.index)
    }

    fn query_dim(&self) -> Option<u32> {
        Some(self.index.dataset().dim())
    }

    fn round_budget(&self) -> Option<u32> {
        Some(self.config.k)
    }

    fn serve(&self, query: &Point, exec: &mut RoundExecutor<'_>) -> ServedAnswer {
        ServedAnswer::Outcome(alg2(&*self.index, query, &self.config, exec))
    }

    fn stored(&self) -> Option<crate::store::StoredScheme> {
        Some(crate::store::StoredScheme::Core {
            index: Arc::clone(&self.index),
            spec: crate::store::SchemeSpec::Alg2(self.config),
        })
    }
}

/// The 1-probe λ-ANNS scheme (Theorem 11) over a built [`AnnIndex`].
pub struct ServeLambda {
    /// The built index.
    pub index: Arc<AnnIndex>,
    /// The distance threshold λ.
    pub lambda: f64,
}

impl ServableScheme for ServeLambda {
    fn label(&self) -> String {
        format!("lambda[{}]", self.lambda)
    }

    fn table(&self) -> &dyn Table {
        crate::instance::AnnsInstance::table(&*self.index)
    }

    fn word_bits(&self) -> u64 {
        crate::instance::AnnsInstance::word_bits(&*self.index)
    }

    fn query_dim(&self) -> Option<u32> {
        Some(self.index.dataset().dim())
    }

    fn round_budget(&self) -> Option<u32> {
        Some(1)
    }

    fn probe_budget(&self) -> Option<u64> {
        Some(1)
    }

    fn serve(&self, query: &Point, exec: &mut RoundExecutor<'_>) -> ServedAnswer {
        let scale = lambda_scale(
            self.lambda,
            self.index.family().alpha(),
            self.index.family().top(),
        );
        ServedAnswer::Lambda(lambda_ann(&*self.index, query, scale, exec))
    }

    fn stored(&self) -> Option<crate::store::StoredScheme> {
        Some(crate::store::StoredScheme::Core {
            index: Arc::clone(&self.index),
            spec: crate::store::SchemeSpec::Lambda {
                lambda: self.lambda,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anns_cellprobe::{execute, execute_with, ExecOptions};
    use anns_hamming::gen;
    use anns_sketch::SketchParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn planted() -> (Arc<AnnIndex>, Point, usize) {
        let mut rng = StdRng::seed_from_u64(40);
        let inst = gen::planted(128, 256, 6, &mut rng);
        let index = AnnIndex::build(
            inst.dataset,
            SketchParams::practical(2.0, 40),
            crate::concrete::BuildOptions::default(),
        );
        (Arc::new(index), inst.query, inst.planted_index)
    }

    #[test]
    fn servable_alg1_matches_direct_query() {
        let (index, query, needle) = planted();
        let servable = ServeAlg1 {
            index: Arc::clone(&index),
            k: 3,
            tau_override: None,
        };
        let (answer, ledger) = execute(&SoloServable(&servable), &query);
        let (direct, direct_ledger) = index.query(&query, 3);
        assert_eq!(answer, ServedAnswer::Outcome(direct));
        assert_eq!(ledger, direct_ledger);
        assert_eq!(answer.index(), Some(needle as u64));
        assert!(ledger.rounds() as u32 <= servable.round_budget().unwrap());
        assert!(ledger.total_probes() as u64 <= servable.probe_budget().unwrap());
        assert_eq!(servable.label(), "alg1[k=3]");
    }

    #[test]
    fn servable_alg2_matches_direct_query() {
        let (index, query, needle) = planted();
        let servable = ServeAlg2 {
            index: Arc::clone(&index),
            config: Alg2Config::with_k(8),
        };
        let (answer, ledger) = execute(&SoloServable(&servable), &query);
        let (direct, direct_ledger) = index.query_alg2(&query, Alg2Config::with_k(8));
        assert_eq!(answer, ServedAnswer::Outcome(direct));
        assert_eq!(ledger, direct_ledger);
        assert_eq!(answer.index(), Some(needle as u64));
    }

    #[test]
    fn servable_lambda_is_one_probe() {
        let (index, query, _) = planted();
        let servable = ServeLambda {
            index: Arc::clone(&index),
            lambda: 6.0,
        };
        let (answer, ledger, _) = execute_with(
            &SoloServable(&servable),
            &query,
            ExecOptions::with_transcript(),
        );
        assert_eq!(ledger.total_probes(), 1);
        assert_eq!(ledger.rounds(), 1);
        let (direct, _) = index.query_lambda(&query, 6.0);
        assert_eq!(answer, ServedAnswer::Lambda(direct));
    }

    #[test]
    fn budgets_are_declared() {
        let (index, _, _) = planted();
        let a1 = ServeAlg1 {
            index: Arc::clone(&index),
            k: 2,
            tau_override: None,
        };
        assert_eq!(a1.round_budget(), Some(2));
        assert!(a1.probe_budget().unwrap() >= 4);
        let l = ServeLambda { index, lambda: 4.0 };
        assert_eq!((l.round_budget(), l.probe_budget()), (Some(1), Some(1)));
    }
}
