//! Limited-adaptivity approximate nearest neighbor search.
//!
//! This crate is the paper's primary contribution, implemented end to end:
//!
//! * [`alg1`](mod@alg1) — **Algorithm 1** (Theorem 2/9): the simple `k`-round scheme
//!   with `O(k·(log d)^{1/k})` probes — a multi-way search over the ball
//!   scales `0..⌈log_α d⌉` driven solely by the accurate ball
//!   approximations `C_i`;
//! * [`alg2`](mod@alg2) — **Algorithm 2** (Theorem 3/10): the sophisticated scheme for
//!   large `k` with `O(k + ((log d)/k)^{c/k})` probes — shrinking *phases*
//!   of at most two rounds, using grouped coarse-ball queries `D_{i,j}`
//!   through auxiliary tables to either shrink the scale gap by a `τ`
//!   factor or shrink `|C_u|` by `n^{-1/2s}`;
//! * [`lambda`] — the folklore 1-probe scheme for the approximate λ-near
//!   neighbor *search* problem (Theorem 11);
//! * [`concrete`] — [`concrete::AnnIndex`], the real-data backend: lazy
//!   table oracles over database sketches (substitution S1 of `DESIGN.md`),
//!   perfect-hash degenerate-case structures, build + query API;
//! * [`synthetic`] — [`synthetic::SyntheticInstance`], the asymptotic-scale
//!   backend: the same algorithms run against a specified ball profile
//!   (substitution S4), so probe/round accounting is measurable for `d` far
//!   beyond anything storable;
//! * [`instance`] — the [`instance::AnnsInstance`] trait both backends
//!   implement; the algorithms are generic over it;
//! * [`outcome`] — answers, cell-content codecs shared by the algorithm
//!   (decode) and the table oracles (encode);
//! * [`serve`] — the object-safe [`serve::ServableScheme`] surface the
//!   `anns-engine` serving subsystem holds instances behind, with
//!   adapters for Algorithm 1/2 and λ-ANNS over a built index;
//! * [`subsample`] — [`subsample::SubsampledRepetition`], independent
//!   repetition with per-query subsampling: the adaptive-adversary
//!   defense as a wrapper over any servable schemes (see
//!   `docs/ROBUSTNESS.md`).
//!
//! All schemes speak the [`anns_cellprobe`] model: probes go through a
//! `RoundExecutor`, rounds and probes are charged to a `ProbeLedger`, word
//! sizes are enforced.
//!
//! Where the paper's names live in code: **Algorithm 1** is
//! [`alg1::alg1`] (served as [`serve::ServeAlg1`], persisted as
//! `store::SchemeSpec::Alg1`); **Algorithm 2** is [`alg2::alg2`] under an
//! [`alg2::Alg2Config`] (served as [`serve::ServeAlg2`]); the **λ-ANNS**
//! 1-probe scheme of Theorem 11 is [`lambda::lambda_ann`] (served as
//! [`serve::ServeLambda`]).
//!
//! # Example
//!
//! Build an index over a planted instance and query it with Algorithm 1
//! at round budget `k = 2`:
//!
//! ```
//! use anns_core::{AnnIndex, BuildOptions};
//! use anns_hamming::gen;
//! use anns_sketch::SketchParams;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let planted = gen::planted(64, 128, 4, &mut rng);
//! let index = AnnIndex::build(
//!     planted.dataset,
//!     SketchParams::practical(2.0, 7),
//!     BuildOptions::default(),
//! );
//! let (outcome, ledger) = index.query(&planted.query, 2); // Algorithm 1, k = 2
//! assert!(index.verify_gamma(&planted.query, &outcome));
//! assert!(ledger.rounds() <= 2);
//! ```

pub mod alg1;
pub mod alg2;
pub mod boosted;
pub mod concrete;
pub mod instance;
pub mod lambda;
pub mod outcome;
pub mod serve;
pub mod store;
pub mod subsample;
pub mod synthetic;

pub use alg1::{alg1, choose_tau_alg1, Alg1Scheme};
pub use alg2::{alg2, alg2_s, choose_tau_alg2, Alg2Config, Alg2Scheme};
pub use boosted::{BoostedIndex, BoostedLedger};
pub use concrete::{AnnIndex, BuildOptions, ErasureModel, IndexSnapshot};
pub use instance::{AnnsInstance, AuxGroupSpec};
pub use lambda::{lambda_ann, lambda_scale, LambdaScheme};
pub use outcome::{OutcomeKind, QueryOutcome};
pub use serve::{
    Candidate, ServableScheme, ServeAlg1, ServeAlg2, ServeLambda, ServedAnswer, SoloServable,
};
pub use store::{SchemeSpec, StoredScheme};
pub use subsample::{Aggregation, SubsampledRepetition, REPLICA_STRIDE};
pub use synthetic::{ErrorModel, SyntheticInstance, SyntheticProfile};
