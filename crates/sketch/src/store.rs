//! Binary store codecs for the sketching machinery.
//!
//! A persisted index must reproduce its sampled randomness *bit for bit*:
//! the sketch family is the public coins of the instance, and re-sampling
//! from the seed would tie old artifacts to the private stream of
//! whatever `rand` ships with a future build. So the matrices, thresholds
//! and database sketches are all stored literally; the seed rides along
//! inside [`SketchParams`] as provenance, not as the decode path.

use anns_store::{encode_slice, ByteReader, ByteWriter, Codec, StoreError};

use crate::delta::ThresholdMode;
use crate::family::{DbSketches, SketchFamily, SketchParams};
use crate::matrix::{Sketch, SketchMatrix};

impl Codec for ThresholdMode {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(match self {
            ThresholdMode::Midpoint => 0,
            ThresholdMode::LiteralDelta => 1,
        });
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        match r.u8()? {
            0 => Ok(ThresholdMode::Midpoint),
            1 => Ok(ThresholdMode::LiteralDelta),
            other => Err(StoreError::Malformed(format!("threshold mode {other}"))),
        }
    }
}

impl Codec for SketchParams {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_f64(self.gamma);
        w.put_f64(self.c1);
        w.put_f64(self.c2);
        w.put_f64(self.s);
        self.threshold_mode.encode(w);
        w.put_u64(self.seed);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(SketchParams {
            gamma: r.f64()?,
            c1: r.f64()?,
            c2: r.f64()?,
            s: r.f64()?,
            threshold_mode: ThresholdMode::decode(r)?,
            seed: r.u64()?,
        })
    }
}

impl Codec for Sketch {
    fn encode(&self, w: &mut ByteWriter) {
        self.as_point().encode(w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(Sketch::from_point(anns_hamming::Point::decode(r)?))
    }
}

impl Codec for SketchMatrix {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.dim());
        w.put_f64(self.density());
        encode_slice(self.row_points(), w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let dim = r.u32()?;
        let density = r.f64()?;
        let rows = Vec::decode(r)?;
        SketchMatrix::from_parts(dim, density, rows).map_err(StoreError::Malformed)
    }
}

impl Codec for SketchFamily {
    fn encode(&self, w: &mut ByteWriter) {
        self.params().encode(w);
        w.put_u32(self.dim());
        w.put_u64(self.n() as u64);
        encode_slice(self.m_matrices(), w);
        encode_slice(self.n_matrices(), w);
        encode_slice(self.m_thresholds(), w);
        encode_slice(self.n_thresholds(), w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let params = SketchParams::decode(r)?;
        let dim = r.u32()?;
        let n = usize::decode(r)?;
        let m_mats = Vec::decode(r)?;
        let n_mats = Vec::decode(r)?;
        let m_thresholds = Vec::decode(r)?;
        let n_thresholds = Vec::decode(r)?;
        SketchFamily::from_parts(params, dim, n, m_mats, n_mats, m_thresholds, n_thresholds)
            .map_err(StoreError::Malformed)
    }
}

impl Codec for DbSketches {
    fn encode(&self, w: &mut ByteWriter) {
        encode_slice(self.m_scales(), w);
        encode_slice(self.n_scales(), w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let m = Vec::decode(r)?;
        let n = Vec::decode(r)?;
        DbSketches::from_parts(m, n).map_err(StoreError::Malformed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anns_hamming::{gen, Point};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn params_roundtrip_preserves_every_field() {
        let p = SketchParams {
            gamma: 3.5,
            c1: 11.25,
            c2: 7.0,
            s: 2.5,
            threshold_mode: ThresholdMode::LiteralDelta,
            seed: 0xFEED_FACE,
        };
        let back = SketchParams::from_bytes(&p.to_bytes()).unwrap();
        assert_eq!(back.gamma, p.gamma);
        assert_eq!(back.c1, p.c1);
        assert_eq!(back.c2, p.c2);
        assert_eq!(back.s, p.s);
        assert_eq!(back.seed, p.seed);
        assert!(matches!(back.threshold_mode, ThresholdMode::LiteralDelta));
    }

    #[test]
    fn family_roundtrip_sketches_identically() {
        let params = SketchParams::practical(2.0, 99);
        let family = SketchFamily::generate(128, 64, &params);
        let back = SketchFamily::from_bytes(&family.to_bytes()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let x = Point::random(128, &mut rng);
        assert_eq!(back.top(), family.top());
        for i in 0..=family.top() {
            assert_eq!(back.sketch_m(i, &x), family.sketch_m(i, &x), "M_{i}");
            assert_eq!(back.sketch_n(i, &x), family.sketch_n(i, &x), "N_{i}");
            assert_eq!(back.m_threshold(i), family.m_threshold(i));
            assert_eq!(back.n_threshold(i), family.n_threshold(i));
        }
    }

    #[test]
    fn db_sketches_roundtrip_exactly() {
        let mut rng = StdRng::seed_from_u64(7);
        let ds = gen::uniform(24, 96, &mut rng);
        let params = SketchParams::practical(2.0, 3);
        let family = SketchFamily::generate(96, 24, &params);
        let db = DbSketches::build(&family, &ds, 1);
        let back = DbSketches::from_bytes(&db.to_bytes()).unwrap();
        for i in 0..=family.top() {
            for z in 0..ds.len() {
                assert_eq!(back.m_sketch(i, z), db.m_sketch(i, z));
                assert_eq!(back.n_sketch(i, z), db.n_sketch(i, z));
            }
        }
    }

    #[test]
    fn structural_violations_are_malformed() {
        // A family whose scale lists disagree with its dimension.
        let params = SketchParams::practical(2.0, 1);
        let family = SketchFamily::generate(64, 16, &params);
        let mut w = ByteWriter::new();
        family.params().encode(&mut w);
        w.put_u32(2048); // dimension implying far more scales than stored
        w.put_u64(16);
        encode_slice(family.m_matrices(), &mut w);
        encode_slice(family.n_matrices(), &mut w);
        encode_slice(family.m_thresholds(), &mut w);
        encode_slice(family.n_thresholds(), &mut w);
        assert!(matches!(
            SketchFamily::from_bytes(&w.into_bytes()),
            Err(StoreError::Malformed(_))
        ));
        // Mismatched db-sketch scale lists.
        let mut w = ByteWriter::new();
        vec![Vec::<Sketch>::new()].encode(&mut w);
        Vec::<Vec<Sketch>>::new().encode(&mut w);
        assert!(matches!(
            DbSketches::from_bytes(&w.into_bytes()),
            Err(StoreError::Malformed(_))
        ));
    }
}
