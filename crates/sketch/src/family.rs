//! The full sketch family of an ANNS instance, plus database-side sketches.
//!
//! [`SketchFamily`] bundles everything Definition 7 samples once per
//! instance: the accurate matrices `M_0 … M_top`, the coarse matrices
//! `N_0 … N_top` (`top = ⌈log_α d⌉`), and the integer acceptance thresholds
//! per scale. In the public-coin presentation (paper §2, substitution S3 of
//! `DESIGN.md`) this family *is* the shared randomness `r`: both the
//! cell-probing algorithm and the table oracle hold it, reconstructed
//! deterministically from a seed.
//!
//! [`DbSketches`] holds the table side's precomputation: the sketches of
//! every database point under every matrix. Lazy table oracles answer a
//! probed address by scanning these sketches — the `C_i` / `D_{i,j}`
//! membership oracles at the bottom of this file.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use anns_hamming::{ceil_log_alpha, Dataset, Point};

use crate::delta::{threshold_fraction, ThresholdMode};
use crate::matrix::{Sketch, SketchMatrix};

/// Parameters of the sketch family (the constants of Definition 7).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SketchParams {
    /// Approximation ratio `γ > 1` (paper assumes `γ < 4` wlog; `α = √γ`).
    pub gamma: f64,
    /// Accurate matrices have `c₁·log₂ n` rows.
    pub c1: f64,
    /// Coarse matrices have `(c₂/s)·log₂ n` rows.
    pub c2: f64,
    /// The paper's round-group parameter `1 < s < ln ln n` (Algorithm 2);
    /// also divides the coarse row count.
    pub s: f64,
    /// Threshold rule (midpoint in normal operation; literal for ablation).
    pub threshold_mode: ThresholdMode,
    /// Seed of the public randomness.
    pub seed: u64,
}

impl SketchParams {
    /// Laptop-scale defaults: constants far below the paper's union-bound
    /// values but validated empirically by experiment E5 (the sandwich
    /// holds with probability ≫ 3/4 at the n we run).
    pub fn practical(gamma: f64, seed: u64) -> Self {
        SketchParams {
            gamma,
            c1: 24.0,
            c2: 24.0,
            s: 2.0,
            threshold_mode: ThresholdMode::Midpoint,
            seed,
        }
    }

    /// Asymptotically sufficient constants: `c₁` chosen numerically so the
    /// union bound over all points and scales is below `1/8` (the paper's
    /// Lemma 8 targets overall failure ≤ 1/4 across both conditions).
    pub fn paper(gamma: f64, n: usize, d: u64, seed: u64) -> Self {
        let alpha = gamma.sqrt();
        let c = crate::delta::recommended_c1(n, d, alpha, 1.0 / 8.0);
        SketchParams {
            gamma,
            c1: c,
            c2: c,
            s: 2.0,
            threshold_mode: ThresholdMode::Midpoint,
            seed,
        }
    }

    /// `α = √γ`.
    pub fn alpha(&self) -> f64 {
        self.gamma.sqrt()
    }
}

/// The sampled public randomness: matrices and thresholds for every scale.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SketchFamily {
    params: SketchParams,
    dim: u32,
    n: usize,
    top: u32,
    m_mats: Vec<SketchMatrix>,
    n_mats: Vec<SketchMatrix>,
    m_thresholds: Vec<u32>,
    n_thresholds: Vec<u32>,
}

impl SketchFamily {
    /// Samples the family for an instance of dimension `d` and database
    /// size `n`, deterministically from `params.seed`.
    pub fn generate(d: u32, n: usize, params: &SketchParams) -> Self {
        assert!(d >= 2, "dimension must be at least 2");
        assert!(n >= 2, "database size must be at least 2");
        assert!(params.gamma > 1.0, "gamma must exceed 1");
        assert!(params.s >= 1.0, "s must be at least 1");
        let alpha = params.alpha();
        let top = ceil_log_alpha(d as u64, alpha);
        let log2n = (n as f64).log2();
        let m_rows = ((params.c1 * log2n).ceil() as u32).max(8);
        let n_rows = (((params.c2 / params.s) * log2n).ceil() as u32).max(4);
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut m_mats = Vec::with_capacity(top as usize + 1);
        let mut n_mats = Vec::with_capacity(top as usize + 1);
        let mut m_thresholds = Vec::with_capacity(top as usize + 1);
        let mut n_thresholds = Vec::with_capacity(top as usize + 1);
        for i in 0..=top {
            let beta = alpha.powi(i as i32);
            let p = 1.0 / (4.0 * beta);
            m_mats.push(SketchMatrix::sample(m_rows, d, p, &mut rng));
            let theta = threshold_fraction(beta, alpha, params.threshold_mode);
            m_thresholds.push((theta * m_rows as f64).floor() as u32);
        }
        for j in 0..=top {
            let beta = alpha.powi(j as i32);
            let p = 1.0 / (4.0 * beta);
            n_mats.push(SketchMatrix::sample(n_rows, d, p, &mut rng));
            let theta = threshold_fraction(beta, alpha, params.threshold_mode);
            n_thresholds.push((theta * n_rows as f64).floor() as u32);
        }
        SketchFamily {
            params: *params,
            dim: d,
            n,
            top,
            m_mats,
            n_mats,
            m_thresholds,
            n_thresholds,
        }
    }

    /// Reassembles a family from its sampled parts (the store decode
    /// path). Validates every structural invariant `generate` establishes;
    /// returns a description of the violated one on inconsistency.
    pub fn from_parts(
        params: SketchParams,
        dim: u32,
        n: usize,
        m_mats: Vec<SketchMatrix>,
        n_mats: Vec<SketchMatrix>,
        m_thresholds: Vec<u32>,
        n_thresholds: Vec<u32>,
    ) -> Result<Self, String> {
        if dim < 2 || n < 2 {
            return Err(format!("family needs d ≥ 2 and n ≥ 2, got d={dim}, n={n}"));
        }
        if params.gamma <= 1.0 || params.gamma.is_nan() || params.s < 1.0 {
            return Err(format!(
                "family params out of range: gamma={}, s={}",
                params.gamma, params.s
            ));
        }
        let top = ceil_log_alpha(dim as u64, params.alpha());
        let scales = top as usize + 1;
        if m_mats.len() != scales
            || n_mats.len() != scales
            || m_thresholds.len() != scales
            || n_thresholds.len() != scales
        {
            return Err(format!(
                "family scale mismatch: expected {scales} scales, got {}/{}/{}/{} entries",
                m_mats.len(),
                n_mats.len(),
                m_thresholds.len(),
                n_thresholds.len()
            ));
        }
        if let Some(bad) = m_mats.iter().chain(n_mats.iter()).find(|m| m.dim() != dim) {
            return Err(format!("matrix dimension {} != family {dim}", bad.dim()));
        }
        if m_mats.iter().any(|m| m.rows() != m_mats[0].rows())
            || n_mats.iter().any(|m| m.rows() != n_mats[0].rows())
        {
            return Err("matrices of one kind must share a row count".into());
        }
        Ok(SketchFamily {
            params,
            dim,
            n,
            top,
            m_mats,
            n_mats,
            m_thresholds,
            n_thresholds,
        })
    }

    /// The accurate matrices `M_0 … M_top` (the store encode path).
    pub fn m_matrices(&self) -> &[SketchMatrix] {
        &self.m_mats
    }

    /// The coarse matrices `N_0 … N_top`.
    pub fn n_matrices(&self) -> &[SketchMatrix] {
        &self.n_mats
    }

    /// All accurate acceptance thresholds, scale order.
    pub fn m_thresholds(&self) -> &[u32] {
        &self.m_thresholds
    }

    /// All coarse acceptance thresholds, scale order.
    pub fn n_thresholds(&self) -> &[u32] {
        &self.n_thresholds
    }

    /// The parameters the family was generated with.
    pub fn params(&self) -> &SketchParams {
        &self.params
    }

    /// `α = √γ`.
    pub fn alpha(&self) -> f64 {
        self.params.alpha()
    }

    /// Top scale index `⌈log_α d⌉`.
    pub fn top(&self) -> u32 {
        self.top
    }

    /// Ambient dimension.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Database size the row counts were derived from.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Rows per accurate matrix (`c₁·log₂ n`).
    pub fn m_rows(&self) -> u32 {
        self.m_mats[0].rows()
    }

    /// Rows per coarse matrix (`(c₂/s)·log₂ n`).
    pub fn n_rows(&self) -> u32 {
        self.n_mats[0].rows()
    }

    /// Accurate sketch `M_i x`.
    pub fn sketch_m(&self, i: u32, x: &Point) -> Sketch {
        self.m_mats[i as usize].sketch(x)
    }

    /// Coarse sketch `N_j x`.
    pub fn sketch_n(&self, j: u32, x: &Point) -> Sketch {
        self.n_mats[j as usize].sketch(x)
    }

    /// Integer acceptance threshold of the accurate test at scale `i`.
    pub fn m_threshold(&self, i: u32) -> u32 {
        self.m_thresholds[i as usize]
    }

    /// Integer acceptance threshold of the coarse test at scale `j`.
    pub fn n_threshold(&self, j: u32) -> u32 {
        self.n_thresholds[j as usize]
    }

    /// The accurate membership test: does sketch `b` fall within the scale-i
    /// threshold of sketch (= cell address) `a`?
    pub fn m_passes(&self, i: u32, a: &Sketch, b: &Sketch) -> bool {
        a.distance(b) <= self.m_thresholds[i as usize]
    }

    /// The coarse membership test at scale `j`.
    pub fn n_passes(&self, j: u32, a: &Sketch, b: &Sketch) -> bool {
        a.distance(b) <= self.n_thresholds[j as usize]
    }
}

/// Database-side sketches: `sketches_m[i][z] = M_i·B[z]`, likewise for `N_j`.
///
/// This is the table's preprocessing. Memory: `(top+1) · n` sketches of
/// `c₁·log₂ n` bits each — genuinely polynomial, unlike the materialized
/// tables (substitution S1). Serializable, so indices can be snapshotted
/// and reloaded without re-sketching.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DbSketches {
    m: Vec<Vec<Sketch>>,
    n: Vec<Vec<Sketch>>,
}

impl DbSketches {
    /// Sketches every database point under every matrix, parallelizing
    /// across scales with crossbeam scoped threads.
    pub fn build(family: &SketchFamily, dataset: &Dataset, threads: usize) -> Self {
        assert_eq!(dataset.dim(), family.dim(), "dataset/family dimension");
        let scales = family.top() as usize + 1;
        let build_scale_m = |i: usize| -> Vec<Sketch> {
            dataset
                .points()
                .iter()
                .map(|z| family.sketch_m(i as u32, z))
                .collect()
        };
        let build_scale_n = |j: usize| -> Vec<Sketch> {
            dataset
                .points()
                .iter()
                .map(|z| family.sketch_n(j as u32, z))
                .collect()
        };
        if threads <= 1 {
            return DbSketches {
                m: (0..scales).map(build_scale_m).collect(),
                n: (0..scales).map(build_scale_n).collect(),
            };
        }
        // 2·scales independent jobs, sharded over the workers.
        let mut m: Vec<Option<Vec<Sketch>>> = vec![None; scales];
        let mut n: Vec<Option<Vec<Sketch>>> = vec![None; scales];
        let jobs: Vec<(usize, bool, &mut Option<Vec<Sketch>>)> = m
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| (i, true, slot))
            .chain(n.iter_mut().enumerate().map(|(j, slot)| (j, false, slot)))
            .collect();
        let workers = threads.min(jobs.len()).max(1);
        let chunk = jobs.len().div_ceil(workers);
        crossbeam::thread::scope(|scope| {
            let mut jobs = jobs;
            while !jobs.is_empty() {
                let batch: Vec<_> = jobs.drain(..chunk.min(jobs.len())).collect();
                scope.spawn(move |_| {
                    for (scale, is_m, slot) in batch {
                        *slot = Some(if is_m {
                            build_scale_m(scale)
                        } else {
                            build_scale_n(scale)
                        });
                    }
                });
            }
        })
        .expect("sketch worker panicked");
        DbSketches {
            m: m.into_iter().map(|v| v.expect("scale not built")).collect(),
            n: n.into_iter().map(|v| v.expect("scale not built")).collect(),
        }
    }

    /// Reassembles database sketches from stored scale vectors (the store
    /// decode path). Both kinds must cover the same scales and points.
    pub fn from_parts(m: Vec<Vec<Sketch>>, n: Vec<Vec<Sketch>>) -> Result<Self, String> {
        if m.is_empty() || m.len() != n.len() {
            return Err(format!(
                "db sketches need matching non-empty scale lists, got {}/{}",
                m.len(),
                n.len()
            ));
        }
        let points = m[0].len();
        if m.iter().any(|v| v.len() != points) || n.iter().any(|v| v.len() != points) {
            return Err("every scale must sketch every database point".into());
        }
        Ok(DbSketches { m, n })
    }

    /// Per-scale accurate sketches (the store encode path).
    pub fn m_scales(&self) -> &[Vec<Sketch>] {
        &self.m
    }

    /// Per-scale coarse sketches.
    pub fn n_scales(&self) -> &[Vec<Sketch>] {
        &self.n
    }

    /// `M_i`-sketch of database point `z`.
    pub fn m_sketch(&self, i: u32, z: usize) -> &Sketch {
        &self.m[i as usize][z]
    }

    /// `N_j`-sketch of database point `z`.
    pub fn n_sketch(&self, j: u32, z: usize) -> &Sketch {
        &self.n[j as usize][z]
    }

    /// Database size.
    pub fn len(&self) -> usize {
        self.m.first().map_or(0, |v| v.len())
    }

    /// Whether there are no points (never true for valid datasets).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Members of `C_i` relative to an address sketch `a` (which is `M_i x`
    /// when the algorithm probes): indices `z` with
    /// `dist(a, M_i z) ≤ threshold_i`.
    pub fn c_members<'a>(
        &'a self,
        family: &'a SketchFamily,
        i: u32,
        addr: &'a Sketch,
    ) -> impl Iterator<Item = usize> + 'a {
        self.m[i as usize]
            .iter()
            .enumerate()
            .filter(move |(_, sz)| family.m_passes(i, addr, sz))
            .map(|(z, _)| z)
    }

    /// First member of `C_i` (the content the paper's `T_i` cell stores), if
    /// any.
    pub fn c_first(&self, family: &SketchFamily, i: u32, addr: &Sketch) -> Option<usize> {
        self.c_members(family, i, addr).next()
    }

    /// `|C_i|` for an address sketch.
    pub fn c_count(&self, family: &SketchFamily, i: u32, addr: &Sketch) -> usize {
        self.c_members(family, i, addr).count()
    }

    /// `|D_{i,j}|` for address sketches `a = M_i x` and `b = N_j x`:
    /// members of `C_i` that also pass the coarse scale-`j` test.
    pub fn d_count(
        &self,
        family: &SketchFamily,
        i: u32,
        j: u32,
        addr_m: &Sketch,
        addr_n: &Sketch,
    ) -> usize {
        self.c_members(family, i, addr_m)
            .filter(|&z| family.n_passes(j, addr_n, self.n_sketch(j, z)))
            .count()
    }

    /// Members of `D_{i,j}` (for validation code).
    pub fn d_members(
        &self,
        family: &SketchFamily,
        i: u32,
        j: u32,
        addr_m: &Sketch,
        addr_n: &Sketch,
    ) -> Vec<usize> {
        self.c_members(family, i, addr_m)
            .filter(|&z| family.n_passes(j, addr_n, self.n_sketch(j, z)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anns_hamming::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const GAMMA: f64 = 2.0;

    fn family_and_ds(seed: u64, n: usize, d: u32) -> (SketchFamily, Dataset, DbSketches) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = gen::uniform(n, d, &mut rng);
        let params = SketchParams::practical(GAMMA, seed ^ 0xABCD);
        let family = SketchFamily::generate(d, n, &params);
        let db = DbSketches::build(&family, &ds, 1);
        (family, ds, db)
    }

    #[test]
    fn generation_is_deterministic_from_seed() {
        let params = SketchParams::practical(GAMMA, 42);
        let f1 = SketchFamily::generate(128, 100, &params);
        let f2 = SketchFamily::generate(128, 100, &params);
        let mut rng = StdRng::seed_from_u64(5);
        let x = Point::random(128, &mut rng);
        for i in 0..=f1.top() {
            assert_eq!(f1.sketch_m(i, &x), f2.sketch_m(i, &x));
            assert_eq!(f1.sketch_n(i, &x), f2.sketch_n(i, &x));
            assert_eq!(f1.m_threshold(i), f2.m_threshold(i));
        }
    }

    #[test]
    fn row_counts_scale_with_log_n() {
        let p = SketchParams::practical(GAMMA, 1);
        let f_small = SketchFamily::generate(64, 16, &p);
        let f_large = SketchFamily::generate(64, 4096, &p);
        assert_eq!(f_small.m_rows(), (24.0f64 * 4.0).ceil() as u32);
        assert_eq!(f_large.m_rows(), (24.0f64 * 12.0).ceil() as u32);
        assert!(f_large.n_rows() > f_small.n_rows());
    }

    #[test]
    fn self_sketch_always_in_c() {
        // A database point probed with its own sketch is a member of C_i
        // for every scale (distance 0 ≤ any threshold).
        let (family, ds, db) = family_and_ds(7, 50, 128);
        for z in [0usize, 17, 49] {
            for i in 0..=family.top() {
                let addr = family.sketch_m(i, ds.point(z));
                assert!(
                    db.c_members(&family, i, &addr).any(|m| m == z),
                    "point {z} missing from its own C_{i}"
                );
            }
        }
    }

    #[test]
    fn top_scale_c_contains_everything() {
        // At scale top, every point is within radius d, i.e. in B_top, and
        // the sandwich (tested at scale) puts B_top ⊆ C_top whp.
        let (family, ds, db) = family_and_ds(8, 60, 128);
        let mut rng = StdRng::seed_from_u64(99);
        let x = Point::random(128, &mut rng);
        let addr = family.sketch_m(family.top(), &x);
        let count = db.c_count(&family, family.top(), &addr);
        assert!(
            count as f64 >= 0.9 * ds.len() as f64,
            "C_top holds {count}/{} points",
            ds.len()
        );
    }

    #[test]
    fn c_membership_separates_planted_from_far() {
        // Planted needle at distance 4 must be in C_i for scales with
        // α^i ≥ 4; uniform points at distance ≈ d/2 must be out of C_i for
        // small i.
        let mut rng = StdRng::seed_from_u64(9);
        let inst = gen::planted(64, 512, 4, &mut rng);
        let params = SketchParams::practical(GAMMA, 11);
        let family = SketchFamily::generate(512, 64, &params);
        let db = DbSketches::build(&family, &inst.dataset, 1);
        let alpha = family.alpha();
        // One scale above ceil(log_α 4), so the needle sits well inside the
        // ball and the per-point Chernoff margin is comfortable at
        // practical row counts (at the boundary scale the margin is only
        // δ/2 and would make this test seed-sensitive).
        let i_in = anns_hamming::ceil_log_alpha(4, alpha) + 1;
        let addr = family.sketch_m(i_in, &inst.query);
        assert!(
            db.c_members(&family, i_in, &addr)
                .any(|z| z == inst.planted_index),
            "needle missing from C_{i_in}"
        );
        // Tiny scale: nothing within distance α^1, so C_1 ⊆ B_2 should be
        // empty (uniform points are at distance ≈ 256).
        let addr1 = family.sketch_m(1, &inst.query);
        assert_eq!(db.c_count(&family, 1, &addr1), 0, "C_1 must be empty");
    }

    #[test]
    fn d_count_bounded_by_c_count() {
        let (family, ds, db) = family_and_ds(10, 80, 128);
        let mut rng = StdRng::seed_from_u64(123);
        let x = Point::random(128, &mut rng);
        let _ = ds;
        for i in (0..=family.top()).step_by(3) {
            let addr_m = family.sketch_m(i, &x);
            for j in (0..=i).step_by(2) {
                let addr_n = family.sketch_n(j, &x);
                let dc = db.d_count(&family, i, j, &addr_m, &addr_n);
                let cc = db.c_count(&family, i, &addr_m);
                assert!(dc <= cc, "D_{{{i},{j}}} larger than C_{i}");
                assert_eq!(dc, db.d_members(&family, i, j, &addr_m, &addr_n).len());
            }
        }
    }

    #[test]
    fn parallel_db_sketches_match_sequential() {
        let mut rng = StdRng::seed_from_u64(13);
        let ds = gen::uniform(40, 96, &mut rng);
        let params = SketchParams::practical(GAMMA, 77);
        let family = SketchFamily::generate(96, 40, &params);
        let seq = DbSketches::build(&family, &ds, 1);
        let par = DbSketches::build(&family, &ds, 8);
        for i in 0..=family.top() {
            for z in 0..ds.len() {
                assert_eq!(seq.m_sketch(i, z), par.m_sketch(i, z));
                assert_eq!(seq.n_sketch(i, z), par.n_sketch(i, z));
            }
        }
    }

    #[test]
    fn paper_params_produce_larger_c1() {
        let practical = SketchParams::practical(GAMMA, 0);
        let paper = SketchParams::paper(GAMMA, 4096, 1024, 0);
        assert!(paper.c1 > practical.c1, "paper c1 {} too small", paper.c1);
    }
}
