//! Sparse Bernoulli GF(2) matrices and sketches.
//!
//! A [`SketchMatrix`] is the paper's `M_i` (or `N_j`): `rows × d` with iid
//! `Bernoulli(p)` entries. A point's [`Sketch`] is the matrix-vector product
//! over GF(2): bit `r` of the sketch is the parity `⟨row_r, x⟩`.
//!
//! Rows are bit-packed [`Point`]s, so sketching costs `rows × d/64`
//! AND+popcount-parity word operations and sketch distances are XOR+popcount
//! — the same hot loop as raw Hamming distances, just in sketch space.
//! Row generation uses geometric skip-sampling, so sparse scales
//! (`p = 1/(4α^i)` decays geometrically in `i`) cost time proportional to
//! the number of set bits rather than to `d`.

use rand::Rng;
use serde::{Deserialize, Serialize};

use anns_hamming::Point;

/// A sketch: the GF(2) image `Mx` of a point, bit-packed.
///
/// Sketches serve two roles: (1) operands of the threshold test, via
/// [`Sketch::distance`]; (2) *cell addresses* in the paper's tables
/// (`T_i[M_i x]`), via [`Sketch::address_bytes`].
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Sketch(Point);

impl Sketch {
    /// Number of sketch bits (matrix rows).
    pub fn bits(&self) -> u32 {
        self.0.dim()
    }

    /// Hamming distance between sketches.
    pub fn distance(&self, other: &Sketch) -> u32 {
        self.0.distance(&other.0)
    }

    /// The sketch as a byte string for use as a table-cell address.
    pub fn address_bytes(&self) -> Vec<u8> {
        self.0
            .limbs()
            .iter()
            .flat_map(|l| l.to_le_bytes())
            .collect()
    }

    /// Access to the underlying bit vector.
    pub fn as_point(&self) -> &Point {
        &self.0
    }

    /// Rebuilds a sketch from its bit vector (for tests / table-side code).
    pub fn from_point(p: Point) -> Self {
        Sketch(p)
    }
}

/// A `rows × d` random GF(2) matrix with iid `Bernoulli(p)` entries.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SketchMatrix {
    dim: u32,
    density: f64,
    rows: Vec<Point>,
}

impl SketchMatrix {
    /// Samples a matrix. `p` is clamped to `[0, 1]`.
    ///
    /// # Panics
    /// Panics if `rows == 0` or `dim == 0`.
    pub fn sample<R: Rng + ?Sized>(rows: u32, dim: u32, p: f64, rng: &mut R) -> Self {
        assert!(rows > 0, "a sketch matrix needs at least one row");
        assert!(dim > 0);
        let p = p.clamp(0.0, 1.0);
        let rows_vec = (0..rows)
            .map(|_| sample_bernoulli_row(dim, p, rng))
            .collect();
        SketchMatrix {
            dim,
            density: p,
            rows: rows_vec,
        }
    }

    /// Reassembles a matrix from its parts (the store decode path).
    /// Returns a description of the violated invariant on inconsistency.
    pub fn from_parts(dim: u32, density: f64, rows: Vec<Point>) -> Result<Self, String> {
        if rows.is_empty() {
            return Err("sketch matrix needs at least one row".into());
        }
        if dim == 0 {
            return Err("sketch matrix dimension 0".into());
        }
        if let Some(bad) = rows.iter().find(|r| r.dim() != dim) {
            return Err(format!(
                "matrix row dimension {} != declared {dim}",
                bad.dim()
            ));
        }
        if !(0.0..=1.0).contains(&density) {
            return Err(format!("matrix density {density} outside [0, 1]"));
        }
        Ok(SketchMatrix { dim, density, rows })
    }

    /// Number of rows (sketch bits produced).
    pub fn rows(&self) -> u32 {
        self.rows.len() as u32
    }

    /// Ambient dimension `d`.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// The Bernoulli density the matrix was sampled with.
    pub fn density(&self) -> f64 {
        self.density
    }

    /// The raw rows.
    pub fn row_points(&self) -> &[Point] {
        &self.rows
    }

    /// Sketches a point: bit `r` is the GF(2) inner product with row `r`.
    ///
    /// # Panics
    /// Panics if the point's dimension does not match the matrix.
    pub fn sketch(&self, x: &Point) -> Sketch {
        assert_eq!(x.dim(), self.dim, "point/matrix dimension mismatch");
        let out = Point::from_fn(self.rows(), |r| {
            self.rows[r as usize].inner_product_parity(x)
        });
        Sketch(out)
    }
}

/// Samples one `Bernoulli(p)` row by geometric skip-sampling: the gap to the
/// next set coordinate is `⌊ln U / ln(1−p)⌋`, costing O(weight) instead of
/// O(d) for sparse rows.
fn sample_bernoulli_row<R: Rng + ?Sized>(dim: u32, p: f64, rng: &mut R) -> Point {
    let mut row = Point::zeros(dim);
    if p <= 0.0 {
        return row;
    }
    if p >= 1.0 {
        return Point::ones(dim);
    }
    let ln_q = (1.0 - p).ln(); // < 0
    let mut pos: u64 = 0;
    loop {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let skip = (u.ln() / ln_q).floor();
        // Guard against pathological f64 values before casting.
        if !skip.is_finite() || skip >= dim as f64 {
            break;
        }
        pos += skip as u64;
        if pos >= dim as u64 {
            break;
        }
        row.set(pos as u32, true);
        pos += 1;
        if pos >= dim as u64 {
            break;
        }
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn density_is_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for &p in &[0.01f64, 0.1, 0.25, 0.5, 0.9] {
            let m = SketchMatrix::sample(200, 500, p, &mut rng);
            let total: u32 = m.row_points().iter().map(|r| r.weight()).sum();
            let expect = 200.0 * 500.0 * p;
            let got = total as f64;
            // 5 sigma of Binomial(100000, p).
            let sigma = (200.0 * 500.0 * p * (1.0 - p)).sqrt();
            assert!(
                (got - expect).abs() < 5.0 * sigma + 5.0,
                "p={p}: got {got}, expect {expect}"
            );
        }
    }

    #[test]
    fn degenerate_densities() {
        let mut rng = StdRng::seed_from_u64(2);
        let zero = SketchMatrix::sample(10, 64, 0.0, &mut rng);
        assert!(zero.row_points().iter().all(|r| r.weight() == 0));
        let one = SketchMatrix::sample(10, 64, 1.0, &mut rng);
        assert!(one.row_points().iter().all(|r| r.weight() == 64));
    }

    #[test]
    fn sketch_is_linear_over_gf2() {
        // sketch(x) XOR sketch(z) = sketch(x XOR z) — linearity of parity.
        let mut rng = StdRng::seed_from_u64(3);
        let m = SketchMatrix::sample(64, 128, 0.2, &mut rng);
        let x = Point::random(128, &mut rng);
        let z = Point::random(128, &mut rng);
        let mut xz = x.clone();
        xz.xor_assign(&z);
        let sx = m.sketch(&x);
        let sz = m.sketch(&z);
        let sxz = m.sketch(&xz);
        let mut combined = sx.as_point().clone();
        combined.xor_assign(sz.as_point());
        assert_eq!(&combined, sxz.as_point());
        // Consequently sketch distance = weight of sketch of difference.
        assert_eq!(sx.distance(&sz), sxz.as_point().weight());
    }

    #[test]
    fn sketch_distance_statistics_match_mismatch_probability() {
        // Points at distance D have sketch distance ≈ f(D)·rows.
        let mut rng = StdRng::seed_from_u64(4);
        let d = 512u32;
        let beta = 16.0f64;
        let p = 1.0 / (4.0 * beta);
        let rows = 4000u32;
        let m = SketchMatrix::sample(rows, d, p, &mut rng);
        let x = Point::random(d, &mut rng);
        for dist in [4u32, 16, 32, 64] {
            let z = anns_hamming::gen::point_at_distance(&x, dist, &mut rng);
            let observed = m.sketch(&x).distance(&m.sketch(&z)) as f64 / rows as f64;
            let expect = crate::delta::mismatch_probability(p, dist as f64);
            let sigma = (expect * (1.0 - expect) / rows as f64).sqrt();
            assert!(
                (observed - expect).abs() < 6.0 * sigma + 0.01,
                "dist={dist}: observed {observed:.4}, expect {expect:.4}"
            );
        }
    }

    #[test]
    fn identical_points_have_zero_sketch_distance() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = SketchMatrix::sample(32, 100, 0.3, &mut rng);
        let x = Point::random(100, &mut rng);
        assert_eq!(m.sketch(&x).distance(&m.sketch(&x)), 0);
    }

    #[test]
    fn address_bytes_injective_on_samples() {
        let mut rng = StdRng::seed_from_u64(6);
        let m = SketchMatrix::sample(96, 200, 0.25, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let x = Point::random(200, &mut rng);
            seen.insert(m.sketch(&x).address_bytes());
        }
        // 96-bit sketches of 200 random points collide with prob ≈ 0.
        assert!(seen.len() >= 199, "unexpected address collisions");
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = SketchMatrix::sample(8, 64, 0.25, &mut rng);
        let x = Point::random(65, &mut rng);
        let _ = m.sketch(&x);
    }
}
