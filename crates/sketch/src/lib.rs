//! The sketching substrate of Definition 7 / Lemma 8.
//!
//! Both of the paper's algorithms (and the 1-probe λ-ANNS scheme) never look
//! at raw points on the table side; they work with randomized GF(2)
//! *sketches* in the style of Kushilevitz–Ostrovsky–Rabani, as assembled by
//! Chakrabarti–Regev and restated in the paper's Definition 7:
//!
//! * for every scale `i = 0..⌈log_α d⌉`, a random matrix `M_i` of
//!   `c₁·log n` rows whose entries are iid `Bernoulli(1/(4α^i))`, giving the
//!   **accurate** ball approximations
//!   `C_i = {z ∈ B : dist(M_i x, M_i z) ≤ threshold_i}` with the sandwich
//!   guarantee `B_i ⊆ C_i ⊆ B_{i+1}` (Lemma 8.1);
//! * coarser matrices `N_j` of `(c₂/s)·log n` rows giving the **coarse**
//!   approximations `D_{i,j} = {z ∈ C_i : dist(N_j x, N_j z) ≤
//!   threshold'_j}` with the `n^{-1/s}` fraction guarantees (Lemma 8.2).
//!
//! Modules:
//! * [`delta`] — the `δ(β,α)` gap function, per-row mismatch probabilities,
//!   and the corrected midpoint thresholds (see `DESIGN.md`, "Threshold
//!   clarification");
//! * [`matrix`] — sparse Bernoulli GF(2) matrices and sketches;
//! * [`family`] — the full family `{M_i}, {N_j}` for an instance, plus
//!   precomputed database sketches and the `C_i` / `D_{i,j}` membership
//!   oracles the lazy tables are built from;
//! * [`validate`] — empirical validation of Lemma 8 (experiment E5).
//!
//! # Example
//!
//! Generate the family `{M_i}, {N_j}` for an instance and sketch a point
//! at the finest scale:
//!
//! ```
//! use anns_hamming::Point;
//! use anns_sketch::{SketchFamily, SketchParams};
//!
//! let params = SketchParams::practical(2.0, 7);
//! // d = 64, n = 128: one accurate matrix M_i per scale 0..=top.
//! let family = SketchFamily::generate(64, 128, &params);
//! assert!(family.top() >= 1);
//!
//! let x = Point::zeros(64);
//! let sketch = family.sketch_m(0, &x);
//! assert_eq!(sketch.bits(), family.m_rows());
//! // Identical sketches always pass the C_i membership threshold.
//! assert!(family.m_passes(0, &sketch, &sketch));
//! ```

pub mod delta;
pub mod family;
pub mod matrix;
pub mod store;
pub mod validate;

pub use delta::{delta_gap, mismatch_probability, threshold_fraction, ThresholdMode};
pub use family::{DbSketches, SketchFamily, SketchParams};
pub use matrix::{Sketch, SketchMatrix};
pub use validate::{
    boundary_workload, validate_fractions, validate_sandwich, FractionReport, SandwichReport,
};
