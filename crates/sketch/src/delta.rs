//! The `δ(β, α)` gap function and sketch-distance thresholds.
//!
//! One row of `M_i` is a random vector `r ∈ {0,1}^d` with iid
//! `Bernoulli(p_i)` entries, `p_i = 1/(4α^i)`; the sketch bit of `x` is the
//! GF(2) inner product `⟨r, x⟩`. For two points at Hamming distance `D` the
//! sketch bits differ iff `r` hits the D differing coordinates an odd number
//! of times:
//!
//! ```text
//!   f_i(D) = P[⟨r,x⟩ ≠ ⟨r,z⟩] = ½·(1 − (1 − 2p_i)^D) = ½·(1 − (1 − 1/(2α^i))^D),
//! ```
//!
//! increasing in `D`. The paper's gap function (Definition 7)
//!
//! ```text
//!   δ(β, α) = ½(1 − 1/(2β))^β · [1 − (1 − 1/(2β))^{(α−1)β}]
//! ```
//!
//! is exactly `f(αβ) − f(β)` at `β = α^i`: the separation between the
//! expected fractional sketch distance of points *inside* `B_i` and points
//! *outside* `B_{i+1}`. The membership test that makes Lemma 8's sandwich
//! work thresholds at the **midpoint** `f_i(α^i) + δ/2`, leaving a `δ/2`
//! Chernoff margin on both sides; the literal reading of Definition 7
//! (threshold = `δ` itself) sits *below* the in-ball mean and rejects
//! everything — kept available as [`ThresholdMode::LiteralDelta`] for the
//! A3 ablation. See `DESIGN.md` § "Threshold clarification".

use serde::{Deserialize, Serialize};

/// How the sketch-distance membership threshold is chosen.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThresholdMode {
    /// Midpoint between in-ball and out-ball means: `f(β) + δ(β,α)/2`.
    /// This is the working rule (used by everything but ablation A3).
    #[default]
    Midpoint,
    /// The literal `δ(β,α)` of the arXiv text — demonstrably broken; kept
    /// for the A3 ablation and the documenting unit test.
    LiteralDelta,
}

/// Per-row sketch-bit mismatch probability `f(D)` for points at Hamming
/// distance `dist`, with matrix density `p` (`p = 1/(4β)` at scale radius β).
///
/// `½·(1 − (1 − 2p)^dist)`.
pub fn mismatch_probability(p: f64, dist: f64) -> f64 {
    assert!((0.0..=0.5).contains(&p), "row density must be in [0, 1/2]");
    assert!(dist >= 0.0);
    0.5 * (1.0 - (1.0 - 2.0 * p).powf(dist))
}

/// The paper's `δ(β, α)` (Definition 7):
/// `½(1−1/(2β))^β·[1−(1−1/(2β))^{(α−1)β}]`.
///
/// Equals `mismatch(p, αβ) − mismatch(p, β)` at `p = 1/(4β)` — the gap
/// between the out-ball and in-ball means (verified by a unit test).
pub fn delta_gap(beta: f64, alpha: f64) -> f64 {
    assert!(beta >= 1.0, "scale radius must be ≥ 1");
    assert!(alpha > 1.0, "alpha must exceed 1");
    let q = (1.0 - 1.0 / (2.0 * beta)).powf(beta);
    0.5 * q * (1.0 - (1.0 - 1.0 / (2.0 * beta)).powf((alpha - 1.0) * beta))
}

/// Fractional sketch-distance threshold for scale radius `beta`: the value
/// `θ` such that `z` is accepted iff `dist(sketch_x, sketch_z) ≤ θ·rows`.
pub fn threshold_fraction(beta: f64, alpha: f64, mode: ThresholdMode) -> f64 {
    let p = 1.0 / (4.0 * beta);
    match mode {
        ThresholdMode::Midpoint => mismatch_probability(p, beta) + 0.5 * delta_gap(beta, alpha),
        ThresholdMode::LiteralDelta => delta_gap(beta, alpha),
    }
}

/// Hoeffding bound on the per-point failure probability of the membership
/// test with `rows` sketch rows and margin `δ(β,α)/2`:
/// `exp(−2·rows·(δ/2)²) = exp(−rows·δ²/2)`.
pub fn per_point_failure_probability(beta: f64, alpha: f64, rows: u32) -> f64 {
    let delta = delta_gap(beta, alpha);
    (-(rows as f64) * delta * delta / 2.0).exp()
}

/// Smallest `c₁` such that `rows = c₁·log₂ n` drives the union bound over
/// all `n` points and all `scales` matrices below `target` total failure
/// probability — the quantitative content of the paper's
/// `c₁ > 64/(1−e^{(1−α)/2})²` requirement, solved numerically instead of
/// loosely. Worst margin is at the largest scale radius (δ decreases to its
/// limit `½e^{−1/2}(1−e^{(1−α)/2})` as β → ∞).
pub fn recommended_c1(n: usize, d: u64, alpha: f64, target: f64) -> f64 {
    assert!(n >= 2 && d >= 2);
    assert!((0.0..1.0).contains(&target) && target > 0.0);
    let log2n = (n as f64).log2();
    let scales = anns_hamming::ceil_log_alpha(d, alpha) as f64 + 1.0;
    // Worst-case (smallest) delta over scales: monotone in β, so check the
    // largest radius.
    let beta_max = alpha.powi(anns_hamming::ceil_log_alpha(d, alpha) as i32);
    let delta = delta_gap(beta_max.max(1.0), alpha);
    // Need n·scales·exp(−c1·log₂n·δ²/2) ≤ target.
    let needed = ((n as f64) * scales / target).ln() * 2.0 / (delta * delta);
    needed / log2n
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALPHA: f64 = std::f64::consts::SQRT_2;

    #[test]
    fn mismatch_probability_limits() {
        assert_eq!(mismatch_probability(0.25, 0.0), 0.0);
        // Dense rows (p = 1/2) give an unbiased coin for any D ≥ 1.
        assert!((mismatch_probability(0.5, 1.0) - 0.5).abs() < 1e-12);
        // Monotone in D.
        let p = 0.01;
        let mut prev = 0.0;
        for d in 1..200 {
            let f = mismatch_probability(p, d as f64);
            assert!(f >= prev);
            prev = f;
        }
        // Approaches 1/2 from below.
        assert!(prev < 0.5);
        assert!(mismatch_probability(p, 1e9) > 0.499999);
    }

    #[test]
    fn delta_is_the_gap_between_means() {
        // δ(β,α) = f(αβ) − f(β) at p = 1/(4β).
        for beta in [1.0f64, 2.0, 5.0, 31.7, 1000.0] {
            let p = 1.0 / (4.0 * beta);
            let gap = mismatch_probability(p, ALPHA * beta) - mismatch_probability(p, beta);
            let delta = delta_gap(beta, ALPHA);
            assert!(
                (gap - delta).abs() < 1e-12,
                "beta={beta}: gap {gap} vs delta {delta}"
            );
        }
    }

    #[test]
    fn delta_limit_matches_paper_constant() {
        // As β → ∞, δ → ½·e^{−1/2}·(1 − e^{(1−α)/2}); the paper's constant
        // c₁ > 64/(1−e^{(1−α)/2})² is the Chernoff requirement built on it.
        let limit = 0.5 * (-0.5f64).exp() * (1.0 - ((1.0 - ALPHA) / 2.0).exp());
        let far = delta_gap(1e7, ALPHA);
        assert!((far - limit).abs() < 1e-4, "far {far} vs limit {limit}");
    }

    #[test]
    fn midpoint_threshold_separates_means() {
        for beta in [1.0f64, 3.0, 10.0, 200.0] {
            let p = 1.0 / (4.0 * beta);
            let theta = threshold_fraction(beta, ALPHA, ThresholdMode::Midpoint);
            let inside = mismatch_probability(p, beta);
            let outside = mismatch_probability(p, ALPHA * beta);
            assert!(inside < theta, "beta={beta}: in-ball mean must pass");
            assert!(outside > theta, "beta={beta}: out-ball mean must fail");
            // Equal margins on both sides (definition of midpoint).
            assert!(((theta - inside) - (outside - theta)).abs() < 1e-12);
        }
    }

    /// Documents the Definition 7 reading issue: the literal δ threshold
    /// sits *below* the in-ball mean, so in expectation it rejects points
    /// that must be accepted for Lemma 8.1 to hold.
    #[test]
    fn literal_delta_threshold_is_below_in_ball_mean() {
        for beta in [2.0f64, 10.0, 100.0] {
            let p = 1.0 / (4.0 * beta);
            let literal = threshold_fraction(beta, ALPHA, ThresholdMode::LiteralDelta);
            let inside = mismatch_probability(p, beta);
            assert!(
                literal < inside,
                "beta={beta}: literal {literal} vs in-ball mean {inside}"
            );
        }
    }

    #[test]
    fn failure_probability_decays_with_rows() {
        let f10 = per_point_failure_probability(10.0, ALPHA, 100);
        let f20 = per_point_failure_probability(10.0, ALPHA, 6000);
        assert!(f20 < f10);
        // rows·δ²/2 ≈ 6000·0.0572²/2 ≈ 9.8 → e^{-9.8} ≈ 5.5e-5.
        assert!(f20 < 1e-3);
    }

    #[test]
    fn recommended_c1_is_sufficient() {
        let n = 4096usize;
        let d = 1024u64;
        let c1 = recommended_c1(n, d, ALPHA, 0.05);
        let rows = (c1 * (n as f64).log2()).ceil() as u32;
        let scales = anns_hamming::ceil_log_alpha(d, ALPHA) as f64 + 1.0;
        let beta_max = ALPHA.powi(anns_hamming::ceil_log_alpha(d, ALPHA) as i32);
        let union = (n as f64) * scales * per_point_failure_probability(beta_max, ALPHA, rows);
        assert!(union <= 0.05 * 1.01, "union bound {union}");
    }
}
