//! Empirical validation of Lemma 8 (experiment E5).
//!
//! Lemma 8 asserts that with probability ≥ 3/4 over the matrices, for
//! *every* scale simultaneously:
//!
//! 1. `B_i ⊆ C_i ⊆ B_{i+1}` (the sandwich), and
//! 2. for all `j ≤ i`, at most an `n^{-1/s}` fraction of `B_j` is missing
//!    from `D_{i,j}`, and at most an `n^{-1/s}` fraction of `C_i \ B_{j+1}`
//!    is present in `D_{i,j}`.
//!
//! The paper's constants (`c₁, c₂ > 64/(1−e^{(1−α)/2})²`) make this hold by
//! union bounds at any `n`; the reproduction runs with much smaller
//! constants and *measures* how often the events hold. This module is that
//! measurement: it evaluates the events exactly (brute-force distances
//! against the dataset) for a sample of queries.

use anns_hamming::{scale_radius, Dataset, Point};
use serde::{Deserialize, Serialize};

use crate::family::{DbSketches, SketchFamily};

/// Outcome of the sandwich validation (Lemma 8, condition 1).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SandwichReport {
    /// Queries evaluated.
    pub trials: usize,
    /// Queries for which the sandwich held at *every* scale.
    pub all_scales_ok: usize,
    /// Per-scale count of lower violations (`z ∈ B_i` but `z ∉ C_i`).
    pub lower_violations: Vec<usize>,
    /// Per-scale count of upper violations (`z ∈ C_i` but `z ∉ B_{i+1}`).
    pub upper_violations: Vec<usize>,
}

impl SandwichReport {
    /// Empirical probability that the sandwich held at all scales.
    pub fn success_rate(&self) -> f64 {
        if self.trials == 0 {
            return 1.0;
        }
        self.all_scales_ok as f64 / self.trials as f64
    }
}

/// Outcome of the fraction validation (Lemma 8, condition 2).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FractionReport {
    /// Queries evaluated.
    pub trials: usize,
    /// `(i, j)` pairs evaluated across all queries (pairs with empty
    /// denominators are skipped).
    pub pairs_checked: usize,
    /// Pairs where the missing-fraction bound (`B_j` side) was violated.
    pub missing_violations: usize,
    /// Pairs where the spurious-fraction bound (`C_i \ B_{j+1}` side) was
    /// violated.
    pub spurious_violations: usize,
    /// Largest observed missing fraction.
    pub max_missing_fraction: f64,
    /// Largest observed spurious fraction.
    pub max_spurious_fraction: f64,
    /// The bound `n^{-1/s}` the fractions are compared against.
    pub bound: f64,
}

/// Validates the sandwich `B_i ⊆ C_i ⊆ B_{i+1}` for each query, exactly.
pub fn validate_sandwich(
    dataset: &Dataset,
    family: &SketchFamily,
    db: &DbSketches,
    queries: &[Point],
) -> SandwichReport {
    let top = family.top();
    let alpha = family.alpha();
    let mut report = SandwichReport {
        trials: queries.len(),
        all_scales_ok: 0,
        lower_violations: vec![0; top as usize + 1],
        upper_violations: vec![0; top as usize + 1],
    };
    for x in queries {
        let mut ok = true;
        // Distances once per query; scales reuse them.
        let dists: Vec<u32> = dataset.points().iter().map(|z| x.distance(z)).collect();
        for i in 0..=top {
            let addr = family.sketch_m(i, x);
            let r_in = scale_radius(i, alpha);
            let r_out = scale_radius(i + 1, alpha);
            let mut lower = false;
            let mut upper = false;
            for (z, &dist) in dists.iter().enumerate() {
                let in_c = family.m_passes(i, &addr, db.m_sketch(i, z));
                if dist <= r_in && !in_c {
                    lower = true;
                }
                if in_c && dist > r_out {
                    upper = true;
                }
            }
            if lower {
                report.lower_violations[i as usize] += 1;
                ok = false;
            }
            if upper {
                report.upper_violations[i as usize] += 1;
                ok = false;
            }
        }
        if ok {
            report.all_scales_ok += 1;
        }
    }
    report
}

/// Validates the `n^{-1/s}` fraction bounds for all `j ≤ i` pairs, exactly.
///
/// `stride` subsamples the `(i, j)` grid (1 = every pair) to keep the
/// O(queries · top² · n) cost manageable in tests.
pub fn validate_fractions(
    dataset: &Dataset,
    family: &SketchFamily,
    db: &DbSketches,
    queries: &[Point],
    stride: usize,
) -> FractionReport {
    let top = family.top();
    let alpha = family.alpha();
    let n = dataset.len() as f64;
    let s = family.params().s;
    let bound = n.powf(-1.0 / s);
    let stride = stride.max(1);
    let mut report = FractionReport {
        trials: queries.len(),
        bound,
        ..FractionReport::default()
    };
    for x in queries {
        let dists: Vec<u32> = dataset.points().iter().map(|z| x.distance(z)).collect();
        for i in (0..=top).step_by(stride) {
            let addr_m = family.sketch_m(i, x);
            let c_members: Vec<usize> = db.c_members(family, i, &addr_m).collect();
            for j in (0..=i).step_by(stride) {
                let addr_n = family.sketch_n(j, x);
                let in_d = |z: usize| family.n_passes(j, &addr_n, db.n_sketch(j, z));
                let r_j = scale_radius(j, alpha);
                let r_j1 = scale_radius(j + 1, alpha);
                // Side 1: fraction of B_j missing from D_{i,j}.
                let b_j: Vec<usize> = (0..dataset.len()).filter(|&z| dists[z] <= r_j).collect();
                if !b_j.is_empty() {
                    report.pairs_checked += 1;
                    let missing = b_j
                        .iter()
                        .filter(|&&z| !(c_members.contains(&z) && in_d(z)))
                        .count();
                    let frac = missing as f64 / b_j.len() as f64;
                    report.max_missing_fraction = report.max_missing_fraction.max(frac);
                    if frac > bound {
                        report.missing_violations += 1;
                    }
                }
                // Side 2: fraction of C_i \ B_{j+1} inside D_{i,j}.
                let outside: Vec<usize> = c_members
                    .iter()
                    .copied()
                    .filter(|&z| dists[z] > r_j1)
                    .collect();
                if !outside.is_empty() {
                    report.pairs_checked += 1;
                    let spurious = outside.iter().filter(|&&z| in_d(z)).count();
                    let frac = spurious as f64 / outside.len() as f64;
                    report.max_spurious_fraction = report.max_spurious_fraction.max(frac);
                    if frac > bound {
                        report.spurious_violations += 1;
                    }
                }
            }
        }
    }
    report
}

/// The adversarial Lemma 8 workload: a database with one point on the
/// *boundary* of every scale ball around the query — exactly where the
/// membership test's Chernoff margin collapses to `δ/2`. Interior points
/// enjoy larger margins; this workload is the worst case per scale, and E5
/// uses it to show where the paper's constants are actually needed.
pub fn boundary_workload<R: rand::Rng + ?Sized>(
    dim: u32,
    alpha: f64,
    rng: &mut R,
) -> (Dataset, Point) {
    let query = Point::random(dim, rng);
    let top = anns_hamming::ceil_log_alpha(u64::from(dim), alpha);
    let mut radii = Vec::new();
    // One point exactly on each scale radius, starting at scale 2
    // (Assumption 1 keeps B_0, B_1 empty).
    for i in 2..=top {
        let r = scale_radius(i, alpha).min(dim);
        if radii.last() != Some(&r) {
            radii.push(r);
        }
    }
    let sizes = vec![1usize; radii.len()];
    (gen_shells(&query, &radii, &sizes, rng), query)
}

// Thin alias so the adversarial builder reads naturally above.
use anns_hamming::gen::shells as gen_shells;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::ThresholdMode;
    use crate::family::SketchParams;
    use anns_hamming::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn boundary_workload_sits_on_every_scale() {
        let mut rng = StdRng::seed_from_u64(31);
        let alpha = std::f64::consts::SQRT_2;
        let (ds, query) = boundary_workload(256, alpha, &mut rng);
        // Every point lies exactly on some scale radius ≥ 2.
        for p in ds.points() {
            let dist = query.distance(p);
            assert!(dist >= 2);
            let i = anns_hamming::ceil_log_alpha(u64::from(dist), alpha);
            assert_eq!(
                scale_radius(i, alpha),
                dist,
                "distance {dist} is not a scale radius"
            );
        }
        // And the profile's first non-empty scale is 2 (Assumption 1 safe).
        let prof = ds.ball_profile(&query, alpha);
        assert!(prof.first_nonempty() >= 2);
    }

    #[test]
    fn boundary_workload_is_harder_than_interior() {
        // At equal constants, the all-scales sandwich fails more often on
        // the boundary workload than on a far-interior one (uniform data:
        // all points near d/2, deep inside the top scales). Averaged over
        // several families to keep the comparison stable.
        let alpha = std::f64::consts::SQRT_2;
        let mut boundary_viol = 0usize;
        let mut interior_viol = 0usize;
        for seed in 0..6u64 {
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let (bds, bq) = boundary_workload(256, alpha, &mut rng);
            let uds = gen::uniform(bds.len(), 256, &mut rng);
            let uq = Point::random(256, &mut rng);
            let params = SketchParams {
                gamma: 2.0,
                c1: 48.0,
                c2: 48.0,
                s: 2.0,
                threshold_mode: ThresholdMode::Midpoint,
                seed: 900 + seed,
            };
            let bfam = SketchFamily::generate(256, bds.len(), &params);
            let bdb = DbSketches::build(&bfam, &bds, 2);
            let br = validate_sandwich(&bds, &bfam, &bdb, &[bq]);
            boundary_viol += br.lower_violations.iter().sum::<usize>()
                + br.upper_violations.iter().sum::<usize>();
            let ufam = SketchFamily::generate(256, uds.len(), &params);
            let udb = DbSketches::build(&ufam, &uds, 2);
            let ur = validate_sandwich(&uds, &ufam, &udb, &[uq]);
            interior_viol += ur.lower_violations.iter().sum::<usize>()
                + ur.upper_violations.iter().sum::<usize>();
        }
        assert!(
            boundary_viol > interior_viol,
            "boundary {boundary_viol} vs interior {interior_viol}"
        );
    }

    #[test]
    fn sandwich_holds_with_paper_constants() {
        // Paper-grade c₁ (solved numerically for this n, d) must deliver the
        // Lemma 8 sandwich with probability ≥ 3/4. n and d are kept small so
        // the large row counts stay cheap in debug builds.
        let mut rng = StdRng::seed_from_u64(21);
        let (n, d) = (64usize, 128u32);
        let ds = gen::uniform(n, d, &mut rng);
        let params = SketchParams::paper(2.0, n, d as u64, 5);
        let family = SketchFamily::generate(d, n, &params);
        let db = DbSketches::build(&family, &ds, 4);
        let queries: Vec<_> = (0..8)
            .map(|_| anns_hamming::Point::random(d, &mut rng))
            .collect();
        let report = validate_sandwich(&ds, &family, &db, &queries);
        assert!(
            report.success_rate() >= 0.75,
            "sandwich rate {} below Lemma 8's 3/4",
            report.success_rate()
        );
    }

    #[test]
    fn sandwich_fails_with_literal_delta_threshold() {
        // Ablation A3: the literal Definition 7 threshold rejects in-ball
        // points, so lower violations are pervasive as soon as some B_i is
        // non-trivially populated.
        let mut rng = StdRng::seed_from_u64(22);
        let ds = gen::clustered(8, 16, 256, 0.02, &mut rng);
        let mut params = SketchParams::practical(2.0, 6);
        params.threshold_mode = ThresholdMode::LiteralDelta;
        let family = SketchFamily::generate(256, 128, &params);
        let db = DbSketches::build(&family, &ds, 1);
        // Query near a cluster: its B_i are populated at small radii.
        let queries = vec![gen::corrupt(ds.point(0), 0.01, &mut rng)];
        let report = validate_sandwich(&ds, &family, &db, &queries);
        assert_eq!(
            report.all_scales_ok, 0,
            "literal delta threshold should break the sandwich"
        );
        assert!(report.lower_violations.iter().sum::<usize>() > 0);
    }

    #[test]
    fn fractions_hold_with_paper_constants() {
        let mut rng = StdRng::seed_from_u64(23);
        let (n, d) = (64usize, 128u32);
        let ds = gen::clustered(4, 16, d, 0.05, &mut rng);
        let params = SketchParams::paper(2.0, n, d as u64, 7);
        let family = SketchFamily::generate(d, n, &params);
        let db = DbSketches::build(&family, &ds, 4);
        let queries = vec![gen::corrupt(ds.point(0), 0.02, &mut rng)];
        let report = validate_fractions(&ds, &family, &db, &queries, 2);
        assert!(report.pairs_checked > 0);
        // The missing side must be essentially clean at paper constants:
        // members of B_j are deep inside the coarse threshold too.
        assert_eq!(
            report.missing_violations, 0,
            "max missing fraction {}",
            report.max_missing_fraction
        );
    }

    #[test]
    fn reports_are_well_formed_on_empty_query_set() {
        let mut rng = StdRng::seed_from_u64(24);
        let ds = gen::uniform(16, 64, &mut rng);
        let params = SketchParams::practical(2.0, 8);
        let family = SketchFamily::generate(64, 16, &params);
        let db = DbSketches::build(&family, &ds, 1);
        let sandwich = validate_sandwich(&ds, &family, &db, &[]);
        assert_eq!(sandwich.trials, 0);
        assert_eq!(sandwich.success_rate(), 1.0);
        let fractions = validate_fractions(&ds, &family, &db, &[], 1);
        assert_eq!(fractions.pairs_checked, 0);
    }
}
