//! Recorder implementations: the disabled default, the bounded ring,
//! and the flight recorder that dumps the ring on anomalies.
//!
//! The contract every emission site follows is
//! `if recorder.enabled() { recorder.record(event) }` — with the
//! [`NullRecorder`] the whole observability layer costs one virtual
//! call and a branch per site, with no event construction at all. That
//! disabled cost is measured by `annsctl bench-obs` and gated in CI.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::clock::Clock;
use crate::event::{TraceEvent, TraceRecord};

/// Lifetime totals for a recorder: how many events it accepted and how
/// many a bounded buffer evicted to make room.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TraceCounters {
    /// Events accepted by `record` (including ones later evicted).
    pub events: u64,
    /// Events evicted by the drop-oldest policy.
    pub dropped: u64,
}

/// A sink for [`TraceEvent`]s.
///
/// Implementations stamp each event with their own clock, so traces
/// recorded over a `VirtualClock` are deterministic. Emission sites
/// must guard with [`Recorder::enabled`] before building an event;
/// `record` on a disabled recorder is a no-op, not an error.
pub trait Recorder: Send + Sync {
    /// Whether emission sites should construct and submit events.
    fn enabled(&self) -> bool {
        true
    }

    /// Accepts one event. Never blocks on I/O in the ring path.
    fn record(&self, event: TraceEvent);

    /// Recorder-clock nanoseconds, for callers that want to measure a
    /// span on the same timeline the trace uses. Disabled recorders
    /// return 0.
    fn now_ns(&self) -> u64 {
        0
    }

    /// Lifetime accepted/dropped totals.
    fn counters(&self) -> TraceCounters {
        TraceCounters::default()
    }
}

/// The always-off recorder: every engine starts with one installed.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: TraceEvent) {}
}

struct RingState {
    records: VecDeque<TraceRecord>,
    seq: u64,
    dropped: u64,
}

/// Bounded in-memory trace buffer: fixed capacity, drop-oldest, with
/// the eviction count exposed so a truncated trace is never mistaken
/// for a complete one.
///
/// One mutex guards the ring; `record` does a clock read, a stamp, and
/// at most one `VecDeque` rotation under it — cheap enough that the
/// serving path keeps it inline rather than handing events to a
/// drainage thread (which would reorder them and break trace
/// determinism).
pub struct RingRecorder {
    clock: Arc<dyn Clock>,
    capacity: usize,
    state: Mutex<RingState>,
}

impl RingRecorder {
    /// A ring holding at most `capacity` records, stamping timestamps
    /// from `clock`. Panics if `capacity` is 0 (an all-drop recorder is
    /// a misconfiguration, not a mode).
    pub fn new(capacity: usize, clock: Arc<dyn Clock>) -> Self {
        assert!(capacity > 0, "ring capacity must be nonzero");
        RingRecorder {
            clock,
            capacity,
            state: Mutex::new(RingState {
                records: VecDeque::with_capacity(capacity),
                seq: 0,
                dropped: 0,
            }),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A copy of the ring contents, oldest first.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.records.iter().cloned().collect()
    }

    /// The ring rendered as JSON lines (one [`TraceRecord`] per line,
    /// oldest first, trailing newline when nonempty).
    pub fn to_jsonl(&self) -> String {
        render_jsonl(&self.snapshot())
    }
}

impl Recorder for RingRecorder {
    fn record(&self, event: TraceEvent) {
        let ts_ns = self.clock.now_ns();
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let seq = st.seq;
        st.seq += 1;
        if st.records.len() == self.capacity {
            st.records.pop_front();
            st.dropped += 1;
        }
        st.records.push_back(TraceRecord { seq, ts_ns, event });
    }

    fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    fn counters(&self) -> TraceCounters {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        TraceCounters {
            events: st.seq,
            dropped: st.dropped,
        }
    }
}

/// A [`RingRecorder`] that automatically snapshots itself to a
/// JSON-lines file whenever a trigger event lands: a shed, a failed
/// mount/swap, or a query served over budget
/// ([`TraceEvent::is_flight_trigger`]).
///
/// Each dump overwrites the previous one, so the artifact always holds
/// the ring as of the *latest* anomaly — the one an operator is
/// debugging. Writes are best-effort: a full disk must not take the
/// serving path down, so I/O errors are swallowed and visible only as
/// `dumps()` not advancing.
pub struct FlightRecorder {
    ring: RingRecorder,
    path: PathBuf,
    dumps: AtomicU64,
}

impl FlightRecorder {
    /// A flight recorder over a fresh ring of `capacity`, dumping to
    /// `path` on each trigger.
    pub fn new(capacity: usize, clock: Arc<dyn Clock>, path: impl Into<PathBuf>) -> Self {
        FlightRecorder {
            ring: RingRecorder::new(capacity, clock),
            path: path.into(),
            dumps: AtomicU64::new(0),
        }
    }

    /// The underlying ring (for final-snapshot extraction at run end).
    pub fn ring(&self) -> &RingRecorder {
        &self.ring
    }

    /// Where trigger dumps land.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Completed trigger dumps (failed writes do not count).
    pub fn dumps(&self) -> u64 {
        self.dumps.load(Ordering::Relaxed)
    }
}

impl Recorder for FlightRecorder {
    fn record(&self, event: TraceEvent) {
        let trigger = event.is_flight_trigger();
        self.ring.record(event);
        if trigger && std::fs::write(&self.path, self.ring.to_jsonl()).is_ok() {
            self.dumps.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn now_ns(&self) -> u64 {
        self.ring.now_ns()
    }

    fn counters(&self) -> TraceCounters {
        self.ring.counters()
    }
}

/// Renders records as JSON lines, oldest first.
pub fn render_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for record in records {
        out.push_str(&serde_json::to_string(record).expect("trace records always serialize"));
        out.push('\n');
    }
    out
}

/// Parses a JSON-lines trace back into records, skipping blank lines.
/// Returns the offending line's 1-based number alongside the parse
/// error so a truncated artifact is diagnosable.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceRecord>, (usize, serde_json::Error)> {
    let mut records = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<TraceRecord>(line) {
            Ok(record) => records.push(record),
            Err(e) => return Err((idx + 1, e)),
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    fn admitted(depth: u64) -> TraceEvent {
        TraceEvent::QueryAdmitted { depth }
    }

    #[test]
    fn null_recorder_is_disabled_and_counts_nothing() {
        let null = NullRecorder;
        assert!(!null.enabled());
        null.record(admitted(1));
        assert_eq!(null.counters(), TraceCounters::default());
        assert_eq!(null.now_ns(), 0);
    }

    #[test]
    fn ring_drops_oldest_and_counts_evictions() {
        let ring = RingRecorder::new(3, Arc::new(VirtualClock::new()));
        for depth in 0..5 {
            ring.record(admitted(depth));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 3);
        // Oldest two (seq 0, 1) were evicted; the survivors keep their
        // original monotonic seq.
        assert_eq!(
            snap.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(
            ring.counters(),
            TraceCounters {
                events: 5,
                dropped: 2
            }
        );
    }

    #[test]
    fn ring_stamps_the_injected_clock() {
        let clock = Arc::new(VirtualClock::new());
        let ring = RingRecorder::new(8, Arc::clone(&clock) as Arc<dyn Clock>);
        ring.record(admitted(1));
        clock.advance_ns(40);
        ring.record(admitted(2));
        let snap = ring.snapshot();
        assert_eq!(snap[0].ts_ns, 0);
        assert_eq!(snap[1].ts_ns, 40);
        assert_eq!(ring.now_ns(), 40);
    }

    #[test]
    fn jsonl_round_trips_the_snapshot() {
        let ring = RingRecorder::new(8, Arc::new(VirtualClock::new()));
        ring.record(admitted(1));
        ring.record(TraceEvent::SwapEpoch {
            namespace: "live".into(),
            epoch: 2,
        });
        let parsed = parse_jsonl(&ring.to_jsonl()).expect("parse");
        assert_eq!(parsed, ring.snapshot());
    }

    #[test]
    fn parse_jsonl_reports_the_bad_line() {
        let err = parse_jsonl(
            "{\"seq\":0,\"ts_ns\":0,\"event\":{\"QueryAdmitted\":{\"depth\":1}}}\nnot json\n",
        );
        assert_eq!(err.err().map(|(line, _)| line), Some(2));
    }

    #[test]
    fn flight_recorder_dumps_on_triggers_only() {
        let dir = std::env::temp_dir().join(format!("anns-obs-flight-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.flight.jsonl");
        let flight = FlightRecorder::new(8, Arc::new(VirtualClock::new()), &path);

        flight.record(admitted(1));
        assert_eq!(flight.dumps(), 0, "admission is not a trigger");
        assert!(!path.exists());

        flight.record(TraceEvent::Shed {
            reason: "overloaded".into(),
            depth: 8,
        });
        assert_eq!(flight.dumps(), 1);
        let dumped = parse_jsonl(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(
            dumped.len(),
            2,
            "dump holds the full ring, trigger included"
        );
        assert_eq!(dumped[1].event.kind(), "shed");

        // A later trigger overwrites with the larger ring.
        flight.record(admitted(2));
        flight.record(TraceEvent::SwapFailed {
            namespace: "live".into(),
            error: "splice".into(),
        });
        assert_eq!(flight.dumps(), 2);
        let dumped = parse_jsonl(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(dumped.len(), 4);

        std::fs::remove_dir_all(&dir).ok();
    }
}
