//! # anns-obs
//!
//! Structured observability for the limited-adaptivity serving stack:
//! typed trace events, a bounded drop-oldest ring recorder, a flight
//! recorder that snapshots the ring on anomalies, and the injectable
//! [`Clock`] the rest of the workspace tells time by.
//!
//! The design goals, in order:
//!
//! 1. **Free when off.** Every emission site in `anns-engine` /
//!    `anns-cellprobe` guards with [`Recorder::enabled`]; with the
//!    default [`NullRecorder`] the cost is one devirtualized call and a
//!    branch — no event is ever constructed. `annsctl bench-obs`
//!    measures this and CI gates it.
//! 2. **Deterministic when testable.** Recorders stamp timestamps from
//!    their own [`Clock`]; over a [`VirtualClock`] the same workload
//!    produces a byte-identical JSON-lines trace, which the engine's
//!    snapshot test asserts. [`TraceRecord::seq`] preserves total order
//!    even when every timestamp is identical.
//! 3. **Bounded when on.** The [`RingRecorder`] never grows past its
//!    capacity; overflow evicts oldest and counts the eviction
//!    ([`TraceCounters::dropped`]), so a truncated trace is always
//!    labeled as such.
//!
//! This crate sits below `anns-cellprobe` and `anns-engine` and depends
//! only on the vendored serde shims.
//!
//! ```
//! use anns_obs::{
//!     parse_jsonl, Recorder, RingRecorder, TraceEvent, VirtualClock,
//! };
//! use std::sync::Arc;
//!
//! let clock = Arc::new(VirtualClock::new());
//! let ring = RingRecorder::new(1024, Arc::clone(&clock) as Arc<dyn anns_obs::Clock>);
//!
//! // Emission sites guard on `enabled()` so a NullRecorder costs nothing.
//! if ring.enabled() {
//!     ring.record(TraceEvent::QueryAdmitted { depth: 1 });
//! }
//! clock.advance_ns(250);
//! ring.record(TraceEvent::QueryServed {
//!     gen: 0,
//!     slot: 0,
//!     rounds: 3,
//!     probes: 9,
//!     wait_ns: 250,
//!     within_budget: true,
//! });
//!
//! let trace = parse_jsonl(&ring.to_jsonl()).unwrap();
//! assert_eq!(trace.len(), 2);
//! assert_eq!(trace[1].ts_ns, 250);
//! assert_eq!(ring.counters().dropped, 0);
//! ```

pub mod clock;
pub mod event;
pub mod recorder;

pub use clock::{Clock, RealClock, VirtualClock};
pub use event::{TraceEvent, TraceRecord};
pub use recorder::{
    parse_jsonl, render_jsonl, FlightRecorder, NullRecorder, Recorder, RingRecorder, TraceCounters,
};
