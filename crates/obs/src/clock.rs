//! Injectable time: the one seam between the serving stack and the
//! wall clock.
//!
//! Everything time-dependent in the online serving path — window
//! deadlines, admission-wait accounting, arrival timestamps, trace
//! record timestamps — reads time through the [`Clock`] trait instead
//! of `Instant::now()`, so tests can
//! substitute a [`VirtualClock`] and *prove* deadline behavior
//! deterministically: time moves only when the test calls
//! [`VirtualClock::advance`], and a parked driver is woken through the
//! registered tick hooks rather than by a timer. Production code uses
//! [`RealClock`], where time passes on its own and drivers may park on
//! plain timed waits.
//!
//! The trait is deliberately tiny (monotonic nanoseconds since an
//! arbitrary origin + a tick hook); richer scheduling stays in the
//! admission queue, where it is testable.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A monotonic time source with an injectable notion of "now".
pub trait Clock: Send + Sync {
    /// Nanoseconds since the clock's origin. Monotonic: never decreases.
    fn now_ns(&self) -> u64;

    /// Whether time passes on its own (real clocks). Drivers waiting for
    /// a deadline on a realtime clock use timed waits; on a virtual clock
    /// (`false`) they park untimed and rely on [`Clock::on_tick`] hooks
    /// firing when the test advances time.
    fn realtime(&self) -> bool {
        true
    }

    /// Registers a hook fired after every explicit time jump. A hook
    /// returns `false` once its target is gone, and the clock drops it —
    /// a long-lived clock shared by many short-lived queues does not
    /// accumulate dead registrations. Real clocks never fire hooks (time
    /// needs no announcements when it passes on its own), so the default
    /// implementation drops the hook immediately.
    fn on_tick(&self, hook: Box<dyn Fn() -> bool + Send + Sync>) {
        drop(hook);
    }
}

/// Wall-clock time, measured from the instant the clock was created.
#[derive(Debug)]
pub struct RealClock {
    origin: Instant,
}

impl Default for RealClock {
    fn default() -> Self {
        RealClock::new()
    }
}

impl RealClock {
    /// A clock whose origin is now.
    pub fn new() -> Self {
        RealClock {
            origin: Instant::now(),
        }
    }
}

impl Clock for RealClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// Deterministic test time: starts at 0 and moves only via
/// [`VirtualClock::advance`] / [`VirtualClock::advance_ns`].
///
/// Every advance fires the registered tick hooks *after* the new time is
/// visible, so a driver parked on a condition variable (the admission
/// queue's deadline wait) is woken exactly when — and only when — the
/// test says time passed. No test built on this clock ever sleeps.
#[derive(Default)]
pub struct VirtualClock {
    now_ns: Mutex<u64>,
    hooks: Mutex<Vec<Box<dyn Fn() -> bool + Send + Sync>>>,
}

impl VirtualClock {
    /// A clock frozen at t = 0.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Moves time forward and fires the tick hooks.
    pub fn advance(&self, by: Duration) {
        self.advance_ns(by.as_nanos() as u64);
    }

    /// [`VirtualClock::advance`] in raw nanoseconds.
    pub fn advance_ns(&self, ns: u64) {
        {
            let mut now = self.now_ns.lock().unwrap_or_else(|e| e.into_inner());
            *now += ns;
        }
        // Fire every hook; drop the ones whose targets are gone.
        self.hooks
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .retain(|hook| hook());
    }
}

impl Clock for VirtualClock {
    fn now_ns(&self) -> u64 {
        *self.now_ns.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn realtime(&self) -> bool {
        false
    }

    fn on_tick(&self, hook: Box<dyn Fn() -> bool + Send + Sync>) {
        self.hooks
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(hook);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn real_clock_is_monotonic() {
        let clock = RealClock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
        assert!(clock.realtime());
    }

    #[test]
    fn virtual_clock_moves_only_on_advance() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now_ns(), 0);
        assert!(!clock.realtime());
        clock.advance(Duration::from_micros(3));
        assert_eq!(clock.now_ns(), 3_000);
        clock.advance_ns(7);
        assert_eq!(clock.now_ns(), 3_007);
    }

    #[test]
    fn tick_hooks_fire_after_time_is_visible() {
        let clock = Arc::new(VirtualClock::new());
        let seen = Arc::new(AtomicU64::new(0));
        let hook_clock = Arc::clone(&clock);
        let hook_seen = Arc::clone(&seen);
        clock.on_tick(Box::new(move || {
            // The hook observes the already-advanced time.
            hook_seen.store(hook_clock.now_ns(), Ordering::SeqCst);
            true
        }));
        clock.advance_ns(42);
        assert_eq!(seen.load(Ordering::SeqCst), 42);
        clock.advance_ns(8);
        assert_eq!(seen.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn dead_tick_hooks_are_pruned() {
        let clock = VirtualClock::new();
        let calls = Arc::new(AtomicU64::new(0));
        let hook_calls = Arc::clone(&calls);
        clock.on_tick(Box::new(move || {
            // A hook whose target died: fires once, then is dropped.
            hook_calls.fetch_add(1, Ordering::SeqCst);
            false
        }));
        clock.advance_ns(1);
        clock.advance_ns(1);
        assert_eq!(calls.load(Ordering::SeqCst), 1, "dead hook pruned");
    }
}
