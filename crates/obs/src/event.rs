//! The trace event vocabulary: one typed variant per serving-path
//! transition worth explaining after the fact.
//!
//! Events carry their own context (generation id, shard, window
//! sequence) instead of relying on an ambient span, so a single flat
//! ring of [`TraceRecord`]s reconstructs per-query timelines, per-round
//! coalescing, and queue depth without any join against engine state.
//! Field meanings are normative and documented in
//! `docs/OBSERVABILITY.md`; renaming a field or variant is a trace
//! schema change and must bump that document.

use serde::{Deserialize, Serialize};

/// One structured serving-path event.
///
/// Variants are ordered roughly by where they fire on the query path:
/// admission → window sealing → round dispatch → probe reads → query
/// completion, plus the control-plane events (shedding, mount swaps).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A query passed admission and entered the bounded window.
    /// `depth` is the window fill *after* this arrival.
    QueryAdmitted { depth: u64 },
    /// An admission window sealed and became a generation.
    /// `reason` is `"fill"`, `"deadline"`, or `"drain"`; `fill` is the
    /// number of queries sealed; `wait_ns` is how long the window was
    /// open (sealed-at minus opened-at, on the queue's clock).
    GenerationSealed {
        window: u64,
        reason: String,
        fill: u64,
        wait_ns: u64,
    },
    /// One shard's share of a coalesced round: `submitted` addresses
    /// arrived from parked queries, `deduped` survived sort + dedup and
    /// were actually read. `submitted - deduped` probes were saved by
    /// cross-query coalescing.
    RoundDispatched {
        gen: u64,
        shard: u64,
        submitted: u64,
        deduped: u64,
    },
    /// A tiled batch read hit a shard's table: `len` unique addresses,
    /// cache-blocked into tiles of `tile`.
    ProbeBatchRead {
        gen: u64,
        shard: u64,
        tile: u64,
        len: u64,
    },
    /// A query finished: `slot` is its position in the generation,
    /// `wait_ns` the generation's wall time on the recorder's clock.
    /// `within_budget: false` is a flight-recorder trigger.
    QueryServed {
        gen: u64,
        slot: u64,
        rounds: u64,
        probes: u64,
        wait_ns: u64,
        within_budget: bool,
    },
    /// Admission rejected a query. `reason` is `"overloaded"` (window
    /// at capacity) or `"closed"`; `depth` is the fill observed at
    /// rejection. Always a flight-recorder trigger.
    Shed { reason: String, depth: u64 },
    /// The per-tenant admission layer decided a request's fate.
    /// `decision` is `"admitted"` (entered the shared window),
    /// `"throttled"` (token bucket empty), or `"shed"` (shared queue at
    /// capacity); `depth` is the shared-queue fill observed at decision
    /// time. Emitted once per request, so per-tenant decision counts in
    /// a complete trace reconcile *exactly* with the server's usage
    /// accounting. Not a flight trigger: throttling a hot tenant is the
    /// limiter working, not an anomaly (queue-overload sheds still fire
    /// the untenanted [`TraceEvent::Shed`] trigger alongside).
    TenantDecision {
        tenant: String,
        decision: String,
        depth: u64,
    },
    /// A namespace atomically flipped to a new registry at `epoch`.
    SwapEpoch { namespace: String, epoch: u64 },
    /// A mount or swap failed before any flip happened; the previous
    /// registry (if any) is still serving. Always a flight-recorder
    /// trigger.
    SwapFailed { namespace: String, error: String },
}

impl TraceEvent {
    /// Short stable name for summaries (`"query_served"` etc.).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::QueryAdmitted { .. } => "query_admitted",
            TraceEvent::GenerationSealed { .. } => "generation_sealed",
            TraceEvent::RoundDispatched { .. } => "round_dispatched",
            TraceEvent::ProbeBatchRead { .. } => "probe_batch_read",
            TraceEvent::QueryServed { .. } => "query_served",
            TraceEvent::Shed { .. } => "shed",
            TraceEvent::TenantDecision { .. } => "tenant_decision",
            TraceEvent::SwapEpoch { .. } => "swap_epoch",
            TraceEvent::SwapFailed { .. } => "swap_failed",
        }
    }

    /// Whether this event should make a flight recorder dump its ring:
    /// shedding, a budget violation, or a failed mount/swap.
    pub fn is_flight_trigger(&self) -> bool {
        matches!(
            self,
            TraceEvent::Shed { .. }
                | TraceEvent::SwapFailed { .. }
                | TraceEvent::QueryServed {
                    within_budget: false,
                    ..
                }
        )
    }
}

/// A [`TraceEvent`] as it sits in the ring: stamped with the recorder's
/// clock and a ring-assigned sequence number.
///
/// `seq` is monotonic across the whole run (it keeps counting through
/// drops), so record order survives even a frozen [`VirtualClock`]
/// where every `ts_ns` is identical.
///
/// [`VirtualClock`]: crate::VirtualClock
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Position in the recorder's total event order (0-based).
    pub seq: u64,
    /// Recorder-clock nanoseconds at record time.
    pub ts_ns: u64,
    /// The event itself.
    pub event: TraceEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flight_triggers_are_exactly_shed_swapfail_and_blown_budget() {
        assert!(TraceEvent::Shed {
            reason: "overloaded".into(),
            depth: 4
        }
        .is_flight_trigger());
        assert!(TraceEvent::SwapFailed {
            namespace: "live".into(),
            error: "splice".into()
        }
        .is_flight_trigger());
        let served = |within_budget| TraceEvent::QueryServed {
            gen: 0,
            slot: 0,
            rounds: 3,
            probes: 9,
            wait_ns: 0,
            within_budget,
        };
        assert!(served(false).is_flight_trigger());
        assert!(!served(true).is_flight_trigger());
        assert!(!TraceEvent::QueryAdmitted { depth: 1 }.is_flight_trigger());
        assert!(!TraceEvent::TenantDecision {
            tenant: "hot".into(),
            decision: "throttled".into(),
            depth: 3
        }
        .is_flight_trigger());
        assert!(!TraceEvent::SwapEpoch {
            namespace: "live".into(),
            epoch: 2
        }
        .is_flight_trigger());
    }

    #[test]
    fn record_serde_round_trips_through_jsonl() {
        let record = TraceRecord {
            seq: 7,
            ts_ns: 42,
            event: TraceEvent::RoundDispatched {
                gen: 1,
                shard: 0,
                submitted: 12,
                deduped: 9,
            },
        };
        let line = serde_json::to_string(&record).expect("serialize");
        let back: TraceRecord = serde_json::from_str(&line).expect("parse");
        assert_eq!(back, record);
    }
}
