//! The reduction `LPM(Σ, m, n) → ANNS(γ, d, n)` (Lemma 14).
//!
//! Strings walk the γ-separated ball tree: symbol `c` at depth `i` selects
//! the `c`-th child; a string's image is its leaf center. The tree geometry
//! makes approximate nearest neighbors reveal longest common prefixes:
//!
//! * leaves sharing a prefix of length `p` lie in one depth-`p` ball —
//!   distance `≤ 2·r_p`;
//! * leaves diverging at depth `q < p` lie in distinct depth-`(q+1)` balls
//!   of a γ-separated family — distance `> γ·2·r_{q+1} ≥ γ·2·r_p`.
//!
//! So if the best database string has LCP `p` with the query, its leaf is
//! within `2·r_p` of the query's leaf while every string with a shorter LCP
//! is beyond `γ·2·r_p` — strictly beyond what a γ-approximate NN may
//! return. **Any** valid γ-approximate answer therefore attains the maximal
//! LCP, which is why a lower bound for LPM transfers to ANNS with rounds
//! and probes untouched (the reduction happens entirely at the instance
//! level).

use std::collections::HashMap;

use rand::Rng;

use anns_hamming::{Dataset, Point};

use crate::balltree::BallTree;
use crate::problem::{lcp_len, LpmInstance};

/// A materialized reduction: the tree plus the instance mapping.
pub struct LpmReduction {
    tree: BallTree,
    instance: LpmInstance,
    /// ANNS database: `dataset.point(i)` is the leaf image of
    /// `instance.database[i]`.
    dataset: Dataset,
    /// Inverse map leaf-center → database index.
    inverse: HashMap<Point, usize>,
}

impl LpmReduction {
    /// Builds the tree for the instance's alphabet/length and maps the
    /// database. Returns `None` if the tree construction fails at these
    /// parameters (see [`BallTree::build`]).
    pub fn build<R: Rng + ?Sized>(
        instance: LpmInstance,
        dim: u32,
        gamma: f64,
        max_attempts: usize,
        rng: &mut R,
    ) -> Option<Self> {
        let root = Point::random(dim, rng);
        let tree = BallTree::build(
            dim,
            gamma,
            instance.sigma,
            instance.m,
            root,
            max_attempts,
            rng,
        )?;
        let points: Vec<Point> = instance
            .database
            .iter()
            .map(|s| tree.center(s).clone())
            .collect();
        let mut inverse = HashMap::with_capacity(points.len());
        for (i, p) in points.iter().enumerate() {
            inverse.entry(p.clone()).or_insert(i);
        }
        let dataset = Dataset::new(points);
        Some(LpmReduction {
            tree,
            instance,
            dataset,
            inverse,
        })
    }

    /// The underlying tree.
    pub fn tree(&self) -> &BallTree {
        &self.tree
    }

    /// The LPM instance.
    pub fn instance(&self) -> &LpmInstance {
        &self.instance
    }

    /// The ANNS database (leaf images of the LPM database).
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Maps a query string to its ANNS query point.
    pub fn map_query(&self, query: &[u16]) -> Point {
        assert_eq!(query.len(), self.instance.m);
        self.tree.center(query).clone()
    }

    /// Pulls an ANNS answer (a returned database point) back to the LPM
    /// answer (a database index). Returns `None` if the point is not a
    /// database image — a protocol violation by the ANNS solver.
    pub fn pull_back(&self, answer: &Point) -> Option<usize> {
        self.inverse.get(answer).copied()
    }

    /// End-to-end check for one query: solves the ANNS instance *exactly*
    /// (or through any solver the caller ran) and verifies the pulled-back
    /// index attains the maximal LCP.
    pub fn answer_is_correct(&self, query: &[u16], answer: &Point) -> bool {
        match self.pull_back(answer) {
            Some(idx) => self.instance.is_correct(query, idx),
            None => false,
        }
    }

    /// The reduction's soundness margin for a query: the largest `γ'` such
    /// that every `γ'`-approximate answer still attains the maximal LCP
    /// (`min_{wrong y} dist(x, y) / min_z dist(x, z)`); `None` when the
    /// query's optimum is 0 distance with no wrong answers to exclude, or
    /// when every database string attains the maximal LCP.
    pub fn soundness_margin(&self, query: &[u16]) -> Option<f64> {
        let x = self.map_query(query);
        let (_, opt_lcp) = self.instance.solve(query);
        let mut best: Option<u32> = None;
        let mut worst_ok: Option<u32> = None;
        for (i, s) in self.instance.database.iter().enumerate() {
            let dist = x.distance(self.dataset.point(i));
            if lcp_len(query, s) == opt_lcp {
                worst_ok = Some(worst_ok.map_or(dist, |w: u32| w.min(dist)));
            } else {
                best = Some(best.map_or(dist, |b: u32| b.min(dist)));
            }
        }
        match (worst_ok, best) {
            (Some(ok), Some(wrong)) if ok > 0 => Some(f64::from(wrong) / f64::from(ok)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn reduction(seed: u64, sigma: u16, m: usize, n: usize, dim: u32) -> LpmReduction {
        let mut rng = StdRng::seed_from_u64(seed);
        let instance = LpmInstance::random(sigma, m, n, &mut rng);
        LpmReduction::build(instance, dim, 2.0, 50_000, &mut rng)
            .expect("reduction must build at these parameters")
    }

    #[test]
    fn exact_nn_solves_lpm_through_the_reduction() {
        let red = reduction(1, 4, 2, 12, 2048);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..40 {
            let q: Vec<u16> = (0..2).map(|_| rng.gen_range(0..4)).collect();
            let x = red.map_query(&q);
            let nn = red.dataset().exact_nn(&x);
            let answer = red.dataset().point(nn.index);
            assert!(
                red.answer_is_correct(&q, answer),
                "query {q:?}: exact NN does not maximize LCP"
            );
        }
    }

    #[test]
    fn any_gamma_approximate_answer_solves_lpm() {
        // The heart of Lemma 14: enumerate *all* database points within
        // γ·opt and verify every one attains the maximal LCP.
        let red = reduction(3, 3, 2, 9, 2048);
        let gamma = 2.0;
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..30 {
            let q: Vec<u16> = (0..2).map(|_| rng.gen_range(0..3)).collect();
            let x = red.map_query(&q);
            let opt = red.dataset().exact_nn(&x).distance;
            for i in 0..red.dataset().len() {
                let dist = x.distance(red.dataset().point(i));
                if f64::from(dist) <= gamma * f64::from(opt) {
                    assert!(
                        red.instance().is_correct(&q, i),
                        "query {q:?}: {i} is γ-approximate but wrong for LPM"
                    );
                }
            }
        }
    }

    #[test]
    fn soundness_margin_exceeds_gamma() {
        let red = reduction(5, 4, 2, 10, 2048);
        let mut rng = StdRng::seed_from_u64(6);
        let mut checked = 0;
        for _ in 0..40 {
            let q: Vec<u16> = (0..2).map(|_| rng.gen_range(0..4)).collect();
            if let Some(margin) = red.soundness_margin(&q) {
                assert!(margin > 2.0, "query {q:?}: margin {margin} ≤ γ");
                checked += 1;
            }
        }
        assert!(checked > 0, "no query exercised the margin");
    }

    #[test]
    fn pull_back_rejects_foreign_points() {
        let red = reduction(7, 3, 2, 5, 2048);
        let mut rng = StdRng::seed_from_u64(8);
        let foreign = Point::random(2048, &mut rng);
        assert_eq!(red.pull_back(&foreign), None);
        // Database images pull back to themselves.
        for i in 0..red.dataset().len() {
            assert_eq!(red.pull_back(red.dataset().point(i)), Some(i));
        }
    }

    #[test]
    fn depth_one_reduction_works_too() {
        // m = 1: LPM degenerates to exact symbol match; the reduction still
        // must route it correctly.
        let red = reduction(9, 8, 1, 6, 1024);
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..16 {
            let q = vec![rng.gen_range(0..8u16)];
            let x = red.map_query(&q);
            let nn = red.dataset().exact_nn(&x);
            assert!(red.answer_is_correct(&q, red.dataset().point(nn.index)));
        }
    }
}
