//! A k-round cell-probing scheme for LPM itself.
//!
//! The reduction (Lemma 14) transports ANNS *lower* bounds from LPM; this
//! module closes the loop from the other side with a direct LPM *upper*
//! bound in the same limited-adaptivity model. The structure mirrors
//! Algorithm 1 exactly, because LPM is the combinatorial core of the search
//! problem:
//!
//! * **table**: for every prefix length `ℓ`, a table `P_ℓ` mapping a
//!   length-`ℓ` prefix to a witness database string having that prefix (or
//!   `EMPTY`) — `n·m` populated cells over a `|Σ|^ℓ` address space,
//!   polynomial for the paper's parameters;
//! * **query**: `match(ℓ) := P_ℓ[x_{1..ℓ}] ≠ EMPTY` is monotone
//!   (non-increasing) in `ℓ`, so the maximal matching length — the LCP —
//!   is found by the same `τ`-way search over `0..m` in `k` rounds,
//!   `O(k·m^{1/k})` probes, `τ·(τ/2)^{k−1} ≥ m`.
//!
//! Together with Theorem 24 this brackets LPM's k-round complexity the same
//! way Theorems 2 and 4 bracket ANNS's.

use anns_cellprobe::{Address, CellProbeScheme, RoundExecutor, SpaceModel, Table, Word};
use std::collections::HashMap;

use crate::problem::{LpmInstance, LpmString};

/// Encodes a prefix as an address key.
fn prefix_key(prefix: &[u16]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(2 + prefix.len() * 2);
    bytes.extend_from_slice(&(prefix.len() as u16).to_le_bytes());
    for &c in prefix {
        bytes.extend_from_slice(&c.to_le_bytes());
    }
    bytes
}

/// The prefix tables plus the k-round query algorithm.
pub struct TrieLpm {
    instance: LpmInstance,
    /// `witness[ℓ]` maps a length-ℓ prefix to the lowest witness index.
    witness: Vec<HashMap<Vec<u16>, usize>>,
    /// Round budget `k ≥ 1`.
    pub k: u32,
}

impl TrieLpm {
    /// Builds the prefix tables (`O(n·m)` entries).
    pub fn build(instance: LpmInstance, k: u32) -> Self {
        assert!(k >= 1);
        let m = instance.m;
        let mut witness: Vec<HashMap<Vec<u16>, usize>> = vec![HashMap::new(); m + 1];
        for (idx, s) in instance.database.iter().enumerate() {
            for l in 0..=m {
                witness[l].entry(s[..l].to_vec()).or_insert(idx);
            }
        }
        TrieLpm {
            instance,
            witness,
            k,
        }
    }

    /// The underlying instance.
    pub fn instance(&self) -> &LpmInstance {
        &self.instance
    }

    /// Grid width: smallest `τ ≥ 2` with `τ·(τ/2)^{k−1} ≥ m` (`m + 1` for
    /// `k = 1`, i.e. a single non-adaptive round over all lengths).
    pub fn tau(&self) -> u32 {
        let m = self.instance.m as u32;
        if self.k == 1 {
            return m + 1;
        }
        let mut tau = 2u32;
        loop {
            let val = f64::from(tau) * (f64::from(tau) / 2.0).powi(self.k as i32 - 1);
            if val >= f64::from(m.max(1)) {
                return tau;
            }
            tau += 1;
        }
    }
}

impl Table for TrieLpm {
    fn read(&self, addr: &Address) -> Word {
        // Table id = prefix length; key = the prefix.
        let l = addr.table as usize;
        let count = u16::from_le_bytes(addr.key[0..2].try_into().expect("prefix len")) as usize;
        let mut prefix = Vec::with_capacity(count);
        for c in addr.key[2..2 + count * 2].chunks_exact(2) {
            prefix.push(u16::from_le_bytes(c.try_into().expect("symbol")));
        }
        debug_assert_eq!(prefix.len(), l);
        match self.witness[l].get(&prefix) {
            Some(&idx) => {
                let mut bytes = vec![1u8];
                bytes.extend_from_slice(&(idx as u64).to_le_bytes());
                Word::from_bytes(bytes)
            }
            None => Word::from_bytes(vec![0]),
        }
    }

    fn space_model(&self) -> SpaceModel {
        // m+1 tables over |Σ|^ℓ addresses; the populated entries are n·m,
        // perfect-hashable into O((n·m)²) cells per the paper's degenerate
        // case treatment. Model the perfect-hash size.
        let nm = (self.instance.len() * (self.instance.m + 1)) as f64;
        SpaceModel::from_cells(2.0 * nm.log2(), 72)
    }
}

/// Decoded prefix-cell content.
fn decode_witness(word: &Word) -> Option<u64> {
    match word.bytes().first() {
        Some(0) => None,
        Some(1) => Some(u64::from_le_bytes(
            word.bytes()[1..9].try_into().expect("witness idx"),
        )),
        other => panic!("malformed prefix cell {other:?}"),
    }
}

impl CellProbeScheme for TrieLpm {
    type Query = LpmString;
    /// `(database index, lcp length)`.
    type Answer = (usize, usize);

    fn table(&self) -> &dyn Table {
        self
    }

    fn word_bits(&self) -> u64 {
        72
    }

    fn run(&self, query: &LpmString, exec: &mut RoundExecutor<'_>) -> (usize, usize) {
        assert_eq!(query.len(), self.instance.m);
        let m = self.instance.m as u32;
        let tau = self.tau();
        // Invariant: match(l) holds, match(u) fails — except u = m+1 which
        // encodes "maybe even the full string matches". match(0) always
        // holds (the empty prefix is a prefix of everything).
        let mut l: u32 = 0;
        let mut u: u32 = m + 1;
        let mut best_witness: Option<u64> = None;
        loop {
            let completing = u - l < tau;
            let lengths: Vec<u32> = if completing {
                (l + 1..u).collect()
            } else {
                let gap = u64::from(u - l);
                (1..tau)
                    .map(|r| l + ((u64::from(r) * gap) / u64::from(tau)) as u32)
                    .collect()
            };
            if lengths.is_empty() {
                break;
            }
            let addrs: Vec<Address> = lengths
                .iter()
                .map(|&ell| Address::new(ell, prefix_key(&query[..ell as usize])))
                .collect();
            let words = exec.round(&addrs);
            if completing {
                // Largest matching length in (l, u).
                for (pos, word) in words.iter().enumerate().rev() {
                    if let Some(idx) = decode_witness(word) {
                        return (idx as usize, lengths[pos] as usize);
                    }
                }
                break;
            }
            // First failing grid point bounds u; last matching bounds l.
            let gap = u64::from(u - l);
            let rho = |r: u32| l + ((u64::from(r) * gap) / u64::from(tau)) as u32;
            let mut r_fail = tau;
            for (pos, word) in words.iter().enumerate() {
                match decode_witness(word) {
                    Some(idx) => best_witness = Some(idx),
                    None => {
                        r_fail = pos as u32 + 1;
                        break;
                    }
                }
            }
            let (new_l, new_u) = (rho(r_fail - 1), rho(r_fail));
            debug_assert!(new_l < new_u);
            l = new_l;
            u = new_u;
        }
        // The LCP is l; the witness probed at l (or 0: any string).
        match best_witness {
            Some(idx) if l > 0 => (idx as usize, l as usize),
            _ => {
                // lcp 0 (or the completion window closed on l): any string
                // attains it; return the stored witness of the empty/last
                // matching prefix.
                let idx = *self.witness[l as usize]
                    .get(&query[..l as usize])
                    .expect("matching prefix has a witness");
                (idx, l as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anns_cellprobe::execute;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_query(sigma: u16, m: usize, rng: &mut StdRng) -> LpmString {
        (0..m).map(|_| rng.gen_range(0..sigma)).collect()
    }

    #[test]
    fn matches_exhaustive_solver_for_every_k() {
        let mut rng = StdRng::seed_from_u64(1);
        let instance = LpmInstance::random(4, 8, 60, &mut rng);
        for k in 1..=6u32 {
            let trie = TrieLpm::build(instance.clone(), k);
            for _ in 0..40 {
                let q = random_query(4, 8, &mut rng);
                let ((idx, lcp), ledger) = execute(&trie, &q);
                let (_, expect_lcp) = instance.solve(&q);
                assert_eq!(lcp, expect_lcp, "k={k}, q={q:?}");
                assert!(instance.is_correct(&q, idx), "k={k}");
                assert!(ledger.rounds() <= k as usize, "k={k}");
            }
        }
    }

    #[test]
    fn probe_bound_is_k_times_tau() {
        let mut rng = StdRng::seed_from_u64(2);
        let instance = LpmInstance::random(3, 16, 40, &mut rng);
        for k in 1..=5u32 {
            let trie = TrieLpm::build(instance.clone(), k);
            let tau = trie.tau();
            let q = random_query(3, 16, &mut rng);
            let (_, ledger) = execute(&trie, &q);
            assert!(
                ledger.total_probes() <= (k * tau) as usize,
                "k={k}: {} probes vs k·τ = {}",
                ledger.total_probes(),
                k * tau
            );
        }
    }

    #[test]
    fn exact_member_gets_full_lcp() {
        let mut rng = StdRng::seed_from_u64(3);
        let instance = LpmInstance::random(5, 6, 30, &mut rng);
        let trie = TrieLpm::build(instance.clone(), 3);
        for i in [0usize, 7, 29] {
            let q = instance.database[i].clone();
            let ((idx, lcp), _) = execute(&trie, &q);
            assert_eq!(lcp, 6);
            assert_eq!(instance.database[idx], q);
        }
    }

    #[test]
    fn zero_lcp_queries_are_answered() {
        // A database over symbols {0,1} and a query starting with 2: lcp 0,
        // any index is correct.
        let instance = LpmInstance::new(3, 3, vec![vec![0, 0, 0], vec![1, 1, 1]]);
        let trie = TrieLpm::build(instance.clone(), 2);
        let ((idx, lcp), _) = execute(&trie, &vec![2, 0, 0]);
        assert_eq!(lcp, 0);
        assert!(idx < 2);
    }

    #[test]
    fn k1_is_one_nonadaptive_round() {
        let mut rng = StdRng::seed_from_u64(4);
        let instance = LpmInstance::random(4, 10, 20, &mut rng);
        let trie = TrieLpm::build(instance.clone(), 1);
        let q = random_query(4, 10, &mut rng);
        let ((_, lcp), ledger) = execute(&trie, &q);
        assert_eq!(ledger.rounds(), 1);
        assert_eq!(ledger.total_probes(), 10, "reads lengths 1..=m");
        assert_eq!(lcp, instance.solve(&q).1);
    }

    #[test]
    fn space_model_is_polynomial() {
        let mut rng = StdRng::seed_from_u64(5);
        let instance = LpmInstance::random(4, 6, 50, &mut rng);
        let trie = TrieLpm::build(instance, 2);
        assert!(trie.space_model().is_poly_in(50, 4.0));
    }
}
