//! The round-elimination lower bound, executed numerically
//! (Theorem 24 / Claim 25 / Claim 26).
//!
//! The proof assumes a `t`-probe `k`-round scheme exists, translates it to
//! a `⟨A, B, 2k⟩` protocol (Proposition 18), and applies `k` elimination
//! steps. Step `i` (Claim 25, from Lemma 19) trades protocol rounds for a
//! smaller LPM instance:
//!
//! ```text
//!   m_{i+1} = m_i / (2·p_{i+1}),        p_{i+1} = (a_{i+1}/a_{i+2})·p,  p = m^{1/k}/2
//!   n_{i+1} = n_i / q_{i+1},            q_{i+1} = n^{t_{i+2}/t}
//!   ε_{i+1} = ε_i + 2δ + δ',            δ = 1/(4k)
//!   δ'     = sqrt( b_{i+1} · 2^{2·â_i/(δ·p_{i+1})} / q_{i+1} )
//! ```
//!
//! where `â_i` is the head of the inflated `A`-vector
//! (`Π_{j≤i}(1 + 2a_j/(a_{j+1}δp))` times `a_{i+1}`). Each step requires
//! `2p_{i+1} ≤ m_i`, `q_{i+1} ≤ |Σ|`, `2â_i/p_{i+1} ≥ C`, and `δ' ≤ δ`.
//! After `k` successful steps the protocol solves `LPM(Σ,1,1)` with error
//! `≤ 1/8 + 3kδ = 7/8` and **zero communication**, contradicting Claim 26
//! (success without communication is at most `1/|Σ|`). Hence no such
//! scheme exists: `t` is certifiably below the lower bound.
//!
//! Everything is computed in `f64` (log₂ domain where quantities are
//! astronomically large), so the calculator runs at the galactic parameter
//! sizes the honest constants require *and* at plottable sizes with the
//! relaxed constants of [`ElimParams::relaxed`] — experiment E3 reports
//! both, next to the asymptotic form [`lower_bound_form`].

use serde::{Deserialize, Serialize};

/// Constants of the elimination argument.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ElimParams {
    /// Table-size exponent: `s ≤ n^{c1}` (so addresses are `c1·log₂ n` bits).
    pub c1: f64,
    /// Word-size exponent: `w ≤ d^{c2}` bits.
    pub c2: f64,
    /// The universal constant `C` of the message-compression lemma
    /// (Lemma 23); unknown in the literature, parameterized here.
    pub universal_c: f64,
    /// `c4` in `β = 1 − c4/log log d` (paper: `c4 = 2·log₂ 201 ≈ 15.3`).
    pub c4: f64,
    /// Initial protocol error (the paper starts from 1/8).
    pub initial_error: f64,
}

impl ElimParams {
    /// The paper's honest constants. With these, `m = (log d)^{ηβ}` only
    /// becomes non-trivial at galactic dimensions (`log₂ d ≫ 2^{c4}`), as
    /// is typical for round-elimination proofs; the calculator still
    /// certifies there because everything is log-domain `f64`.
    pub fn paper() -> Self {
        ElimParams {
            c1: 1.0,
            c2: 1.0,
            universal_c: 4.0,
            c4: 2.0 * 201f64.log2(),
            initial_error: 0.125,
        }
    }

    /// Relaxed constants that exhibit the same recurrence shape at
    /// plottable sizes (used by E3 alongside the honest run; the *shape*
    /// `(1/k)(log d)^{1/k}` is constant-free).
    pub fn relaxed() -> Self {
        ElimParams {
            c1: 1.0,
            c2: 1.0,
            universal_c: 1.0,
            c4: 0.5,
            initial_error: 0.125,
        }
    }
}

/// What happened when the eliminations were replayed.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ElimOutcome {
    /// All `k` eliminations went through and the zero-communication
    /// endpoint contradicts Claim 26: **no `t`-probe `k`-round scheme
    /// exists** at these parameters.
    Contradiction {
        /// Protocol error after all eliminations (`≤ 7/8`).
        final_error: f64,
    },
    /// Some step failed — the proof cannot rule this `t` out.
    Survives {
        /// Which elimination step broke (0-based).
        step: u32,
        /// Which condition failed.
        reason: String,
    },
}

impl ElimOutcome {
    /// Whether the outcome certifies impossibility.
    pub fn is_contradiction(&self) -> bool {
        matches!(self, ElimOutcome::Contradiction { .. })
    }
}

/// Precondition report for Theorem 24's parameter regime.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RegimeCheck {
    /// `d ≤ 2^{√(log n)}`.
    pub d_not_too_large: bool,
    /// `n ≤ 2^{d^{0.99}}`.
    pub n_not_too_large: bool,
    /// `k ≤ log log d / (2·log log log d)`.
    pub k_in_range: bool,
}

/// Checks the theorem's parameter regime (informative; [`eliminate`] runs
/// regardless and reports which internal condition breaks).
pub fn regime_check(n_log2: f64, d_log2: f64, k: u32) -> RegimeCheck {
    let ll_d = d_log2.log2(); // log log d
    let lll_d = ll_d.log2(); // log log log d
    RegimeCheck {
        d_not_too_large: d_log2 <= n_log2.sqrt(),
        n_not_too_large: n_log2 <= (0.99 * d_log2).exp2(),
        k_in_range: lll_d > 0.0 && f64::from(k) <= ll_d / (2.0 * lll_d),
    }
}

/// The instance length `m = ⌊(log d)^{ηβ}⌋` of the LPM instance the
/// reduction produces (eq. (5); `= Θ(log_γ d)` for constant γ).
pub fn lpm_length(d_log2: f64, gamma: f64, params: &ElimParams) -> f64 {
    assert!(gamma >= 2.0, "calculator requires γ ≥ 2 (theorem: γ ≥ 3)");
    assert!(d_log2 > 2.0);
    let ll_d = d_log2.log2();
    // η = 1 − log log γ / log log d (log log γ ≤ 0 handled by γ ≥ 2).
    let log_log_gamma = gamma.log2().log2();
    let eta = 1.0 - log_log_gamma / ll_d;
    let beta = 1.0 - params.c4 / ll_d;
    d_log2.powf(eta * beta).floor()
}

/// Replays the `k` round eliminations for a claimed `t`-probe `k`-round
/// scheme on `ANNS(γ, d, n)` with probes split uniformly (`t_i = t/k`, the
/// split Theorem 24 analyses).
pub fn eliminate(
    n_log2: f64,
    d_log2: f64,
    gamma: f64,
    k: u32,
    t: f64,
    params: &ElimParams,
) -> ElimOutcome {
    eliminate_with_split(n_log2, d_log2, gamma, &vec![1.0; k as usize], t, params)
}

/// The general, non-uniform form of the recurrence — the setting Lemma 19
/// is proved in ("non-uniform message sizes in different rounds", §1).
///
/// `weights[i] ∝ t_{i+1}` describes how the `t` probes distribute over the
/// `k` rounds (normalized internally; the cyclic convention `t_{k+1} = t_1`
/// of eq. (8) is applied for the wrap-around indices).
pub fn eliminate_with_split(
    n_log2: f64,
    d_log2: f64,
    gamma: f64,
    weights: &[f64],
    t: f64,
    params: &ElimParams,
) -> ElimOutcome {
    let k = weights.len() as u32;
    assert!(k >= 1);
    assert!(t >= 1.0);
    assert!(
        weights.iter().all(|&w| w > 0.0),
        "every round must get a positive probe share"
    );
    let m = lpm_length(d_log2, gamma, params);
    if m < 2.0 {
        return ElimOutcome::Survives {
            step: 0,
            reason: format!("LPM length m = {m} < 2: instance trivial at these constants"),
        };
    }
    let delta = 1.0 / (4.0 * f64::from(k));
    let p = m.powf(1.0 / f64::from(k)) / 2.0;
    if p < 1.0 {
        return ElimOutcome::Survives {
            step: 0,
            reason: format!("p = m^(1/k)/2 = {p} < 1: k too large for this m"),
        };
    }
    // Normalize to absolute per-round probe counts t_i, with the cyclic
    // convention t_{k+1} = t_1 (eq. (8)).
    let weight_sum: f64 = weights.iter().sum();
    let t_of = |i: usize| t * weights[i % k as usize] / weight_sum;
    let a_of = |i: usize| params.c1 * t_of(i) * n_log2; // Alice bits, round i+1
    let b_log2_of = |i: usize| t_of(i).log2() + params.c2 * d_log2; // log₂(t_i·d^{c2})
    let sigma_log2 = (0.99 * d_log2).exp2(); // log₂|Σ| = d^0.99
    let mut m_i = m;
    let mut error = params.initial_error;
    // Running Π_{j≤i}(1 + 2a_j/(a_{j+1}·δ·p_{j+1})).
    let mut inflation = 1.0;
    for step in 0..k {
        let i = step as usize;
        // p_{i+1} = (a_{i+1}/a_{i+2})·p (Claim 25's choice).
        let p_next = p * a_of(i) / a_of(i + 1);
        // q_{i+1} = n^{t_{i+2}/t}.
        let q_log2 = n_log2 * t_of(i + 1) / t;
        if 2.0 * p_next > m_i {
            return ElimOutcome::Survives {
                step,
                reason: format!("2p = {} exceeds m_i = {m_i}", 2.0 * p_next),
            };
        }
        if q_log2 > sigma_log2 {
            return ElimOutcome::Survives {
                step,
                reason: format!("q (2^{q_log2}) exceeds |Σ| (2^{sigma_log2})"),
            };
        }
        let a_head = a_of(i) * inflation;
        if 2.0 * a_head / p_next < params.universal_c {
            return ElimOutcome::Survives {
                step,
                reason: format!(
                    "compression precondition 2a/p = {} below C = {}",
                    2.0 * a_head / p_next,
                    params.universal_c
                ),
            };
        }
        // δ'² = b·2^{2â/(δp)}/q, in log₂.
        let delta_prime_sq_log2 = b_log2_of(i) + 2.0 * a_head / (delta * p_next) - q_log2;
        let delta_sq_log2 = 2.0 * delta.log2();
        if delta_prime_sq_log2 > delta_sq_log2 {
            return ElimOutcome::Survives {
                step,
                reason: format!(
                    "δ'² = 2^{delta_prime_sq_log2:.2} exceeds δ² = 2^{delta_sq_log2:.2}"
                ),
            };
        }
        error += 3.0 * delta; // 2δ (Part I) + δ' ≤ δ (Part II)
        m_i /= 2.0 * p_next;
        inflation *= 1.0 + 2.0 * a_of(i) / (a_of(i + 1) * delta * p_next);
    }
    // Endpoint: a zero-communication protocol for LPM(Σ,1,1) with success
    // probability 1 − error, vs Claim 26's ceiling 1/|Σ| = 2^{−σ}.
    let success = 1.0 - error;
    if success <= 0.0 || success.log2() <= -sigma_log2 {
        return ElimOutcome::Survives {
            step: k,
            reason: format!("final error {error} leaves no usable success probability"),
        };
    }
    ElimOutcome::Contradiction { final_error: error }
}

/// The certified lower bound: the largest `t` (searched up to `t_max`)
/// such that [`eliminate`] still derives a contradiction. Returns 0 when no
/// `t` can be ruled out at these parameters.
pub fn certified_lower_bound(
    n_log2: f64,
    d_log2: f64,
    gamma: f64,
    k: u32,
    t_max: u64,
    params: &ElimParams,
) -> u64 {
    // The contradiction region is an interval [t_lo, t_hi]: too-small t can
    // fail the compression precondition, too-large t blows up δ'. Find any
    // contradiction point by geometric scan, then binary-search the upper
    // edge.
    let mut seed = None;
    let mut t = 1u64;
    while t <= t_max {
        if eliminate(n_log2, d_log2, gamma, k, t as f64, params).is_contradiction() {
            seed = Some(t);
            break;
        }
        t = (t * 2).max(t + 1);
    }
    let Some(seed) = seed else {
        return 0;
    };
    let (mut lo, mut hi) = (seed, t_max + 1);
    // Invariant: lo certifies, hi does not (or is out of range).
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if eliminate(n_log2, d_log2, gamma, k, mid as f64, params).is_contradiction() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// The constant-free asymptotic form of Theorem 4:
/// `(1/k)·(log_γ d)^{1/k}`.
pub fn lower_bound_form(d_log2: f64, gamma: f64, k: u32) -> f64 {
    assert!(gamma > 1.0 && k >= 1);
    let log_gamma_d = d_log2 / gamma.log2();
    log_gamma_d.powf(1.0 / f64::from(k)) / f64::from(k)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Galactic parameters where even the honest constants certify:
    /// log₂ d = 2^40 (so log log d = 40 ≫ c4), log₂ n = 2^80.
    const GALACTIC_D_LOG2: f64 = 1.1e12;
    const GALACTIC_N_LOG2: f64 = 1.3e24;

    #[test]
    fn honest_constants_certify_at_galactic_scale() {
        let params = ElimParams::paper();
        let k = 2u32;
        let outcome = eliminate(GALACTIC_N_LOG2, GALACTIC_D_LOG2, 4.0, k, 4.0, &params);
        assert!(
            outcome.is_contradiction(),
            "t = 4 must be impossible at k = 2: {outcome:?}"
        );
        let lb = certified_lower_bound(GALACTIC_N_LOG2, GALACTIC_D_LOG2, 4.0, k, 1 << 40, &params);
        assert!(lb >= 4, "certified lb {lb}");
        // And the certificate is not vacuous: large t survives.
        let big = eliminate(GALACTIC_N_LOG2, GALACTIC_D_LOG2, 4.0, k, 1e18, &params);
        assert!(!big.is_contradiction());
    }

    #[test]
    fn regime_check_flags() {
        let ok = regime_check(GALACTIC_N_LOG2, GALACTIC_D_LOG2, 2);
        assert!(ok.d_not_too_large && ok.n_not_too_large && ok.k_in_range);
        // d too large relative to n.
        let bad = regime_check(100.0, 1e6, 2);
        assert!(!bad.d_not_too_large);
    }

    #[test]
    fn certified_lb_grows_with_d_and_shrinks_with_k() {
        let params = ElimParams::relaxed();
        let n1 = 1e8f64;
        let lb_small_d = certified_lower_bound(n1, 1e3, 4.0, 2, 1 << 30, &params);
        let lb_large_d = certified_lower_bound(n1, 1e4, 4.0, 2, 1 << 30, &params);
        assert!(
            lb_large_d >= lb_small_d,
            "lb must grow with d: {lb_small_d} vs {lb_large_d}"
        );
        let lb_k2 = certified_lower_bound(n1, 1e4, 4.0, 2, 1 << 30, &params);
        let lb_k4 = certified_lower_bound(n1, 1e4, 4.0, 4, 1 << 30, &params);
        assert!(
            lb_k4 <= lb_k2,
            "lb must fall with k: k2 {lb_k2} vs k4 {lb_k4}"
        );
        assert!(lb_k2 > 0, "relaxed constants must certify something");
    }

    #[test]
    fn survives_reports_reasons() {
        let params = ElimParams::paper();
        // Tiny d: m < 2, nothing certifiable.
        let out = eliminate(1e6, 64.0, 4.0, 2, 4.0, &params);
        match out {
            ElimOutcome::Survives { reason, .. } => {
                assert!(reason.contains('m') || reason.contains("trivial"));
            }
            other => panic!("expected survive at tiny d, got {other:?}"),
        }
    }

    #[test]
    fn lower_bound_form_shape() {
        // k = 1: the form is log_γ d itself; it decays as k grows; and for
        // fixed k it grows with d.
        let f1 = lower_bound_form(4096.0, 4.0, 1);
        assert!((f1 - 2048.0).abs() < 1e-6);
        let mut prev = f64::INFINITY;
        for k in 1..=8 {
            let f = lower_bound_form(4096.0, 4.0, k);
            assert!(f < prev, "form must decay in k");
            prev = f;
        }
        assert!(lower_bound_form(1e6, 4.0, 3) > lower_bound_form(1e3, 4.0, 3));
    }

    #[test]
    fn uniform_split_equals_eliminate() {
        let params = ElimParams::relaxed();
        for t in [2.0f64, 8.0, 64.0] {
            let a = eliminate(1e16, 1e8, 4.0, 3, t, &params);
            let b = eliminate_with_split(1e16, 1e8, 4.0, &[1.0, 1.0, 1.0], t, &params);
            let c = eliminate_with_split(1e16, 1e8, 4.0, &[7.0, 7.0, 7.0], t, &params);
            assert_eq!(a.is_contradiction(), b.is_contradiction(), "t={t}");
            assert_eq!(
                a.is_contradiction(),
                c.is_contradiction(),
                "t={t} (scaled weights)"
            );
        }
    }

    #[test]
    fn starved_round_breaks_a_specific_step() {
        // Lemma 19's non-uniform generality matters: a round with a
        // near-zero probe share starves its q_{i+1} = n^{t_{i+2}/t} (and
        // distorts p_{i+1} = (a_{i+1}/a_{i+2})p), so the elimination that
        // consumes that round fails even where the uniform split certifies.
        let params = ElimParams::relaxed();
        let (n, d) = (1e16f64, 1e8f64);
        let uniform = eliminate_with_split(n, d, 4.0, &[1.0, 1.0, 1.0], 3.0, &params);
        assert!(uniform.is_contradiction());
        let starved = eliminate_with_split(n, d, 4.0, &[1.0, 1.0, 1e-9], 3.0, &params);
        match starved {
            ElimOutcome::Survives { .. } => {}
            other => panic!("starved split must break the recurrence, got {other:?}"),
        }
    }

    #[test]
    fn lpm_length_tracks_log_gamma_d() {
        // With relaxed constants at plottable sizes, m ≈ Θ(log_γ d).
        let params = ElimParams::relaxed();
        let m1 = lpm_length(1e3, 4.0, &params);
        let m2 = lpm_length(1e6, 4.0, &params);
        assert!(m2 > m1);
        let ratio = m2 / m1;
        // log_γ scaling: m2/m1 ≈ (1e6/1e3)^(ηβ) ≈ 1000^{~0.9..1}.
        assert!(ratio > 100.0 && ratio < 2000.0, "ratio {ratio}");
    }

    #[test]
    fn contradiction_region_is_bounded_above() {
        // For fixed parameters there is a t beyond which δ' explodes and the
        // proof stops certifying — the transition the binary search relies
        // on. The certifiable band requires roughly
        // t ≲ m^{1/k}/(16k·inflation^k), so d must be large enough that the
        // band is non-empty at k = 3 (log₂ d ≈ 10⁸ suffices).
        let params = ElimParams::relaxed();
        let (n, d, k) = (1e16f64, 1e8f64, 3u32);
        let lb = certified_lower_bound(n, d, 4.0, k, 1 << 30, &params);
        assert!(lb > 0);
        let above = eliminate(n, d, 4.0, k, (lb + 1) as f64, &params);
        assert!(!above.is_contradiction(), "lb+1 must not certify");
        let at = eliminate(n, d, 4.0, k, lb as f64, &params);
        assert!(at.is_contradiction());
    }

    #[test]
    fn certifiable_band_needs_large_d_at_higher_k() {
        // Documents the band emptiness at plottable sizes: at k = 3 and
        // log₂d = 10⁴ the band t ≲ m^{1/k}/(16k) contains no integer, so
        // nothing is certifiable — E3 therefore runs the honest calculator
        // at galactic sizes and overlays the constant-free form at
        // plottable ones.
        let params = ElimParams::relaxed();
        let lb = certified_lower_bound(1e8, 1e4, 4.0, 3, 1 << 30, &params);
        assert_eq!(lb, 0);
    }
}
