//! γ-separated trees of Hamming balls (Lemma 15 / Lemma 16).
//!
//! Lemma 16 builds a rooted tree whose vertices are Hamming balls in
//! `{0,1}^d`: children nest inside their parent, each depth-`i` ball has
//! radius `d/(8γ)^i`, and the depth-`i` balls form a **γ-separated family**
//! (any two points in distinct balls are more than `γ × diameter` apart).
//! The paper needs `⌈2^{d^0.99}⌉` children per node; the existence comes
//! from Lemma 15 (Chakrabarti–Chazelle–Gum–Lvov). At laptop scale we build
//! the same object constructively with greedy Gilbert–Varshamov codes
//! (substitution S2 of `DESIGN.md`): children centers are sampled on a
//! shell inside the parent with pairwise distance `> 2·r_child·(γ+1)`,
//! which implies the required point-separation `> γ·2·r_child` between
//! distinct child balls.
//!
//! The tree is the backbone of the `LPM → ANNS` reduction
//! ([`crate::reduce`]): a string over `Σ = {0..b−1}` walks the tree symbol
//! by symbol; its leaf center is its Hamming-space image.

use rand::Rng;

use anns_hamming::{GreedyCode, Point};

/// A γ-separated ball tree of uniform branching.
#[derive(Clone, Debug)]
pub struct BallTree {
    dim: u32,
    gamma: f64,
    branching: u16,
    depth: usize,
    /// `radii[i]` = ball radius at depth `i` (root at depth 0).
    radii: Vec<u32>,
    /// Level-order center storage: level `i` holds `branching^i` centers;
    /// children of node `j` at level `i` are nodes `j·b .. j·b+b` at `i+1`.
    levels: Vec<Vec<Point>>,
}

impl BallTree {
    /// Builds a tree of the given `depth` (leaves at `depth`) and
    /// `branching` inside `{0,1}^dim`, rooted at `root_center`.
    ///
    /// Returns `None` if some greedy code fails to reach the branching
    /// factor within `max_attempts` rejections per node (radii too small
    /// for the requested separation — the caller should lower `depth` /
    /// `branching` or raise `dim`, mirroring Lemma 15's `r ≥ d^0.995`
    /// hypothesis).
    pub fn build<R: Rng + ?Sized>(
        dim: u32,
        gamma: f64,
        branching: u16,
        depth: usize,
        root_center: Point,
        max_attempts: usize,
        rng: &mut R,
    ) -> Option<Self> {
        assert!(gamma > 1.0);
        assert!(branching >= 2);
        assert!(depth >= 1);
        assert_eq!(root_center.dim(), dim);
        // radius at depth i: d/(8γ)^i.
        let mut radii = Vec::with_capacity(depth + 1);
        for i in 0..=depth {
            let r = f64::from(dim) / (8.0 * gamma).powi(i as i32);
            radii.push(r.floor() as u32);
        }
        assert!(
            radii[depth] >= 1,
            "leaf radius underflows: raise dim or lower depth (d/(8γ)^m ≥ 1 needed)"
        );
        let mut levels: Vec<Vec<Point>> = vec![vec![root_center]];
        for i in 0..depth {
            let r_child = radii[i + 1];
            // Separation between child centers ⇒ γ-separation of the balls:
            // point distance > center distance − 2·r_child > γ·(2·r_child).
            let min_sep = 2 * r_child * (gamma.ceil() as u32 + 1);
            // Sample centers on a shell that both stays inside the parent
            // and keeps random points well spread (pairwise distance of
            // shell points ≈ 2q(1−q/d) peaks near q = d/2).
            let shell = (radii[i] - r_child).min(dim / 2).max(1);
            let mut next = Vec::with_capacity(levels[i].len() * branching as usize);
            for parent in &levels[i] {
                let code = GreedyCode::grow(
                    parent,
                    shell,
                    min_sep,
                    branching as usize,
                    max_attempts,
                    rng,
                );
                if code.len() < branching as usize {
                    return None;
                }
                next.extend(code.words().iter().cloned());
            }
            levels.push(next);
        }
        Some(BallTree {
            dim,
            gamma,
            branching,
            depth,
            radii,
            levels,
        })
    }

    /// Ambient dimension.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Tree depth (leaves live at this level).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Branching factor = alphabet size of the reduction.
    pub fn branching(&self) -> u16 {
        self.branching
    }

    /// Ball radius at a level.
    pub fn radius(&self, level: usize) -> u32 {
        self.radii[level]
    }

    /// Number of leaves (`branching^depth`).
    pub fn num_leaves(&self) -> usize {
        (self.branching as usize).pow(self.depth as u32)
    }

    /// The center reached from the root by following `path` (one symbol per
    /// level). Paths shorter than `depth` land on internal centers.
    ///
    /// # Panics
    /// Panics if a symbol is out of range.
    pub fn center(&self, path: &[u16]) -> &Point {
        assert!(path.len() <= self.depth);
        let mut idx = 0usize;
        for (level, &sym) in path.iter().enumerate() {
            assert!(sym < self.branching, "symbol out of range");
            idx = idx * self.branching as usize + sym as usize;
            let _ = level;
        }
        &self.levels[path.len()][idx]
    }

    /// Audits the construction: containment of children in parents and
    /// γ-separation at every level. Returns the worst observed ratio
    /// `point_separation / (γ·diameter)` (must be > 1).
    ///
    /// # Panics
    /// Panics if an invariant is violated.
    pub fn audit(&self) -> f64 {
        let mut worst = f64::INFINITY;
        for level in 1..=self.depth {
            let r = self.radii[level];
            let r_parent = self.radii[level - 1];
            let b = self.branching as usize;
            let centers = &self.levels[level];
            let parents = &self.levels[level - 1];
            // Containment.
            for (j, c) in centers.iter().enumerate() {
                let parent = &parents[j / b];
                assert!(
                    parent.distance(c) + r <= r_parent,
                    "child ball escapes parent at level {level}"
                );
            }
            // Separation between sibling balls (the γ-separated family is
            // the whole level; distinct subtrees are at least as separated
            // as siblings higher up, which containment transports down).
            for j in 0..centers.len() {
                for l in (j + 1)..centers.len() {
                    let center_dist = centers[j].distance(&centers[l]);
                    // Worst-case point distance between the two balls.
                    let point_sep = center_dist.saturating_sub(2 * r);
                    let needed = self.gamma * f64::from(2 * r);
                    assert!(
                        f64::from(point_sep) > needed,
                        "level {level}: balls {j},{l} separation {point_sep} ≤ γ·diam {needed}"
                    );
                    worst = worst.min(f64::from(point_sep) / needed);
                }
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tree(seed: u64, dim: u32, branching: u16, depth: usize) -> BallTree {
        let mut rng = StdRng::seed_from_u64(seed);
        let root = Point::random(dim, &mut rng);
        BallTree::build(dim, 2.0, branching, depth, root, 50_000, &mut rng)
            .expect("construction must succeed at these parameters")
    }

    #[test]
    fn depth_one_tree_shape_and_audit() {
        let t = tree(1, 1024, 8, 1);
        assert_eq!(t.num_leaves(), 8);
        assert_eq!(t.radius(0), 1024);
        assert_eq!(t.radius(1), 64);
        let margin = t.audit();
        assert!(margin > 1.0);
    }

    #[test]
    fn depth_two_tree_separation_holds_globally() {
        let t = tree(2, 2048, 4, 2);
        assert_eq!(t.num_leaves(), 16);
        assert_eq!(t.radius(2), 8);
        t.audit();
    }

    #[test]
    fn leaf_distance_encodes_lcp_depth() {
        // Two leaves sharing a longer path prefix are closer: within one
        // depth-1 subtree, distance ≤ 2·r₁; across subtrees > 2γ·r₁.
        let t = tree(3, 2048, 4, 2);
        let same_subtree = t.center(&[0, 0]).distance(t.center(&[0, 1]));
        let cross_subtree = t.center(&[0, 0]).distance(t.center(&[1, 0]));
        assert!(
            same_subtree <= 2 * t.radius(1),
            "same-subtree distance {same_subtree}"
        );
        assert!(
            f64::from(cross_subtree) > 2.0 * 2.0 * f64::from(t.radius(1)),
            "cross-subtree distance {cross_subtree}"
        );
        assert!(cross_subtree > same_subtree);
    }

    #[test]
    fn infeasible_parameters_return_none() {
        // γ close to 1 inflates the required separation past what shell
        // points can deliver: at γ = 1.2 the child separation is
        // 2·(d/9.6)·3 = 0.625d while random shell-(d/2) points concentrate
        // at pairwise distance ≈ d/2 — every candidate conflicts with the
        // first accepted word, so the greedy code stalls below the
        // branching target and the constructor reports failure.
        let mut rng = StdRng::seed_from_u64(4);
        let root = Point::random(512, &mut rng);
        let result = BallTree::build(512, 1.2, 8, 1, root, 1_000, &mut rng);
        assert!(result.is_none());
    }

    #[test]
    fn center_path_indexing() {
        let t = tree(5, 1024, 3, 2);
        // Root.
        assert_eq!(t.center(&[]).dim(), 1024);
        // All 9 leaves distinct.
        let mut seen = std::collections::HashSet::new();
        for a in 0..3u16 {
            for b in 0..3u16 {
                seen.insert(t.center(&[a, b]).clone());
            }
        }
        assert_eq!(seen.len(), 9);
    }

    #[test]
    #[should_panic]
    fn leaf_radius_underflow_is_detected() {
        let mut rng = StdRng::seed_from_u64(6);
        let root = Point::random(256, &mut rng);
        // depth 3 at d=256: 256/16³ < 1.
        let _ = BallTree::build(256, 2.0, 2, 3, root, 100, &mut rng);
    }
}
