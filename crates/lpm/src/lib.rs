//! The paper's lower-bound machinery (§4), made executable.
//!
//! Theorem 4's `Ω((1/k)(log d)^{1/k})` bound is proved in three moves, each
//! of which this crate implements:
//!
//! 1. [`problem`] — the **longest prefix match** problem `LPM(Σ, m, n)`
//!    (Definition 13) with an exhaustive reference solver;
//! 2. [`balltree`] + [`reduce`] — the reduction `LPM → ANNS` (Lemma 14):
//!    a γ-separated tree of Hamming balls (Lemma 15/16, built
//!    constructively with Gilbert–Varshamov codes at laptop scale) maps
//!    strings to leaf centers such that *any* γ-approximate
//!    nearest-neighbor answer reveals the longest common prefix;
//! 3. [`protocol`] + [`roundelim`] — the cell-probe → communication
//!    translation (Proposition 18) and the **round elimination** recurrence
//!    (Lemma 19 / Claim 25) executed numerically: for a given
//!    `(n, d, γ, k, t)` the calculator replays the proof's eliminations and
//!    reports whether a `t`-probe `k`-round scheme survives to the
//!    impossible zero-communication `LPM(Σ, 1, 1)` protocol (Claim 26) —
//!    i.e. whether `t` is *certifiably below* the lower bound.
//!
//! # Example
//!
//! Solve longest prefix match through the `k`-round trie scheme and
//! check it against the exhaustive reference solver:
//!
//! ```
//! use anns_cellprobe::execute;
//! use anns_lpm::{LpmInstance, TrieLpm};
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(5);
//! let instance = LpmInstance::random(4, 6, 32, &mut rng); // Σ = 4, m = 6, n = 32
//! let trie = TrieLpm::build(instance.clone(), 2);         // k = 2 rounds
//!
//! let query: Vec<u16> = (0..6).map(|_| rng.gen_range(0..4)).collect();
//! let ((idx, lcp), ledger) = execute(&trie, &query);
//! assert!(instance.is_correct(&query, idx));
//! assert_eq!(lcp, instance.solve(&query).1);
//! assert!(ledger.rounds() <= 2);
//! ```

pub mod balltree;
pub mod problem;
pub mod protocol;
pub mod reduce;
pub mod roundelim;
pub mod trie;

pub use balltree::BallTree;
pub use problem::{lcp_len, LpmInstance};
pub use protocol::ProtocolShape;
pub use reduce::LpmReduction;
pub use roundelim::{certified_lower_bound, eliminate, lower_bound_form, ElimOutcome, ElimParams};
pub use trie::TrieLpm;
