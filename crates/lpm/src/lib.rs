//! The paper's lower-bound machinery (§4), made executable.
//!
//! Theorem 4's `Ω((1/k)(log d)^{1/k})` bound is proved in three moves, each
//! of which this crate implements:
//!
//! 1. [`problem`] — the **longest prefix match** problem `LPM(Σ, m, n)`
//!    (Definition 13) with an exhaustive reference solver;
//! 2. [`balltree`] + [`reduce`] — the reduction `LPM → ANNS` (Lemma 14):
//!    a γ-separated tree of Hamming balls (Lemma 15/16, built
//!    constructively with Gilbert–Varshamov codes at laptop scale) maps
//!    strings to leaf centers such that *any* γ-approximate
//!    nearest-neighbor answer reveals the longest common prefix;
//! 3. [`protocol`] + [`roundelim`] — the cell-probe → communication
//!    translation (Proposition 18) and the **round elimination** recurrence
//!    (Lemma 19 / Claim 25) executed numerically: for a given
//!    `(n, d, γ, k, t)` the calculator replays the proof's eliminations and
//!    reports whether a `t`-probe `k`-round scheme survives to the
//!    impossible zero-communication `LPM(Σ, 1, 1)` protocol (Claim 26) —
//!    i.e. whether `t` is *certifiably below* the lower bound.

pub mod balltree;
pub mod problem;
pub mod protocol;
pub mod reduce;
pub mod roundelim;
pub mod trie;

pub use balltree::BallTree;
pub use problem::{lcp_len, LpmInstance};
pub use protocol::ProtocolShape;
pub use reduce::LpmReduction;
pub use roundelim::{certified_lower_bound, eliminate, lower_bound_form, ElimOutcome, ElimParams};
pub use trie::TrieLpm;
