//! The longest prefix match problem `LPM(Σ, m, n)` (Definition 13).
//!
//! Given a query string `x ∈ Σ^m` and a database `B ⊆ Σ^m` of `n` strings,
//! return some `z ∈ B` whose common prefix with `x` is longest. LPM
//! "critically captures the nature of searching for the nearest neighbors"
//! (§1): unlike the decision problem `λ-ANN` (1-probe solvable,
//! Theorem 11), its answer localizes the query at every scale at once —
//! which is exactly what the reduction of Lemma 14 transports into Hamming
//! space.
//!
//! Strings are `Vec<u16>` over an alphabet `{0, …, |Σ|−1}`; the paper's
//! alphabet is the enormous `⌈2^{d^0.99}⌉`, ours is a parameter (see
//! substitution S2 in `DESIGN.md`).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A string over the integer alphabet.
pub type LpmString = Vec<u16>;

/// Length of the longest common prefix of two strings.
pub fn lcp_len(a: &[u16], b: &[u16]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// An LPM instance: alphabet size, string length, and database.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LpmInstance {
    /// Alphabet size `|Σ|`.
    pub sigma: u16,
    /// String length `m`.
    pub m: usize,
    /// The database `B` (n strings).
    pub database: Vec<LpmString>,
}

impl LpmInstance {
    /// Creates an instance, validating every string.
    ///
    /// # Panics
    /// Panics on empty databases, wrong lengths, or out-of-alphabet symbols.
    pub fn new(sigma: u16, m: usize, database: Vec<LpmString>) -> Self {
        assert!(sigma >= 2, "alphabet needs at least two symbols");
        assert!(m >= 1, "strings must be non-empty");
        assert!(!database.is_empty(), "database must be non-empty");
        for s in &database {
            assert_eq!(s.len(), m, "database string of wrong length");
            assert!(s.iter().all(|&c| c < sigma), "symbol out of alphabet");
        }
        LpmInstance { sigma, m, database }
    }

    /// A random instance with `n` distinct strings.
    pub fn random<R: Rng + ?Sized>(sigma: u16, m: usize, n: usize, rng: &mut R) -> Self {
        assert!(
            (n as f64) <= (f64::from(sigma)).powi(m as i32),
            "alphabet too small for {n} distinct strings"
        );
        let mut set = std::collections::HashSet::with_capacity(n);
        while set.len() < n {
            let s: LpmString = (0..m).map(|_| rng.gen_range(0..sigma)).collect();
            set.insert(s);
        }
        LpmInstance::new(sigma, m, set.into_iter().collect())
    }

    /// Database size `n`.
    pub fn len(&self) -> usize {
        self.database.len()
    }

    /// Never true (constructor rejects empty databases).
    pub fn is_empty(&self) -> bool {
        self.database.is_empty()
    }

    /// The exhaustive reference solver: index of a database string with the
    /// longest common prefix (lowest index wins ties), plus the LCP length.
    pub fn solve(&self, query: &[u16]) -> (usize, usize) {
        assert_eq!(query.len(), self.m);
        let mut best = (0usize, 0usize);
        for (i, s) in self.database.iter().enumerate() {
            let l = lcp_len(query, s);
            if l > best.1 {
                best = (i, l);
                if l == self.m {
                    break;
                }
            }
        }
        best
    }

    /// Whether returning database index `idx` is a *correct* LPM answer for
    /// `query` (achieves the maximal LCP — the relation allows any
    /// maximizer, not just the solver's tie-break).
    pub fn is_correct(&self, query: &[u16], idx: usize) -> bool {
        let (_, opt) = self.solve(query);
        lcp_len(query, &self.database[idx]) == opt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lcp_basic() {
        assert_eq!(lcp_len(&[1, 2, 3], &[1, 2, 4]), 2);
        assert_eq!(lcp_len(&[1, 2, 3], &[1, 2, 3]), 3);
        assert_eq!(lcp_len(&[5], &[6]), 0);
        assert_eq!(lcp_len(&[], &[]), 0);
    }

    #[test]
    fn solver_finds_maximal_prefix() {
        let inst = LpmInstance::new(
            4,
            3,
            vec![vec![0, 1, 2], vec![0, 1, 3], vec![2, 0, 0], vec![0, 2, 2]],
        );
        let (idx, l) = inst.solve(&[0, 1, 3]);
        assert_eq!((idx, l), (1, 3), "exact match");
        let (idx, l) = inst.solve(&[0, 2, 3]);
        assert_eq!((idx, l), (3, 2));
        let (_, l) = inst.solve(&[3, 3, 3]);
        assert_eq!(l, 0);
        assert!(
            inst.is_correct(&[3, 3, 3], 2),
            "any string is a maximizer at lcp 0"
        );
    }

    #[test]
    fn random_instances_have_distinct_strings() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = LpmInstance::random(4, 5, 50, &mut rng);
        let set: std::collections::HashSet<_> = inst.database.iter().collect();
        assert_eq!(set.len(), 50);
    }

    #[test]
    fn solver_against_brute_force_on_random() {
        let mut rng = StdRng::seed_from_u64(2);
        let inst = LpmInstance::random(3, 4, 30, &mut rng);
        for _ in 0..50 {
            let q: LpmString = (0..4).map(|_| rng.gen_range(0..3)).collect();
            let (idx, l) = inst.solve(&q);
            let brute = inst.database.iter().map(|s| lcp_len(&q, s)).max().unwrap();
            assert_eq!(l, brute);
            assert_eq!(lcp_len(&q, &inst.database[idx]), brute);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_alphabet() {
        let _ = LpmInstance::new(2, 2, vec![vec![0, 5]]);
    }

    #[test]
    #[should_panic]
    fn rejects_too_many_distinct_strings() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = LpmInstance::random(2, 2, 5, &mut rng); // only 4 exist
    }
}
