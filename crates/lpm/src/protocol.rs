//! Cell-probe schemes as communication protocols (Proposition 18).
//!
//! A `k`-round cell-probing scheme with `t_i` probes in round `i` on a
//! table of `s` cells and word size `w` is a `⟨A, B, 2k⟩`-protocol between
//! Alice (the query algorithm) and Bob (the table): Alice's `i`-th message
//! carries the `t_i` probed addresses (`a_i = t_i·⌈log₂ s⌉` bits), Bob's
//! reply carries their contents (`b_i = t_i·w` bits). This is the paper's
//! observation that *k rounds of probes = 2k rounds of communication*, and
//! it is where the non-uniform message sizes of Lemma 19 come from.

use anns_cellprobe::ProbeLedger;
use serde::{Deserialize, Serialize};

/// Message-size vectors of the induced `⟨A, B, 2k⟩` protocol.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProtocolShape {
    /// Alice's message sizes `a_i = t_i·⌈log₂ s⌉`, bits.
    pub a: Vec<f64>,
    /// Bob's message sizes `b_i = t_i·w`, bits.
    pub b: Vec<f64>,
}

impl ProtocolShape {
    /// Translates a measured ledger (Proposition 18). `cells_log2` is
    /// `log₂ s`, `word_bits` is `w`.
    pub fn from_ledger(ledger: &ProbeLedger, cells_log2: f64, word_bits: u64) -> Self {
        let addr_bits = cells_log2.ceil().max(1.0);
        let a = ledger
            .per_round
            .iter()
            .map(|&t| t as f64 * addr_bits)
            .collect();
        let b = ledger
            .per_round
            .iter()
            .map(|&t| t as f64 * word_bits as f64)
            .collect();
        ProtocolShape { a, b }
    }

    /// The uniform-split shape used by the lower-bound recurrence:
    /// `t_i = t/k` for all rounds.
    pub fn uniform(t_total: f64, k: u32, cells_log2: f64, word_bits_log2: f64) -> Self {
        assert!(k >= 1);
        let per_round = t_total / f64::from(k);
        let a = vec![per_round * cells_log2.ceil().max(1.0); k as usize];
        let b = vec![per_round * word_bits_log2.exp2(); k as usize];
        ProtocolShape { a, b }
    }

    /// Number of communication rounds (`2k`).
    pub fn comm_rounds(&self) -> usize {
        2 * self.a.len()
    }

    /// Total bits exchanged.
    pub fn total_bits(&self) -> f64 {
        self.a.iter().sum::<f64>() + self.b.iter().sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_translation_matches_proposition_18() {
        let ledger = ProbeLedger {
            per_round: vec![3, 1, 2],
            word_bits_read: 999,
            max_word_bits: 512,
            address_bits_sent: 0,
        };
        let shape = ProtocolShape::from_ledger(&ledger, 30.0, 512);
        assert_eq!(shape.a, vec![90.0, 30.0, 60.0]);
        assert_eq!(shape.b, vec![3.0 * 512.0, 512.0, 1024.0]);
        assert_eq!(shape.comm_rounds(), 6);
        assert!((shape.total_bits() - (180.0 + 3072.0)).abs() < 1e-9);
    }

    #[test]
    fn uniform_shape() {
        let shape = ProtocolShape::uniform(12.0, 4, 20.0, 9.0);
        assert_eq!(shape.a.len(), 4);
        assert!((shape.a[0] - 3.0 * 20.0).abs() < 1e-9);
        assert!((shape.b[0] - 3.0 * 512.0).abs() < 1e-9);
    }

    #[test]
    fn fractional_cells_round_up() {
        let ledger = ProbeLedger {
            per_round: vec![1],
            word_bits_read: 0,
            max_word_bits: 0,
            address_bits_sent: 0,
        };
        let shape = ProtocolShape::from_ledger(&ledger, 10.2, 8);
        assert_eq!(shape.a, vec![11.0]);
    }
}
