//! Property tests for the direct k-round LPM scheme.

use anns_cellprobe::execute;
use anns_lpm::{LpmInstance, TrieLpm};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For random instances, alphabet sizes, lengths and round budgets, the
    /// trie scheme returns a maximal-LCP witness within its round budget
    /// and probe bound.
    #[test]
    fn trie_matches_reference_solver(
        seed in any::<u64>(),
        sigma in 2u16..8,
        m in 1usize..12,
        n_exp in 1u32..6,
        k in 1u32..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let max_strings = (f64::from(sigma)).powi(m as i32);
        let n = ((1usize << n_exp) as f64).min(max_strings) as usize;
        prop_assume!(n >= 1);
        let instance = LpmInstance::random(sigma, m, n, &mut rng);
        let trie = TrieLpm::build(instance.clone(), k);
        let tau = trie.tau();
        for _ in 0..6 {
            let q: Vec<u16> = (0..m).map(|_| rng.gen_range(0..sigma)).collect();
            let ((idx, lcp), ledger) = execute(&trie, &q);
            let (_, expect) = instance.solve(&q);
            prop_assert_eq!(lcp, expect);
            prop_assert!(instance.is_correct(&q, idx));
            prop_assert!(ledger.rounds() <= k as usize);
            prop_assert!(ledger.total_probes() <= (k * tau) as usize);
        }
    }

    /// Database members always resolve to full-length matches.
    #[test]
    fn members_resolve_exactly(seed in any::<u64>(), k in 1u32..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let instance = LpmInstance::random(4, 6, 20, &mut rng);
        let trie = TrieLpm::build(instance.clone(), k);
        let pick = rng.gen_range(0..instance.len());
        let q = instance.database[pick].clone();
        let ((idx, lcp), _) = execute(&trie, &q);
        prop_assert_eq!(lcp, 6);
        prop_assert_eq!(&instance.database[idx], &q);
    }
}
