//! The server's shutdown report: global admission counters plus the
//! per-tenant usage rows, flattened for JSON round-tripping.
//!
//! `annsctl server` writes one of these on drain; `annsctl trace
//! inspect --server-report` reloads it and reconciles the per-tenant
//! rows against the trace's `tenant_decision` events by *exact*
//! equality — both sides are pure functions of the workload, so any
//! drift is a bug, not noise.

use std::time::Duration;

use anns_engine::{EngineStats, TenantUsage};
use anns_obs::TraceCounters;

/// One tenant's usage, flattened from [`TenantUsage`] (histograms are
/// summarized so the report deserializes without them).
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TenantUsageReport {
    /// Tenant name.
    pub tenant: String,
    /// Requests admitted into the shared window.
    pub enqueued: u64,
    /// Requests refused by the tenant's token bucket.
    pub throttled: u64,
    /// Requests shed by the shared queue's capacity bound.
    pub shed: u64,
    /// Admitted requests resolved with an answer.
    pub served: u64,
    /// Admitted requests resolved with a typed error.
    pub failed: u64,
    /// Probes executed for this tenant's served queries.
    pub probes: u64,
    /// Mean admission wait, microseconds.
    pub wait_mean_us: f64,
    /// Worst admission wait, microseconds.
    pub wait_max_us: f64,
}

impl TenantUsageReport {
    /// Flattens one engine-side usage row.
    pub fn from_usage(u: &TenantUsage) -> Self {
        TenantUsageReport {
            tenant: u.tenant.clone(),
            enqueued: u.enqueued,
            throttled: u.throttled,
            shed: u.shed,
            served: u.served,
            failed: u.failed,
            probes: u.probes,
            wait_mean_us: u.wait_hist.mean() / 1e3,
            wait_max_us: u.wait_hist.max as f64 / 1e3,
        }
    }
}

/// The server's lifetime accounting, written as JSON at drain.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServerReport {
    /// Queries served through the engine.
    pub queries: u64,
    /// Requests admitted into the shared window (all tenants).
    pub enqueued: u64,
    /// Requests shed by the shared queue (all tenants).
    pub shed: u64,
    /// Windows sealed into generations.
    pub windows: u64,
    /// Windows sealed by fill / deadline / drain.
    pub sealed_by_fill: u64,
    /// See `sealed_by_fill`.
    pub sealed_by_deadline: u64,
    /// See `sealed_by_fill`.
    pub sealed_by_drain: u64,
    /// Driver threads the pool ran.
    pub drivers: u64,
    /// The live `max_wait` at drain time, microseconds (what the
    /// arrival-rate adapter converged to).
    pub max_wait_us: u64,
    /// Per-tenant usage, sorted by tenant name (deterministic JSON).
    pub tenants: Vec<TenantUsageReport>,
    /// Trace events the recorder accepted (0 with tracing off).
    pub trace_events: u64,
    /// Trace events the bounded ring evicted.
    pub trace_dropped: u64,
}

impl ServerReport {
    /// Builds the report from the engine's cumulative stats.
    pub fn from_stats(
        stats: &EngineStats,
        drivers: usize,
        max_wait: Duration,
        trace: TraceCounters,
    ) -> Self {
        let mut tenants: Vec<TenantUsageReport> = stats
            .online
            .tenants
            .iter()
            .map(TenantUsageReport::from_usage)
            .collect();
        tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        ServerReport {
            queries: stats.queries,
            enqueued: stats.online.enqueued,
            shed: stats.online.shed,
            windows: stats.online.windows,
            sealed_by_fill: stats.online.sealed_by_fill,
            sealed_by_deadline: stats.online.sealed_by_deadline,
            sealed_by_drain: stats.online.sealed_by_drain,
            drivers: drivers as u64,
            max_wait_us: max_wait.as_micros() as u64,
            tenants,
            trace_events: trace.events,
            trace_dropped: trace.dropped,
        }
    }

    /// The usage row for `tenant`, if present.
    pub fn tenant(&self, tenant: &str) -> Option<&TenantUsageReport> {
        self.tenants.iter().find(|t| t.tenant == tenant)
    }
}
