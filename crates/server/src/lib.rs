//! # anns-server: the network serving tier
//!
//! A TCP front over the engine's
//! [`AdmissionQueue`](anns_engine::admission::AdmissionQueue):
//! length-prefixed
//! typed frames on the wire, a per-tenant token-bucket gate ahead of
//! the shared queue, and a driver pool sized from the machine. The
//! pieces, bottom-up:
//!
//! - [`frame`] — the wire protocol: an 11-byte versioned header plus a
//!   payload encoded with the `anns-store` codec. Every parse failure
//!   is typed; hostile length prefixes are rejected before allocation.
//! - [`bucket`] — the token bucket, refilled from caller-supplied
//!   clock nanoseconds so tests drive it deterministically.
//! - [`tenant`] — the [`TenantGate`]: bucket-then-queue admission with
//!   exact per-tenant accounting (every decision increments one usage
//!   counter and emits one `tenant_decision` trace event).
//! - [`server`] — [`AnnsServer`]: accept loop, per-connection handler
//!   threads, the driver pool, and the arrival-rate `max_wait`
//!   adapter.
//! - [`client`] — the blocking [`Client`], measuring socket-to-ticket
//!   and socket-to-answer latency per query.
//! - [`report`] — the [`ServerReport`] written at drain, which `annsctl
//!   trace inspect` reconciles against the trace by exact equality.
//!
//! Backpressure is always typed, never a dropped connection: a tenant
//! over its rate sees `Throttled` (with a retry hint), a full shared
//! queue sees `Overloaded` (with depth and capacity), a draining
//! server sees `Closed`.

pub mod bucket;
pub mod client;
pub mod frame;
pub mod report;
pub mod server;
pub mod tenant;

pub use anns_engine::ServeError;
pub use bucket::TokenBucket;
pub use client::{Client, ClientError, QueryReply};
pub use frame::{
    read_frame, write_frame, ErrorCode, Frame, FrameError, TransportError, WireAnswer, WireFault,
    WireShard, MAX_PAYLOAD, VERSION,
};
pub use report::{ServerReport, TenantUsageReport};
pub use server::{AnnsServer, ServerOptions};
pub use tenant::{Denied, TenantGate, TenantPolicy};
