//! The blocking client for the `anns-server` wire protocol.
//!
//! One [`Client`] owns one TCP connection and speaks the framed
//! protocol from [`crate::frame`]. Every failure is typed —
//! [`ClientError`] distinguishes transport faults, malformed frames,
//! and the server's own typed refusals — so callers (notably `annsctl
//! client`) can map each class onto a distinct exit code.
//!
//! Latency is measured client-side, per query, at two points: when the
//! [`Ticket`](crate::frame::Frame::Ticket) acknowledgment arrives
//! (socket-to-ticket: admission latency as the client observes it) and
//! when the [`Answer`](crate::frame::Frame::Answer) arrives
//! (socket-to-answer: the full round trip through the batched engine).

use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Instant;

use anns_hamming::Point;

use crate::frame::{read_frame, Frame, FrameError, WireAnswer, WireFault, WireShard};

/// Why a client call failed. Each variant maps onto a distinct
/// `annsctl client` exit code.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed (connect, read, write, or the server hung up
    /// mid-frame).
    Transport(std::io::Error),
    /// Bytes arrived but did not parse as a frame.
    Frame(FrameError),
    /// The server answered with a typed error frame.
    Server(WireFault),
    /// The server answered with a well-formed frame of the wrong kind.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport: {e}"),
            ClientError::Frame(e) => write!(f, "frame: {e}"),
            ClientError::Server(fault) => write!(f, "server: {fault}"),
            ClientError::Protocol(what) => write!(f, "protocol: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<crate::frame::TransportError> for ClientError {
    fn from(e: crate::frame::TransportError) -> Self {
        match e {
            crate::frame::TransportError::Io(e) => ClientError::Transport(e),
            crate::frame::TransportError::Frame(e) => ClientError::Frame(e),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Transport(e)
    }
}

/// One answered query, with the client-side latency split.
#[derive(Clone, Debug)]
pub struct QueryReply {
    /// The engine's answer as it crossed the wire.
    pub answer: WireAnswer,
    /// Queue depth at admission, from the ticket acknowledgment.
    pub depth: u64,
    /// Send-to-ticket round trip, nanoseconds (admission latency as
    /// the client sees it).
    pub ticket_rtt_ns: u64,
    /// Send-to-answer round trip, nanoseconds (the full serve).
    pub answer_rtt_ns: u64,
}

/// A blocking connection to one `anns-server`.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connects and handshakes: sends [`Frame::Hello`], returns the
    /// client plus the server's shard listing from
    /// [`Frame::Welcome`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<(Self, Vec<WireShard>), ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = Client {
            stream,
            buf: Vec::new(),
        };
        client.send(&Frame::Hello)?;
        match client.recv()? {
            Frame::Welcome { shards } => Ok((client, shards)),
            Frame::Error(fault) => Err(ClientError::Server(fault)),
            other => Err(ClientError::Protocol(format!(
                "expected welcome, got {}",
                other.kind_name()
            ))),
        }
    }

    fn send(&mut self, frame: &Frame) -> Result<(), ClientError> {
        self.buf = frame.encode();
        self.stream.write_all(&self.buf)?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Frame, ClientError> {
        match read_frame(&mut self.stream)? {
            Some(frame) => Ok(frame),
            None => Err(ClientError::Transport(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
        }
    }

    /// One query as `tenant` against `shard`: sends
    /// [`Frame::Query`], waits for the ticket acknowledgment, then the
    /// answer. A typed server refusal (throttle, overload, closed,
    /// unknown shard) surfaces as [`ClientError::Server`]; both round
    /// trips are stamped from the same pre-send instant.
    pub fn query(
        &mut self,
        tenant: &str,
        shard: &str,
        point: &Point,
    ) -> Result<QueryReply, ClientError> {
        let start = Instant::now();
        self.send(&Frame::Query {
            tenant: tenant.to_string(),
            shard: shard.to_string(),
            point: point.clone(),
        })?;
        let depth = match self.recv()? {
            Frame::Ticket { depth } => depth,
            Frame::Error(fault) => return Err(ClientError::Server(fault)),
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected ticket, got {}",
                    other.kind_name()
                )))
            }
        };
        let ticket_rtt_ns = start.elapsed().as_nanos() as u64;
        match self.recv()? {
            Frame::Answer(answer) => Ok(QueryReply {
                answer,
                depth,
                ticket_rtt_ns,
                answer_rtt_ns: start.elapsed().as_nanos() as u64,
            }),
            Frame::Error(fault) => Err(ClientError::Server(fault)),
            other => Err(ClientError::Protocol(format!(
                "expected answer, got {}",
                other.kind_name()
            ))),
        }
    }

    /// Asks the server to drain and exit; returns the server's lifetime
    /// served count from [`Frame::ShutdownAck`].
    pub fn shutdown_server(&mut self) -> Result<u64, ClientError> {
        self.send(&Frame::Shutdown)?;
        match self.recv()? {
            Frame::ShutdownAck { served } => Ok(served),
            Frame::Error(fault) => Err(ClientError::Server(fault)),
            other => Err(ClientError::Protocol(format!(
                "expected shutdown ack, got {}",
                other.kind_name()
            ))),
        }
    }
}
