//! The TCP front: accept loop, per-connection protocol handlers, and
//! the driver pool that pumps the shared admission queue.
//!
//! One thread per connection, blocking I/O, no async runtime: the
//! workspace's zero-new-deps rule, and honest at this tier's scale —
//! the expensive part of a query is the engine's coalesced execution,
//! not the socket. The pool of queue drivers sizes itself from
//! [`std::thread::available_parallelism`] (clamped the same way
//! `Engine::new` clamps `batch_threads`), and a [`WaitAdapter`] retunes
//! the queue's seal deadline from the observed arrival rate: when
//! arrivals are fast a window fills long before the configured
//! deadline, so waiting the full deadline buys nothing; when arrivals
//! are slow the deadline stretches back toward the configured cap so
//! batching still happens.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use anns_engine::admission::{AdmissionOptions, AdmissionQueue};
use anns_engine::clock::Clock;
use anns_engine::registry::ShardId;
use anns_engine::{Engine, NamedRequest};

use crate::frame::{
    read_frame, write_frame, ErrorCode, Frame, TransportError, WireAnswer, WireFault, WireShard,
};
use crate::report::ServerReport;
use crate::tenant::{TenantGate, TenantPolicy};

/// Network-tier configuration.
#[derive(Clone, Debug)]
pub struct ServerOptions {
    /// Shared admission-queue configuration; `max_wait` is the adaptive
    /// deadline's *cap*.
    pub admission: AdmissionOptions,
    /// Queue-driver threads. 0 = size from `available_parallelism`;
    /// any value is clamped to `1..=available_parallelism`.
    pub drivers: usize,
    /// Policy for tenants without an explicit entry in `policies`.
    pub default_policy: TenantPolicy,
    /// Per-tenant policy overrides.
    pub policies: Vec<(String, TenantPolicy)>,
    /// Whether to adapt `max_wait` to the observed arrival rate.
    pub adapt_max_wait: bool,
    /// Concurrent-connection cap for the thread-per-connection accept
    /// loop (the hardening bound on handler threads). An accepted
    /// connection beyond the cap is refused with one typed
    /// [`ErrorCode::Overloaded`] error frame and closed — clients see
    /// the same refusal class as a full admission queue, never a silent
    /// hangup. `0` means unlimited.
    pub max_connections: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            admission: AdmissionOptions::default(),
            drivers: 0,
            default_policy: TenantPolicy::default(),
            policies: Vec::new(),
            adapt_max_wait: true,
            max_connections: 256,
        }
    }
}

/// Bounded accounting of live connection-handler threads. The accept
/// loop acquires a slot before spawning a handler; the slot releases
/// when the handler's guard drops, so `active` tracks threads actually
/// running (not sockets the OS has queued).
struct ConnSlots {
    max: usize,
    active: Arc<AtomicUsize>,
}

impl ConnSlots {
    /// A slot pool capped at `max` (`0` = unlimited).
    fn new(max: usize) -> Self {
        ConnSlots {
            max,
            active: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Live handler count.
    fn active(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Claims a slot, or `None` at the cap. Lock-free: a compare-exchange
    /// loop so two racing accepts never overshoot the cap.
    fn try_acquire(&self) -> Option<ConnGuard> {
        let mut current = self.active.load(Ordering::SeqCst);
        loop {
            if self.max != 0 && current >= self.max {
                return None;
            }
            match self.active.compare_exchange(
                current,
                current + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    return Some(ConnGuard {
                        active: Arc::clone(&self.active),
                    })
                }
                Err(observed) => current = observed,
            }
        }
    }
}

/// RAII slot release: moved into the handler thread, decrements when the
/// connection's exchange fully finishes (whatever the exit path).
struct ConnGuard {
    active: Arc<AtomicUsize>,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Retunes the admission deadline from the observed arrival rate.
///
/// Every `window` arrivals it estimates the rate over the elapsed
/// clock time and answers with the deadline under which a window of
/// `target_fill` queries would *just* fill at that rate —
/// `target_fill × elapsed ∕ window` — clamped to `[cap∕16, cap]`.
/// Deterministic: pure arithmetic on caller-supplied clock readings,
/// so tests drive it with fabricated nanoseconds.
#[derive(Debug)]
pub struct WaitAdapter {
    cap_ns: u64,
    floor_ns: u64,
    target_fill: u64,
    window: u64,
    count: u64,
    window_start_ns: u64,
    primed: bool,
}

impl WaitAdapter {
    /// Recompute cadence: arrivals between retunes.
    pub const WINDOW: u64 = 32;

    /// An adapter capped at `cap` for windows of `target_fill` queries.
    pub fn new(cap: Duration, target_fill: usize) -> Self {
        let cap_ns = (cap.as_nanos() as u64).max(1);
        WaitAdapter {
            cap_ns,
            floor_ns: (cap_ns / 16).max(1),
            target_fill: target_fill.max(1) as u64,
            window: Self::WINDOW,
            count: 0,
            window_start_ns: 0,
            primed: false,
        }
    }

    /// Notes one arrival at `now_ns`; every [`WaitAdapter::WINDOW`]
    /// arrivals, returns the retuned deadline.
    pub fn observe(&mut self, now_ns: u64) -> Option<Duration> {
        if !self.primed {
            self.primed = true;
            self.window_start_ns = now_ns;
            self.count = 0;
        }
        self.count += 1;
        if self.count < self.window {
            return None;
        }
        let elapsed = now_ns.saturating_sub(self.window_start_ns);
        // Deadline at which `target_fill` arrivals at the observed pace
        // fill a window exactly; saturating math so a stalled clock
        // (elapsed = 0) lands on the floor, not a panic.
        let ideal = (elapsed / self.window).saturating_mul(self.target_fill);
        let tuned = ideal.clamp(self.floor_ns, self.cap_ns);
        self.count = 0;
        self.window_start_ns = now_ns;
        Some(Duration::from_nanos(tuned))
    }
}

struct Inner {
    engine: Arc<Engine>,
    queue: Arc<AdmissionQueue>,
    gate: TenantGate,
    clock: Arc<dyn Clock>,
    listener: TcpListener,
    local_addr: SocketAddr,
    shutdown: AtomicBool,
    served_total: AtomicU64,
    adapter: Option<Mutex<WaitAdapter>>,
    drivers: usize,
    slots: ConnSlots,
}

impl Inner {
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.close();
        // The accept loop is parked in accept(); a throwaway connection
        // wakes it so it can observe the flag and exit.
        let _ = TcpStream::connect(self.local_addr);
    }
}

/// The serving front: a bound listener plus everything behind it.
/// Cheap to clone (one `Arc`); clone it into the thread that calls
/// [`AnnsServer::run`] and keep a handle for [`AnnsServer::report`] /
/// [`AnnsServer::shutdown`].
#[derive(Clone)]
pub struct AnnsServer {
    inner: Arc<Inner>,
}

impl AnnsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) over
    /// `engine`. The queue, gate, and driver pool read time from
    /// `clock`.
    pub fn bind(
        addr: &str,
        engine: Arc<Engine>,
        opts: ServerOptions,
        clock: Arc<dyn Clock>,
    ) -> std::io::Result<AnnsServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let queue = Arc::new(AdmissionQueue::new(
            Arc::clone(&engine),
            opts.admission,
            Arc::clone(&clock),
        ));
        let mut gate = TenantGate::new(Arc::clone(&queue), Arc::clone(&clock), opts.default_policy);
        for (tenant, policy) in &opts.policies {
            gate = gate.with_policy(tenant, *policy);
        }
        let available = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let drivers = if opts.drivers == 0 {
            available
        } else {
            opts.drivers.clamp(1, available)
        };
        let adapter = opts.adapt_max_wait.then(|| {
            Mutex::new(WaitAdapter::new(
                opts.admission.max_wait,
                opts.admission.max_generation,
            ))
        });
        Ok(AnnsServer {
            inner: Arc::new(Inner {
                engine,
                queue,
                gate,
                clock,
                listener,
                local_addr,
                shutdown: AtomicBool::new(false),
                served_total: AtomicU64::new(0),
                adapter,
                drivers,
                slots: ConnSlots::new(opts.max_connections),
            }),
        })
    }

    /// The bound address (the ephemeral port, when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr
    }

    /// The shared admission queue (test and introspection surface).
    pub fn queue(&self) -> &Arc<AdmissionQueue> {
        &self.inner.queue
    }

    /// The engine being served.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.inner.engine
    }

    /// Driver threads the pool will run.
    pub fn drivers(&self) -> usize {
        self.inner.drivers
    }

    /// Connection-handler threads currently live (test and
    /// introspection surface).
    pub fn active_connections(&self) -> usize {
        self.inner.slots.active()
    }

    /// Initiates drain from outside the protocol (signal handlers,
    /// tests). Idempotent.
    pub fn shutdown(&self) {
        self.inner.begin_shutdown();
    }

    /// Lifetime accounting so far (callable before or after drain).
    pub fn report(&self) -> ServerReport {
        ServerReport::from_stats(
            &self.inner.engine.stats(),
            self.inner.drivers,
            self.inner.queue.max_wait(),
            self.inner.engine.recorder().counters(),
        )
    }

    /// Serves until a `Shutdown` frame (or [`AnnsServer::shutdown`])
    /// arrives, then drains: the queue closes, drivers flush partial
    /// windows as `Drain` seals, every in-flight connection finishes
    /// its exchange, and all threads are joined before returning.
    pub fn run(&self) {
        let mut drivers = Vec::with_capacity(self.inner.drivers);
        for _ in 0..self.inner.drivers {
            let queue = Arc::clone(&self.inner.queue);
            drivers.push(std::thread::spawn(move || queue.run()));
        }
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for stream in self.inner.listener.incoming() {
            if self.inner.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => match self.inner.slots.try_acquire() {
                    Some(guard) => {
                        let inner = Arc::clone(&self.inner);
                        handlers.push(std::thread::spawn(move || {
                            let _slot = guard;
                            handle_conn(&inner, stream);
                        }));
                    }
                    // At the cap: one typed refusal frame, then close —
                    // inline, so the flood itself never spawns threads.
                    None => refuse_conn(&self.inner, stream),
                },
                Err(_) => continue,
            }
            // Reap finished handlers so an indefinitely running server
            // does not accumulate one JoinHandle per past connection.
            handlers.retain(|h| !h.is_finished());
        }
        // Shutdown path: close once more (idempotent; covers external
        // shutdown()), then wait for every exchange and driver.
        self.inner.queue.close();
        for h in handlers {
            let _ = h.join();
        }
        for d in drivers {
            let _ = d.join();
        }
    }
}

/// Refuses a connection accepted past the cap: one
/// [`ErrorCode::Overloaded`] frame (depth = live handlers, capacity =
/// the cap, so clients can log how full the server was), then drop.
fn refuse_conn(inner: &Inner, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let fault = WireFault {
        code: ErrorCode::Overloaded,
        depth: inner.slots.active() as u64,
        capacity: inner.slots.max as u64,
        message: "connection limit reached; retry later".to_string(),
    };
    let _ = write_frame(&mut stream, &Frame::Error(fault));
}

fn welcome(inner: &Inner) -> Frame {
    let registry = inner.engine.registry();
    let shards = registry
        .listing()
        .into_iter()
        .enumerate()
        .map(|(i, (name, label))| WireShard {
            name,
            label,
            dim: registry.scheme(ShardId(i)).query_dim().unwrap_or(0),
        })
        .collect();
    Frame::Welcome { shards }
}

fn handle_conn(inner: &Arc<Inner>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            // Clean close at a frame boundary: the client is done.
            Ok(None) => return,
            Err(TransportError::Frame(e)) => {
                // Unframeable bytes poison the stream (no resync point):
                // answer typed, then hang up.
                let fault = WireFault {
                    code: ErrorCode::BadRequest,
                    depth: 0,
                    capacity: 0,
                    message: e.to_string(),
                };
                let _ = write_frame(&mut stream, &Frame::Error(fault));
                return;
            }
            Err(TransportError::Io(_)) => return,
        };
        match frame {
            Frame::Hello => {
                if write_frame(&mut stream, &welcome(inner)).is_err() {
                    return;
                }
            }
            Frame::Query {
                tenant,
                shard,
                point,
            } => {
                if let Some(adapter) = &inner.adapter {
                    let retuned = adapter
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .observe(inner.clock.now_ns());
                    if let Some(max_wait) = retuned {
                        inner.queue.set_max_wait(max_wait);
                    }
                }
                let request = NamedRequest {
                    shard,
                    query: point,
                };
                match inner.gate.submit(&tenant, request) {
                    Err(denied) => {
                        let fault = denied.to_fault(inner.queue.depth() as u64);
                        if write_frame(&mut stream, &Frame::Error(fault)).is_err() {
                            return;
                        }
                    }
                    Ok(ticket) => {
                        let acked = write_frame(
                            &mut stream,
                            &Frame::Ticket {
                                depth: inner.queue.depth() as u64,
                            },
                        )
                        .is_ok();
                        // Settle even when the client vanished mid-
                        // exchange: usage accounting follows the work,
                        // not the socket.
                        let resolution = ticket.wait();
                        inner.gate.settle(&tenant, &resolution);
                        let reply = match &resolution.result {
                            Ok(served) => {
                                inner.served_total.fetch_add(1, Ordering::Relaxed);
                                Frame::Answer(WireAnswer {
                                    index: served.answer.index(),
                                    rounds: served.ledger.rounds() as u64,
                                    probes: served.ledger.total_probes() as u64,
                                    wait_ns: resolution.wait_ns,
                                    latency_ns: served.latency_ns,
                                    within_budget: served.within_budget,
                                    epoch: served.epoch,
                                })
                            }
                            Err(e) => Frame::Error(WireFault::from_serve_error(e)),
                        };
                        if !acked || write_frame(&mut stream, &reply).is_err() {
                            return;
                        }
                    }
                }
            }
            Frame::Shutdown => {
                let _ = write_frame(
                    &mut stream,
                    &Frame::ShutdownAck {
                        served: inner.served_total.load(Ordering::Relaxed),
                    },
                );
                inner.begin_shutdown();
                return;
            }
            // Server-to-client frames arriving at the server are a
            // protocol violation: answer typed, hang up.
            other => {
                let fault = WireFault {
                    code: ErrorCode::BadRequest,
                    depth: 0,
                    capacity: 0,
                    message: format!("unexpected {} frame", other.kind_name()),
                };
                let _ = write_frame(&mut stream, &Frame::Error(fault));
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn conn_slots_cap_and_release() {
        let slots = ConnSlots::new(2);
        let a = slots.try_acquire().expect("slot 1");
        let b = slots.try_acquire().expect("slot 2");
        assert_eq!(slots.active(), 2);
        assert!(slots.try_acquire().is_none(), "at the cap");
        drop(a);
        assert_eq!(slots.active(), 1);
        let c = slots.try_acquire().expect("released slot is reusable");
        assert!(slots.try_acquire().is_none());
        drop(b);
        drop(c);
        assert_eq!(slots.active(), 0);
    }

    #[test]
    fn conn_slots_zero_means_unlimited() {
        let slots = ConnSlots::new(0);
        let guards: Vec<ConnGuard> = (0..512).map(|_| slots.try_acquire().unwrap()).collect();
        assert_eq!(slots.active(), 512);
        drop(guards);
        assert_eq!(slots.active(), 0);
    }

    #[test]
    fn conn_slots_never_overshoot_under_racing_accepts() {
        let slots = Arc::new(ConnSlots::new(4));
        let peak = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let slots = Arc::clone(&slots);
                let peak = Arc::clone(&peak);
                std::thread::spawn(move || {
                    let mut refused = 0usize;
                    for _ in 0..2_000 {
                        match slots.try_acquire() {
                            Some(_guard) => {
                                peak.fetch_max(slots.active(), Ordering::SeqCst);
                            }
                            None => refused += 1,
                        }
                    }
                    refused
                })
            })
            .collect();
        for t in threads {
            let _ = t.join().unwrap();
        }
        assert!(
            peak.load(Ordering::SeqCst) <= 4,
            "cap held under contention"
        );
        assert_eq!(slots.active(), 0);
    }

    #[test]
    fn adapter_shrinks_deadline_under_fast_arrivals() {
        // Cap 2ms, windows of 64. Arrivals every 10µs → a window fills
        // in 640µs, so the deadline should come down to ~640µs.
        let mut a = WaitAdapter::new(Duration::from_millis(2), 64);
        let mut tuned = None;
        for i in 0..WaitAdapter::WINDOW {
            tuned = a.observe(i * 10_000).or(tuned);
        }
        let tuned = tuned.expect("one full window retunes");
        // 32 arrivals spaced 10µs span 310µs: mean spacing 310µs/32,
        // scaled to the 64-query fill target.
        assert_eq!(tuned, Duration::from_nanos(310_000 / 32 * 64));
        assert!(tuned < Duration::from_millis(2));
    }

    #[test]
    fn adapter_clamps_to_cap_when_arrivals_are_slow() {
        // Arrivals every 1ms → ideal fill time 64ms, far over the 2ms
        // cap: the deadline must stay at the cap.
        let mut a = WaitAdapter::new(Duration::from_millis(2), 64);
        let mut tuned = None;
        for i in 0..WaitAdapter::WINDOW {
            tuned = a.observe(i * MS).or(tuned);
        }
        assert_eq!(tuned, Some(Duration::from_millis(2)));
    }

    #[test]
    fn adapter_floors_on_a_frozen_clock() {
        // All arrivals at one instant (elapsed 0): floor = cap/16, not
        // a zero deadline and not a divide-by-zero.
        let mut a = WaitAdapter::new(Duration::from_millis(2), 64);
        let mut tuned = None;
        for _ in 0..WaitAdapter::WINDOW {
            tuned = a.observe(5 * MS).or(tuned);
        }
        assert_eq!(tuned, Some(Duration::from_nanos(2 * MS / 16)));
    }

    #[test]
    fn adapter_recomputes_per_window_not_cumulatively() {
        let mut a = WaitAdapter::new(Duration::from_millis(2), 64);
        // First window: slow (1ms spacing) → cap.
        let mut now = 0;
        let mut tuned = None;
        for _ in 0..WaitAdapter::WINDOW {
            now += MS;
            tuned = a.observe(now).or(tuned);
        }
        assert_eq!(tuned, Some(Duration::from_millis(2)));
        // Second window: fast (10µs spacing) → retunes down; the slow
        // first window must not drag the estimate.
        let mut tuned = None;
        for _ in 0..WaitAdapter::WINDOW {
            now += 10_000;
            tuned = a.observe(now).or(tuned);
        }
        assert_eq!(tuned, Some(Duration::from_nanos(10_000 * 64)));
    }
}
