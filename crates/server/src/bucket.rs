//! The token bucket: per-tenant rate limiting on injectable time.
//!
//! Refill is computed from [`Clock`](anns_obs::Clock) nanoseconds
//! handed in by the caller — the bucket itself never reads a wall
//! clock, so tests drive it with a `VirtualClock` and prove admission
//! decisions deterministically, with zero sleeps.

/// A token bucket: capacity `burst`, refilling at `rate_per_sec`
/// tokens per second of caller-supplied clock time. Starts full, so a
/// tenant's first `burst` requests always pass — the classic shape
/// that admits short spikes while bounding sustained rate.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    rate_per_sec: f64,
    burst: f64,
    tokens: f64,
    last_ns: u64,
}

impl TokenBucket {
    /// A full bucket as of `now_ns`.
    ///
    /// # Panics
    /// If `burst < 1` (a bucket that can never admit anything is a
    /// misconfiguration, not a mode) or `rate_per_sec` is negative or
    /// non-finite (zero is allowed: the bucket never refills and the
    /// tenant gets exactly its initial burst).
    pub fn new(rate_per_sec: f64, burst: f64, now_ns: u64) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec >= 0.0,
            "refill rate must be finite and non-negative"
        );
        assert!(
            burst.is_finite() && burst >= 1.0,
            "burst must be at least one token"
        );
        TokenBucket {
            rate_per_sec,
            burst,
            tokens: burst,
            last_ns: now_ns,
        }
    }

    /// Configured refill rate, tokens per second.
    pub fn rate_per_sec(&self) -> f64 {
        self.rate_per_sec
    }

    /// Configured capacity.
    pub fn burst(&self) -> f64 {
        self.burst
    }

    fn refill(&mut self, now_ns: u64) {
        // A clock that moved backwards (never the workspace clocks, but
        // the math must not explode) grants no refill.
        let elapsed = now_ns.saturating_sub(self.last_ns);
        self.last_ns = self.last_ns.max(now_ns);
        self.tokens = (self.tokens + elapsed as f64 * self.rate_per_sec / 1e9).min(self.burst);
    }

    /// Takes one token if available. On refusal, nothing is consumed.
    pub fn try_take(&mut self, now_ns: u64) -> bool {
        self.refill(now_ns);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens available at `now_ns` (refills as a side effect).
    pub fn available(&mut self, now_ns: u64) -> f64 {
        self.refill(now_ns);
        self.tokens
    }

    /// Clock nanoseconds until one token will be available (0 when one
    /// already is; `u64::MAX` when the rate is zero and the bucket is
    /// empty) — the `retry_after` hint a throttle error carries.
    pub fn ns_until_token(&mut self, now_ns: u64) -> u64 {
        self.refill(now_ns);
        if self.tokens >= 1.0 {
            return 0;
        }
        if self.rate_per_sec <= 0.0 {
            return u64::MAX;
        }
        ((1.0 - self.tokens) / self.rate_per_sec * 1e9).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn burst_admits_then_rate_governs() {
        let mut b = TokenBucket::new(10.0, 3.0, 0);
        // The full burst passes back-to-back at a frozen clock...
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        // ...then the bucket is empty until time passes.
        assert!(!b.try_take(0));
        // 10 tokens/s → one token every 100ms.
        assert!(!b.try_take(99 * SEC / 1000));
        assert!(b.try_take(100 * SEC / 1000));
        assert!(!b.try_take(100 * SEC / 1000), "the refill was consumed");
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut b = TokenBucket::new(1000.0, 2.0, 0);
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        // An hour of idle refill still caps at burst = 2.
        assert_eq!(b.available(3600 * SEC), 2.0);
    }

    #[test]
    fn retry_hint_is_exact_for_positive_rate() {
        let mut b = TokenBucket::new(2.0, 1.0, 0);
        assert_eq!(b.ns_until_token(0), 0);
        assert!(b.try_take(0));
        // 2 tokens/s → next token in 500ms.
        assert_eq!(b.ns_until_token(0), SEC / 2);
        // Halfway there, half the wait remains.
        assert_eq!(b.ns_until_token(SEC / 4), SEC / 4);
    }

    #[test]
    fn zero_rate_never_refills() {
        let mut b = TokenBucket::new(0.0, 1.0, 0);
        assert!(b.try_take(0));
        assert!(!b.try_take(u64::MAX / 2));
        assert_eq!(b.ns_until_token(u64::MAX / 2), u64::MAX);
    }

    #[test]
    fn backwards_clock_grants_nothing() {
        let mut b = TokenBucket::new(1000.0, 1.0, SEC);
        assert!(b.try_take(SEC));
        assert!(!b.try_take(0), "a rewound clock must not mint tokens");
        // And the high-water mark survives: real elapsed time from the
        // *latest* instant still refills.
        assert!(b.try_take(SEC + SEC / 1000));
    }
}
