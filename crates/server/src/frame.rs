//! The wire protocol: versioned, length-prefixed frames over TCP.
//!
//! Every frame is an 11-byte header followed by a payload:
//!
//! | offset | size | field                                        |
//! |-------:|-----:|----------------------------------------------|
//! | 0      | 4    | magic `"ANSF"`                               |
//! | 4      | 2    | protocol version, little-endian (`1`)        |
//! | 6      | 1    | frame kind                                   |
//! | 7      | 4    | payload length, little-endian                |
//! | 11     | len  | payload ([`anns_store`]-codec encoded)       |
//!
//! The codec is hand-rolled in the style of `anns-store`'s [`Codec`]:
//! payloads compose the same [`ByteWriter`]/[`ByteReader`] primitives
//! (so `Point` reuses its store encoding verbatim), decoding never
//! trusts a length with an allocation — the header length is capped at
//! [`MAX_PAYLOAD`] *before* any payload is read, and inner string/point
//! prefixes are validated against the bytes actually present — and
//! every failure is a typed [`FrameError`], never a panic or a dropped
//! connection. A buffer that simply ends too early is
//! [`FrameError::Truncated`], the "read more bytes" signal a streaming
//! reader keys on; every *strict prefix* of a valid frame decodes to
//! exactly that.

use std::io::{Read, Write};

use anns_hamming::Point;
use anns_store::{ByteReader, ByteWriter, Codec, StoreError};

use crate::ServeError;

/// Frame magic: first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"ANSF";

/// Protocol version this build speaks.
pub const VERSION: u16 = 1;

/// Header bytes before the payload.
pub const HEADER_LEN: usize = 11;

/// Hard cap on a payload length (1 MiB). A header claiming more is
/// rejected as [`FrameError::TooLarge`] before a single payload byte is
/// read or allocated — the allocation cap that makes hostile length
/// prefixes an error, not a reservation.
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// Why a byte sequence is not a frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends before the frame does; `need` is the total byte
    /// count the frame requires. The streaming reader's "wait for more"
    /// signal — every strict prefix of a valid frame decodes to this.
    Truncated {
        /// Total bytes the frame needs (header + payload).
        need: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// A version this build does not speak.
    UnsupportedVersion(u16),
    /// An unassigned frame-kind byte.
    UnknownKind(u8),
    /// The header claims a payload larger than [`MAX_PAYLOAD`].
    TooLarge {
        /// Claimed payload length.
        len: u32,
        /// The cap it exceeded.
        cap: u32,
    },
    /// The payload bytes do not decode as the kind's schema.
    Malformed(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { need } => write!(f, "truncated frame: needs {need} bytes"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::TooLarge { len, cap } => {
                write!(f, "payload length {len} exceeds the {cap}-byte cap")
            }
            FrameError::Malformed(msg) => write!(f, "malformed payload: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Payload decode failures map onto [`FrameError::Malformed`]; by the
/// time a payload is parsed its bytes are fully present, so a store
/// underrun *inside* it is schema skew, not a short read.
impl From<StoreError> for FrameError {
    fn from(e: StoreError) -> Self {
        FrameError::Malformed(e.to_string())
    }
}

/// Typed wire error codes — the backpressure vocabulary. `Throttled`
/// and `Overloaded` are *distinct*: the first means the tenant's own
/// token bucket is empty (slow down), the second that the shared
/// admission queue is at capacity (everyone backs off). Both derive
/// from [`ServeError::Overloaded`]-style shedding, never a dropped
/// connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The tenant's token bucket is empty; retry after the refill.
    Throttled = 1,
    /// The shared admission queue is at capacity
    /// ([`ServeError::Overloaded`]).
    Overloaded = 2,
    /// The server is draining ([`ServeError::Closed`]).
    Closed = 3,
    /// The shard name did not resolve in the serving epoch
    /// ([`ServeError::UnknownShard`]).
    UnknownShard = 4,
    /// The request itself was unintelligible or arrived out of
    /// protocol order.
    BadRequest = 5,
    /// The target shard's mmap-backed payload failed its deferred
    /// first-touch verification or decode
    /// ([`ServeError::ShardFault`]) — the bundle needs a remount from
    /// an intact file; retrying will not help.
    ShardFault = 6,
}

impl ErrorCode {
    /// Decodes a wire byte.
    pub fn from_u8(v: u8) -> Result<Self, StoreError> {
        Ok(match v {
            1 => ErrorCode::Throttled,
            2 => ErrorCode::Overloaded,
            3 => ErrorCode::Closed,
            4 => ErrorCode::UnknownShard,
            5 => ErrorCode::BadRequest,
            6 => ErrorCode::ShardFault,
            other => return Err(StoreError::Malformed(format!("error code {other}"))),
        })
    }

    /// Stable lowercase label (reports, logs).
    pub fn label(&self) -> &'static str {
        match self {
            ErrorCode::Throttled => "throttled",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Closed => "closed",
            ErrorCode::UnknownShard => "unknown_shard",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::ShardFault => "shard_fault",
        }
    }
}

/// A typed error frame's contents.
#[derive(Clone, Debug, PartialEq)]
pub struct WireFault {
    /// What went wrong.
    pub code: ErrorCode,
    /// Queue depth observed at rejection (overload/throttle context).
    pub depth: u64,
    /// The capacity or bucket burst the request exceeded.
    pub capacity: u64,
    /// Human-readable detail.
    pub message: String,
}

impl WireFault {
    /// Maps an engine-side rejection onto its wire form.
    pub fn from_serve_error(e: &ServeError) -> Self {
        match e {
            ServeError::Overloaded { depth, capacity } => WireFault {
                code: ErrorCode::Overloaded,
                depth: *depth as u64,
                capacity: *capacity as u64,
                message: e.to_string(),
            },
            ServeError::Closed => WireFault {
                code: ErrorCode::Closed,
                depth: 0,
                capacity: 0,
                message: e.to_string(),
            },
            ServeError::UnknownShard { .. } => WireFault {
                code: ErrorCode::UnknownShard,
                depth: 0,
                capacity: 0,
                message: e.to_string(),
            },
            ServeError::ShardFault { .. } => WireFault {
                code: ErrorCode::ShardFault,
                depth: 0,
                capacity: 0,
                message: e.to_string(),
            },
        }
    }
}

impl std::fmt::Display for WireFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.label(), self.message)
    }
}

impl Codec for WireFault {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(self.code as u8);
        w.put_u64(self.depth);
        w.put_u64(self.capacity);
        self.message.encode(w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(WireFault {
            code: ErrorCode::from_u8(r.u8()?)?,
            depth: r.u64()?,
            capacity: r.u64()?,
            message: String::decode(r)?,
        })
    }
}

/// One shard row in a [`Frame::Welcome`].
#[derive(Clone, Debug, PartialEq)]
pub struct WireShard {
    /// Shard name (what a [`Frame::Query`] addresses).
    pub name: String,
    /// Scheme label, e.g. `alg1[k=3]`.
    pub label: String,
    /// Query dimension the shard expects (0 when the scheme declares
    /// none).
    pub dim: u32,
}

impl Codec for WireShard {
    fn encode(&self, w: &mut ByteWriter) {
        self.name.encode(w);
        self.label.encode(w);
        w.put_u32(self.dim);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(WireShard {
            name: String::decode(r)?,
            label: String::decode(r)?,
            dim: r.u32()?,
        })
    }
}

/// A served answer's wire form: the database index (if any) plus the
/// cost/accounting fields a client needs to reason about its own
/// latency — admission wait vs execution time, probes, rounds, the
/// epoch that answered.
#[derive(Clone, Debug, PartialEq)]
pub struct WireAnswer {
    /// Database index of the answer point; `None` = no neighbor found.
    pub index: Option<u64>,
    /// Probe rounds the query used.
    pub rounds: u64,
    /// Total cell-probes the query used.
    pub probes: u64,
    /// Admission wait (enqueue → window seal), server-clock ns.
    pub wait_ns: u64,
    /// Execution latency inside the generation, server-clock ns.
    pub latency_ns: u64,
    /// Whether the query stayed within its shard's declared budgets.
    pub within_budget: bool,
    /// Mount-table epoch that served the query.
    pub epoch: u64,
}

impl Codec for WireAnswer {
    fn encode(&self, w: &mut ByteWriter) {
        self.index.encode(w);
        w.put_u64(self.rounds);
        w.put_u64(self.probes);
        w.put_u64(self.wait_ns);
        w.put_u64(self.latency_ns);
        self.within_budget.encode(w);
        w.put_u64(self.epoch);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(WireAnswer {
            index: Option::<u64>::decode(r)?,
            rounds: r.u64()?,
            probes: r.u64()?,
            wait_ns: r.u64()?,
            latency_ns: r.u64()?,
            within_budget: bool::decode(r)?,
            epoch: r.u64()?,
        })
    }
}

/// Frame-kind bytes (header offset 6).
mod kind {
    pub const HELLO: u8 = 1;
    pub const WELCOME: u8 = 2;
    pub const QUERY: u8 = 3;
    pub const TICKET: u8 = 4;
    pub const ANSWER: u8 = 5;
    pub const ERROR: u8 = 6;
    pub const SHUTDOWN: u8 = 7;
    pub const SHUTDOWN_ACK: u8 = 8;
}

/// One protocol frame. The request/response grammar:
///
/// * `Hello` → `Welcome` (shard discovery);
/// * `Query` → `Error` (rejected at admission: throttled, overloaded,
///   closed), or `Ticket` (admitted) followed by `Answer` or `Error`
///   (resolved) — the two-step reply is what lets a client measure
///   socket-to-ticket and socket-to-answer separately;
/// * `Shutdown` → `ShutdownAck`, then the server drains and exits.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Client hello; empty payload.
    Hello,
    /// Server directory: every mounted shard with its query dimension.
    Welcome {
        /// Mounted shards, id order.
        shards: Vec<WireShard>,
    },
    /// One tenant-attributed query.
    Query {
        /// Tenant the request bills to.
        tenant: String,
        /// Target shard name.
        shard: String,
        /// The query point (store codec encoding).
        point: Point,
    },
    /// Admission succeeded; the query is in the shared window. `depth`
    /// is the queue fill after this admission.
    Ticket {
        /// Queue depth after admission.
        depth: u64,
    },
    /// The query resolved with an answer.
    Answer(WireAnswer),
    /// The query (or connection) was rejected, typed.
    Error(WireFault),
    /// Ask the server to drain and exit; empty payload.
    Shutdown,
    /// Shutdown accepted; `served` is the lifetime served-query count.
    ShutdownAck {
        /// Queries served over the server's lifetime.
        served: u64,
    },
}

impl Frame {
    fn kind_byte(&self) -> u8 {
        match self {
            Frame::Hello => kind::HELLO,
            Frame::Welcome { .. } => kind::WELCOME,
            Frame::Query { .. } => kind::QUERY,
            Frame::Ticket { .. } => kind::TICKET,
            Frame::Answer(_) => kind::ANSWER,
            Frame::Error(_) => kind::ERROR,
            Frame::Shutdown => kind::SHUTDOWN,
            Frame::ShutdownAck { .. } => kind::SHUTDOWN_ACK,
        }
    }

    /// Short stable name for logs and reports.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Frame::Hello => "hello",
            Frame::Welcome { .. } => "welcome",
            Frame::Query { .. } => "query",
            Frame::Ticket { .. } => "ticket",
            Frame::Answer(_) => "answer",
            Frame::Error(_) => "error",
            Frame::Shutdown => "shutdown",
            Frame::ShutdownAck { .. } => "shutdown_ack",
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Frame::Hello | Frame::Shutdown => {}
            Frame::Welcome { shards } => shards.encode(&mut w),
            Frame::Query {
                tenant,
                shard,
                point,
            } => {
                tenant.encode(&mut w);
                shard.encode(&mut w);
                point.encode(&mut w);
            }
            Frame::Ticket { depth } => w.put_u64(*depth),
            Frame::Answer(a) => a.encode(&mut w),
            Frame::Error(e) => e.encode(&mut w),
            Frame::ShutdownAck { served } => w.put_u64(*served),
        }
        w.into_bytes()
    }

    fn decode_payload(kind: u8, payload: &[u8]) -> Result<Frame, FrameError> {
        let mut r = ByteReader::new(payload);
        let frame = match kind {
            kind::HELLO => Frame::Hello,
            kind::WELCOME => Frame::Welcome {
                shards: Vec::<WireShard>::decode(&mut r)?,
            },
            kind::QUERY => Frame::Query {
                tenant: String::decode(&mut r)?,
                shard: String::decode(&mut r)?,
                point: Point::decode(&mut r)?,
            },
            kind::TICKET => Frame::Ticket { depth: r.u64()? },
            kind::ANSWER => Frame::Answer(WireAnswer::decode(&mut r)?),
            kind::ERROR => Frame::Error(WireFault::decode(&mut r)?),
            kind::SHUTDOWN => Frame::Shutdown,
            kind::SHUTDOWN_ACK => Frame::ShutdownAck { served: r.u64()? },
            other => return Err(FrameError::UnknownKind(other)),
        };
        r.finish()?;
        Ok(frame)
    }

    /// Encodes this frame: header plus payload.
    ///
    /// # Panics
    /// If the payload exceeds [`MAX_PAYLOAD`] — an encoder-side bug
    /// (the caller built an oversized frame), not a wire condition.
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.payload();
        assert!(
            payload.len() <= MAX_PAYLOAD as usize,
            "frame payload {} exceeds the {}-byte cap",
            payload.len(),
            MAX_PAYLOAD
        );
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.push(self.kind_byte());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes one frame from the front of `buf`, returning it with the
    /// byte count consumed. [`FrameError::Truncated`] means the buffer
    /// holds a valid-so-far prefix — read more and retry; every other
    /// error is fatal for the stream. Structural checks run in header
    /// order (magic, version, kind, length cap) *before* any payload
    /// byte is touched, so a hostile header is rejected without an
    /// allocation.
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), FrameError> {
        if buf.len() >= 4 && buf[..4] != MAGIC {
            return Err(FrameError::BadMagic([buf[0], buf[1], buf[2], buf[3]]));
        }
        if buf.len() >= 6 {
            let version = u16::from_le_bytes([buf[4], buf[5]]);
            if version != VERSION {
                return Err(FrameError::UnsupportedVersion(version));
            }
        }
        if buf.len() < HEADER_LEN {
            return Err(FrameError::Truncated { need: HEADER_LEN });
        }
        let len = u32::from_le_bytes([buf[7], buf[8], buf[9], buf[10]]);
        if len > MAX_PAYLOAD {
            return Err(FrameError::TooLarge {
                len,
                cap: MAX_PAYLOAD,
            });
        }
        let need = HEADER_LEN + len as usize;
        if buf.len() < need {
            return Err(FrameError::Truncated { need });
        }
        let frame = Frame::decode_payload(buf[6], &buf[HEADER_LEN..need])?;
        Ok((frame, need))
    }
}

/// A failure while moving frames over a stream.
#[derive(Debug)]
pub enum TransportError {
    /// The socket failed (reset, refused, mid-frame EOF).
    Io(std::io::Error),
    /// The bytes were not a valid frame.
    Frame(FrameError),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport: {e}"),
            TransportError::Frame(e) => write!(f, "frame: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

impl From<FrameError> for TransportError {
    fn from(e: FrameError) -> Self {
        TransportError::Frame(e)
    }
}

/// Writes one frame and flushes.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&frame.encode())?;
    w.flush()
}

/// Reads exactly `buf.len()` bytes; `Ok(false)` = clean EOF before the
/// first byte, `Err` = EOF mid-buffer or a socket failure.
fn read_full<R: Read>(r: &mut R, buf: &mut [u8]) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = r.read(&mut buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(false);
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!("eof {filled} bytes into a frame"),
            ));
        }
        filled += n;
    }
    Ok(true)
}

/// Reads one frame from a blocking stream. `Ok(None)` is a clean close
/// (EOF at a frame boundary); EOF *inside* a frame is an error. The
/// payload buffer is allocated only after the header's length passes
/// the [`MAX_PAYLOAD`] cap.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Frame>, TransportError> {
    let mut header = [0u8; HEADER_LEN];
    if !read_full(r, &mut header)? {
        return Ok(None);
    }
    // Validate the header structurally before trusting its length.
    match Frame::decode(&header) {
        Err(FrameError::Truncated { need }) => {
            debug_assert!(need >= HEADER_LEN);
        }
        Err(fatal) => return Err(fatal.into()),
        Ok(_) => {} // zero-payload frame: fall through to the common path
    }
    let len = u32::from_le_bytes([header[7], header[8], header[9], header[10]]) as usize;
    let mut buf = Vec::with_capacity(HEADER_LEN + len);
    buf.extend_from_slice(&header);
    buf.resize(HEADER_LEN + len, 0);
    if !read_full(r, &mut buf[HEADER_LEN..])? {
        return Err(TransportError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "eof inside a frame payload",
        )));
    }
    let (frame, consumed) = Frame::decode(&buf)?;
    debug_assert_eq!(consumed, buf.len());
    Ok(Some(frame))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_payload_frames_roundtrip() {
        for frame in [Frame::Hello, Frame::Shutdown] {
            let bytes = frame.encode();
            assert_eq!(bytes.len(), HEADER_LEN);
            let (back, consumed) = Frame::decode(&bytes).unwrap();
            assert_eq!(back, frame);
            assert_eq!(consumed, HEADER_LEN);
        }
    }

    #[test]
    fn bad_magic_beats_truncation() {
        // Four wrong bytes are already diagnosable: the reader must not
        // wait for more input that could never help.
        assert_eq!(Frame::decode(b"XXXX"), Err(FrameError::BadMagic(*b"XXXX")));
        // Three bytes cannot be judged yet.
        assert_eq!(
            Frame::decode(b"ANS"),
            Err(FrameError::Truncated { need: HEADER_LEN })
        );
    }

    #[test]
    fn hostile_header_length_is_capped() {
        let mut bytes = Frame::Hello.encode();
        bytes[7..11].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            Frame::decode(&bytes),
            Err(FrameError::TooLarge {
                len: u32::MAX,
                cap: MAX_PAYLOAD
            })
        );
    }

    #[test]
    fn version_mismatch_is_typed() {
        let mut bytes = Frame::Hello.encode();
        bytes[4..6].copy_from_slice(&7u16.to_le_bytes());
        assert_eq!(
            Frame::decode(&bytes),
            Err(FrameError::UnsupportedVersion(7))
        );
    }

    #[test]
    fn unknown_kind_is_typed() {
        let mut bytes = Frame::Hello.encode();
        bytes[6] = 99;
        assert_eq!(Frame::decode(&bytes), Err(FrameError::UnknownKind(99)));
    }

    #[test]
    fn trailing_payload_bytes_are_malformed() {
        // A Ticket payload with one extra byte: the length prefix admits
        // it but the schema does not.
        let mut bytes = Frame::Ticket { depth: 3 }.encode();
        bytes.push(0xEE);
        let len = (bytes.len() - HEADER_LEN) as u32;
        bytes[7..11].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn stream_reader_roundtrips_and_reports_clean_eof() {
        let frames = vec![
            Frame::Hello,
            Frame::Ticket { depth: 9 },
            Frame::ShutdownAck { served: 42 },
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut cursor = std::io::Cursor::new(wire);
        for f in &frames {
            assert_eq!(read_frame(&mut cursor).unwrap().as_ref(), Some(f));
        }
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean eof");
    }

    #[test]
    fn stream_reader_rejects_mid_frame_eof() {
        let bytes = Frame::Ticket { depth: 1 }.encode();
        let mut cursor = std::io::Cursor::new(&bytes[..bytes.len() - 2]);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(TransportError::Io(_))
        ));
    }
}
