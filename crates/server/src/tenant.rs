//! The per-tenant admission layer: token-bucket gating and usage
//! accounting *ahead of* the shared [`AdmissionQueue`].
//!
//! Isolation story: the shared queue bounds total work, but alone it is
//! first-come-first-served — one hot tenant can fill every window and
//! starve the rest. The [`TenantGate`] puts a [`TokenBucket`] in front,
//! per tenant, so a tenant's *sustained* admission rate is capped no
//! matter how fast it offers; its excess is refused with a typed
//! throttle (carrying a retry hint) before it ever touches the shared
//! queue. Compliant tenants then see the queue as if the hot tenant
//! were compliant too — the fairness property the `VirtualClock` tests
//! prove deterministically.
//!
//! Accounting is symmetric and exact: every gate decision increments
//! one counter in the engine's per-tenant usage rows
//! ([`anns_engine::TenantUsage`]) and emits one `tenant_decision`
//! trace event, so a complete trace reconciles with the usage report
//! by equality, not approximately.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use anns_engine::admission::{AdmissionQueue, Resolution, Ticket};
use anns_engine::clock::Clock;
use anns_engine::{NamedRequest, ServeError, TraceEvent};

use crate::bucket::TokenBucket;
use crate::frame::{ErrorCode, WireFault};

/// One tenant's rate-limit configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TenantPolicy {
    /// Sustained admission rate, tokens (queries) per second.
    pub rate_per_sec: f64,
    /// Bucket capacity: the burst admitted back-to-back from idle.
    pub burst: f64,
}

impl Default for TenantPolicy {
    /// Permissive default for unconfigured tenants: 1000 q/s with a
    /// burst of 256.
    fn default() -> Self {
        TenantPolicy {
            rate_per_sec: 1000.0,
            burst: 256.0,
        }
    }
}

/// Why the gate refused a request.
#[derive(Clone, Debug, PartialEq)]
pub enum Denied {
    /// The tenant's own bucket is empty; the shared queue was never
    /// consulted. `retry_after_ns` is the refill hint.
    Throttled {
        /// Clock ns until the tenant's next token.
        retry_after_ns: u64,
        /// The tenant's bucket capacity (rounded), for the error frame.
        burst: u64,
    },
    /// The bucket passed but the shared queue refused
    /// ([`ServeError::Overloaded`] or [`ServeError::Closed`]).
    Engine(ServeError),
}

impl Denied {
    /// The typed wire form of this refusal.
    pub fn to_fault(&self, depth: u64) -> WireFault {
        match self {
            Denied::Throttled {
                retry_after_ns,
                burst,
            } => WireFault {
                code: ErrorCode::Throttled,
                depth,
                capacity: *burst,
                message: format!("token bucket empty; retry in {retry_after_ns}ns"),
            },
            Denied::Engine(e) => WireFault::from_serve_error(e),
        }
    }
}

impl std::fmt::Display for Denied {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Denied::Throttled { retry_after_ns, .. } => {
                write!(f, "throttled: next token in {retry_after_ns}ns")
            }
            Denied::Engine(e) => write!(f, "{e}"),
        }
    }
}

/// The per-tenant gate in front of one shared [`AdmissionQueue`].
pub struct TenantGate {
    queue: Arc<AdmissionQueue>,
    clock: Arc<dyn Clock>,
    default_policy: TenantPolicy,
    policies: HashMap<String, TenantPolicy>,
    buckets: Mutex<HashMap<String, TokenBucket>>,
}

impl TenantGate {
    /// A gate over `queue`, reading time from `clock` (inject the
    /// queue's own clock so throttle decisions and seal deadlines share
    /// a timeline). Tenants not configured via
    /// [`TenantGate::with_policy`] get `default_policy` on first sight.
    pub fn new(
        queue: Arc<AdmissionQueue>,
        clock: Arc<dyn Clock>,
        default_policy: TenantPolicy,
    ) -> Self {
        TenantGate {
            queue,
            clock,
            default_policy,
            policies: HashMap::new(),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Configures one tenant's policy and materializes its bucket and
    /// zeroed usage row immediately (so reports list configured tenants
    /// even before their first request).
    pub fn with_policy(mut self, tenant: &str, policy: TenantPolicy) -> Self {
        self.policies.insert(tenant.to_string(), policy);
        self.buckets
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
            .insert(
                tenant.to_string(),
                TokenBucket::new(policy.rate_per_sec, policy.burst, self.clock.now_ns()),
            );
        self.queue.engine().absorb_tenant(tenant, |_| {});
        self
    }

    /// The policy `tenant` is (or would be) governed by.
    pub fn policy_for(&self, tenant: &str) -> TenantPolicy {
        self.policies
            .get(tenant)
            .copied()
            .unwrap_or(self.default_policy)
    }

    /// The shared queue behind the gate.
    pub fn queue(&self) -> &Arc<AdmissionQueue> {
        &self.queue
    }

    /// Tokens currently available to `tenant` (materializes its bucket).
    pub fn tokens_available(&self, tenant: &str) -> f64 {
        let now = self.clock.now_ns();
        let mut buckets = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        self.bucket_mut(&mut buckets, tenant, now).available(now)
    }

    fn bucket_mut<'a>(
        &self,
        buckets: &'a mut HashMap<String, TokenBucket>,
        tenant: &str,
        now_ns: u64,
    ) -> &'a mut TokenBucket {
        if !buckets.contains_key(tenant) {
            let policy = self.policy_for(tenant);
            buckets.insert(
                tenant.to_string(),
                TokenBucket::new(policy.rate_per_sec, policy.burst, now_ns),
            );
        }
        buckets.get_mut(tenant).expect("just inserted")
    }

    /// Gates and enqueues one request: the tenant's bucket first, then
    /// the shared queue ([`AdmissionQueue::enqueue_as`], which tags the
    /// admitted/shed outcome). Each refusal is typed and accounted —
    /// never a silent drop.
    pub fn submit(&self, tenant: &str, request: NamedRequest) -> Result<Ticket, Denied> {
        let now = self.clock.now_ns();
        let (admitted, retry_after_ns, burst) = {
            let mut buckets = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
            let bucket = self.bucket_mut(&mut buckets, tenant, now);
            if bucket.try_take(now) {
                (true, 0, bucket.burst())
            } else {
                (false, bucket.ns_until_token(now), bucket.burst())
            }
        };
        if !admitted {
            let engine = self.queue.engine();
            engine.absorb_tenant(tenant, |u| u.throttled += 1);
            let obs = engine.recorder();
            if obs.enabled() {
                obs.record(TraceEvent::TenantDecision {
                    tenant: tenant.to_string(),
                    decision: "throttled".to_string(),
                    depth: self.queue.depth() as u64,
                });
            }
            return Err(Denied::Throttled {
                retry_after_ns,
                burst: burst.round() as u64,
            });
        }
        self.queue
            .enqueue_as(Some(tenant), request)
            .map_err(Denied::Engine)
    }

    /// Books a resolved ticket's outcome against the tenant: served or
    /// failed, probe cost, admission wait. Call once per resolution —
    /// the counterpart that closes the loop `submit` opened.
    pub fn settle(&self, tenant: &str, resolution: &Resolution) {
        self.queue.engine().absorb_tenant(tenant, |u| {
            u.wait_hist.record(resolution.wait_ns);
            match &resolution.result {
                Ok(served) => {
                    u.served += 1;
                    u.probes += served.ledger.total_probes() as u64;
                }
                Err(_) => u.failed += 1,
            }
        });
    }
}
