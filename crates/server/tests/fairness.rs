//! The tenant gate's isolation claim, proven deterministically on a
//! `VirtualClock` — no sleeps, no wall-clock timing, every counter
//! asserted exactly:
//!
//! 1. **Fairness** — one tenant offering at 10× its token rate cannot
//!    push a compliant tenant's admission waits past the seal deadline,
//!    cannot cause it a single throttle or shed, and loses exactly its
//!    own excess (burst + refill admitted, the rest typed `Throttled`);
//! 2. **Distinct backpressure** — bucket exhaustion and queue overload
//!    are different typed refusals (`Throttled` vs `Overloaded`), each
//!    carrying its own context, and map onto distinct wire codes;
//! 3. **Exact accounting** — per-tenant usage rows and the
//!    `tenant_decision` trace events reconcile by equality: one event
//!    per decision, decisions partition offered load with nothing
//!    lost or double-counted.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use anns_cellprobe::ExecOptions;
use anns_core::AnnIndex;
use anns_engine::admission::{AdmissionOptions, AdmissionQueue, Ticket};
use anns_engine::testkit::{clustered_index, hot_set_workload};
use anns_engine::{
    Engine, EngineOptions, NamedRequest, Recorder, Registry, RingRecorder, ServeError, TraceEvent,
    VirtualClock,
};
use anns_hamming::Point;
use anns_server::frame::ErrorCode;
use anns_server::tenant::{Denied, TenantGate, TenantPolicy};

const D: u32 = 192;
/// Seal deadline: also the tick length the scenario advances by.
const TICK: Duration = Duration::from_millis(10);

fn index() -> Arc<AnnIndex> {
    static INDEX: OnceLock<Arc<AnnIndex>> = OnceLock::new();
    Arc::clone(INDEX.get_or_init(|| clustered_index(8, 12, D, 0.05, 2026)))
}

fn workload(seed: u64, count: usize) -> Vec<Point> {
    hot_set_workload(&index(), count, 8, 5, seed)
}

fn named(query: &Point) -> NamedRequest {
    NamedRequest {
        shard: "alg1-k3".into(),
        query: query.clone(),
    }
}

struct Fixture {
    engine: Arc<Engine>,
    clock: Arc<VirtualClock>,
    queue: Arc<AdmissionQueue>,
    trace: Arc<RingRecorder>,
}

/// An engine + queue + ring recorder on a virtual clock. Window width
/// `max_generation`, queue bound `capacity`, seal deadline [`TICK`].
fn fixture(max_generation: usize, capacity: usize) -> Fixture {
    let mut registry = Registry::new();
    registry.register_alg1("alg1-k3", index(), 3);
    let clock: Arc<VirtualClock> = Arc::new(VirtualClock::new());
    let trace = Arc::new(RingRecorder::new(65536, clock.clone()));
    let engine = Arc::new(
        Engine::new(
            registry,
            EngineOptions {
                generation: max_generation,
                exec: ExecOptions::default(),
                batch_threads: 1,
            },
        )
        .recorded(trace.clone()),
    );
    let queue = Arc::new(AdmissionQueue::new(
        Arc::clone(&engine),
        AdmissionOptions {
            max_generation,
            max_wait: TICK,
            capacity,
        },
        clock.clone(),
    ));
    Fixture {
        engine,
        clock,
        queue,
        trace,
    }
}

/// Counts `tenant_decision` events for (tenant, decision) in the ring.
fn decisions(trace: &RingRecorder, who: &str, what: &str) -> u64 {
    trace
        .snapshot()
        .iter()
        .filter(|r| {
            matches!(
                &r.event,
                TraceEvent::TenantDecision { tenant, decision, .. }
                    if tenant == who && decision == what
            )
        })
        .count() as u64
}

#[test]
fn hot_tenant_cannot_degrade_a_compliant_tenant() {
    // Both tenants get the same policy: 100 tokens/s (one per tick),
    // burst 2. "steady" offers exactly its sustained rate; "hot"
    // offers 10× that. 50 ticks.
    let fx = fixture(8, 16);
    let policy = TenantPolicy {
        rate_per_sec: 100.0,
        burst: 2.0,
    };
    let gate = TenantGate::new(
        Arc::clone(&fx.queue),
        fx.clock.clone(),
        TenantPolicy::default(),
    )
    .with_policy("steady", policy)
    .with_policy("hot", policy);

    const TICKS: usize = 50;
    const HOT_PER_TICK: usize = 10;
    let steady_queries = workload(31, TICKS);
    let hot_queries = workload(32, TICKS * HOT_PER_TICK);

    let mut steady_tickets: Vec<Ticket> = Vec::new();
    let mut hot_tickets: Vec<Ticket> = Vec::new();
    let mut hot_throttled = 0u64;
    for tick in 0..TICKS {
        // Hot first each tick: worst case for steady's position.
        for i in 0..HOT_PER_TICK {
            match gate.submit("hot", named(&hot_queries[tick * HOT_PER_TICK + i])) {
                Ok(ticket) => hot_tickets.push(ticket),
                Err(Denied::Throttled { retry_after_ns, .. }) => {
                    hot_throttled += 1;
                    assert!(retry_after_ns > 0, "empty bucket must quote a wait");
                }
                Err(other) => panic!("hot tenant must only be throttled, got {other}"),
            }
        }
        steady_tickets.push(
            gate.submit("steady", named(&steady_queries[tick]))
                .expect("a compliant tenant is never refused"),
        );
        fx.clock.advance(TICK);
        let window = fx.queue.pump_now().expect("deadline seals each tick");
        assert!(window.fill <= 8, "admitted load stays inside one window");
    }

    // The hot tenant's admissions: burst (2) up front, then exactly the
    // one token per tick that refills — 2 + 49 = 51 of 500 offered.
    let expected_hot_admitted = (2 + (TICKS - 1)) as u64;
    assert_eq!(hot_tickets.len() as u64, expected_hot_admitted);
    assert_eq!(
        hot_throttled,
        (TICKS * HOT_PER_TICK) as u64 - expected_hot_admitted
    );

    // Settle every ticket so served/failed and wait histograms fill.
    for (t, q) in [("steady", steady_tickets), ("hot", hot_tickets)] {
        for ticket in q {
            let resolution = ticket.wait();
            assert!(resolution.result.is_ok(), "{t}: admitted queries serve");
            gate.settle(t, &resolution);
        }
    }

    let online = fx.engine.stats().online;
    let steady = online
        .tenants
        .iter()
        .find(|u| u.tenant == "steady")
        .unwrap();
    let hot = online.tenants.iter().find(|u| u.tenant == "hot").unwrap();

    // The fairness bound: the hot tenant's pressure never touches the
    // compliant tenant — zero throttles, zero sheds, every query
    // served, and no admission wait past the seal deadline.
    assert_eq!(steady.throttled, 0, "compliant tenant never throttled");
    assert_eq!(steady.shed, 0, "compliant tenant never shed");
    assert_eq!(steady.enqueued, TICKS as u64);
    assert_eq!(steady.served, TICKS as u64);
    assert_eq!(steady.failed, 0);
    assert!(
        steady.wait_hist.max <= TICK.as_nanos() as u64,
        "waits stay within the seal deadline: {} > {}",
        steady.wait_hist.max,
        TICK.as_nanos()
    );

    // The hot tenant's excess is typed and exact.
    assert_eq!(hot.enqueued, expected_hot_admitted);
    assert_eq!(hot.throttled, hot_throttled);
    assert_eq!(hot.shed, 0, "the bucket refused before the queue had to");
    assert_eq!(hot.served, expected_hot_admitted);

    // Trace ↔ usage reconciliation, by equality, per tenant per
    // decision. The ring is sized to hold everything: zero drops.
    assert_eq!(fx.trace.counters().dropped, 0);
    for u in [steady, hot] {
        assert_eq!(decisions(&fx.trace, &u.tenant, "admitted"), u.enqueued);
        assert_eq!(decisions(&fx.trace, &u.tenant, "throttled"), u.throttled);
        assert_eq!(decisions(&fx.trace, &u.tenant, "shed"), u.shed);
    }
}

#[test]
fn bucket_exhaustion_and_queue_overload_are_distinct_refusals() {
    // Capacity 4, and a tenant whose bucket (burst 6) outlasts the
    // queue: the first 4 submissions are admitted, the next two are
    // shed by the *queue* (Overloaded), and once the bucket empties the
    // refusal flips to Throttled — three different outcomes, each
    // typed, each mapped to its own wire code.
    let fx = fixture(8, 4);
    let gate = TenantGate::new(
        Arc::clone(&fx.queue),
        fx.clock.clone(),
        TenantPolicy::default(),
    )
    .with_policy(
        "greedy",
        TenantPolicy {
            rate_per_sec: 0.0, // never refills: exactly 6 tokens, ever
            burst: 6.0,
        },
    );
    let queries = workload(33, 8);

    let tickets: Vec<Ticket> = queries[..4]
        .iter()
        .map(|q| gate.submit("greedy", named(q)).expect("under capacity"))
        .collect();

    // 5th and 6th: tokens remain but the shared queue is full.
    for q in &queries[4..6] {
        match gate.submit("greedy", named(q)) {
            Err(Denied::Engine(ServeError::Overloaded { depth, capacity })) => {
                assert_eq!((depth, capacity), (4, 4));
            }
            other => panic!("expected queue overload, got {other:?}"),
        }
    }
    // 7th: the bucket is now empty (6 tokens consumed — sheds cost a
    // token too; the tenant *offered* that load) → Throttled.
    match gate.submit("greedy", named(&queries[6])) {
        Err(Denied::Throttled { retry_after_ns, .. }) => {
            assert_eq!(retry_after_ns, u64::MAX, "zero rate: no refill, ever");
        }
        other => panic!("expected throttle, got {other:?}"),
    }

    // The wire mapping keeps them distinct.
    let overload = Denied::Engine(ServeError::Overloaded {
        depth: 4,
        capacity: 4,
    });
    assert_eq!(overload.to_fault(4).code, ErrorCode::Overloaded);
    let throttle = Denied::Throttled {
        retry_after_ns: 1,
        burst: 6,
    };
    assert_eq!(throttle.to_fault(4).code, ErrorCode::Throttled);
    assert_eq!(
        Denied::Engine(ServeError::Closed).to_fault(0).code,
        ErrorCode::Closed
    );

    // Accounting partitions the 7 offered queries: 4 + 2 + 1.
    let online = fx.engine.stats().online;
    let usage = online
        .tenants
        .iter()
        .find(|u| u.tenant == "greedy")
        .unwrap();
    assert_eq!(
        (usage.enqueued, usage.shed, usage.throttled),
        (4, 2, 1),
        "decisions partition offered load"
    );
    assert_eq!(decisions(&fx.trace, "greedy", "admitted"), 4);
    assert_eq!(decisions(&fx.trace, "greedy", "shed"), 2);
    assert_eq!(decisions(&fx.trace, "greedy", "throttled"), 1);

    // Drain so the admitted tickets resolve.
    fx.queue.close();
    fx.queue.pump_now().expect("drain flushes the window");
    for ticket in tickets {
        assert!(ticket.wait().result.is_ok());
    }
}

#[test]
fn unconfigured_tenants_get_the_default_policy_lazily() {
    let fx = fixture(4, 64);
    let gate = TenantGate::new(
        Arc::clone(&fx.queue),
        fx.clock.clone(),
        TenantPolicy {
            rate_per_sec: 0.0,
            burst: 1.0,
        },
    );
    assert_eq!(gate.policy_for("nobody").burst, 1.0);
    let queries = workload(34, 2);
    // First sight materializes the bucket with the default policy…
    assert!(gate.submit("walk-in", named(&queries[0])).is_ok());
    // …whose single never-refilling token is now spent.
    assert!(matches!(
        gate.submit("walk-in", named(&queries[1])),
        Err(Denied::Throttled { .. })
    ));
    assert_eq!(gate.tokens_available("walk-in"), 0.0);

    fx.queue.close();
    fx.queue.pump_now();
}
