//! Property tests for the wire codec, mirroring the store's codec
//! suite (`crates/store/tests`): every frame kind round-trips through
//! `encode`/`decode` byte-exactly, every *strict prefix* of a valid
//! frame decodes to a typed `Truncated` (the streaming reader's "read
//! more" signal — never a panic, never a misparse), and hostile length
//! prefixes are rejected by the cap before any allocation happens.
//!
//! Frames are sampled from a `(kind, seed)` pair so every one of the
//! eight kinds is exercised with randomized contents, deterministically
//! in the seed.

use anns_hamming::Point;
use anns_server::frame::{
    ErrorCode, Frame, FrameError, WireAnswer, WireFault, WireShard, HEADER_LEN, MAX_PAYLOAD,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of frame kinds `frame_for` can produce.
const KINDS: usize = 8;

fn ascii(rng: &mut StdRng, max_len: usize) -> String {
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| rng.gen_range(b' '..=b'~') as char)
        .collect()
}

fn fault(rng: &mut StdRng) -> WireFault {
    let codes = [
        ErrorCode::Throttled,
        ErrorCode::Overloaded,
        ErrorCode::Closed,
        ErrorCode::UnknownShard,
        ErrorCode::BadRequest,
        ErrorCode::ShardFault,
    ];
    WireFault {
        code: codes[rng.gen_range(0..codes.len())],
        depth: rng.gen(),
        capacity: rng.gen(),
        message: ascii(rng, 48),
    }
}

/// A frame of the given kind with seed-determined contents — every
/// wire kind, including empty-payload and `Point`-bearing ones.
fn frame_for(kind: usize, seed: u64) -> Frame {
    let rng = &mut StdRng::seed_from_u64(seed);
    match kind {
        0 => Frame::Hello,
        1 => Frame::Welcome {
            shards: (0..rng.gen_range(0..5))
                .map(|_| WireShard {
                    name: ascii(rng, 24),
                    label: ascii(rng, 32),
                    dim: rng.gen(),
                })
                .collect(),
        },
        2 => {
            let dim = rng.gen_range(1..=512);
            Frame::Query {
                tenant: ascii(rng, 16),
                shard: ascii(rng, 24),
                point: Point::random(dim, rng),
            }
        }
        3 => Frame::Ticket { depth: rng.gen() },
        4 => Frame::Answer(WireAnswer {
            index: if rng.gen() { Some(rng.gen()) } else { None },
            rounds: rng.gen(),
            probes: rng.gen(),
            wait_ns: rng.gen(),
            latency_ns: rng.gen(),
            within_budget: rng.gen(),
            epoch: rng.gen(),
        }),
        5 => Frame::Error(fault(rng)),
        6 => Frame::Shutdown,
        _ => Frame::ShutdownAck { served: rng.gen() },
    }
}

proptest! {
    /// encode → decode is the identity, for every frame kind, and
    /// decode consumes exactly the encoded length.
    #[test]
    fn every_frame_kind_roundtrips(kind in 0usize..KINDS, seed in any::<u64>()) {
        let frame = frame_for(kind, seed);
        let bytes = frame.encode();
        let (back, consumed) = Frame::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(back, frame);
        prop_assert_eq!(consumed, bytes.len());
    }

    /// Every strict prefix of a valid frame is a typed `Truncated`
    /// whose `need` never overshoots the real frame length — the
    /// invariant a streaming reader keys on to wait for exactly the
    /// right number of bytes.
    #[test]
    fn every_strict_prefix_is_truncated(kind in 0usize..KINDS, seed in any::<u64>()) {
        let bytes = frame_for(kind, seed).encode();
        for cut in 0..bytes.len() {
            match Frame::decode(&bytes[..cut]) {
                Err(FrameError::Truncated { need }) => {
                    prop_assert!(need > cut, "prefix of {cut} must demand more");
                    prop_assert!(need <= bytes.len(), "never demand past the frame");
                }
                other => panic!(
                    "prefix of {cut}/{} bytes decoded to {other:?}",
                    bytes.len()
                ),
            }
        }
    }

    /// A header claiming any payload length over the cap is rejected as
    /// `TooLarge` — before the decoder ever waits for (or allocates)
    /// the claimed bytes.
    #[test]
    fn hostile_length_prefixes_are_capped(
        kind in 0usize..KINDS,
        seed in any::<u64>(),
        excess in (MAX_PAYLOAD as u64 + 1)..=u32::MAX as u64,
    ) {
        let mut bytes = frame_for(kind, seed).encode();
        let hostile = excess as u32;
        bytes[7..11].copy_from_slice(&hostile.to_le_bytes());
        // Header alone suffices: no payload bytes needed for the verdict.
        prop_assert_eq!(
            Frame::decode(&bytes[..HEADER_LEN]),
            Err(FrameError::TooLarge { len: hostile, cap: MAX_PAYLOAD })
        );
        // And with the (stale) payload present the verdict is the same.
        prop_assert_eq!(
            Frame::decode(&bytes),
            Err(FrameError::TooLarge { len: hostile, cap: MAX_PAYLOAD })
        );
    }

    /// A length prefix *inside* the payload (a string or point header)
    /// claiming more than the bytes present is typed `Malformed`, not
    /// an allocation: the inner codec validates counts against the
    /// input actually remaining.
    #[test]
    fn hostile_inner_prefixes_are_malformed(claim in (1u64 << 20)..=u32::MAX as u64) {
        // A Query whose payload opens with a tenant-string header
        // claiming up to 4 GiB, backed by 8 bytes.
        let mut w = anns_store::ByteWriter::new();
        w.put_u32(claim as u32);
        w.put_u64(0xDEAD_BEEF);
        let payload = w.into_bytes();
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(b"ANSF");
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.push(3); // QUERY
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        prop_assert!(matches!(
            Frame::decode(&bytes),
            Err(FrameError::Malformed(_))
        ));
    }
}

#[test]
fn corrupting_any_header_byte_never_panics() {
    // Exhaustive over header positions and byte values: decode must
    // answer typed for every single-byte corruption of a real frame.
    let bytes = Frame::Ticket { depth: 7 }.encode();
    for pos in 0..HEADER_LEN {
        for v in 0..=u8::MAX {
            let mut corrupt = bytes.clone();
            corrupt[pos] = v;
            let _ = Frame::decode(&corrupt); // typed Ok or Err — no panic
        }
    }
}
