//! End-to-end over real loopback TCP: a bound [`AnnsServer`], real
//! driver threads, and the blocking [`Client`] — proving the protocol
//! grammar (hello → welcome, query → ticket → answer, shutdown → ack),
//! that wire answers are byte-identical to solo execution, that every
//! refusal reaches the client typed (throttle, unknown shard, garbage
//! bytes), and that the drain report's accounting reconciles with what
//! the clients actually did.
//!
//! Timing discipline: these tests run on the real clock (sockets need
//! one), so they assert *counts and values*, never latencies — the
//! timing-sensitive claims live in `fairness.rs` on the virtual clock.

use std::io::{Read, Write};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use anns_cellprobe::{execute_with, ExecOptions};
use anns_core::serve::SoloServable;
use anns_core::AnnIndex;
use anns_engine::admission::AdmissionOptions;
use anns_engine::clock::RealClock;
use anns_engine::testkit::{clustered_index, hot_set_workload};
use anns_engine::{Engine, EngineOptions, Registry};
use anns_hamming::Point;
use anns_server::client::{Client, ClientError};
use anns_server::frame::{read_frame, ErrorCode, Frame};
use anns_server::server::{AnnsServer, ServerOptions};
use anns_server::tenant::TenantPolicy;

const D: u32 = 192;

fn index() -> Arc<AnnIndex> {
    static INDEX: OnceLock<Arc<AnnIndex>> = OnceLock::new();
    Arc::clone(INDEX.get_or_init(|| clustered_index(8, 12, D, 0.05, 4040)))
}

fn workload(seed: u64, count: usize) -> Vec<Point> {
    hot_set_workload(&index(), count, 8, 5, seed)
}

fn engine() -> Arc<Engine> {
    let mut registry = Registry::new();
    registry.register_alg1("alg1-k3", index(), 3);
    registry.register_lambda("lambda-8", index(), 8.0);
    Arc::new(Engine::new(
        registry,
        EngineOptions {
            generation: 4,
            exec: ExecOptions::default(),
            batch_threads: 1,
        },
    ))
}

/// Binds a server on an ephemeral loopback port and runs it on a
/// background thread; returns the handle to join at shutdown.
fn serve(opts: ServerOptions) -> (AnnsServer, std::thread::JoinHandle<()>) {
    let server = AnnsServer::bind("127.0.0.1:0", engine(), opts, Arc::new(RealClock::new()))
        .expect("bind ephemeral loopback");
    let runner = server.clone();
    let handle = std::thread::spawn(move || runner.run());
    (server, handle)
}

fn options() -> ServerOptions {
    ServerOptions {
        admission: AdmissionOptions {
            max_generation: 4,
            max_wait: Duration::from_millis(2),
            capacity: 64,
        },
        drivers: 2,
        default_policy: TenantPolicy::default(),
        policies: Vec::new(),
        adapt_max_wait: false,
        max_connections: 256,
    }
}

#[test]
fn answers_over_the_wire_match_solo_execution() {
    let (server, handle) = serve(options());
    let addr = server.local_addr();

    let (mut client, shards) = Client::connect(addr).expect("connect + hello");
    // The welcome lists every mounted shard with its query dimension.
    let names: Vec<&str> = shards.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, ["alg1-k3", "lambda-8"]);
    assert!(shards.iter().all(|s| s.dim == D));

    let queries = workload(51, 12);
    let solo = engine();
    for (i, query) in queries.iter().enumerate() {
        let shard = if i % 2 == 0 { "alg1-k3" } else { "lambda-8" };
        let reply = client.query("acme", shard, query).expect("served");
        // Byte-identical to solo execution of the same query.
        let id = solo.registry().resolve(shard).unwrap();
        let (answer, ledger, _) = execute_with(
            &SoloServable(solo.registry().scheme(id)),
            query,
            ExecOptions::default(),
        );
        assert_eq!(reply.answer.index, answer.index(), "query {i}");
        assert_eq!(reply.answer.rounds, ledger.rounds() as u64);
        assert_eq!(reply.answer.probes, ledger.total_probes() as u64);
        assert!(reply.answer.within_budget);
        assert!(
            reply.ticket_rtt_ns <= reply.answer_rtt_ns,
            "the ticket precedes the answer"
        );
    }

    let served = client.shutdown_server().expect("shutdown ack");
    assert_eq!(served, queries.len() as u64);
    handle.join().expect("server drains and exits");

    // The drain report reconciles with what the client did.
    let report = server.report();
    assert_eq!(report.queries, queries.len() as u64);
    assert_eq!(report.enqueued, queries.len() as u64);
    assert_eq!(report.shed, 0);
    // Requested 2 drivers; the pool clamps to available_parallelism,
    // so on a single-core host this is legitimately 1.
    assert_eq!(report.drivers, server.drivers() as u64);
    assert!((1..=2).contains(&report.drivers));
    let acme = report.tenant("acme").expect("tenant row exists");
    assert_eq!(acme.served, queries.len() as u64);
    assert_eq!(acme.enqueued, queries.len() as u64);
    assert_eq!((acme.throttled, acme.shed, acme.failed), (0, 0, 0));
    assert!(acme.probes > 0, "served queries cost probes");
}

#[test]
fn refusals_reach_the_client_typed() {
    let mut opts = options();
    // "miser" gets one token, ever: the second query must throttle.
    opts.policies = vec![(
        "miser".to_string(),
        TenantPolicy {
            rate_per_sec: 0.0,
            burst: 1.0,
        },
    )];
    let (server, handle) = serve(opts);
    let (mut client, _) = Client::connect(server.local_addr()).expect("connect");
    let queries = workload(52, 3);

    // An unknown shard is admitted (names resolve at execution, inside
    // the pinned epoch) and fails *after* the ticket — the two-step
    // error path.
    match client.query("miser", "no-such-shard", &queries[0]) {
        Err(ClientError::Server(fault)) => {
            assert_eq!(fault.code, ErrorCode::UnknownShard);
            assert!(fault.message.contains("no-such-shard"));
        }
        other => panic!("expected typed unknown-shard, got {other:?}"),
    }

    // That admission spent miser's only token: now the bucket refuses,
    // before the queue — and the connection survives both refusals.
    match client.query("miser", "alg1-k3", &queries[1]) {
        Err(ClientError::Server(fault)) => {
            assert_eq!(fault.code, ErrorCode::Throttled);
            assert_eq!(fault.capacity, 1, "the fault quotes the burst");
        }
        other => panic!("expected typed throttle, got {other:?}"),
    }

    // A different tenant on the same connection is unaffected.
    assert!(client.query("acme", "alg1-k3", &queries[2]).is_ok());

    client.shutdown_server().expect("shutdown ack");
    handle.join().expect("server exits");

    let report = server.report();
    let miser = report.tenant("miser").expect("miser row");
    assert_eq!(miser.enqueued, 1);
    assert_eq!(miser.failed, 1, "the unknown-shard query failed typed");
    assert_eq!(miser.throttled, 1);
    assert_eq!(miser.served, 0);
    let acme = report.tenant("acme").expect("acme row");
    assert_eq!(acme.served, 1);
}

#[test]
fn connection_cap_refuses_typed_and_recovers_when_a_slot_frees() {
    let (server, handle) = serve(ServerOptions {
        max_connections: 1,
        ..options()
    });
    let addr = server.local_addr();

    // The first client takes the only slot and works normally.
    let (mut first, _) = Client::connect(addr).expect("first connect");
    let query = workload(54, 1).pop().unwrap();
    assert!(first.query("acme", "alg1-k3", &query).is_ok());

    // The second is refused *typed* — the Overloaded frame arrives
    // before any hello processing, so connect itself fails.
    match Client::connect(addr) {
        Err(ClientError::Server(fault)) => {
            assert_eq!(fault.code, ErrorCode::Overloaded);
            assert_eq!(fault.capacity, 1, "the fault quotes the cap");
            assert!(fault.message.contains("connection limit"));
        }
        Err(other) => panic!("expected typed overload refusal, got {other:?}"),
        Ok(_) => panic!("expected typed overload refusal, got a welcome"),
    }

    // Releasing the slot re-admits: the handler thread drops its guard
    // after the socket closes, so poll until the server notices.
    drop(first);
    let mut second = None;
    for _ in 0..200 {
        match Client::connect(addr) {
            Ok((client, _)) => {
                second = Some(client);
                break;
            }
            Err(ClientError::Server(fault)) => {
                assert_eq!(fault.code, ErrorCode::Overloaded);
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(other) => panic!("unexpected connect failure: {other:?}"),
        }
    }
    let mut second = second.expect("slot frees after the first client hangs up");
    assert!(second.query("acme", "alg1-k3", &query).is_ok());

    second.shutdown_server().expect("shutdown ack");
    handle.join().expect("server exits");
}

#[test]
fn garbage_bytes_get_a_typed_bad_request_then_a_hangup() {
    let (server, handle) = serve(options());
    let mut raw = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    raw.write_all(b"GET / HTTP/1.1\r\n\r\n")
        .expect("write garbage");
    // The server answers one typed error frame…
    match read_frame(&mut raw).expect("a frame, not a slammed socket") {
        Some(Frame::Error(fault)) => assert_eq!(fault.code, ErrorCode::BadRequest),
        other => panic!("expected typed bad-request, got {other:?}"),
    }
    // …then hangs up. The close may surface as a clean EOF or — when
    // the server discards unread bytes — a reset; both are "no further
    // frames", which is the guarantee under test.
    let mut rest = Vec::new();
    match raw.read_to_end(&mut rest) {
        Ok(_) => assert!(rest.is_empty(), "no frames after the typed error"),
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset),
    }

    // The server itself is unharmed: a well-formed session still works.
    let (mut client, _) = Client::connect(server.local_addr()).expect("connect");
    let query = workload(53, 1).pop().unwrap();
    assert!(client.query("acme", "alg1-k3", &query).is_ok());
    client.shutdown_server().expect("shutdown ack");
    handle.join().expect("server exits");
}

#[test]
fn out_of_protocol_frames_are_rejected_typed() {
    let (server, handle) = serve(options());
    let mut raw = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    // A server-to-client frame sent *to* the server.
    raw.write_all(&Frame::Ticket { depth: 1 }.encode()).unwrap();
    match read_frame(&mut raw).expect("typed answer") {
        Some(Frame::Error(fault)) => {
            assert_eq!(fault.code, ErrorCode::BadRequest);
            assert!(fault.message.contains("ticket"));
        }
        other => panic!("expected typed rejection, got {other:?}"),
    }
    drop(raw);
    server.shutdown();
    handle.join().expect("external shutdown drains too");
}
