//! Property tests over damaged store files.
//!
//! The container's promise: **no corruption is silent about content**.
//! Every strict prefix of a valid file reads as
//! [`StoreError::Truncated`], and every single-bit flip in a checksummed
//! byte (magic, version, section preludes, payloads) yields a typed
//! error rather than different content. The v2 format adds two
//! *uncovered* regions with no content semantics: the alignment `pad`
//! field (damage shifts the payload window, surfacing as a checksum,
//! alignment, or truncation error) and the zero padding itself (damage
//! there is invisible to the decoder and — the property that matters —
//! cannot change a single decoded byte).

use anns_store::{
    StoreError, StoreReader, StoreWriter, HEADER_BYTES, KIND_BUNDLE, SECTION_PRELUDE_V2_BYTES,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A container with several sections of pseudo-random payload.
fn sample_file(seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut writer = StoreWriter::new(KIND_BUNDLE);
    for (i, tag) in [b"META", b"IDXP", b"SHRD", b"XTRA"].iter().enumerate() {
        let len = (i * 37) % 200 + 1;
        let payload: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        writer.section(**tag, payload);
    }
    writer.to_bytes()
}

/// Reads every section; the container-level "load" operation.
fn read_all(bytes: &[u8]) -> Result<usize, StoreError> {
    Ok(StoreReader::new(bytes)?.sections()?.len())
}

/// Reads all payloads (for content-identity checks on padding damage).
fn read_payloads(bytes: &[u8]) -> Result<Vec<Vec<u8>>, StoreError> {
    Ok(StoreReader::new(bytes)?
        .sections()?
        .into_iter()
        .map(|s| s.payload)
        .collect())
}

/// Where a byte position falls in the v2 layout.
#[derive(Debug, PartialEq)]
enum Region {
    Magic,
    Version,
    /// Kind, reserved, and section count: advisory / legitimately
    /// re-interpretable, excluded from the flip property.
    Advisory,
    /// tag / len / crc prelude fields (checksummed or checksum-bearing).
    Prelude,
    /// The u32 alignment pad field (uncovered, but structural).
    PadField,
    /// Zero padding (uncovered, no content semantics).
    Padding,
    Payload,
}

/// Classifies `pos` by walking the v2 layout of a well-formed file.
fn classify(bytes: &[u8], pos: usize) -> Region {
    match pos {
        0..=3 => return Region::Magic,
        4..=5 => return Region::Version,
        6..=11 => return Region::Advisory,
        _ => {}
    }
    let mut offset = HEADER_BYTES;
    loop {
        let len = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap()) as usize;
        let pad = u32::from_le_bytes(bytes[offset + 12..offset + 16].try_into().unwrap()) as usize;
        let padding_at = offset + SECTION_PRELUDE_V2_BYTES;
        let payload_at = padding_at + pad;
        if pos < offset + 12 {
            return Region::Prelude;
        }
        if pos < padding_at {
            return Region::PadField;
        }
        if pos < payload_at {
            return Region::Padding;
        }
        if pos < payload_at + len {
            return Region::Payload;
        }
        offset = payload_at + len;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any strict prefix is reported as truncation — never a short-but-
    /// plausible read, never a panic.
    #[test]
    fn every_strict_prefix_is_truncated(seed in any::<u64>(), frac in 0.0f64..1.0) {
        let bytes = sample_file(seed);
        let cut = ((bytes.len() as f64) * frac) as usize; // < len since frac < 1
        prop_assert!(cut < bytes.len());
        match read_all(&bytes[..cut]) {
            Err(StoreError::Truncated { .. }) => {}
            other => prop_assert!(false, "cut at {cut}/{}: got {other:?}", bytes.len()),
        }
    }

    /// A single bit flip is a typed error wherever the byte carries
    /// content or structure; flips in the uncovered padding cannot
    /// change decoded content.
    #[test]
    fn every_bit_flip_is_detected(seed in any::<u64>(), pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let bytes = sample_file(seed);
        let pos = ((bytes.len() as f64) * pos_frac) as usize % bytes.len();
        let region = classify(&bytes, pos);
        prop_assume!(region != Region::Advisory);
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 1 << bit;
        let got = read_all(&corrupt);
        match (&got, &region) {
            (Err(StoreError::BadMagic { .. }), Region::Magic) => {}
            (Err(StoreError::UnsupportedVersion { .. }), Region::Version) => {}
            (Err(StoreError::Truncated { .. }), Region::Prelude | Region::Payload)
            | (Err(StoreError::ChecksumMismatch { .. }), Region::Prelude | Region::Payload) => {}
            // Pad-field damage shifts or invalidates the payload window:
            // any typed error is a catch, silence is not.
            (
                Err(
                    StoreError::Truncated { .. }
                    | StoreError::ChecksumMismatch { .. }
                    | StoreError::Malformed(_),
                ),
                Region::PadField,
            ) => {}
            // Padding has no content semantics: the read must succeed
            // AND decode byte-identical payloads.
            (Ok(4), Region::Padding) => {
                prop_assert_eq!(
                    read_payloads(&corrupt).unwrap(),
                    read_payloads(&bytes).unwrap(),
                    "padding flip changed content"
                );
            }
            _ => prop_assert!(false, "flip at {pos}:{bit} ({region:?}) gave {got:?}"),
        }
    }

    /// Flipping section-count bits can only shrink the visible list or
    /// truncate — it can never invent content or damage what is read.
    #[test]
    fn section_count_damage_is_never_silent_content_change(seed in any::<u64>(), bit in 0u8..8) {
        let original = sample_file(seed);
        let mut bytes = original.clone();
        bytes[8] ^= 1 << bit; // low byte of the u32 section count
        match read_all(&bytes) {
            Err(StoreError::Truncated { .. }) => {} // count grew
            Ok(n) => prop_assert!(n < 4, "count shrank to {n}"),
            other => prop_assert!(false, "got {other:?}"),
        }
    }
}

#[test]
fn double_flips_in_one_section_are_still_caught() {
    // CRC-32 detects all 2-bit errors within its span comfortably below
    // the codeword bound; spot-check pairs inside one payload (IDXP is
    // 38 bytes in this fixture).
    let bytes = sample_file(9);
    let idxp_payload = (0..bytes.len())
        .find(|&p| classify(&bytes, p) == Region::Payload && bytes[p - 1] == 0 && p > 100)
        .expect("IDXP payload start");
    for delta in [1usize, 7, 31, 36] {
        let mut corrupt = bytes.clone();
        let a = idxp_payload + 1;
        let b = a + delta;
        assert_eq!(classify(&bytes, b), Region::Payload);
        corrupt[a] ^= 0x10;
        corrupt[b] ^= 0x01;
        assert!(
            matches!(
                read_all(&corrupt),
                Err(StoreError::ChecksumMismatch { .. }) | Err(StoreError::Truncated { .. })
            ),
            "double flip at {a},{b} undetected"
        );
    }
}

#[test]
fn valid_file_reads_fully() {
    assert_eq!(read_all(&sample_file(3)).unwrap(), 4);
}
