//! Property tests over damaged store files.
//!
//! The container's promise: **no corruption is silent**. Every strict
//! prefix of a valid file reads as [`StoreError::Truncated`], and every
//! single-bit flip in the structural or payload bytes (everything except
//! the two advisory header bytes and the section-count field, whose
//! damage surfaces as a different typed error or a visibly shorter
//! section list) yields a typed error rather than different content.

use anns_store::{StoreError, StoreReader, StoreWriter, KIND_BUNDLE};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A container with several sections of pseudo-random payload.
fn sample_file(seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut writer = StoreWriter::new(KIND_BUNDLE);
    for (i, tag) in [b"META", b"IDXP", b"SHRD", b"XTRA"].iter().enumerate() {
        let len = (i * 37) % 200 + 1;
        let payload: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        writer.section(**tag, payload);
    }
    writer.to_bytes()
}

/// Reads every section; the container-level "load" operation.
fn read_all(bytes: &[u8]) -> Result<usize, StoreError> {
    Ok(StoreReader::new(bytes)?.sections()?.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any strict prefix is reported as truncation — never a short-but-
    /// plausible read, never a panic.
    #[test]
    fn every_strict_prefix_is_truncated(seed in any::<u64>(), frac in 0.0f64..1.0) {
        let bytes = sample_file(seed);
        let cut = ((bytes.len() as f64) * frac) as usize; // < len since frac < 1
        prop_assert!(cut < bytes.len());
        match read_all(&bytes[..cut]) {
            Err(StoreError::Truncated { .. }) => {}
            other => prop_assert!(false, "cut at {cut}/{}: got {other:?}", bytes.len()),
        }
    }

    /// A single bit flip anywhere outside the advisory bytes (kind,
    /// reserved) and the section-count field is a typed error.
    #[test]
    fn every_bit_flip_is_detected(seed in any::<u64>(), pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut bytes = sample_file(seed);
        let pos = ((bytes.len() as f64) * pos_frac) as usize % bytes.len();
        // Bytes 6..12 are the advisory kind/reserved pair and the section
        // count: kind is uninterpreted, and a *smaller* count legitimately
        // reads fewer sections (checked separately below).
        prop_assume!(!(6..12).contains(&pos));
        bytes[pos] ^= 1 << bit;
        let got = read_all(&bytes);
        match (&got, pos) {
            (Err(StoreError::BadMagic { .. }), 0..=3) => {}
            (Err(StoreError::UnsupportedVersion { .. }), 4..=5) => {}
            (Err(StoreError::Truncated { .. }), _)
            | (Err(StoreError::ChecksumMismatch { .. }), _) if pos >= 12 => {}
            _ => prop_assert!(false, "flip at {pos}:{bit} gave {got:?}"),
        }
    }

    /// Flipping section-count bits can only shrink the visible list or
    /// truncate — it can never invent content or damage what is read.
    #[test]
    fn section_count_damage_is_never_silent_content_change(seed in any::<u64>(), bit in 0u8..8) {
        let original = sample_file(seed);
        let mut bytes = original.clone();
        bytes[8] ^= 1 << bit; // low byte of the u32 section count
        match read_all(&bytes) {
            Err(StoreError::Truncated { .. }) => {} // count grew
            Ok(n) => prop_assert!(n < 4, "count shrank to {n}"),
            other => prop_assert!(false, "got {other:?}"),
        }
    }
}

#[test]
fn double_flips_in_one_section_are_still_caught() {
    // CRC-32 detects all 2-bit errors within its span comfortably below
    // the codeword bound; spot-check pairs inside one payload.
    let bytes = sample_file(9);
    for delta in [1usize, 7, 31, 63] {
        let mut corrupt = bytes.clone();
        let a = 40; // inside the first section's payload
        let b = a + delta;
        corrupt[a] ^= 0x10;
        corrupt[b] ^= 0x01;
        assert!(
            matches!(
                read_all(&corrupt),
                Err(StoreError::ChecksumMismatch { .. }) | Err(StoreError::Truncated { .. })
            ),
            "double flip at {a},{b} undetected"
        );
    }
}

#[test]
fn valid_file_reads_fully() {
    assert_eq!(read_all(&sample_file(3)).unwrap(), 4);
}
