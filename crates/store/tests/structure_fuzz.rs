//! Structure-aware fuzz tests over the container and manifest layers.
//!
//! The corruption properties in `corruption_properties.rs` cover bit rot
//! (truncation, bit flips — damage the checksums catch). This file
//! covers *structural* adversaries whose files pass every per-section
//! checksum: sections reordered wholesale, manifests spliced between
//! files, and hostile nested length/count prefixes inside codec
//! payloads. The promise is the same at every layer: a typed
//! [`StoreError`], never a panic, and never an allocation sized by
//! attacker-controlled bytes.

use anns_store::{
    scan, section_tag, ByteWriter, Codec, Manifest, StoreError, StoreReader, StoreWriter,
    KIND_BUNDLE,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A manifested container with three pseudo-random payload sections.
fn manifested_file(seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut writer = StoreWriter::new(KIND_BUNDLE);
    for (i, tag) in [b"META", b"IDXP", b"SHRD"].iter().enumerate() {
        let len = (i * 53) % 160 + 9;
        let payload: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        writer.section(**tag, payload);
    }
    let manifest = Manifest {
        tool: "fuzz/1".into(),
        sections: writer.digests(),
    };
    writer.section(section_tag::MANIFEST, manifest.to_bytes());
    writer.to_bytes()
}

/// Decomposes a valid file into `(tag, payload)` pairs.
fn sections_of(bytes: &[u8]) -> Vec<([u8; 4], Vec<u8>)> {
    StoreReader::new(bytes)
        .unwrap()
        .sections()
        .unwrap()
        .into_iter()
        .map(|s| (s.tag, s.payload))
        .collect()
}

/// Reassembles a container from `(tag, payload)` pairs. Each section's
/// own checksum is recomputed, so the result is *container-valid*: any
/// rejection must come from the structural rules, not from CRCs.
fn reassemble(sections: &[([u8; 4], Vec<u8>)]) -> Vec<u8> {
    let mut writer = StoreWriter::new(KIND_BUNDLE);
    for (tag, payload) in sections {
        writer.section(*tag, payload.clone());
    }
    writer.to_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Reordering the sections of a manifested file — every individual
    /// checksum still passes — is caught by the manifest rules: either
    /// the digests no longer match in order, or a section now trails the
    /// manifest. Identity permutations still scan clean.
    #[test]
    fn section_reordering_is_never_silent(seed in any::<u64>(), shuffle_seed in any::<u64>()) {
        let original = manifested_file(seed);
        let sections = sections_of(&original);
        let mut order: Vec<usize> = (0..sections.len()).collect();
        let mut rng = StdRng::seed_from_u64(shuffle_seed);
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let shuffled: Vec<_> = order.iter().map(|&i| sections[i].clone()).collect();
        let bytes = reassemble(&shuffled);
        let identity = order.iter().enumerate().all(|(i, &o)| i == o);
        match scan(&bytes[..]) {
            Ok(_) => prop_assert!(identity, "non-identity order {order:?} scanned clean"),
            Err(StoreError::Malformed(_)) => prop_assert!(!identity),
            Err(other) => prop_assert!(false, "wrong error kind: {other:?}"),
        }
    }

    /// Splicing one file's manifest onto another file's sections — the
    /// "rebuilt from two half-bundles" attack, where every section
    /// checksum passes — always trips the manifest cross-check.
    #[test]
    fn manifest_splices_between_files_are_rejected(seed_a in any::<u64>(), seed_b in any::<u64>()) {
        prop_assume!(seed_a != seed_b);
        let file_a = manifested_file(seed_a);
        let file_b = manifested_file(seed_b);
        let mut spliced = sections_of(&file_a);
        let manifest_b = sections_of(&file_b)
            .into_iter()
            .find(|(tag, _)| *tag == section_tag::MANIFEST)
            .expect("file B carries a manifest");
        *spliced.last_mut().unwrap() = manifest_b;
        let bytes = reassemble(&spliced);
        match scan(&bytes[..]) {
            Err(StoreError::Malformed(msg)) => prop_assert!(
                msg.contains("manifest"),
                "rejection must name the manifest: {msg}"
            ),
            other => prop_assert!(false, "splice not rejected: {other:?}"),
        }
    }

    /// Hostile nested length prefixes inside a manifest payload — the
    /// tool-string length and the digest count, repacked so the section
    /// checksum passes — decode to a typed error with allocation capped
    /// by the bytes actually present.
    #[test]
    fn manifest_prefix_mutations_yield_typed_errors(
        seed in any::<u64>(),
        count_attack in any::<bool>(),
        hostile in (200u64..u64::MAX),
    ) {
        let original = manifested_file(seed);
        let mut sections = sections_of(&original);
        let (_, payload) = sections
            .iter_mut()
            .find(|(tag, _)| *tag == section_tag::MANIFEST)
            .expect("manifest present");
        if count_attack {
            // The digest-count prefix sits right after the tool string.
            let tool_len = u64::from_le_bytes(payload[0..8].try_into().unwrap()) as usize;
            let count_at = 8 + tool_len;
            payload[count_at..count_at + 8].copy_from_slice(&hostile.to_le_bytes());
        } else {
            // The tool-string length prefix leads the payload.
            payload[0..8].copy_from_slice(&hostile.to_le_bytes());
        }
        let bytes = reassemble(&sections);
        match scan(&bytes[..]) {
            Err(StoreError::Malformed(_)) => {}
            other => prop_assert!(false, "hostile prefix not rejected: {other:?}"),
        }
    }

    /// The codec's container impls under hostile inner prefixes: a
    /// length-prefixed list of byte strings whose *inner* prefix is
    /// rewritten to an arbitrary value either fails typed or re-decodes
    /// to data actually present in the buffer — never a panic, never an
    /// oversized reservation.
    #[test]
    fn nested_codec_prefix_mutations_never_panic(
        items in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..24), 1..8),
        which in any::<u64>(),
        hostile in any::<u64>(),
    ) {
        let mut w = ByteWriter::new();
        let vecs: Vec<Vec<u8>> = items;
        vecs.encode(&mut w);
        let mut bytes = w.into_bytes();
        // Locate the chosen item's inner length prefix and overwrite it.
        let target = which as usize % vecs.len();
        let mut offset = 8; // outer count
        for item in vecs.iter().take(target) {
            offset += 8 + item.len();
        }
        bytes[offset..offset + 8].copy_from_slice(&hostile.to_le_bytes());
        match Vec::<Vec<u8>>::from_bytes(&bytes) {
            Ok(decoded) => {
                // A small hostile value can legally re-frame the buffer;
                // whatever decodes must fit in the original bytes.
                let total: usize = decoded.iter().map(Vec::len).sum();
                prop_assert!(total <= bytes.len());
            }
            Err(StoreError::Malformed(_)) => {}
            Err(other) => prop_assert!(false, "wrong error kind: {other:?}"),
        }
    }
}

#[test]
fn reordered_but_unmanifested_files_still_load() {
    // Without a manifest the reorder detector has nothing to pin — the
    // container itself accepts any section order (documented forward
    // compatibility), which is exactly why bundles ship manifests.
    let mut writer = StoreWriter::new(KIND_BUNDLE);
    writer.section(*b"AAAA", vec![1, 2, 3]);
    writer.section(*b"BBBB", vec![4, 5]);
    let sections = sections_of(&writer.to_bytes());
    let swapped = vec![sections[1].clone(), sections[0].clone()];
    let (_, digests, manifest) = scan(&reassemble(&swapped)[..]).unwrap();
    assert_eq!(digests.len(), 2);
    assert!(manifest.is_none());
}
