//! The container: header plus checksummed sections, streamed over `io`.
//!
//! Two wire versions share the header and the `tag/len/crc` section
//! prelude. Version 1 packs payloads back to back; version 2 extends the
//! section prelude with a `pad` field and zero-fills so every payload
//! starts on a [`SECTION_ALIGN`]-byte file offset — the property that
//! makes v2 payloads directly memory-mappable (see [`crate::mapped`]).
//! Writers emit v2 by default ([`StoreWriter::new`]); readers accept
//! both.

use std::io::{Read, Write};

use crate::checksum::{crc32, crc32_concat, crc32_pair};
use crate::codec::ByteReader;
use crate::error::StoreError;
use crate::{FORMAT_VERSION, FORMAT_VERSION_V2, MAGIC, SECTION_ALIGN};

/// A section's four-byte tag.
pub type SectionTag = [u8; 4];

/// Bytes of the fixed file header (magic + version + kind + reserved +
/// section count).
pub const HEADER_BYTES: usize = 12;

/// Bytes of a v2 section prelude (`tag`, `len`, `crc`, `pad`).
pub const SECTION_PRELUDE_V2_BYTES: usize = 16;

/// The fixed-size file header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreHeader {
    /// Format version stamped in the file.
    pub version: u16,
    /// Container kind: [`crate::KIND_BUNDLE`] or a scheme kind for
    /// single-scheme files.
    pub kind: u8,
    /// Number of sections that follow.
    pub sections: u32,
}

/// One decoded section: tag, verified payload, and its stored checksum.
#[derive(Clone, Debug)]
pub struct Section {
    /// The section tag.
    pub tag: SectionTag,
    /// The payload (checksum already verified).
    pub payload: Vec<u8>,
    /// The CRC-32 stored in the file (covers `tag ++ payload`).
    pub crc: u32,
}

impl Section {
    /// A codec cursor over the payload.
    pub fn reader(&self) -> ByteReader<'_> {
        ByteReader::new(&self.payload)
    }
}

/// Assembles a store file: sections are buffered, then written with the
/// header in one pass.
///
/// Each payload is digested once as it is appended; the tag-inclusive
/// section checksum is derived by the streaming combine
/// ([`crate::crc32_concat`]) wherever it is needed, so multi-megabyte
/// payloads are hashed exactly once no matter how many times
/// [`StoreWriter::digests`] and [`StoreWriter::write_to`] run.
pub struct StoreWriter {
    version: u16,
    kind: u8,
    sections: Vec<(SectionTag, Vec<u8>, u32)>,
}

impl StoreWriter {
    /// A writer for a container of the given kind, in the current (v2,
    /// mappable) format.
    pub fn new(kind: u8) -> Self {
        StoreWriter::with_version(FORMAT_VERSION_V2, kind)
    }

    /// A writer emitting the legacy v1 (unaligned) format — kept so
    /// back-compat fixtures can be produced and the v1 read path stays
    /// covered.
    pub fn v1(kind: u8) -> Self {
        StoreWriter::with_version(FORMAT_VERSION, kind)
    }

    fn with_version(version: u16, kind: u8) -> Self {
        StoreWriter {
            version,
            kind,
            sections: Vec::new(),
        }
    }

    /// Appends a section.
    pub fn section(&mut self, tag: SectionTag, payload: Vec<u8>) -> &mut Self {
        let payload_crc = crc32(&payload);
        self.sections.push((tag, payload, payload_crc));
        self
    }

    /// The tag-inclusive checksum of a section, stitched from the
    /// payload digest computed at append time.
    fn section_crc(tag: &SectionTag, payload_len: usize, payload_crc: u32) -> u32 {
        crc32_concat(crc32(tag), payload_crc, payload_len as u64)
    }

    /// Digests (tag, length, CRC-32) of every section appended so far, in
    /// order — what a writer embeds in a trailing `MNFT` manifest section
    /// (see [`crate::manifest`]).
    pub fn digests(&self) -> Vec<crate::manifest::SectionDigest> {
        self.sections
            .iter()
            .map(
                |(tag, payload, payload_crc)| crate::manifest::SectionDigest {
                    tag: *tag,
                    len: payload.len() as u32,
                    crc: Self::section_crc(tag, payload.len(), *payload_crc),
                },
            )
            .collect()
    }

    /// Writes header and sections to `out`.
    pub fn write_to(&self, out: &mut impl Write) -> Result<(), StoreError> {
        out.write_all(&MAGIC).map_err(StoreError::Io)?;
        out.write_all(&self.version.to_le_bytes())
            .map_err(StoreError::Io)?;
        out.write_all(&[self.kind, 0]).map_err(StoreError::Io)?;
        out.write_all(&(self.sections.len() as u32).to_le_bytes())
            .map_err(StoreError::Io)?;
        let mut offset = HEADER_BYTES;
        for (tag, payload, payload_crc) in &self.sections {
            // The length field is u32: refuse to write what cannot be
            // read back rather than silently truncating the prefix.
            let len: u32 = payload.len().try_into().map_err(|_| {
                StoreError::Unsupported(format!(
                    "section {} is {} bytes; the format caps sections at 4 GiB",
                    String::from_utf8_lossy(tag),
                    payload.len()
                ))
            })?;
            let crc = Self::section_crc(tag, payload.len(), *payload_crc);
            out.write_all(tag).map_err(StoreError::Io)?;
            out.write_all(&len.to_le_bytes()).map_err(StoreError::Io)?;
            out.write_all(&crc.to_le_bytes()).map_err(StoreError::Io)?;
            if self.version >= FORMAT_VERSION_V2 {
                // Zero-fill so the payload lands on an aligned offset.
                let prelude_end = offset + SECTION_PRELUDE_V2_BYTES;
                let pad = prelude_end.next_multiple_of(SECTION_ALIGN) - prelude_end;
                out.write_all(&(pad as u32).to_le_bytes())
                    .map_err(StoreError::Io)?;
                out.write_all(&vec![0u8; pad]).map_err(StoreError::Io)?;
                offset = prelude_end + pad + payload.len();
            }
            out.write_all(payload).map_err(StoreError::Io)?;
        }
        Ok(())
    }

    /// The whole container as bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.write_to(&mut buf).expect("Vec write cannot fail");
        buf
    }

    /// Writes the container to a file path.
    pub fn write_file(&self, path: impl AsRef<std::path::Path>) -> Result<(), StoreError> {
        let file = std::fs::File::create(path).map_err(StoreError::Io)?;
        let mut out = std::io::BufWriter::new(file);
        self.write_to(&mut out)?;
        out.flush().map_err(StoreError::Io)
    }
}

fn read_exact(r: &mut impl Read, buf: &mut [u8], context: &'static str) -> Result<(), StoreError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Truncated { context }
        } else {
            StoreError::Io(e)
        }
    })
}

/// Streaming reader: validates the header up front, then yields sections
/// one at a time, each checksum-verified before its payload is exposed.
/// Nothing beyond the current section is buffered, and no intermediate
/// representation (JSON or otherwise) is materialized.
pub struct StoreReader<R: Read> {
    inner: R,
    header: StoreHeader,
    yielded: u32,
}

impl<R: Read> StoreReader<R> {
    /// Opens a stream: reads magic, version, kind and section count.
    pub fn new(mut inner: R) -> Result<Self, StoreError> {
        let mut magic = [0u8; 4];
        read_exact(&mut inner, &mut magic, "magic")?;
        if magic != MAGIC {
            return Err(StoreError::BadMagic { found: magic });
        }
        let mut version = [0u8; 2];
        read_exact(&mut inner, &mut version, "version")?;
        let version = u16::from_le_bytes(version);
        if version != FORMAT_VERSION && version != FORMAT_VERSION_V2 {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION_V2,
            });
        }
        let mut kind_reserved = [0u8; 2];
        read_exact(&mut inner, &mut kind_reserved, "container kind")?;
        let mut sections = [0u8; 4];
        read_exact(&mut inner, &mut sections, "section count")?;
        Ok(StoreReader {
            inner,
            header: StoreHeader {
                version,
                kind: kind_reserved[0],
                sections: u32::from_le_bytes(sections),
            },
            yielded: 0,
        })
    }

    /// The validated header.
    pub fn header(&self) -> &StoreHeader {
        &self.header
    }

    /// Reads the next section, or `None` after the declared count.
    pub fn next_section(&mut self) -> Result<Option<Section>, StoreError> {
        if self.yielded == self.header.sections {
            return Ok(None);
        }
        let mut tag = [0u8; 4];
        read_exact(&mut self.inner, &mut tag, "section tag")?;
        let mut len = [0u8; 4];
        read_exact(&mut self.inner, &mut len, "section length")?;
        let len = u32::from_le_bytes(len) as u64;
        let mut crc = [0u8; 4];
        read_exact(&mut self.inner, &mut crc, "section checksum")?;
        let crc = u32::from_le_bytes(crc);
        if self.header.version >= FORMAT_VERSION_V2 {
            // v2 preludes carry alignment padding; the streaming path
            // skips it (padding is not covered by the section checksum).
            let mut pad = [0u8; 4];
            read_exact(&mut self.inner, &mut pad, "section padding")?;
            let pad = u32::from_le_bytes(pad) as u64;
            if pad >= SECTION_ALIGN as u64 {
                return Err(StoreError::Malformed(format!(
                    "section padding {pad} exceeds the {SECTION_ALIGN}-byte alignment unit"
                )));
            }
            let mut sink = [0u8; SECTION_ALIGN];
            read_exact(
                &mut self.inner,
                &mut sink[..pad as usize],
                "section padding",
            )?;
        }
        // Read through `take`, growing as bytes arrive: a corrupted length
        // cannot force a giant up-front allocation.
        let mut payload = Vec::new();
        (&mut self.inner)
            .take(len)
            .read_to_end(&mut payload)
            .map_err(StoreError::Io)?;
        if (payload.len() as u64) < len {
            return Err(StoreError::Truncated {
                context: "section payload",
            });
        }
        let computed = crc32_pair(&tag, &payload);
        if computed != crc {
            return Err(StoreError::ChecksumMismatch {
                tag,
                stored: crc,
                computed,
            });
        }
        self.yielded += 1;
        Ok(Some(Section { tag, payload, crc }))
    }

    /// Drains and returns all remaining sections.
    pub fn sections(&mut self) -> Result<Vec<Section>, StoreError> {
        let mut out = Vec::new();
        while let Some(section) = self.next_section()? {
            out.push(section);
        }
        Ok(out)
    }
}

/// Opens a store file for streaming reads.
pub fn open_file(
    path: impl AsRef<std::path::Path>,
) -> Result<StoreReader<std::io::BufReader<std::fs::File>>, StoreError> {
    let file = std::fs::File::open(path).map_err(StoreError::Io)?;
    StoreReader::new(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KIND_BUNDLE;

    fn sample() -> Vec<u8> {
        let mut w = StoreWriter::new(KIND_BUNDLE);
        w.section(*b"META", b"hello".to_vec());
        w.section(*b"IDXP", vec![0u8; 300]);
        w.section(*b"SHRD", Vec::new());
        w.to_bytes()
    }

    #[test]
    fn roundtrip_yields_identical_sections() {
        let bytes = sample();
        let mut r = StoreReader::new(&bytes[..]).unwrap();
        assert_eq!(
            *r.header(),
            StoreHeader {
                version: FORMAT_VERSION_V2,
                kind: KIND_BUNDLE,
                sections: 3
            }
        );
        let sections = r.sections().unwrap();
        assert_eq!(sections.len(), 3);
        assert_eq!(sections[0].tag, *b"META");
        assert_eq!(sections[0].payload, b"hello");
        assert_eq!(sections[1].payload.len(), 300);
        assert!(sections[2].payload.is_empty());
        assert!(r.next_section().unwrap().is_none());
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = sample();
        bytes[0] = b'J';
        match StoreReader::new(&bytes[..]) {
            Err(StoreError::BadMagic { found }) => assert_eq!(found[0], b'J'),
            Err(other) => panic!("expected BadMagic, got {other:?}"),
            Ok(_) => panic!("expected BadMagic, got a reader"),
        }
    }

    #[test]
    fn version_skew_is_typed() {
        let mut bytes = sample();
        bytes[4] = 99;
        assert!(matches!(
            StoreReader::new(&bytes[..]),
            Err(StoreError::UnsupportedVersion {
                found: 99,
                supported: FORMAT_VERSION_V2
            })
        ));
    }

    #[test]
    fn v1_containers_still_read_back() {
        let mut w = StoreWriter::v1(KIND_BUNDLE);
        w.section(*b"META", b"hello".to_vec());
        w.section(*b"IDXP", vec![0u8; 300]);
        let bytes = w.to_bytes();
        let mut r = StoreReader::new(&bytes[..]).unwrap();
        assert_eq!(r.header().version, FORMAT_VERSION);
        let sections = r.sections().unwrap();
        assert_eq!(sections[0].payload, b"hello");
        assert_eq!(sections[1].payload.len(), 300);
        // v1 packs sections back to back: no padding anywhere.
        assert_eq!(bytes.len(), HEADER_BYTES + 2 * 12 + 5 + 300);
    }

    #[test]
    fn v2_payloads_are_aligned_in_the_file() {
        let bytes = sample();
        // Walk the raw layout and check every payload offset.
        let mut offset = HEADER_BYTES;
        for _ in 0..3 {
            let pad = u32::from_le_bytes(bytes[offset + 12..offset + 16].try_into().unwrap());
            let len = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
            let payload_at = offset + SECTION_PRELUDE_V2_BYTES + pad as usize;
            assert_eq!(payload_at % SECTION_ALIGN, 0, "payload at {payload_at}");
            assert!(
                bytes[offset + SECTION_PRELUDE_V2_BYTES..payload_at]
                    .iter()
                    .all(|&b| b == 0),
                "padding is zero-filled"
            );
            offset = payload_at + len as usize;
        }
        assert_eq!(offset, bytes.len());
    }

    #[test]
    fn v1_and_v2_digests_agree() {
        // Padding is outside the checksummed bytes, so the same sections
        // produce identical manifest digests in both wire versions.
        let build = |mut w: StoreWriter| {
            w.section(*b"META", b"same payload".to_vec());
            w.section(*b"IDXP", (0u8..200).collect());
            w.digests()
        };
        assert_eq!(
            build(StoreWriter::new(KIND_BUNDLE)),
            build(StoreWriter::v1(KIND_BUNDLE))
        );
    }

    #[test]
    fn payload_corruption_is_a_checksum_mismatch() {
        let mut bytes = sample();
        let last = bytes.len() - 150; // inside IDXP's payload
        bytes[last] ^= 0x40;
        let mut r = StoreReader::new(&bytes[..]).unwrap();
        assert!(r.next_section().is_ok(), "META untouched");
        assert!(matches!(
            r.next_section(),
            Err(StoreError::ChecksumMismatch { tag, .. }) if tag == *b"IDXP"
        ));
    }

    #[test]
    fn truncation_is_typed_at_every_layer() {
        let bytes = sample();
        // Header truncations.
        for cut in [0, 3, 5, 7, 9] {
            assert!(
                matches!(
                    StoreReader::new(&bytes[..cut]),
                    Err(StoreError::Truncated { .. })
                ),
                "cut at {cut}"
            );
        }
        // Mid-section truncation.
        let mut r = StoreReader::new(&bytes[..bytes.len() - 10]).unwrap();
        r.next_section().unwrap();
        r.next_section().unwrap();
        assert!(matches!(
            r.next_section(),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn empty_container_roundtrips() {
        let bytes = StoreWriter::new(7).to_bytes();
        let mut r = StoreReader::new(&bytes[..]).unwrap();
        assert_eq!(r.header().kind, 7);
        assert!(r.sections().unwrap().is_empty());
    }
}
