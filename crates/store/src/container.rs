//! The container: header plus checksummed sections, streamed over `io`.

use std::io::{Read, Write};

use crate::checksum::crc32_pair;
use crate::codec::ByteReader;
use crate::error::StoreError;
use crate::{FORMAT_VERSION, MAGIC};

/// A section's four-byte tag.
pub type SectionTag = [u8; 4];

/// The fixed-size file header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreHeader {
    /// Format version stamped in the file.
    pub version: u16,
    /// Container kind: [`crate::KIND_BUNDLE`] or a scheme kind for
    /// single-scheme files.
    pub kind: u8,
    /// Number of sections that follow.
    pub sections: u32,
}

/// One decoded section: tag, verified payload, and its stored checksum.
#[derive(Clone, Debug)]
pub struct Section {
    /// The section tag.
    pub tag: SectionTag,
    /// The payload (checksum already verified).
    pub payload: Vec<u8>,
    /// The CRC-32 stored in the file (covers `tag ++ payload`).
    pub crc: u32,
}

impl Section {
    /// A codec cursor over the payload.
    pub fn reader(&self) -> ByteReader<'_> {
        ByteReader::new(&self.payload)
    }
}

/// Assembles a store file: sections are buffered, then written with the
/// header in one pass.
pub struct StoreWriter {
    kind: u8,
    sections: Vec<(SectionTag, Vec<u8>)>,
}

impl StoreWriter {
    /// A writer for a container of the given kind.
    pub fn new(kind: u8) -> Self {
        StoreWriter {
            kind,
            sections: Vec::new(),
        }
    }

    /// Appends a section.
    pub fn section(&mut self, tag: SectionTag, payload: Vec<u8>) -> &mut Self {
        self.sections.push((tag, payload));
        self
    }

    /// Digests (tag, length, CRC-32) of every section appended so far, in
    /// order — what a writer embeds in a trailing `MNFT` manifest section
    /// (see [`crate::manifest`]).
    pub fn digests(&self) -> Vec<crate::manifest::SectionDigest> {
        self.sections
            .iter()
            .map(|(tag, payload)| crate::manifest::SectionDigest {
                tag: *tag,
                len: payload.len() as u32,
                crc: crc32_pair(tag, payload),
            })
            .collect()
    }

    /// Writes header and sections to `out`.
    pub fn write_to(&self, out: &mut impl Write) -> Result<(), StoreError> {
        out.write_all(&MAGIC).map_err(StoreError::Io)?;
        out.write_all(&FORMAT_VERSION.to_le_bytes())
            .map_err(StoreError::Io)?;
        out.write_all(&[self.kind, 0]).map_err(StoreError::Io)?;
        out.write_all(&(self.sections.len() as u32).to_le_bytes())
            .map_err(StoreError::Io)?;
        for (tag, payload) in &self.sections {
            // The length field is u32: refuse to write what cannot be
            // read back rather than silently truncating the prefix.
            let len: u32 = payload.len().try_into().map_err(|_| {
                StoreError::Unsupported(format!(
                    "section {} is {} bytes; the v{FORMAT_VERSION} format caps sections at 4 GiB",
                    String::from_utf8_lossy(tag),
                    payload.len()
                ))
            })?;
            out.write_all(tag).map_err(StoreError::Io)?;
            out.write_all(&len.to_le_bytes()).map_err(StoreError::Io)?;
            out.write_all(&crc32_pair(tag, payload).to_le_bytes())
                .map_err(StoreError::Io)?;
            out.write_all(payload).map_err(StoreError::Io)?;
        }
        Ok(())
    }

    /// The whole container as bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.write_to(&mut buf).expect("Vec write cannot fail");
        buf
    }

    /// Writes the container to a file path.
    pub fn write_file(&self, path: impl AsRef<std::path::Path>) -> Result<(), StoreError> {
        let file = std::fs::File::create(path).map_err(StoreError::Io)?;
        let mut out = std::io::BufWriter::new(file);
        self.write_to(&mut out)?;
        out.flush().map_err(StoreError::Io)
    }
}

fn read_exact(r: &mut impl Read, buf: &mut [u8], context: &'static str) -> Result<(), StoreError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Truncated { context }
        } else {
            StoreError::Io(e)
        }
    })
}

/// Streaming reader: validates the header up front, then yields sections
/// one at a time, each checksum-verified before its payload is exposed.
/// Nothing beyond the current section is buffered, and no intermediate
/// representation (JSON or otherwise) is materialized.
pub struct StoreReader<R: Read> {
    inner: R,
    header: StoreHeader,
    yielded: u32,
}

impl<R: Read> StoreReader<R> {
    /// Opens a stream: reads magic, version, kind and section count.
    pub fn new(mut inner: R) -> Result<Self, StoreError> {
        let mut magic = [0u8; 4];
        read_exact(&mut inner, &mut magic, "magic")?;
        if magic != MAGIC {
            return Err(StoreError::BadMagic { found: magic });
        }
        let mut version = [0u8; 2];
        read_exact(&mut inner, &mut version, "version")?;
        let version = u16::from_le_bytes(version);
        if version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let mut kind_reserved = [0u8; 2];
        read_exact(&mut inner, &mut kind_reserved, "container kind")?;
        let mut sections = [0u8; 4];
        read_exact(&mut inner, &mut sections, "section count")?;
        Ok(StoreReader {
            inner,
            header: StoreHeader {
                version,
                kind: kind_reserved[0],
                sections: u32::from_le_bytes(sections),
            },
            yielded: 0,
        })
    }

    /// The validated header.
    pub fn header(&self) -> &StoreHeader {
        &self.header
    }

    /// Reads the next section, or `None` after the declared count.
    pub fn next_section(&mut self) -> Result<Option<Section>, StoreError> {
        if self.yielded == self.header.sections {
            return Ok(None);
        }
        let mut tag = [0u8; 4];
        read_exact(&mut self.inner, &mut tag, "section tag")?;
        let mut len = [0u8; 4];
        read_exact(&mut self.inner, &mut len, "section length")?;
        let len = u32::from_le_bytes(len) as u64;
        let mut crc = [0u8; 4];
        read_exact(&mut self.inner, &mut crc, "section checksum")?;
        let crc = u32::from_le_bytes(crc);
        // Read through `take`, growing as bytes arrive: a corrupted length
        // cannot force a giant up-front allocation.
        let mut payload = Vec::new();
        (&mut self.inner)
            .take(len)
            .read_to_end(&mut payload)
            .map_err(StoreError::Io)?;
        if (payload.len() as u64) < len {
            return Err(StoreError::Truncated {
                context: "section payload",
            });
        }
        let computed = crc32_pair(&tag, &payload);
        if computed != crc {
            return Err(StoreError::ChecksumMismatch {
                tag,
                stored: crc,
                computed,
            });
        }
        self.yielded += 1;
        Ok(Some(Section { tag, payload, crc }))
    }

    /// Drains and returns all remaining sections.
    pub fn sections(&mut self) -> Result<Vec<Section>, StoreError> {
        let mut out = Vec::new();
        while let Some(section) = self.next_section()? {
            out.push(section);
        }
        Ok(out)
    }
}

/// Opens a store file for streaming reads.
pub fn open_file(
    path: impl AsRef<std::path::Path>,
) -> Result<StoreReader<std::io::BufReader<std::fs::File>>, StoreError> {
    let file = std::fs::File::open(path).map_err(StoreError::Io)?;
    StoreReader::new(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KIND_BUNDLE;

    fn sample() -> Vec<u8> {
        let mut w = StoreWriter::new(KIND_BUNDLE);
        w.section(*b"META", b"hello".to_vec());
        w.section(*b"IDXP", vec![0u8; 300]);
        w.section(*b"SHRD", Vec::new());
        w.to_bytes()
    }

    #[test]
    fn roundtrip_yields_identical_sections() {
        let bytes = sample();
        let mut r = StoreReader::new(&bytes[..]).unwrap();
        assert_eq!(
            *r.header(),
            StoreHeader {
                version: FORMAT_VERSION,
                kind: KIND_BUNDLE,
                sections: 3
            }
        );
        let sections = r.sections().unwrap();
        assert_eq!(sections.len(), 3);
        assert_eq!(sections[0].tag, *b"META");
        assert_eq!(sections[0].payload, b"hello");
        assert_eq!(sections[1].payload.len(), 300);
        assert!(sections[2].payload.is_empty());
        assert!(r.next_section().unwrap().is_none());
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = sample();
        bytes[0] = b'J';
        match StoreReader::new(&bytes[..]) {
            Err(StoreError::BadMagic { found }) => assert_eq!(found[0], b'J'),
            Err(other) => panic!("expected BadMagic, got {other:?}"),
            Ok(_) => panic!("expected BadMagic, got a reader"),
        }
    }

    #[test]
    fn version_skew_is_typed() {
        let mut bytes = sample();
        bytes[4] = 99;
        assert!(matches!(
            StoreReader::new(&bytes[..]),
            Err(StoreError::UnsupportedVersion {
                found: 99,
                supported: FORMAT_VERSION
            })
        ));
    }

    #[test]
    fn payload_corruption_is_a_checksum_mismatch() {
        let mut bytes = sample();
        let last = bytes.len() - 150; // inside IDXP's payload
        bytes[last] ^= 0x40;
        let mut r = StoreReader::new(&bytes[..]).unwrap();
        assert!(r.next_section().is_ok(), "META untouched");
        assert!(matches!(
            r.next_section(),
            Err(StoreError::ChecksumMismatch { tag, .. }) if tag == *b"IDXP"
        ));
    }

    #[test]
    fn truncation_is_typed_at_every_layer() {
        let bytes = sample();
        // Header truncations.
        for cut in [0, 3, 5, 7, 9] {
            assert!(
                matches!(
                    StoreReader::new(&bytes[..cut]),
                    Err(StoreError::Truncated { .. })
                ),
                "cut at {cut}"
            );
        }
        // Mid-section truncation.
        let mut r = StoreReader::new(&bytes[..bytes.len() - 10]).unwrap();
        r.next_section().unwrap();
        r.next_section().unwrap();
        assert!(matches!(
            r.next_section(),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn empty_container_roundtrips() {
        let bytes = StoreWriter::new(7).to_bytes();
        let mut r = StoreReader::new(&bytes[..]).unwrap();
        assert_eq!(r.header().kind, 7);
        assert!(r.sections().unwrap().is_empty());
    }
}
