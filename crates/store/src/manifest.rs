//! The self-describing `MNFT` manifest section.
//!
//! A bundle's last section is a manifest listing the digest — tag, length
//! and CRC-32 — of every section written before it, plus the writing
//! tool. It exists for *operators*, not for the decoder (each section is
//! already individually checksummed): `annsctl inspect` and the mount
//! tooling can state the exact provenance of a mounted bundle, and a
//! reader that finds a manifest cross-checks it against the sections it
//! actually saw, so a file spliced together from two half-bundles fails
//! loudly even though every individual section checksum passes.
//!
//! Readers from before the manifest existed skip the unknown `MNFT` tag;
//! bundles from before it load with `manifest_verified = false` in their
//! mount report. See `docs/STORE_FORMAT.md` for the normative rules.

use std::io::Read;

use crate::codec::{ByteReader, ByteWriter, Codec};
use crate::container::{Section, StoreHeader, StoreReader};
use crate::error::StoreError;

/// Digest of one section: its tag, payload length, and CRC-32 (the same
/// CRC the section header stores, covering `tag ++ payload`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SectionDigest {
    /// The section's four-byte tag.
    pub tag: [u8; 4],
    /// Payload length in bytes.
    pub len: u32,
    /// CRC-32 over `tag ++ payload`.
    pub crc: u32,
}

impl SectionDigest {
    /// The digest of a decoded [`Section`].
    pub fn of(section: &Section) -> Self {
        SectionDigest {
            tag: section.tag,
            len: section.payload.len() as u32,
            crc: section.crc,
        }
    }

    /// The section tag as ASCII where printable (for reports).
    pub fn tag_string(&self) -> String {
        String::from_utf8_lossy(&self.tag).into_owned()
    }
}

impl Codec for SectionDigest {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_raw(&self.tag);
        w.put_u32(self.len);
        w.put_u32(self.crc);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let tag: [u8; 4] = r.take(4)?.try_into().expect("len 4");
        Ok(SectionDigest {
            tag,
            len: r.u32()?,
            crc: r.u32()?,
        })
    }
}

/// The decoded payload of a `MNFT` section.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// The writing tool, e.g. `anns-store/1`.
    pub tool: String,
    /// Digest of every section written before the manifest, in file
    /// order.
    pub sections: Vec<SectionDigest>,
}

impl Manifest {
    /// Checks the manifest against the digests of the sections actually
    /// read (excluding the manifest section itself). Order matters: the
    /// manifest pins the exact section layout, not just the set.
    pub fn matches(&self, observed: &[SectionDigest]) -> bool {
        self.sections == observed
    }
}

impl Codec for Manifest {
    fn encode(&self, w: &mut ByteWriter) {
        self.tool.encode(w);
        self.sections.encode(w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(Manifest {
            tool: String::decode(r)?,
            sections: Vec::decode(r)?,
        })
    }
}

/// The incremental `MNFT` state machine: the single implementation of
/// the normative manifest rules (manifest must be final, must cover all
/// preceding sections in order, duplicates rejected), shared by
/// [`scan`] and bundle loaders so the two can never diverge.
#[derive(Default)]
pub struct ManifestTracker {
    covered: Vec<SectionDigest>,
    manifest: Option<Manifest>,
}

impl ManifestTracker {
    /// A tracker with no sections observed yet.
    pub fn new() -> Self {
        ManifestTracker::default()
    }

    /// Feeds the next section, in file order. Returns `true` when the
    /// section *was* the manifest (callers skip decoding it as payload).
    ///
    /// Fails with [`StoreError::Malformed`] on any section after the
    /// manifest (including a second manifest), or on a manifest whose
    /// digests do not match the sections that preceded it.
    pub fn observe(&mut self, section: &Section) -> Result<bool, StoreError> {
        // The manifest, when present, must be the final section — any
        // section after it is outside its coverage.
        if self.manifest.is_some() {
            return Err(StoreError::Malformed(
                "sections after the manifest are not covered by it".into(),
            ));
        }
        if section.tag == crate::section_tag::MANIFEST {
            let decoded = Manifest::from_bytes(&section.payload)?;
            if !decoded.matches(&self.covered) {
                return Err(StoreError::Malformed(
                    "manifest does not match the sections preceding it".into(),
                ));
            }
            self.manifest = Some(decoded);
            return Ok(true);
        }
        self.covered.push(SectionDigest::of(section));
        Ok(false)
    }

    /// Digests of the payload sections observed so far (the manifest
    /// section itself excluded).
    pub fn covered(&self) -> &[SectionDigest] {
        &self.covered
    }

    /// Whether a manifest was observed (and therefore verified).
    pub fn verified(&self) -> bool {
        self.manifest.is_some()
    }

    /// Consumes the tracker: covered digests plus the manifest, if any.
    pub fn into_parts(self) -> (Vec<SectionDigest>, Option<Manifest>) {
        (self.covered, self.manifest)
    }
}

/// Streams a whole container, returning its header, the digest of every
/// section, and the decoded manifest if one is present — without decoding
/// any payload. The cheap "what is this file?" primitive behind
/// `annsctl inspect` and multi-bundle mount tooling; every section
/// checksum is verified as a side effect of the streaming read.
///
/// Fails with [`StoreError::Malformed`] if a manifest is present but does
/// not match the sections that precede it.
pub fn scan(
    inner: impl Read,
) -> Result<(StoreHeader, Vec<SectionDigest>, Option<Manifest>), StoreError> {
    let mut reader = StoreReader::new(inner)?;
    let header = *reader.header();
    let mut tracker = ManifestTracker::new();
    while let Some(section) = reader.next_section()? {
        tracker.observe(&section)?;
    }
    let (digests, manifest) = tracker.into_parts();
    Ok((header, digests, manifest))
}

/// [`scan`] over a buffered file.
pub fn scan_file(
    path: impl AsRef<std::path::Path>,
) -> Result<(StoreHeader, Vec<SectionDigest>, Option<Manifest>), StoreError> {
    let file = std::fs::File::open(path).map_err(StoreError::Io)?;
    scan(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::StoreWriter;
    use crate::KIND_BUNDLE;

    fn bundle_with_manifest() -> Vec<u8> {
        let mut w = StoreWriter::new(KIND_BUNDLE);
        w.section(*b"META", b"meta".to_vec());
        w.section(*b"SHRD", b"shards".to_vec());
        let manifest = Manifest {
            tool: "test/1".into(),
            sections: w.digests(),
        };
        w.section(crate::section_tag::MANIFEST, manifest.to_bytes());
        w.to_bytes()
    }

    #[test]
    fn scan_returns_digests_and_verified_manifest() {
        let bytes = bundle_with_manifest();
        let (header, digests, manifest) = scan(&bytes[..]).unwrap();
        assert_eq!(header.sections, 3);
        assert_eq!(digests.len(), 2);
        assert_eq!(digests[0].tag, *b"META");
        assert_eq!(digests[0].len, 4);
        assert_eq!(digests[1].tag_string(), "SHRD");
        let manifest = manifest.expect("manifest present");
        assert_eq!(manifest.tool, "test/1");
        assert!(manifest.matches(&digests));
    }

    #[test]
    fn scan_without_manifest_is_fine() {
        let mut w = StoreWriter::new(KIND_BUNDLE);
        w.section(*b"META", b"x".to_vec());
        let (_, digests, manifest) = scan(&w.to_bytes()[..]).unwrap();
        assert_eq!(digests.len(), 1);
        assert!(manifest.is_none());
    }

    #[test]
    fn spliced_sections_fail_the_manifest_check() {
        // Write a manifest over META only, then append an extra section
        // *before* it by rebuilding the file with a stale manifest.
        let mut w = StoreWriter::new(KIND_BUNDLE);
        w.section(*b"META", b"meta".to_vec());
        let stale = Manifest {
            tool: "test/1".into(),
            sections: w.digests(),
        };
        w.section(*b"EVIL", b"spliced-in".to_vec());
        w.section(crate::section_tag::MANIFEST, stale.to_bytes());
        match scan(&w.to_bytes()[..]) {
            Err(StoreError::Malformed(msg)) => assert!(msg.contains("manifest")),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_manifests_are_rejected() {
        let mut w = StoreWriter::new(KIND_BUNDLE);
        w.section(*b"META", b"meta".to_vec());
        let manifest = Manifest {
            tool: "test/1".into(),
            sections: w.digests(),
        };
        let payload = manifest.to_bytes();
        w.section(crate::section_tag::MANIFEST, payload.clone());
        w.section(crate::section_tag::MANIFEST, payload);
        assert!(matches!(
            scan(&w.to_bytes()[..]),
            Err(StoreError::Malformed(_))
        ));
    }

    #[test]
    fn sections_after_the_manifest_are_rejected() {
        let mut w = StoreWriter::new(KIND_BUNDLE);
        w.section(*b"META", b"meta".to_vec());
        let manifest = Manifest {
            tool: "test/1".into(),
            sections: w.digests(),
        };
        w.section(crate::section_tag::MANIFEST, manifest.to_bytes());
        w.section(*b"LATE", b"trailing".to_vec());
        assert!(matches!(
            scan(&w.to_bytes()[..]),
            Err(StoreError::Malformed(_))
        ));
    }

    #[test]
    fn digest_codec_roundtrips() {
        let digest = SectionDigest {
            tag: *b"IDXP",
            len: 123,
            crc: 0xDEAD_BEEF,
        };
        assert_eq!(
            SectionDigest::from_bytes(&digest.to_bytes()).unwrap(),
            digest
        );
    }
}
