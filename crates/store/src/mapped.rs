//! Memory-mapped store access: O(manifest) open, lazily verified
//! sections.
//!
//! [`MappedStore::open`] maps a v2 container and reads *only* its fixed
//! header, the section preludes, and the trailing `MNFT` manifest
//! payload — work proportional to the manifest, not to the index bytes.
//! The manifest is checksum-verified eagerly and cross-checked against
//! the `(tag, len, crc)` triples recorded in the section preludes, so a
//! spliced file still fails loudly at mount without a single payload
//! page being touched. Every other payload stays cold until first touch,
//! at which point a verified-once latch checks its CRC exactly once and
//! replays the verdict (success, or a typed [`PayloadFault`]) to every
//! later reader.
//!
//! v1 containers are *not* mappable — their payloads are unaligned — and
//! open with a typed error pointing at the heap path, which reads both
//! versions (see `docs/STORE_FORMAT.md` §v2 for the compatibility
//! matrix).

use std::path::Path;
use std::sync::{Arc, OnceLock};

use crate::checksum::crc32_pair;
use crate::container::{SectionTag, StoreHeader, HEADER_BYTES, SECTION_PRELUDE_V2_BYTES};
use crate::error::{PayloadFault, StoreError};
use crate::manifest::{Manifest, SectionDigest};
use crate::{Codec, FORMAT_VERSION_V2, MAGIC, SECTION_ALIGN};

/// Read-only mapping of a whole file.
///
/// On unix this is a real `mmap(PROT_READ, MAP_PRIVATE)` through a
/// minimal hand-rolled FFI (std already links libc); elsewhere it
/// degrades to reading the file into an owned buffer so the crate — and
/// every backend-generic caller — still compiles and behaves
/// identically, minus the paging benefits.
#[cfg(unix)]
mod sys {
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    extern "C" {
        fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
        fn munmap(addr: *mut u8, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    pub struct Mapping {
        ptr: *mut u8,
        len: usize,
    }

    // The mapping is read-only and owned: sharing &self across threads
    // only ever reads the mapped bytes.
    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}

    impl Mapping {
        pub fn map(file: &File, len: usize) -> std::io::Result<Mapping> {
            if len == 0 {
                // mmap rejects zero-length maps; an empty file has no
                // bytes to expose anyway.
                return Ok(Mapping {
                    ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                    len: 0,
                });
            }
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(Mapping { ptr, len })
        }

        pub fn bytes(&self) -> &[u8] {
            // Safety: ptr/len describe a live PROT_READ mapping (or a
            // dangling pointer with len 0, which from_raw_parts allows).
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            if self.len != 0 {
                unsafe {
                    munmap(self.ptr, self.len);
                }
            }
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use std::fs::File;
    use std::io::Read;

    pub struct Mapping {
        buf: Vec<u8>,
    }

    impl Mapping {
        pub fn map(file: &File, len: usize) -> std::io::Result<Mapping> {
            let mut buf = Vec::new();
            let mut file = file;
            file.read_to_end(&mut buf)?;
            debug_assert_eq!(buf.len(), len);
            let _ = len;
            Ok(Mapping { buf })
        }

        pub fn bytes(&self) -> &[u8] {
            &self.buf
        }
    }
}

/// Location and digest of one section inside the mapping.
struct SectionMeta {
    tag: SectionTag,
    len: u32,
    crc: u32,
    payload_offset: usize,
}

struct Inner {
    map: sys::Mapping,
    header: StoreHeader,
    metas: Vec<SectionMeta>,
    /// Per-section verified-once latch: `None` until first touch, then
    /// the permanent verdict.
    verified: Vec<OnceLock<Result<(), PayloadFault>>>,
    manifest: Option<Manifest>,
    eager_bytes: u64,
}

/// A v2 container opened through the mapped (lazy) backend.
#[derive(Clone)]
pub struct MappedStore {
    inner: Arc<Inner>,
}

impl MappedStore {
    /// Maps `path` and performs the O(manifest) eager work: header and
    /// section-prelude parse, manifest checksum + cross-check. No other
    /// payload bytes are read.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let file = std::fs::File::open(path).map_err(StoreError::Io)?;
        let file_len = file.metadata().map_err(StoreError::Io)?.len();
        let file_len: usize = file_len
            .try_into()
            .map_err(|_| StoreError::Unsupported("file exceeds the address space".into()))?;
        let map = sys::Mapping::map(&file, file_len)?;
        Self::from_mapping(map)
    }

    fn from_mapping(map: sys::Mapping) -> Result<Self, StoreError> {
        let bytes = map.bytes();
        if bytes.len() < HEADER_BYTES {
            return Err(StoreError::Truncated { context: "header" });
        }
        if bytes[..4] != MAGIC {
            return Err(StoreError::BadMagic {
                found: bytes[..4].try_into().expect("len 4"),
            });
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("len 2"));
        if version != FORMAT_VERSION_V2 {
            return Err(StoreError::Unsupported(format!(
                "format v{version} containers are not mappable (payloads unaligned); \
                 load this file with the heap backend, or re-save it as v{FORMAT_VERSION_V2}"
            )));
        }
        let header = StoreHeader {
            version,
            kind: bytes[6],
            sections: u32::from_le_bytes(bytes[8..12].try_into().expect("len 4")),
        };
        let mut metas = Vec::with_capacity(crate::codec::decode_capacity(
            header.sections as usize,
            std::mem::size_of::<SectionMeta>(),
        ));
        let mut offset = HEADER_BYTES;
        let mut eager_bytes = HEADER_BYTES as u64;
        for _ in 0..header.sections {
            if bytes.len() < offset + SECTION_PRELUDE_V2_BYTES {
                return Err(StoreError::Truncated {
                    context: "section prelude",
                });
            }
            let prelude = &bytes[offset..offset + SECTION_PRELUDE_V2_BYTES];
            let tag: SectionTag = prelude[..4].try_into().expect("len 4");
            let len = u32::from_le_bytes(prelude[4..8].try_into().expect("len 4"));
            let crc = u32::from_le_bytes(prelude[8..12].try_into().expect("len 4"));
            let pad = u32::from_le_bytes(prelude[12..16].try_into().expect("len 4"));
            eager_bytes += SECTION_PRELUDE_V2_BYTES as u64;
            if pad as usize >= SECTION_ALIGN {
                return Err(StoreError::Malformed(format!(
                    "section padding {pad} exceeds the {SECTION_ALIGN}-byte alignment unit"
                )));
            }
            let payload_offset = offset + SECTION_PRELUDE_V2_BYTES + pad as usize;
            if !payload_offset.is_multiple_of(SECTION_ALIGN) {
                return Err(StoreError::Malformed(format!(
                    "section {} payload at misaligned offset {payload_offset}",
                    String::from_utf8_lossy(&tag)
                )));
            }
            let end = payload_offset
                .checked_add(len as usize)
                .ok_or(StoreError::Truncated {
                    context: "section payload",
                })?;
            if bytes.len() < end {
                return Err(StoreError::Truncated {
                    context: "section payload",
                });
            }
            metas.push(SectionMeta {
                tag,
                len,
                crc,
                payload_offset,
            });
            offset = end;
        }
        let verified: Vec<OnceLock<Result<(), PayloadFault>>> =
            metas.iter().map(|_| OnceLock::new()).collect();
        // Eager manifest verification: the one payload read at open.
        let mut manifest = None;
        if let Some(last) = metas.last() {
            if last.tag == crate::section_tag::MANIFEST {
                let payload = &bytes[last.payload_offset..last.payload_offset + last.len as usize];
                let computed = crc32_pair(&last.tag, payload);
                if computed != last.crc {
                    return Err(StoreError::ChecksumMismatch {
                        tag: last.tag,
                        stored: last.crc,
                        computed,
                    });
                }
                eager_bytes += last.len as u64;
                let decoded = Manifest::from_bytes(payload)?;
                let observed: Vec<SectionDigest> = metas[..metas.len() - 1]
                    .iter()
                    .map(|m| SectionDigest {
                        tag: m.tag,
                        len: m.len,
                        crc: m.crc,
                    })
                    .collect();
                if !decoded.matches(&observed) {
                    return Err(StoreError::Malformed(
                        "manifest does not match the sections preceding it".into(),
                    ));
                }
                verified[metas.len() - 1].set(Ok(())).expect("fresh latch");
                manifest = Some(decoded);
            }
        }
        // A manifest anywhere but last violates the format rules.
        if manifest.is_none() && metas.iter().any(|m| m.tag == crate::section_tag::MANIFEST) {
            return Err(StoreError::Malformed(
                "sections after the manifest are not covered by it".into(),
            ));
        }
        Ok(MappedStore {
            inner: Arc::new(Inner {
                map,
                header,
                metas,
                verified,
                manifest,
                eager_bytes,
            }),
        })
    }

    /// The validated header.
    pub fn header(&self) -> &StoreHeader {
        &self.inner.header
    }

    /// Total bytes of the mapped file.
    pub fn file_bytes(&self) -> u64 {
        self.inner.map.bytes().len() as u64
    }

    /// Bytes examined eagerly at open: header, section preludes, and the
    /// manifest payload — the measurable O(manifest) mount cost.
    pub fn eager_bytes(&self) -> u64 {
        self.inner.eager_bytes
    }

    /// The verified manifest, if the file carries one.
    pub fn manifest(&self) -> Option<&Manifest> {
        self.inner.manifest.as_ref()
    }

    /// Digest of every section, derived from the section preludes
    /// without reading any payload.
    pub fn digests(&self) -> Vec<SectionDigest> {
        self.inner
            .metas
            .iter()
            .map(|m| SectionDigest {
                tag: m.tag,
                len: m.len,
                crc: m.crc,
            })
            .collect()
    }

    /// Number of sections.
    pub fn section_count(&self) -> usize {
        self.inner.metas.len()
    }

    /// A lazy handle to section `idx` (file order).
    pub fn section(&self, idx: usize) -> Option<LazySection> {
        if idx < self.inner.metas.len() {
            Some(LazySection {
                inner: Arc::clone(&self.inner),
                idx,
            })
        } else {
            None
        }
    }

    /// The first section with the given tag.
    pub fn find(&self, tag: SectionTag) -> Option<LazySection> {
        self.inner
            .metas
            .iter()
            .position(|m| m.tag == tag)
            .and_then(|idx| self.section(idx))
    }
}

/// A clone-able handle to one mapped section, verified on first touch.
#[derive(Clone)]
pub struct LazySection {
    inner: Arc<Inner>,
    idx: usize,
}

impl LazySection {
    fn meta(&self) -> &SectionMeta {
        &self.inner.metas[self.idx]
    }

    /// The section tag.
    pub fn tag(&self) -> SectionTag {
        self.meta().tag
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.meta().len as usize
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.meta().len == 0
    }

    /// The CRC-32 recorded in the section prelude.
    pub fn crc(&self) -> u32 {
        self.meta().crc
    }

    /// The mapped payload bytes with *no* checksum verification — for
    /// callers that bring their own finer-grained digests (the index
    /// pool verifies per entry, so touching one entry doesn't page in
    /// the whole section).
    pub fn raw(&self) -> &[u8] {
        let meta = self.meta();
        &self.inner.map.bytes()[meta.payload_offset..meta.payload_offset + meta.len as usize]
    }

    /// The payload bytes, CRC-verified exactly once: the first call
    /// reads and checks the whole section; every later call replays the
    /// latched verdict without re-hashing.
    pub fn bytes(&self) -> Result<&[u8], StoreError> {
        match self.try_bytes() {
            Ok(bytes) => Ok(bytes),
            Err(fault) => Err(fault.into()),
        }
    }

    /// [`LazySection::bytes`], with the clone-able fault type.
    pub fn try_bytes(&self) -> Result<&[u8], PayloadFault> {
        let raw = self.raw();
        let meta = self.meta();
        let verdict = self.inner.verified[self.idx].get_or_init(|| {
            let computed = crc32_pair(&meta.tag, raw);
            if computed == meta.crc {
                Ok(())
            } else {
                Err(PayloadFault::Checksum {
                    tag: meta.tag,
                    stored: meta.crc,
                    computed,
                })
            }
        });
        verdict.clone().map(|()| raw)
    }

    /// The latched verdict, if this section has been touched.
    pub fn fault(&self) -> Option<PayloadFault> {
        match self.inner.verified[self.idx].get() {
            Some(Err(fault)) => Some(fault.clone()),
            _ => None,
        }
    }
}

/// One payload behind the backend seam: heap-owned bytes (verified by
/// the streaming reader before they got here) or a window of a lazily
/// verified mapped section. Registry loaders and pool entries hold
/// `PayloadSource`s so the decode path is written once and runs
/// identically over both backends.
#[derive(Clone)]
pub struct PayloadSource {
    backend: SourceBackend,
    offset: usize,
    len: usize,
}

#[derive(Clone)]
enum SourceBackend {
    Heap(Arc<[u8]>),
    Mapped(LazySection),
}

impl PayloadSource {
    /// A heap-owned source (already verified at read time).
    pub fn heap(bytes: Vec<u8>) -> Self {
        let len = bytes.len();
        PayloadSource {
            backend: SourceBackend::Heap(bytes.into()),
            offset: 0,
            len,
        }
    }

    /// A source over a whole mapped section.
    pub fn mapped(section: LazySection) -> Self {
        let len = section.len();
        PayloadSource {
            backend: SourceBackend::Mapped(section),
            offset: 0,
            len,
        }
    }

    /// A bounds-checked sub-window (offsets relative to this source).
    pub fn window(&self, offset: usize, len: usize) -> Result<PayloadSource, StoreError> {
        offset
            .checked_add(len)
            .filter(|&end| end <= self.len)
            .ok_or_else(|| {
                StoreError::Malformed(format!(
                    "window {offset}+{len} exceeds the {} payload bytes",
                    self.len
                ))
            })?;
        Ok(PayloadSource {
            backend: self.backend.clone(),
            offset: self.offset + offset,
            len,
        })
    }

    /// Window length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bytes with *no* lazy verification (callers bring their own
    /// digests; heap bytes were verified when read).
    pub fn raw(&self) -> &[u8] {
        let all = match &self.backend {
            SourceBackend::Heap(bytes) => &bytes[..],
            SourceBackend::Mapped(section) => section.raw(),
        };
        &all[self.offset..self.offset + self.len]
    }

    /// The bytes with backend-appropriate verification: heap windows
    /// return immediately; mapped windows go through the owning
    /// section's verified-once latch (typed [`PayloadFault`] on
    /// damage).
    pub fn bytes(&self) -> Result<&[u8], PayloadFault> {
        let all = match &self.backend {
            SourceBackend::Heap(bytes) => &bytes[..],
            SourceBackend::Mapped(section) => section.try_bytes()?,
        };
        Ok(&all[self.offset..self.offset + self.len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::StoreWriter;
    use crate::section_tag::MANIFEST;
    use crate::KIND_BUNDLE;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("anns-store-mapped-{}-{name}", std::process::id()));
        p
    }

    fn write_sample(name: &str, with_manifest: bool) -> std::path::PathBuf {
        let mut w = StoreWriter::new(KIND_BUNDLE);
        w.section(*b"META", b"hello".to_vec());
        w.section(*b"IDXP", (0..1000u32).flat_map(u32::to_le_bytes).collect());
        if with_manifest {
            let manifest = Manifest {
                tool: "test/1".into(),
                sections: w.digests(),
            };
            w.section(MANIFEST, manifest.to_bytes());
        }
        let path = temp_path(name);
        w.write_file(&path).unwrap();
        path
    }

    #[test]
    fn open_reads_only_manifest_bytes_eagerly() {
        let path = write_sample("eager", true);
        let store = MappedStore::open(&path).unwrap();
        assert_eq!(store.header().kind, KIND_BUNDLE);
        assert_eq!(store.section_count(), 3);
        assert!(store.manifest().is_some());
        // Eager work: header + 3 preludes + manifest payload — far less
        // than the 4000-byte IDXP section.
        let mnft_len = store.find(MANIFEST).unwrap().len() as u64;
        assert_eq!(store.eager_bytes(), 12 + 3 * 16 + mnft_len);
        assert!(store.eager_bytes() < store.file_bytes() / 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lazy_sections_verify_once_and_latch() {
        let path = write_sample("latch", true);
        let store = MappedStore::open(&path).unwrap();
        let idxp = store.find(*b"IDXP").unwrap();
        assert!(idxp.fault().is_none());
        let bytes = idxp.bytes().unwrap();
        assert_eq!(bytes.len(), 4000);
        assert!(idxp.fault().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn post_open_corruption_surfaces_as_typed_fault_at_first_touch() {
        let path = write_sample("flip", true);
        // Flip a byte inside IDXP *after* the writer finished: open
        // succeeds (O(manifest) — the damage is in a cold payload), and
        // the fault surfaces lazily, typed, on first touch.
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = bytes.len() - 200; // inside IDXP (MNFT is ~60 bytes)
        bytes[idx] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let store = MappedStore::open(&path).unwrap();
        let idxp = store.find(*b"IDXP").unwrap();
        let fault = idxp.try_bytes().unwrap_err();
        assert!(matches!(fault, PayloadFault::Checksum { tag, .. } if tag == *b"IDXP"));
        // The verdict is latched and replayed.
        assert_eq!(idxp.fault(), Some(fault.clone()));
        assert_eq!(idxp.try_bytes().unwrap_err(), fault);
        // And converts to the classic typed StoreError.
        assert!(matches!(
            idxp.bytes(),
            Err(StoreError::ChecksumMismatch { tag, .. }) if tag == *b"IDXP"
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn manifest_damage_fails_open_eagerly() {
        let path = write_sample("mnft", true);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 4; // inside the MNFT payload
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            MappedStore::open(&path),
            Err(StoreError::ChecksumMismatch { tag, .. }) if tag == MANIFEST
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_files_get_a_pointer_to_the_heap_backend() {
        let mut w = StoreWriter::v1(KIND_BUNDLE);
        w.section(*b"META", b"old".to_vec());
        let path = temp_path("v1");
        w.write_file(&path).unwrap();
        match MappedStore::open(&path) {
            Err(StoreError::Unsupported(msg)) => {
                assert!(msg.contains("heap backend"), "{msg}");
            }
            other => panic!("expected Unsupported, got {:?}", other.map(|_| ())),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn payload_source_windows_are_bounds_checked() {
        let src = PayloadSource::heap(vec![1, 2, 3, 4, 5]);
        assert_eq!(src.len(), 5);
        let win = src.window(1, 3).unwrap();
        assert_eq!(win.bytes().unwrap(), &[2, 3, 4]);
        assert_eq!(win.raw(), &[2, 3, 4]);
        let sub = win.window(2, 1).unwrap();
        assert_eq!(sub.bytes().unwrap(), &[4]);
        assert!(src.window(4, 2).is_err());
        assert!(src.window(usize::MAX, 1).is_err());
    }

    #[test]
    fn mapped_payload_source_defers_to_the_section_latch() {
        let path = write_sample("source", true);
        let store = MappedStore::open(&path).unwrap();
        let src = PayloadSource::mapped(store.find(*b"META").unwrap());
        assert_eq!(src.bytes().unwrap(), b"hello");
        assert_eq!(src.window(1, 3).unwrap().bytes().unwrap(), b"ell");
        std::fs::remove_file(&path).ok();
    }
}
