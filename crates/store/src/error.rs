//! Typed failures of the store container and its codecs.

use std::fmt;

/// Everything that can go wrong reading (or writing) a store file.
///
/// The variants are deliberately fine-grained: CI and operators need to
/// tell a truncated upload (`Truncated`) from bit rot
/// (`ChecksumMismatch`) from an artifact produced by a newer build
/// (`UnsupportedVersion`) — the remediation differs for each.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O failure (not a format problem).
    Io(std::io::Error),
    /// The file does not open with the `ANNS` magic.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The file's format version is not one this build reads.
    UnsupportedVersion {
        /// Version stamped in the file.
        found: u16,
        /// Version this build supports.
        supported: u16,
    },
    /// The stream ended before the declared structure was complete.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// A section's payload does not match its stored CRC-32.
    ChecksumMismatch {
        /// The section's tag, as ASCII where printable.
        tag: [u8; 4],
        /// Checksum recorded in the file.
        stored: u32,
        /// Checksum of the bytes actually read.
        computed: u32,
    },
    /// A scheme record carries a kind tag this build cannot decode.
    UnknownSchemeKind(u8),
    /// A scheme cannot be persisted (no stored representation).
    Unsupported(String),
    /// A section verified its checksum but its contents are inconsistent.
    Malformed(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::BadMagic { found } => {
                write!(
                    f,
                    "not an anns store: magic {found:?} != {:?}",
                    crate::MAGIC
                )
            }
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "store format version {found} unsupported (this build reads {supported})"
            ),
            StoreError::Truncated { context } => {
                write!(f, "store truncated while reading {context}")
            }
            StoreError::ChecksumMismatch {
                tag,
                stored,
                computed,
            } => write!(
                f,
                "section {} checksum mismatch: stored {stored:#010x}, computed {computed:#010x}",
                String::from_utf8_lossy(tag)
            ),
            StoreError::UnknownSchemeKind(kind) => {
                write!(f, "unknown scheme kind {kind}")
            }
            StoreError::Unsupported(what) => {
                write!(f, "scheme has no stored representation: {what}")
            }
            StoreError::Malformed(what) => write!(f, "malformed store section: {what}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// A deferred-verification failure, latched at first touch of a lazily
/// mapped payload and replayed to every subsequent accessor.
///
/// Unlike [`StoreError`] (which carries a non-clonable `io::Error`),
/// this type is `Clone + PartialEq + Eq` so it can live in a
/// verified-once latch and travel inside engine-level error enums — the
/// typed value a probe receives when an mmap-backed section fails its
/// first-touch checksum, instead of a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PayloadFault {
    /// The mapped bytes do not match the checksum recorded in the file.
    Checksum {
        /// The section's tag, as ASCII where printable.
        tag: [u8; 4],
        /// Checksum recorded in the file.
        stored: u32,
        /// Checksum of the mapped bytes.
        computed: u32,
    },
    /// The bytes verified (or were heap-owned) but failed to decode.
    Decode(String),
}

impl fmt::Display for PayloadFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PayloadFault::Checksum {
                tag,
                stored,
                computed,
            } => write!(
                f,
                "lazy verification of section {} failed: stored {stored:#010x}, computed {computed:#010x}",
                String::from_utf8_lossy(tag)
            ),
            PayloadFault::Decode(what) => write!(f, "lazy decode failed: {what}"),
        }
    }
}

impl std::error::Error for PayloadFault {}

impl From<PayloadFault> for StoreError {
    fn from(fault: PayloadFault) -> Self {
        match fault {
            PayloadFault::Checksum {
                tag,
                stored,
                computed,
            } => StoreError::ChecksumMismatch {
                tag,
                stored,
                computed,
            },
            PayloadFault::Decode(what) => StoreError::Malformed(what),
        }
    }
}

impl From<&StoreError> for PayloadFault {
    fn from(err: &StoreError) -> Self {
        match err {
            StoreError::ChecksumMismatch {
                tag,
                stored,
                computed,
            } => PayloadFault::Checksum {
                tag: *tag,
                stored: *stored,
                computed: *computed,
            },
            other => PayloadFault::Decode(other.to_string()),
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        // An interrupted read manifests as UnexpectedEof from read_exact;
        // map that to the typed truncation error so callers need not
        // pattern-match on io::ErrorKind.
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Truncated { context: "stream" }
        } else {
            StoreError::Io(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let cases: Vec<(StoreError, &str)> = vec![
            (
                StoreError::BadMagic { found: *b"JSON" },
                "not an anns store",
            ),
            (
                StoreError::UnsupportedVersion {
                    found: 9,
                    supported: 1,
                },
                "version 9",
            ),
            (
                StoreError::Truncated { context: "header" },
                "truncated while reading header",
            ),
            (
                StoreError::ChecksumMismatch {
                    tag: *b"IDXP",
                    stored: 1,
                    computed: 2,
                },
                "IDXP checksum mismatch",
            ),
            (StoreError::UnknownSchemeKind(77), "scheme kind 77"),
            (
                StoreError::Unsupported("custom".into()),
                "no stored representation",
            ),
            (StoreError::Malformed("bad".into()), "malformed"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err} missing {needle:?}");
        }
    }

    #[test]
    fn eof_maps_to_truncated() {
        let eof = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        assert!(matches!(
            StoreError::from(eof),
            StoreError::Truncated { .. }
        ));
        let other = std::io::Error::new(std::io::ErrorKind::PermissionDenied, "no");
        assert!(matches!(StoreError::from(other), StoreError::Io(_)));
    }
}
