//! The hand-rolled byte codec: little-endian primitives over flat buffers.
//!
//! Section payloads are encoded with [`ByteWriter`] and decoded with
//! [`ByteReader`]. [`Codec`] is the trait entity crates implement next to
//! their types (`anns_hamming::store`, `anns_sketch::store`, …); this
//! module provides the primitive and container impls they compose.
//!
//! Decoding never trusts a length prefix with an allocation: capacities
//! are capped by the bytes actually remaining, so a corrupted length
//! yields a typed error instead of an absurd reservation.

use crate::error::StoreError;

/// Upper bound, in bytes, on any single speculative pre-reservation made
/// while decoding (1 MiB).
///
/// A count prefix is validated against the bytes *remaining*, but that
/// bound is per-item-minimum: a forged count of a billion one-byte items
/// inside a gigabyte section passes the remaining-bytes check while
/// `Vec::with_capacity(count)` for a 24-byte element type would reserve
/// tens of gigabytes before a single item decodes. Decoders therefore
/// clamp the *reservation* (never the count itself) to this cap via
/// [`decode_capacity`]; a hostile count still decodes item by item until
/// the payload underruns into a typed [`StoreError::Malformed`], just
/// without the OOM-sized up-front allocation.
pub const MAX_DECODE_PREALLOC_BYTES: usize = 1 << 20;

/// The capacity to pre-reserve for `count` decoded items whose in-memory
/// size is `item_bytes`: `count`, clamped so the reservation never
/// exceeds [`MAX_DECODE_PREALLOC_BYTES`]. Growth past the clamp is
/// amortized doubling, paid only by inputs that actually deliver the
/// items.
pub fn decode_capacity(count: usize, item_bytes: usize) -> usize {
    count.min((MAX_DECODE_PREALLOC_BYTES / item_bytes.max(1)).max(1))
}

/// Growable little-endian byte sink.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends raw bytes with no length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u64` length prefix followed by the bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.put_raw(bytes);
    }
}

/// Cursor over an encoded payload.
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over the whole slice.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Malformed(format!(
                "payload underrun: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u64` length prefix and that many bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], StoreError> {
        let len = self.len_prefix()?;
        self.take(len)
    }

    /// Reads a `u64` length prefix, validated against the bytes remaining
    /// (the cap that makes corrupted prefixes an error, not an alloc).
    pub fn len_prefix(&mut self) -> Result<usize, StoreError> {
        let len = self.u64()?;
        let len: usize = len
            .try_into()
            .map_err(|_| StoreError::Malformed(format!("length prefix {len} overflows usize")))?;
        if len > self.remaining() {
            return Err(StoreError::Malformed(format!(
                "length prefix {len} exceeds the {} bytes remaining",
                self.remaining()
            )));
        }
        Ok(len)
    }

    /// Reads a count prefix for items of at least `min_item_bytes` each,
    /// validated against the bytes remaining.
    pub fn count_prefix(&mut self, min_item_bytes: usize) -> Result<usize, StoreError> {
        let count = self.u64()?;
        let count: usize = count
            .try_into()
            .map_err(|_| StoreError::Malformed(format!("count prefix {count} overflows usize")))?;
        if count.saturating_mul(min_item_bytes.max(1)) > self.remaining() {
            return Err(StoreError::Malformed(format!(
                "count prefix {count} impossible in {} bytes",
                self.remaining()
            )));
        }
        Ok(count)
    }

    /// Errors unless every byte was consumed (decoders call this last, so
    /// stray trailing bytes — a sign of skew — do not pass silently).
    pub fn finish(&self) -> Result<(), StoreError> {
        if self.remaining() != 0 {
            return Err(StoreError::Malformed(format!(
                "{} trailing bytes after decode",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Binary encode/decode for one entity, composable by field.
pub trait Codec: Sized {
    /// Appends this value's encoding.
    fn encode(&self, w: &mut ByteWriter);

    /// Decodes one value from the cursor.
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError>;

    /// Convenience: encodes to a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Convenience: decodes a full buffer, rejecting trailing bytes.
    fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        let mut r = ByteReader::new(bytes);
        let value = Self::decode(&mut r)?;
        r.finish()?;
        Ok(value)
    }
}

macro_rules! impl_codec_prim {
    ($ty:ty, $put:ident, $get:ident) => {
        impl Codec for $ty {
            fn encode(&self, w: &mut ByteWriter) {
                w.$put(*self);
            }
            fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
                r.$get()
            }
        }
    };
}

impl_codec_prim!(u8, put_u8, u8);
impl_codec_prim!(u16, put_u16, u16);
impl_codec_prim!(u32, put_u32, u32);
impl_codec_prim!(u64, put_u64, u64);
impl_codec_prim!(f64, put_f64, f64);

impl Codec for bool {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(*self as u8);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(StoreError::Malformed(format!("bool byte {other}"))),
        }
    }
}

impl Codec for usize {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(*self as u64);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let v = r.u64()?;
        v.try_into()
            .map_err(|_| StoreError::Malformed(format!("usize value {v} overflows")))
    }
}

impl Codec for String {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_bytes(self.as_bytes());
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let bytes = r.bytes()?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| StoreError::Malformed(format!("non-utf8 string: {e}")))
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => Err(StoreError::Malformed(format!("option tag {other}"))),
        }
    }
}

/// Encodes a length-prefixed sequence from a borrowed slice — the
/// non-cloning sibling of `Vec::encode`, for encoders whose data lives
/// behind accessors (no need to `.to_vec()` just to serialize).
pub fn encode_slice<T: Codec>(items: &[T], w: &mut ByteWriter) {
    w.put_u64(items.len() as u64);
    for item in items {
        item.encode(w);
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, w: &mut ByteWriter) {
        encode_slice(self, w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let count = r.count_prefix(1)?;
        let mut out = Vec::with_capacity(decode_capacity(count, std::mem::size_of::<T>()));
        for _ in 0..count {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, w: &mut ByteWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        let mut w = ByteWriter::new();
        0xABu8.encode(&mut w);
        0xBEEFu16.encode(&mut w);
        0xDEAD_BEEFu32.encode(&mut w);
        0x0123_4567_89AB_CDEFu64.encode(&mut w);
        (-1.5f64).encode(&mut w);
        true.encode(&mut w);
        42usize.encode(&mut w);
        "héllo".to_string().encode(&mut w);
        Some(7u32).encode(&mut w);
        Option::<u32>::None.encode(&mut w);
        vec![1u64, 2, 3].encode(&mut w);
        (9u8, 10u32).encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(u8::decode(&mut r).unwrap(), 0xAB);
        assert_eq!(u16::decode(&mut r).unwrap(), 0xBEEF);
        assert_eq!(u32::decode(&mut r).unwrap(), 0xDEAD_BEEF);
        assert_eq!(u64::decode(&mut r).unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(f64::decode(&mut r).unwrap(), -1.5);
        assert!(bool::decode(&mut r).unwrap());
        assert_eq!(usize::decode(&mut r).unwrap(), 42);
        assert_eq!(String::decode(&mut r).unwrap(), "héllo");
        assert_eq!(Option::<u32>::decode(&mut r).unwrap(), Some(7));
        assert_eq!(Option::<u32>::decode(&mut r).unwrap(), None);
        assert_eq!(Vec::<u64>::decode(&mut r).unwrap(), vec![1, 2, 3]);
        assert_eq!(<(u8, u32)>::decode(&mut r).unwrap(), (9, 10));
        r.finish().unwrap();
    }

    #[test]
    fn nan_bit_pattern_survives() {
        let nan = f64::from_bits(0x7FF8_0000_0000_1234);
        let back = f64::from_bytes(&nan.to_bytes()).unwrap();
        assert_eq!(back.to_bits(), nan.to_bits());
    }

    #[test]
    fn underrun_is_malformed() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(matches!(r.u32(), Err(StoreError::Malformed(_))));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = 5u32.to_bytes();
        bytes.push(0);
        assert!(matches!(
            u32::from_bytes(&bytes),
            Err(StoreError::Malformed(_))
        ));
    }

    #[test]
    fn hostile_length_prefix_does_not_allocate() {
        // A length prefix claiming u64::MAX bytes must error immediately.
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX);
        w.put_raw(&[1, 2, 3]);
        let bytes = w.into_bytes();
        assert!(matches!(
            String::from_bytes(&bytes),
            Err(StoreError::Malformed(_))
        ));
        assert!(matches!(
            Vec::<u64>::from_bytes(&bytes),
            Err(StoreError::Malformed(_))
        ));
    }

    #[test]
    fn decode_capacity_clamps_to_the_cap() {
        // Under the cap: reserve exactly the count.
        assert_eq!(decode_capacity(100, 8), 100);
        assert_eq!(decode_capacity(0, 8), 0);
        // A forged count of 2^30 u64s would be an 8 GiB reservation;
        // the clamp holds it to the documented byte cap.
        let clamped = decode_capacity(1 << 30, 8);
        assert_eq!(clamped, MAX_DECODE_PREALLOC_BYTES / 8);
        // Huge item types still reserve at least one slot, never zero
        // for a nonzero count.
        assert_eq!(decode_capacity(5, MAX_DECODE_PREALLOC_BYTES * 2), 1);
        // Zero-sized items cannot divide by zero.
        assert_eq!(decode_capacity(3, 0), 3);
    }

    #[test]
    fn hostile_count_prefix_reservation_is_capped() {
        // A forged count larger than the bytes remaining is rejected
        // before any reservation at all.
        let mut w = ByteWriter::new();
        w.put_u64(512 * 1024 * 1024);
        w.put_raw(&[0u8; 16]);
        assert!(matches!(
            Vec::<u64>::from_bytes(&w.into_bytes()),
            Err(StoreError::Malformed(_))
        ));
        // A count that *passes* the remaining-bytes check (one byte per
        // item minimum) but would over-reserve for a wide element type
        // decodes under the clamp and fails typed at the underrun — the
        // reservation stays capped the whole way.
        let claimed = 2 * MAX_DECODE_PREALLOC_BYTES; // 2 MiB of 1-byte "items"
        let mut w = ByteWriter::new();
        w.put_u64(claimed as u64);
        w.put_raw(&vec![7u8; claimed]); // enough bytes for the count check…
        let bytes = w.into_bytes();
        // …but u64 items consume 8 bytes each, so decode underruns.
        assert!(matches!(
            Vec::<u64>::from_bytes(&bytes),
            Err(StoreError::Malformed(_))
        ));
    }

    #[test]
    fn bad_tags_are_malformed() {
        assert!(matches!(
            bool::from_bytes(&[2]),
            Err(StoreError::Malformed(_))
        ));
        assert!(matches!(
            Option::<u8>::from_bytes(&[9, 0]),
            Err(StoreError::Malformed(_))
        ));
    }
}
