//! The v2 `IDXP` (index pool) payload layout: a checksummed entry table
//! up front, then [`crate::SECTION_ALIGN`]-aligned, individually
//! CRC'd entry payloads.
//!
//! ```text
//! count      u32                      pool entries
//! table_crc  u32                      crc32 of the table bytes below
//! table      count × { offset u64, len u64, crc u32 }
//! padding    zeros to the next aligned offset
//! payloads   entry bytes at their offsets (aligned, zero-padded apart)
//! ```
//!
//! Offsets are relative to the section payload start; because v2 section
//! payloads are themselves aligned in the file, every entry is aligned
//! in a mapping too. The per-entry CRC is what makes *lazy* loading
//! working-set-proportional: touching one entry verifies that entry's
//! bytes only — the section-level checksum (which would page in the
//! whole pool) is left to the eager heap path. The v1 layout (a bare
//! count plus length-prefixed blobs, whole-section verification only)
//! remains readable through [`crate::StoreReader`].

use crate::checksum::crc32;
use crate::codec::decode_capacity;
use crate::error::StoreError;
use crate::SECTION_ALIGN;

/// Bytes of one entry-table row (`offset u64, len u64, crc u32`).
pub const POOL_ENTRY_BYTES: usize = 20;

/// Bytes of the table prefix (`count u32, table_crc u32`).
pub const POOL_TABLE_PREFIX_BYTES: usize = 8;

/// One row of the pool's entry table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolEntry {
    /// Payload offset relative to the section payload start.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// CRC-32 of the entry payload alone.
    pub crc: u32,
}

/// Encodes pool payloads into the v2 `IDXP` section layout.
pub fn encode_pool(payloads: &[Vec<u8>]) -> Vec<u8> {
    let table_bytes = payloads.len() * POOL_ENTRY_BYTES;
    let mut entries = Vec::with_capacity(payloads.len());
    let mut offset = (POOL_TABLE_PREFIX_BYTES + table_bytes).next_multiple_of(SECTION_ALIGN);
    for payload in payloads {
        entries.push(PoolEntry {
            offset: offset as u64,
            len: payload.len() as u64,
            crc: crc32(payload),
        });
        offset = (offset + payload.len()).next_multiple_of(SECTION_ALIGN);
    }
    let mut table = Vec::with_capacity(table_bytes);
    for entry in &entries {
        table.extend_from_slice(&entry.offset.to_le_bytes());
        table.extend_from_slice(&entry.len.to_le_bytes());
        table.extend_from_slice(&entry.crc.to_le_bytes());
    }
    let total = entries
        .last()
        .map(|e| (e.offset + e.len) as usize)
        .unwrap_or(POOL_TABLE_PREFIX_BYTES + table_bytes);
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&(payloads.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&table).to_le_bytes());
    out.extend_from_slice(&table);
    for (entry, payload) in entries.iter().zip(payloads) {
        out.resize(entry.offset as usize, 0);
        out.extend_from_slice(payload);
    }
    out
}

/// Decodes and verifies the entry table from a pool section payload.
///
/// Reads only the table prefix — for a mapped section this touches just
/// the leading pages, never the entry payloads. The table carries its
/// own CRC (verified here, eagerly: it is manifest-sized, not
/// pool-sized), and every row is bounds-checked against the section
/// length, so a forged count or offset is a typed error before any
/// entry-sized allocation or read.
pub fn decode_pool_table(payload: &[u8]) -> Result<Vec<PoolEntry>, StoreError> {
    if payload.len() < POOL_TABLE_PREFIX_BYTES {
        return Err(StoreError::Malformed(format!(
            "pool table prefix needs {POOL_TABLE_PREFIX_BYTES} bytes, section has {}",
            payload.len()
        )));
    }
    let count = u32::from_le_bytes(payload[..4].try_into().expect("len 4")) as usize;
    let stored_crc = u32::from_le_bytes(payload[4..8].try_into().expect("len 4"));
    let table_bytes = count.checked_mul(POOL_ENTRY_BYTES).ok_or_else(|| {
        StoreError::Malformed(format!("pool entry count {count} overflows the table size"))
    })?;
    let table_end = POOL_TABLE_PREFIX_BYTES + table_bytes;
    if payload.len() < table_end {
        return Err(StoreError::Malformed(format!(
            "pool table claims {count} entries ({table_bytes} bytes); section has {}",
            payload.len()
        )));
    }
    let table = &payload[POOL_TABLE_PREFIX_BYTES..table_end];
    let computed = crc32(table);
    if computed != stored_crc {
        return Err(StoreError::ChecksumMismatch {
            tag: crate::section_tag::INDEX_POOL,
            stored: stored_crc,
            computed,
        });
    }
    let mut entries = Vec::with_capacity(decode_capacity(count, POOL_ENTRY_BYTES));
    for row in table.chunks_exact(POOL_ENTRY_BYTES) {
        let entry = PoolEntry {
            offset: u64::from_le_bytes(row[..8].try_into().expect("len 8")),
            len: u64::from_le_bytes(row[8..16].try_into().expect("len 8")),
            crc: u32::from_le_bytes(row[16..20].try_into().expect("len 4")),
        };
        let end = entry
            .offset
            .checked_add(entry.len)
            .ok_or_else(|| StoreError::Malformed("pool entry range overflows".into()))?;
        if end > payload.len() as u64 || entry.offset < table_end as u64 {
            return Err(StoreError::Malformed(format!(
                "pool entry {}+{} outside the {}-byte section",
                entry.offset,
                entry.len,
                payload.len()
            )));
        }
        entries.push(entry);
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_payloads_aligned() {
        let payloads = vec![vec![1u8; 10], Vec::new(), (0..200u8).collect()];
        let encoded = encode_pool(&payloads);
        let entries = decode_pool_table(&encoded).unwrap();
        assert_eq!(entries.len(), 3);
        for (entry, payload) in entries.iter().zip(&payloads) {
            assert_eq!(entry.offset as usize % SECTION_ALIGN, 0);
            let got = &encoded[entry.offset as usize..(entry.offset + entry.len) as usize];
            assert_eq!(got, &payload[..]);
            assert_eq!(entry.crc, crc32(payload));
        }
    }

    #[test]
    fn empty_pool_roundtrips() {
        let encoded = encode_pool(&[]);
        assert!(decode_pool_table(&encoded).unwrap().is_empty());
    }

    #[test]
    fn forged_count_is_typed_not_allocated() {
        // A count claiming billions of entries in a small section fails
        // the table-size bound before any entry-scale reservation.
        let mut bytes = encode_pool(&[vec![7u8; 30]]);
        bytes[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_pool_table(&bytes),
            Err(StoreError::Malformed(_))
        ));
    }

    #[test]
    fn corrupt_table_is_a_checksum_mismatch() {
        let mut bytes = encode_pool(&[vec![7u8; 30], vec![9u8; 5]]);
        bytes[POOL_TABLE_PREFIX_BYTES + 2] ^= 0x80; // inside the table
        assert!(matches!(
            decode_pool_table(&bytes),
            Err(StoreError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn out_of_range_entries_are_rejected() {
        let mut bytes = encode_pool(&[vec![7u8; 30]]);
        // Point the entry past the end of the section.
        let far = (bytes.len() as u64 + 1).to_le_bytes();
        bytes[POOL_TABLE_PREFIX_BYTES..POOL_TABLE_PREFIX_BYTES + 8].copy_from_slice(&far);
        // Re-stamp the table CRC so only the bounds check can object.
        let table_end = POOL_TABLE_PREFIX_BYTES + POOL_ENTRY_BYTES;
        let crc = crc32(&bytes[POOL_TABLE_PREFIX_BYTES..table_end]);
        bytes[4..8].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            decode_pool_table(&bytes),
            Err(StoreError::Malformed(_))
        ));
    }
}
