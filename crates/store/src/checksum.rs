//! CRC-32 (IEEE 802.3) — hand-rolled, table-driven, no dependencies.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

fn update(mut crc: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// CRC-32 of `bytes` (IEEE: init `0xFFFF_FFFF`, final xor, reflected).
pub fn crc32(bytes: &[u8]) -> u32 {
    !update(0xFFFF_FFFF, bytes)
}

/// CRC-32 of the concatenation `a ++ b` without materializing it.
/// Sections checksum `tag ++ payload` this way, so a flipped tag byte is
/// caught by the same mechanism as payload damage.
pub fn crc32_pair(a: &[u8], b: &[u8]) -> u32 {
    !update(update(0xFFFF_FFFF, a), b)
}

/// Multiplies the GF(2) matrix `mat` by the bit-vector `vec`.
fn gf2_matrix_times(mat: &[u32; 32], mut vec: u32) -> u32 {
    let mut sum = 0u32;
    let mut i = 0;
    while vec != 0 {
        if vec & 1 != 0 {
            sum ^= mat[i];
        }
        vec >>= 1;
        i += 1;
    }
    sum
}

/// Squares a GF(2) matrix: `square = mat * mat`.
fn gf2_matrix_square(square: &mut [u32; 32], mat: &[u32; 32]) {
    for n in 0..32 {
        square[n] = gf2_matrix_times(mat, mat[n]);
    }
}

/// Combines two *finished* digests: given `crc_a = crc32(a)` and
/// `crc_b = crc32(b)` with `len_b = b.len()`, returns `crc32(a ++ b)` —
/// without touching a single byte of either buffer.
///
/// This is the streaming combine (zlib's `crc32_combine`): appending
/// `len_b` zero bytes to `a` is a linear operator over GF(2), applied to
/// `crc_a` by matrix exponentiation in `O(log len_b)` squarings, after
/// which the independent digests xor together. It lets digests computed
/// separately — per pool entry, per section, per shard — be stitched
/// into the digest of the concatenation with no re-hash and no
/// intermediate copy of the inputs.
pub fn crc32_concat(crc_a: u32, crc_b: u32, len_b: u64) -> u32 {
    if len_b == 0 {
        return crc_a;
    }
    let mut even = [0u32; 32]; // even-power-of-two zero-byte operators
    let mut odd = [0u32; 32]; // odd-power operators
                              // The operator for one zero *bit*: shift down, conditionally xor POLY.
    odd[0] = POLY;
    let mut row = 1u32;
    for entry in odd.iter_mut().skip(1) {
        *entry = row;
        row <<= 1;
    }
    // Square to the one-zero-byte (8-bit) operator and beyond.
    gf2_matrix_square(&mut even, &odd); // 2 bits
    gf2_matrix_square(&mut odd, &even); // 4 bits
    let mut crc = crc_a;
    let mut len = len_b;
    loop {
        gf2_matrix_square(&mut even, &odd);
        if len & 1 != 0 {
            crc = gf2_matrix_times(&even, crc);
        }
        len >>= 1;
        if len == 0 {
            break;
        }
        gf2_matrix_square(&mut odd, &even);
        if len & 1 != 0 {
            crc = gf2_matrix_times(&odd, crc);
        }
        len >>= 1;
        if len == 0 {
            break;
        }
    }
    crc ^ crc_b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32/IEEE check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn pair_matches_concatenation() {
        let (a, b) = (b"META".as_slice(), b"payload bytes".as_slice());
        let mut concat = a.to_vec();
        concat.extend_from_slice(b);
        assert_eq!(crc32_pair(a, b), crc32(&concat));
        assert_eq!(crc32_pair(b"", b""), crc32(b""));
    }

    #[test]
    fn concat_combine_matches_naive_concatenation() {
        // Regression pin: the streaming combine must equal hashing the
        // materialized concatenation, for every split point of a buffer
        // that spans several zero-byte-operator doublings.
        let data: Vec<u8> = (0..1021u32).map(|i| (i * 31 + 7) as u8).collect();
        let whole = crc32(&data);
        for split in [0, 1, 2, 7, 8, 63, 64, 255, 511, 1020, 1021] {
            let (a, b) = data.split_at(split);
            let combined = crc32_concat(crc32(a), crc32(b), b.len() as u64);
            assert_eq!(combined, whole, "split at {split}");
            // And it agrees with the two-buffer streaming digest.
            assert_eq!(combined, crc32_pair(a, b), "pair at {split}");
        }
        // Appending nothing is the identity.
        assert_eq!(crc32_concat(whole, crc32(b""), 0), whole);
        // Known vector, stitched: "123456789" = "1234" ++ "56789".
        assert_eq!(
            crc32_concat(crc32(b"1234"), crc32(b"56789"), 5),
            0xCBF4_3926
        );
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = b"anns store section payload".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut corrupt = base.clone();
                corrupt[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), reference, "flip at {byte}:{bit}");
            }
        }
    }
}
