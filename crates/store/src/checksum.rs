//! CRC-32 (IEEE 802.3) — hand-rolled, table-driven, no dependencies.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

fn update(mut crc: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// CRC-32 of `bytes` (IEEE: init `0xFFFF_FFFF`, final xor, reflected).
pub fn crc32(bytes: &[u8]) -> u32 {
    !update(0xFFFF_FFFF, bytes)
}

/// CRC-32 of the concatenation `a ++ b` without materializing it.
/// Sections checksum `tag ++ payload` this way, so a flipped tag byte is
/// caught by the same mechanism as payload damage.
pub fn crc32_pair(a: &[u8], b: &[u8]) -> u32 {
    !update(update(0xFFFF_FFFF, a), b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32/IEEE check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn pair_matches_concatenation() {
        let (a, b) = (b"META".as_slice(), b"payload bytes".as_slice());
        let mut concat = a.to_vec();
        concat.extend_from_slice(b);
        assert_eq!(crc32_pair(a, b), crc32(&concat));
        assert_eq!(crc32_pair(b"", b""), crc32(b""));
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = b"anns store section payload".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut corrupt = base.clone();
                corrupt[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), reference, "flip at {byte}:{bit}");
            }
        }
    }
}
