//! `anns-store` — the persistent index store's binary container format.
//!
//! The paper's schemes are static data structures: preprocessing is the
//! expensive half, after which a query needs only `k` bounded rounds of
//! reads. That build-once/serve-many split wants a durable artifact — an
//! instance built today must load tomorrow (or in a CI job) in
//! milliseconds and answer *byte-identically*. This crate defines the
//! container those artifacts live in; the entity codecs themselves sit
//! next to the types they persist (`anns_hamming::store`,
//! `anns_sketch::store`, `anns_core::store`, `anns_lsh::store`) and the
//! bundle assembly in `anns_engine::registry`.
//!
//! # Format
//!
//! Everything is little-endian. A store file is:
//!
//! ```text
//! magic      [u8; 4]   = b"ANNS"
//! version    u16       = 1 or 2
//! kind       u8        container kind: 0 = registry bundle,
//!                      1.. = single-scheme file of that scheme kind
//! reserved   u8        = 0
//! sections   u32       section count
//! v1 section*  tag [u8;4], len u32, crc32 u32, payload [u8; len]
//! v2 section*  tag [u8;4], len u32, crc32 u32, pad u32,
//!              zeros [u8; pad], payload [u8; len]
//! ```
//!
//! Version 2 (the current write format) zero-pads each section prelude
//! so every payload begins on a [`SECTION_ALIGN`]-byte file offset —
//! the property that lets payloads be memory-mapped in place
//! ([`MappedStore`]) and verified lazily at first touch instead of at
//! mount. Version 1 packs payloads back to back; both versions read
//! through the heap path, and the checksums cover `tag ++ payload`
//! identically (padding excluded), so manifests agree across versions.
//!
//! Each section's payload is covered by a CRC-32 (IEEE) checksum, so a
//! flipped bit anywhere in a payload surfaces as
//! [`StoreError::ChecksumMismatch`] rather than a silently different
//! index. Readers stream section by section ([`StoreReader`]) — no
//! intermediate JSON, no whole-file buffering beyond the section being
//! decoded. All decode failures are typed ([`StoreError`]): truncation,
//! foreign magic, version skew, checksum damage, unknown scheme kinds.
//! Writers may close a file with a [`manifest`] (`MNFT`) section pinning
//! the digest of every section before it; readers that see one
//! cross-check it, and readers that predate it skip it — the normative
//! rules (including unknown-section and forward-compatibility semantics)
//! live in `docs/STORE_FORMAT.md`.
//!
//! # Example
//!
//! Write a two-section container and stream it back, checksums verified:
//!
//! ```
//! use anns_store::{StoreReader, StoreWriter, KIND_BUNDLE};
//!
//! let mut writer = StoreWriter::new(KIND_BUNDLE);
//! writer.section(*b"META", b"hello".to_vec());
//! writer.section(*b"BODY", vec![1, 2, 3]);
//! let bytes = writer.to_bytes();
//!
//! let mut reader = StoreReader::new(&bytes[..])?;
//! assert_eq!(reader.header().kind, KIND_BUNDLE);
//! let sections = reader.sections()?;
//! assert_eq!(sections.len(), 2);
//! assert_eq!(sections[0].payload, b"hello");
//! # Ok::<(), anns_store::StoreError>(())
//! ```

mod checksum;
mod codec;
mod container;
mod error;
pub mod manifest;
pub mod mapped;
pub mod pool;

pub use checksum::{crc32, crc32_concat, crc32_pair};
pub use codec::{
    decode_capacity, encode_slice, ByteReader, ByteWriter, Codec, MAX_DECODE_PREALLOC_BYTES,
};
pub use container::{
    open_file, Section, SectionTag, StoreHeader, StoreReader, StoreWriter, HEADER_BYTES,
    SECTION_PRELUDE_V2_BYTES,
};
pub use error::{PayloadFault, StoreError};
pub use manifest::{scan, scan_file, Manifest, ManifestTracker, SectionDigest};
pub use mapped::{LazySection, MappedStore, PayloadSource};

/// The four magic bytes opening every store file.
pub const MAGIC: [u8; 4] = *b"ANNS";

/// The legacy (unaligned) format version: still read, no longer
/// written.
pub const FORMAT_VERSION: u16 = 1;

/// The current write format: sections padded so payloads are
/// [`SECTION_ALIGN`]-aligned and therefore mappable.
pub const FORMAT_VERSION_V2: u16 = 2;

/// File-offset alignment of every v2 section payload (and of every
/// entry inside a v2 [`pool`] section) — a cache line, so mapped
/// sketch rows never straddle an unaligned boundary.
pub const SECTION_ALIGN: usize = 64;

/// Container kind byte for a registry bundle (several named shards).
pub const KIND_BUNDLE: u8 = 0;

/// Scheme kind tags, shared by single-scheme headers and shard records.
///
/// Kinds `1..=15` are reserved for `anns-core` schemes; `16..` for
/// foreign (baseline) schemes whose payloads other crates own.
pub mod scheme_kind {
    /// Algorithm 1 at a fixed round budget.
    pub const ALG1: u8 = 1;
    /// Algorithm 2 under an `Alg2Config`.
    pub const ALG2: u8 = 2;
    /// The 1-probe λ-ANNS scheme.
    pub const LAMBDA: u8 = 3;
    /// Subsampled repetition over inner schemes (the adaptive-adversary
    /// defense; record carries the wrapper spec plus its inner records).
    pub const SUBSAMPLE: u8 = 4;
    /// First *foreign* kind: records at or above this tag carry a
    /// self-contained opaque payload owned by another crate; records
    /// below it are core specs referencing the bundle's index pool.
    /// Loaders branch on this constant, not a literal.
    pub const FOREIGN_MIN: u8 = 16;
    /// Bit-sampling LSH (payload owned by `anns-lsh`).
    pub const LSH: u8 = 16;
    /// Exact linear scan (payload owned by `anns-lsh`).
    pub const LINEAR: u8 = 17;

    /// Human-readable name of a scheme kind (for `annsctl inspect`).
    pub fn name(kind: u8) -> &'static str {
        match kind {
            ALG1 => "alg1",
            ALG2 => "alg2",
            LAMBDA => "lambda",
            SUBSAMPLE => "subsampled",
            LSH => "lsh",
            LINEAR => "linear",
            _ => "unknown",
        }
    }
}

/// Well-known section tags written by the workspace's encoders.
pub mod section_tag {
    /// Bundle metadata: tool string, index/shard counts, shard directory.
    pub const META: [u8; 4] = *b"META";
    /// Index pool: the deduplicated `AnnIndex` payloads.
    pub const INDEX_POOL: [u8; 4] = *b"IDXP";
    /// Shard list: named scheme records referencing the pool.
    pub const SHARDS: [u8; 4] = *b"SHRD";
    /// Trailing manifest: tool string plus the digest of every preceding
    /// section (see [`crate::manifest`]). Must be the final section.
    pub const MANIFEST: [u8; 4] = *b"MNFT";
}
