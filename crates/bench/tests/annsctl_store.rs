//! End-to-end exercise of the `annsctl` persistence surface: `save` →
//! `inspect` → `load` → `serve --from-store` → `bench-serve --from-store`
//! → `bench-gate`, driving the real binary the way CI does. This is the
//! acceptance check that a stored instance warm-starts the serving stack
//! and that the perf gate passes against an artifact produced by the
//! same build.

use std::path::PathBuf;
use std::process::{Command, Output};

fn annsctl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_annsctl"))
}

fn tmp_dir(label: &str) -> PathBuf {
    // Per-test directories: tests run in parallel and clean up after
    // themselves, so they must not share a tree.
    let dir = std::env::temp_dir().join(format!("annsctl-store-{label}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("spawn annsctl");
    assert!(
        out.status.success(),
        "{cmd:?} failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

#[test]
fn save_load_serve_gate_pipeline() {
    let dir = tmp_dir("pipeline");
    let store = dir.join("ci.anns");
    let store_s = store.to_str().unwrap();

    // save: tiny instance, every scheme family.
    let out = run_ok(annsctl().args([
        "save",
        "--n",
        "128",
        "--d",
        "128",
        "--seed",
        "5",
        "--scheme",
        "all,linear",
        "--out",
        store_s,
    ]));
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(stdout.contains("4 shard(s)"), "{stdout}");

    // inspect: header + checksummed sections + shard directory.
    let out = run_ok(annsctl().args(["inspect", "--store", store_s]));
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    for needle in [
        "format     : v1 bundle",
        "META",
        "IDXP",
        "SHRD",
        "alg1-k3",
        "linear-n128",
    ] {
        assert!(
            stdout.contains(needle),
            "inspect output missing {needle:?}:\n{stdout}"
        );
    }

    // load: summary + per-shard budget verification.
    let out = run_ok(annsctl().args(["load", "--store", store_s, "--verify-queries", "3"]));
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(stdout.contains("within budget = true"), "{stdout}");

    // serve --from-store: exits 0 with the audit passing.
    let out = run_ok(annsctl().args([
        "serve",
        "--from-store",
        store_s,
        "--requests",
        "32",
        "--batch",
        "8",
        "--threads",
        "2",
    ]));
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(stderr.contains("round-integrity audit passed"), "{stderr}");
    assert!(stderr.contains("warm start"), "{stderr}");

    // bench-serve --from-store twice (quick mode), then gate one run
    // against the other: identical workloads must pass the gate.
    let bench_a = dir.join("bench_a.json");
    let bench_b = dir.join("bench_b.json");
    for out_path in [&bench_a, &bench_b] {
        run_ok(
            annsctl()
                .args([
                    "bench-serve",
                    "--from-store",
                    store_s,
                    "--threads",
                    "2",
                    "--out",
                    out_path.to_str().unwrap(),
                ])
                .env("ANNS_QUICK", "1"),
        );
    }
    let out = run_ok(annsctl().args([
        "bench-gate",
        "--current",
        bench_b.to_str().unwrap(),
        "--reference",
        bench_a.to_str().unwrap(),
    ]));
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(stdout.contains("bench-gate: pass"), "{stdout}");

    // Gate regression path: demand an impossible coalescing improvement
    // by doctoring the reference ratios far below anything achievable.
    let doctored = dir.join("doctored.json");
    let json = std::fs::read_to_string(&bench_a).unwrap();
    let tightened = json.replace("\"coalescing_ratio\":1.0", "\"coalescing_ratio\":1e-6");
    assert_ne!(
        json, tightened,
        "expected a 1.0 coalescing ratio to tighten"
    );
    std::fs::write(&doctored, tightened).unwrap();
    let out = annsctl()
        .args([
            "bench-gate",
            "--current",
            bench_b.to_str().unwrap(),
            "--reference",
            doctored.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "doctored gate must fail");
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(stdout.contains("REGRESSION"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mount_and_hot_swap_pipeline() {
    let dir = tmp_dir("mount");
    let a = dir.join("a.anns");
    let b = dir.join("b.anns");
    // Same shard names, different seeds: a plausible "next build" pair.
    for (path, seed) in [(&a, "5"), (&b, "6")] {
        run_ok(annsctl().args([
            "save",
            "--n",
            "128",
            "--d",
            "128",
            "--seed",
            seed,
            "--scheme",
            "alg1,lambda",
            "--out",
            path.to_str().unwrap(),
        ]));
    }
    let mounts = format!("t0={},t1={}", a.display(), b.display());

    // mount: namespaced shards, manifests, per-shard verification.
    let out = run_ok(annsctl().args(["mount", "--mounts", &mounts, "--verify-queries", "2"]));
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    for needle in [
        "mounted 2 bundle(s), 4 shard(s)",
        "t0/alg1-k3",
        "t1/alg1-k3",
        "manifest verified",
        "within budget = true",
    ] {
        assert!(
            stdout.contains(needle),
            "mount output missing {needle:?}:\n{stdout}"
        );
    }

    // serve --mounts: the multi-bundle registry serves with the audit on.
    let out = run_ok(annsctl().args([
        "serve",
        "--mounts",
        &mounts,
        "--requests",
        "32",
        "--batch",
        "8",
        "--threads",
        "2",
    ]));
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(stderr.contains("round-integrity audit passed"), "{stderr}");

    // swap during active serving: zero failed queries, old mount retired
    // (the command itself exits nonzero otherwise — this is the
    // acceptance gate).
    let out = run_ok(annsctl().args([
        "swap",
        "--mounts",
        &mounts,
        "--swap",
        &format!("t0={}", b.display()),
        "--requests",
        "96",
        "--batch",
        "8",
    ]));
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(stdout.contains("0 failed"), "{stdout}");
    assert!(stdout.contains("old mount retired = true"), "{stdout}");

    // swap of an unmounted namespace fails loudly.
    let out = annsctl()
        .args([
            "swap",
            "--mounts",
            &mounts,
            "--swap",
            &format!("nope={}", b.display()),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "swap of unmounted ns must fail");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_store_fails_with_typed_error_and_nonzero_exit() {
    let dir = tmp_dir("corrupt");
    let store = dir.join("corrupt.anns");
    let store_s = store.to_str().unwrap();
    run_ok(annsctl().args([
        "save", "--n", "64", "--d", "64", "--seed", "2", "--scheme", "alg1", "--out", store_s,
    ]));
    let mut bytes = std::fs::read(&store).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x08;
    std::fs::write(&store, &bytes).unwrap();
    for subcmd in ["load", "inspect"] {
        let out = annsctl()
            .args([subcmd, "--store", store_s])
            .output()
            .unwrap();
        assert!(!out.status.success(), "{subcmd} must fail on corruption");
        let err = String::from_utf8_lossy(&out.stderr).to_string();
        assert!(
            err.contains("checksum mismatch") || err.contains("truncated"),
            "{subcmd} stderr lacks a typed message: {err}"
        );
    }
    let out = annsctl()
        .args(["serve", "--from-store", store_s, "--requests", "8"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "serve must refuse a damaged store");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn version_skew_is_reported_as_such() {
    let dir = tmp_dir("skew");
    let store = dir.join("skew.anns");
    let store_s = store.to_str().unwrap();
    run_ok(annsctl().args([
        "save", "--n", "64", "--d", "64", "--seed", "2", "--scheme", "lambda", "--out", store_s,
    ]));
    let mut bytes = std::fs::read(&store).unwrap();
    bytes[4] = 9; // format version low byte
    std::fs::write(&store, &bytes).unwrap();
    let out = annsctl()
        .args(["load", "--store", store_s])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(err.contains("version 9"), "stderr: {err}");
    std::fs::remove_dir_all(&dir).ok();
}
