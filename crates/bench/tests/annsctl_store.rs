//! End-to-end exercise of the `annsctl` persistence surface: `save` →
//! `inspect` → `load` → `serve --from-store` → `bench-serve --from-store`
//! → `bench-gate`, driving the real binary the way CI does. This is the
//! acceptance check that a stored instance warm-starts the serving stack
//! and that the perf gate passes against an artifact produced by the
//! same build.

use std::process::{Command, Output};

use anns_engine::testkit::TempDir;

fn annsctl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_annsctl"))
}

/// Per-test scratch directories: tests run in parallel and must not
/// share a tree; the testkit guard removes them on drop (pass or fail).
fn tmp_dir(label: &str) -> TempDir {
    TempDir::new(&format!("annsctl-store-{label}"))
}

fn run_ok(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("spawn annsctl");
    assert!(
        out.status.success(),
        "{cmd:?} failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

#[test]
fn save_load_serve_gate_pipeline() {
    let dir = tmp_dir("pipeline");
    let store = dir.file("ci.anns");
    let store_s = store.to_str().unwrap();

    // save: tiny instance, every scheme family.
    let out = run_ok(annsctl().args([
        "save",
        "--n",
        "128",
        "--d",
        "128",
        "--seed",
        "5",
        "--scheme",
        "all,linear",
        "--out",
        store_s,
    ]));
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(stdout.contains("4 shard(s)"), "{stdout}");

    // inspect: header + checksummed sections + shard directory.
    let out = run_ok(annsctl().args(["inspect", "--store", store_s]));
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    for needle in [
        "format     : v2 bundle",
        "META",
        "IDXP",
        "SHRD",
        "alg1-k3",
        "linear-n128",
    ] {
        assert!(
            stdout.contains(needle),
            "inspect output missing {needle:?}:\n{stdout}"
        );
    }

    // load: summary + per-shard budget verification, on both backends.
    let out = run_ok(annsctl().args(["load", "--store", store_s, "--verify-queries", "3"]));
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(stdout.contains("within budget = true"), "{stdout}");

    let out = run_ok(annsctl().args([
        "load",
        "--store",
        store_s,
        "--store-backend",
        "mmap",
        "--verify-queries",
        "3",
    ]));
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(stdout.contains("within budget = true"), "{stdout}");
    assert!(stdout.contains("mmap backend"), "{stdout}");

    // serve --from-store: exits 0 with the audit passing.
    let out = run_ok(annsctl().args([
        "serve",
        "--from-store",
        store_s,
        "--requests",
        "32",
        "--batch",
        "8",
        "--threads",
        "2",
    ]));
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(stderr.contains("round-integrity audit passed"), "{stderr}");
    assert!(stderr.contains("warm start"), "{stderr}");

    // bench-serve --from-store twice (quick mode), then gate one run
    // against the other: identical workloads must pass the gate.
    let bench_a = dir.file("bench_a.json");
    let bench_b = dir.file("bench_b.json");
    for out_path in [&bench_a, &bench_b] {
        run_ok(
            annsctl()
                .args([
                    "bench-serve",
                    "--from-store",
                    store_s,
                    "--threads",
                    "2",
                    "--out",
                    out_path.to_str().unwrap(),
                ])
                .env("ANNS_QUICK", "1"),
        );
    }
    let out = run_ok(annsctl().args([
        "bench-gate",
        "--current",
        bench_b.to_str().unwrap(),
        "--reference",
        bench_a.to_str().unwrap(),
    ]));
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(stdout.contains("bench-gate: pass"), "{stdout}");

    // Gate regression path: demand an impossible coalescing improvement
    // by doctoring the reference ratios far below anything achievable.
    let doctored = dir.file("doctored.json");
    let json = std::fs::read_to_string(&bench_a).unwrap();
    let tightened = json.replace("\"coalescing_ratio\":1.0", "\"coalescing_ratio\":1e-6");
    assert_ne!(
        json, tightened,
        "expected a 1.0 coalescing ratio to tighten"
    );
    std::fs::write(&doctored, tightened).unwrap();
    let out = annsctl()
        .args([
            "bench-gate",
            "--current",
            bench_b.to_str().unwrap(),
            "--reference",
            doctored.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "doctored gate must fail");
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(stdout.contains("REGRESSION"), "{stdout}");
}

#[test]
fn mount_and_hot_swap_pipeline() {
    let dir = tmp_dir("mount");
    let a = dir.file("a.anns");
    let b = dir.file("b.anns");
    // Same shard names, different seeds: a plausible "next build" pair.
    for (path, seed) in [(&a, "5"), (&b, "6")] {
        run_ok(annsctl().args([
            "save",
            "--n",
            "128",
            "--d",
            "128",
            "--seed",
            seed,
            "--scheme",
            "alg1,lambda",
            "--out",
            path.to_str().unwrap(),
        ]));
    }
    let mounts = format!("t0={},t1={}", a.display(), b.display());

    // mount: namespaced shards, manifests, per-shard verification.
    let out = run_ok(annsctl().args(["mount", "--mounts", &mounts, "--verify-queries", "2"]));
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    for needle in [
        "mounted 2 bundle(s), 4 shard(s)",
        "t0/alg1-k3",
        "t1/alg1-k3",
        "manifest verified",
        "within budget = true",
    ] {
        assert!(
            stdout.contains(needle),
            "mount output missing {needle:?}:\n{stdout}"
        );
    }

    // serve --mounts: the multi-bundle registry serves with the audit on.
    let out = run_ok(annsctl().args([
        "serve",
        "--mounts",
        &mounts,
        "--requests",
        "32",
        "--batch",
        "8",
        "--threads",
        "2",
    ]));
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(stderr.contains("round-integrity audit passed"), "{stderr}");

    // swap during active serving: zero failed queries, old mount retired
    // (the command itself exits nonzero otherwise — this is the
    // acceptance gate).
    let out = run_ok(annsctl().args([
        "swap",
        "--mounts",
        &mounts,
        "--swap",
        &format!("t0={}", b.display()),
        "--requests",
        "96",
        "--batch",
        "8",
    ]));
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(stdout.contains("0 failed"), "{stdout}");
    assert!(stdout.contains("old mount retired = true"), "{stdout}");

    // swap of an unmounted namespace fails loudly.
    let out = annsctl()
        .args([
            "swap",
            "--mounts",
            &mounts,
            "--swap",
            &format!("nope={}", b.display()),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "swap of unmounted ns must fail");
}

#[test]
fn corrupted_store_fails_with_typed_error_and_nonzero_exit() {
    let dir = tmp_dir("corrupt");
    let store = dir.file("corrupt.anns");
    let store_s = store.to_str().unwrap();
    run_ok(annsctl().args([
        "save", "--n", "64", "--d", "64", "--seed", "2", "--scheme", "alg1", "--out", store_s,
    ]));
    let mut bytes = std::fs::read(&store).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x08;
    std::fs::write(&store, &bytes).unwrap();
    for subcmd in ["load", "inspect"] {
        let out = annsctl()
            .args([subcmd, "--store", store_s])
            .output()
            .unwrap();
        assert!(!out.status.success(), "{subcmd} must fail on corruption");
        let err = String::from_utf8_lossy(&out.stderr).to_string();
        assert!(
            err.contains("checksum mismatch") || err.contains("truncated"),
            "{subcmd} stderr lacks a typed message: {err}"
        );
    }
    let out = annsctl()
        .args(["serve", "--from-store", store_s, "--requests", "8"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "serve must refuse a damaged store");
}

#[test]
fn version_skew_is_reported_as_such() {
    let dir = tmp_dir("skew");
    let store = dir.file("skew.anns");
    let store_s = store.to_str().unwrap();
    run_ok(annsctl().args([
        "save", "--n", "64", "--d", "64", "--seed", "2", "--scheme", "lambda", "--out", store_s,
    ]));
    let mut bytes = std::fs::read(&store).unwrap();
    bytes[4] = 9; // format version low byte
    std::fs::write(&store, &bytes).unwrap();
    let out = annsctl()
        .args(["load", "--store", store_s])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(err.contains("version 9"), "stderr: {err}");
}

#[test]
fn online_serve_smoke_exits_clean_with_zero_shed() {
    let dir = tmp_dir("online");
    let store = dir.file("online.anns");
    let store_s = store.to_str().unwrap();
    run_ok(annsctl().args([
        "save", "--n", "128", "--d", "128", "--seed", "7", "--scheme", "alg1", "--out", store_s,
    ]));

    // Open-loop arrivals (--rate 0): the queue saturates and windows
    // fill-seal; capacity defaults to the request count, so a clean run
    // must shed nothing. The command exits nonzero on any shed arrival,
    // failed query, or budget violation — that exit code *is* the CI
    // smoke assertion.
    let out = run_ok(annsctl().args([
        "serve",
        "--online",
        "1",
        "--from-store",
        store_s,
        "--requests",
        "48",
        "--window",
        "8",
        "--rate",
        "0",
        "--threads",
        "2",
    ]));
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(stdout.contains("\"shed\":0"), "{stdout}");
    assert!(stdout.contains("\"failed\":0"), "{stdout}");
    assert!(stdout.contains("\"budget_violations\":0"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(stderr.contains("48 ok, 0 failed, 0 shed"), "{stderr}");

    // A capacity of 1 under open-loop arrivals must shed — and that is a
    // nonzero exit with the typed overload message on stderr, not a
    // panic.
    let out = annsctl()
        .args([
            "serve",
            "--online",
            "1",
            "--from-store",
            store_s,
            "--requests",
            "48",
            "--window",
            "8",
            "--rate",
            "0",
            "--queue-cap",
            "1",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "shedding run must exit nonzero");
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(stderr.contains("overloaded"), "{stderr}");
}
