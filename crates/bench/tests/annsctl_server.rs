//! End-to-end exercise of the `annsctl` network-serving surface:
//! `server` as a real child process on an ephemeral loopback port,
//! `client` against it (happy path, throttle, unknown shard, shutdown
//! — each with its distinct exit code), `bench-server` recording the
//! multi-tenant workload, `bench-gate --server-*` passing against its
//! own artifact and failing against a doctored one, and
//! `trace inspect --server-report` reconciling per-tenant trace events
//! with the drain report's accounting. This drives the binaries the
//! way the CI `server-gate` job does.

use std::io::Read;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

use anns_bench::server_bench::BenchServerReport;
use anns_engine::testkit::TempDir;
use anns_server::ServerReport;

fn annsctl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_annsctl"))
}

fn tmp_dir(label: &str) -> TempDir {
    TempDir::new(&format!("annsctl-server-{label}"))
}

fn run_ok(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("spawn annsctl");
    assert!(
        out.status.success(),
        "{cmd:?} failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// Spawns `annsctl server` on an ephemeral port and waits for the
/// address file — the same readiness handshake the CI job uses.
fn spawn_server(args: &[&str], addr_file: &std::path::Path) -> (Child, String) {
    let child = annsctl()
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn annsctl server");
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(addr) = std::fs::read_to_string(addr_file) {
            let addr = addr.trim().to_string();
            if !addr.is_empty() {
                break addr;
            }
        }
        assert!(
            Instant::now() < deadline,
            "server never wrote its address file"
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    (child, addr)
}

/// Joins the server child after a `client --shutdown`, asserting a
/// clean exit and returning its captured stderr for inspection.
fn join_server(mut child: Child) -> String {
    let status = child.wait().expect("server child joins");
    let mut stderr = String::new();
    if let Some(mut pipe) = child.stderr.take() {
        pipe.read_to_string(&mut stderr)
            .expect("read server stderr");
    }
    assert!(status.success(), "server exited nonzero\nstderr: {stderr}");
    stderr
}

#[test]
fn server_client_exit_codes_and_trace_reconcile() {
    let dir = tmp_dir("codes");
    let addr_file = dir.file("addr.txt");
    let report = dir.file("server.json");
    let trace = dir.file("trace.jsonl");
    let (report_s, trace_s) = (report.to_str().unwrap(), trace.to_str().unwrap());

    // "miser" gets one token, ever — the deterministic throttle path.
    let (child, addr) = spawn_server(
        &[
            "server",
            "--listen",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().unwrap(),
            "--out",
            report_s,
            "--trace-out",
            trace_s,
            "--n",
            "128",
            "--d",
            "64",
            "--scheme",
            "alg1",
            "--tenants",
            "miser:0:1",
            "--adapt",
            "0",
        ],
        &addr_file,
    );

    // Happy path: exit 0, one row per served query.
    let out = run_ok(annsctl().args([
        "client", "--addr", &addr, "--tenant", "acme", "--count", "3", "--seed", "7",
    ]));
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert_eq!(
        stdout.lines().filter(|l| l.contains("ticket")).count(),
        3,
        "one row per query:\n{stdout}"
    );

    // Throttle path: miser's first query spends the only token, the
    // second is refused typed — distinct exit code 5.
    let out = annsctl()
        .args([
            "client", "--addr", &addr, "--tenant", "miser", "--count", "2",
        ])
        .output()
        .expect("spawn client");
    assert_eq!(
        out.status.code(),
        Some(5),
        "throttled exit code\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Unknown shard: admitted, fails after the ticket — "other server
    // error", exit 7.
    let out = annsctl()
        .args(["client", "--addr", &addr, "--shard", "no-such-shard"])
        .output()
        .expect("spawn client");
    assert_eq!(
        out.status.code(),
        Some(7),
        "unknown-shard exit code\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Drain: one more served query, then shutdown — exit 0.
    let out = run_ok(annsctl().args(["client", "--addr", &addr, "--shutdown", "1"]));
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        stdout.contains("shutdown: server drained"),
        "shutdown ack:\n{stdout}"
    );

    let stderr = join_server(child);
    assert!(
        stderr.contains("max_wait settled at"),
        "drain summary:\n{stderr}"
    );

    // The drain report reconciles with what the clients did.
    let json = std::fs::read_to_string(&report).expect("report written");
    let report: ServerReport = serde_json::from_str(&json).expect("report parses");
    let acme = report.tenant("acme").unwrap_or_else(|| panic!("{json}"));
    assert_eq!(acme.enqueued, 3, "{json}");
    assert_eq!(acme.served, 3, "{json}");
    // "default" carried the unknown-shard probe (admitted, failed
    // typed) and the pre-shutdown query (served).
    let default = report.tenant("default").unwrap_or_else(|| panic!("{json}"));
    assert_eq!(default.enqueued, 2, "{json}");
    assert_eq!(default.served, 1, "{json}");
    assert_eq!(default.failed, 1, "{json}");
    let miser = report.tenant("miser").unwrap_or_else(|| panic!("{json}"));
    assert_eq!(miser.enqueued, 1, "{json}");
    assert_eq!(miser.throttled, 1, "{json}");

    // Satellite 5: per-tenant trace event counts reconcile exactly
    // with the report's usage accounting.
    let out = run_ok(annsctl().args([
        "trace",
        "inspect",
        "--trace",
        trace_s,
        "--server-report",
        report_s,
    ]));
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        stdout.contains("tenant decisions reconcile exactly"),
        "reconciliation verdict:\n{stdout}"
    );
    assert!(stdout.contains("tenant_decision"), "event table:\n{stdout}");
}

#[test]
fn connection_cap_refusal_is_exit_code_overloaded() {
    let dir = tmp_dir("cap");
    let addr_file = dir.file("addr.txt");

    let (child, addr) = spawn_server(
        &[
            "server",
            "--listen",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().unwrap(),
            "--n",
            "128",
            "--d",
            "64",
            "--scheme",
            "alg1",
            "--max-conns",
            "1",
        ],
        &addr_file,
    );

    // A raw TCP connection occupies the only slot — the cap counts
    // accepted sockets, not completed handshakes.
    let hog = std::net::TcpStream::connect(&addr).expect("hog connects");

    // The real client binary is refused typed: exit code 3, the
    // scriptable Overloaded verdict.
    let out = annsctl()
        .args(["client", "--addr", &addr, "--tenant", "acme"])
        .output()
        .expect("spawn client");
    assert_eq!(
        out.status.code(),
        Some(3),
        "overloaded exit code\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("connection limit"),
        "typed message reaches the client\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Freeing the slot re-admits; the release is asynchronous, so
    // retry until the server notices the hangup.
    drop(hog);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let out = annsctl()
            .args(["client", "--addr", &addr, "--tenant", "acme"])
            .output()
            .expect("spawn client");
        if out.status.success() {
            break;
        }
        assert_eq!(out.status.code(), Some(3), "only overload retries");
        assert!(Instant::now() < deadline, "slot never freed");
        std::thread::sleep(Duration::from_millis(25));
    }

    run_ok(annsctl().args(["client", "--addr", &addr, "--shutdown", "1"]));
    join_server(child);
}

#[test]
fn bench_server_and_gate_pipeline() {
    let dir = tmp_dir("gate");
    let addr_file = dir.file("addr.txt");
    let bench = dir.file("BENCH_server.json");
    let bench_s = bench.to_str().unwrap();

    // The CI shape: one hot tenant whose bucket never refills (burst 8,
    // rate 0 — refusals are count-exact, not timing-dependent) and two
    // compliant tenants whose offered load fits inside their burst.
    let (child, addr) = spawn_server(
        &[
            "server",
            "--listen",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().unwrap(),
            "--n",
            "128",
            "--d",
            "64",
            "--scheme",
            "alg1",
            "--tenants",
            "hot:0:8,tenant-a:1000:64,tenant-b:1000:64",
            "--queue-cap",
            "256",
        ],
        &addr_file,
    );

    let out = run_ok(
        annsctl()
            .args(["bench-server", "--addr", &addr, "--out", bench_s])
            .env("ANNS_QUICK", "1"),
    );
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(stdout.contains(" hot |"), "tenant table:\n{stdout}");

    run_ok(annsctl().args(["client", "--addr", &addr, "--shutdown", "1"]));
    join_server(child);

    // Quick mode offers hot 40 against burst 8: exactly 32 throttles,
    // and the compliant tenants are served in full — deterministically.
    let json = std::fs::read_to_string(&bench).expect("bench artifact");
    let artifact: BenchServerReport = serde_json::from_str(&json).expect("artifact parses");
    let tenant = |name: &str| {
        artifact
            .tenant(name)
            .unwrap_or_else(|| panic!("no {name} row in {json}"))
    };
    assert_eq!(tenant("hot").throttled, 32, "{json}");
    assert_eq!(tenant("hot").served, 8, "{json}");
    assert_eq!(tenant("tenant-a").served, 12, "{json}");
    assert_eq!(tenant("tenant-a").throttled, 0, "{json}");
    assert_eq!(tenant("tenant-b").served, 12, "{json}");

    // The artifact gates cleanly against itself…
    let out = run_ok(annsctl().args([
        "bench-gate",
        "--server-current",
        bench_s,
        "--server-reference",
        bench_s,
    ]));
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        stdout.contains("server_hot_throttled_min"),
        "gate rows:\n{stdout}"
    );
    assert!(!stdout.contains("FAIL"), "self-gate must pass:\n{stdout}");

    // …and a doctored current where a compliant tenant was refused
    // once fails the gate outright, exit 1 — the satellite contract.
    let mut doctored = artifact.clone();
    let row = doctored
        .tenants
        .iter_mut()
        .find(|t| t.tenant == "tenant-a")
        .unwrap();
    row.throttled = 1;
    row.served = 11;
    let doctored_path = dir.file("doctored.json");
    std::fs::write(&doctored_path, serde_json::to_string(&doctored).unwrap()).unwrap();
    let out = annsctl()
        .args([
            "bench-gate",
            "--server-current",
            doctored_path.to_str().unwrap(),
            "--server-reference",
            bench_s,
        ])
        .output()
        .expect("spawn bench-gate");
    assert_eq!(out.status.code(), Some(1), "regression must gate");
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        stdout.contains("FAIL: compliant tenant tenant-a was throttled"),
        "named failure:\n{stdout}"
    );
}
