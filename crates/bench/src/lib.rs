//! Shared harness utilities for the experiment binaries (E1–E10).
//!
//! Every binary regenerates one theorem-derived table/figure (see
//! `DESIGN.md` §4) and prints it as a markdown table with the theory
//! prediction next to the measurement; `EXPERIMENTS.md` records the
//! outputs. This crate holds the shared glue: markdown rendering, small
//! statistics, worst-case aggregation over query grids, and the
//! environment-variable quick mode.
//!
//! # Example
//!
//! ```
//! use anns_bench::MarkdownTable;
//!
//! let mut table = MarkdownTable::new(&["k", "probes"]);
//! table.row(vec!["2".into(), "14".into()]);
//! let rendered = table.render();
//! assert!(rendered.contains("probes"));
//! assert!(rendered.lines().count() >= 3, "header, rule, row");
//! ```

use anns_cellprobe::ProbeLedger;

pub mod server_bench;

/// The shared hot-set workload generator, re-exported from
/// `anns_engine::testkit` so the engine's equivalence tests, `annsctl
/// serve`/`bench-serve`, and the criterion benches all draw the *same*
/// traffic shape from the same seed.
pub use anns_engine::testkit::hot_set_workload;

/// A printable markdown table.
pub struct MarkdownTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl MarkdownTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        MarkdownTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table as GitHub-flavored markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths.iter()) {
                line.push_str(&format!(" {cell:>w$} |", w = w));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Arithmetic mean; 0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Maximum; 0 for empty input.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().cloned().fold(0.0, f64::max)
}

/// Worst-case ledger over a set of runs: element-wise per-round maxima.
/// Upper-bounds every run's round widths, but **over-counts totals** when
/// runs finish at different round indices — use [`worst_totals`] for the
/// worst-case probe/round totals the paper's bounds describe.
pub fn worst_ledger(ledgers: &[ProbeLedger]) -> ProbeLedger {
    ledgers
        .iter()
        .fold(ProbeLedger::default(), |acc, l| acc.worst_case(l))
}

/// Worst-case totals over a set of runs: `(max total probes, max rounds,
/// max single-round width)`.
pub fn worst_totals(ledgers: &[ProbeLedger]) -> (usize, usize, usize) {
    let probes = ledgers
        .iter()
        .map(ProbeLedger::total_probes)
        .max()
        .unwrap_or(0);
    let rounds = ledgers.iter().map(ProbeLedger::rounds).max().unwrap_or(0);
    let width = ledgers
        .iter()
        .map(ProbeLedger::max_round_probes)
        .max()
        .unwrap_or(0);
    (probes, rounds, width)
}

/// Quick mode: set `ANNS_QUICK=1` to shrink experiment grids (used by the
/// smoke tests and by `cargo bench` pre-flight).
pub fn quick_mode() -> bool {
    std::env::var("ANNS_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Scales a trial count down in quick mode.
pub fn trials(full: usize) -> usize {
    if quick_mode() {
        (full / 8).max(2)
    } else {
        full
    }
}

/// Prints the standard experiment header.
pub fn experiment_header(id: &str, reproduces: &str) {
    println!("# {id} — {reproduces}");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering_aligns_columns() {
        let mut t = MarkdownTable::new(&["k", "probes"]);
        t.row(vec!["1".into(), "1234".into()]);
        t.row(vec!["12".into(), "5".into()]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("| k |") || lines[0].contains("|  k |"));
        assert!(lines[1].starts_with("|-") || lines[1].starts_with("| -"));
        // All lines same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic]
    fn row_width_is_enforced() {
        let mut t = MarkdownTable::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(max(&[1.0, 5.0, 3.0]), 5.0);
    }

    #[test]
    fn worst_ledger_is_elementwise_max() {
        let a = ProbeLedger {
            per_round: vec![2, 3],
            ..ProbeLedger::default()
        };
        let b = ProbeLedger {
            per_round: vec![4],
            ..ProbeLedger::default()
        };
        let w = worst_ledger(&[a.clone(), b.clone()]);
        assert_eq!(w.per_round, vec![4, 3]);
        // Totals must come from worst_totals, not the element-wise max
        // (which would report 7 > max(5, 4)).
        let (probes, rounds, width) = worst_totals(&[a, b]);
        assert_eq!(probes, 5);
        assert_eq!(rounds, 2);
        assert_eq!(width, 4);
    }

    #[test]
    fn trials_scale_in_quick_mode() {
        // Can't mutate the environment safely in parallel tests; just check
        // the arithmetic of both branches.
        assert!(trials(64) == 64 || trials(64) == 8);
    }
}
