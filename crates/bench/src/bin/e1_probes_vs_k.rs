//! **E1 — Theorem 2:** Algorithm 1's total probes vs the round budget `k`.
//!
//! The theorem claims `O(k·(log d)^{1/k})` probes in `k` rounds. The
//! experiment measures the worst case over a grid of planted scales, for
//! synthetic instances at several (huge) dimensions, and prints the theory
//! curve next to the measurement; a concrete instance cross-checks the
//! shape at storable scale. Ablation A2 (`--sweep-tau`-style) is included
//! as a second table: forcing non-optimal grid widths shows the chosen τ is
//! the right one.

use anns_bench::{experiment_header, trials, worst_totals, MarkdownTable};
use anns_cellprobe::execute;
use anns_core::{
    choose_tau_alg1, Alg1Scheme, AnnIndex, BuildOptions, SyntheticInstance, SyntheticProfile,
};
use anns_hamming::gen;
use anns_sketch::SketchParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn worst_probes_synthetic(top: u32, k: u32, tau_override: Option<u32>) -> (usize, usize) {
    // Worst case over a grid of planted scales.
    let grid: Vec<u32> = (0..16).map(|i| 2 + i * (top - 2) / 15).collect();
    let mut ledgers = Vec::new();
    for &i0 in &grid {
        let inst = SyntheticInstance::new(SyntheticProfile::point_mass(top, i0, 40.0), 2.0);
        let scheme = Alg1Scheme {
            instance: &inst,
            k,
            tau_override,
        };
        let (outcome, ledger) = execute(&scheme, &());
        assert_eq!(outcome.scale(), Some(i0), "k={k}, i0={i0}");
        ledgers.push(ledger);
    }
    let (probes, rounds, _) = worst_totals(&ledgers);
    (probes, rounds)
}

fn main() {
    experiment_header(
        "E1",
        "Theorem 2: Algorithm 1 uses O(k·(log d)^{1/k}) probes in k rounds",
    );

    // --- Synthetic sweep at four dimensions (α = √2 ⇒ top = 2·log₂ d). ---
    for log2_d in [64u32, 256, 1024, 4096] {
        let top = 2 * log2_d;
        println!("## log₂ d = {log2_d} (synthetic, top = {top})\n");
        let mut table = MarkdownTable::new(&[
            "k",
            "τ",
            "probes (worst)",
            "rounds",
            "theory k·(log d)^{1/k}",
            "probes/theory",
        ]);
        for k in 1..=12u32 {
            let tau = choose_tau_alg1(top, k);
            let (probes, rounds) = worst_probes_synthetic(top, k, None);
            let theory = f64::from(k) * f64::from(log2_d).powf(1.0 / f64::from(k));
            table.row(vec![
                k.to_string(),
                tau.to_string(),
                probes.to_string(),
                rounds.to_string(),
                format!("{theory:.1}"),
                format!("{:.2}", probes as f64 / theory),
            ]);
        }
        table.print();
        println!();
    }

    // --- Ablation A2: τ sensitivity at one dimension. ---
    println!("## A2 — τ sensitivity (log₂ d = 1024, k = 4)\n");
    let top = 2048u32;
    let k = 4u32;
    let tau_star = choose_tau_alg1(top, k);
    let mut table = MarkdownTable::new(&["τ", "probes (worst)", "rounds (worst)", "note"]);
    for tau in [2u32, tau_star / 2, tau_star, tau_star * 2, tau_star * 4] {
        if tau < 2 {
            continue;
        }
        let (probes, rounds) = worst_probes_synthetic(top, k, Some(tau));
        let note = if tau == tau_star { "chosen τ" } else { "" };
        table.row(vec![
            tau.to_string(),
            probes.to_string(),
            rounds.to_string(),
            note.to_string(),
        ]);
    }
    table.print();
    println!("\n(small τ blows past the round budget; large τ wastes probes —");
    println!("the paper's τ balances the two)\n");

    // --- Concrete cross-check. ---
    println!("## concrete cross-check (n = 4096, d = 512, planted dist 8)\n");
    let mut rng = StdRng::seed_from_u64(99);
    let planted = gen::planted(4096, 512, 8, &mut rng);
    let index = AnnIndex::build(
        planted.dataset,
        SketchParams::practical(2.0, 99),
        BuildOptions::default(),
    );
    let reps = trials(8);
    let mut table = MarkdownTable::new(&["k", "probes", "rounds", "found", "theory shape"]);
    for k in 1..=6u32 {
        let mut ledgers = Vec::new();
        let mut ok = 0usize;
        for _ in 0..reps {
            let (outcome, ledger) = index.query(&planted.query, k);
            if index.verify_gamma(&planted.query, &outcome) {
                ok += 1;
            }
            ledgers.push(ledger);
        }
        let (probes, rounds, _) = worst_totals(&ledgers);
        let theory = f64::from(k) * 9.0f64.powf(1.0 / f64::from(k)); // log₂ 512 = 9
        table.row(vec![
            k.to_string(),
            probes.to_string(),
            rounds.to_string(),
            format!("{ok}/{reps}"),
            format!("{theory:.1}"),
        ]);
    }
    table.print();
    println!("\nE1 complete.");
}
