//! **E6 — end-to-end correctness:** success probability and approximation
//! quality of the full scheme, across γ, with repetition boosting.
//!
//! The paper promises: a correct (γ-approximate) answer with probability
//! ≥ 2/3 (boostable to any constant by parallel repetition without extra
//! rounds, §2). The experiment measures, per γ and workload: the rate at
//! which the returned point is γ-approximate, the observed approximation
//! ratios, and the boosted rate from best-of-3 independent copies.

use anns_bench::{experiment_header, max, mean, trials, MarkdownTable};
use anns_core::{AnnIndex, BuildOptions};
use anns_hamming::{gen, Dataset, Point};
use anns_sketch::SketchParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 1024;
const D: u32 = 512;
const K: u32 = 3;

struct Row {
    success: f64,
    boosted: f64,
    mean_ratio: f64,
    max_ratio: f64,
}

fn measure(gamma: f64, dataset: &Dataset, queries: &[Point], seed: u64) -> Row {
    let copies: Vec<AnnIndex> = (0..3)
        .map(|c| {
            AnnIndex::build(
                dataset.clone(),
                SketchParams::practical(gamma, seed + c),
                BuildOptions::default(),
            )
        })
        .collect();
    let mut single_ok = 0usize;
    let mut boosted_ok = 0usize;
    let mut ratios = Vec::new();
    for q in queries {
        let opt = dataset.exact_nn(q).distance.max(1) as f64;
        let mut best: Option<f64> = None;
        for (c, index) in copies.iter().enumerate() {
            let (outcome, _) = index.query(q, K);
            let dist = index
                .outcome_point(&outcome)
                .map(|p| f64::from(q.distance(p)));
            if c == 0 {
                if let Some(dist) = dist {
                    let ratio = dist / opt;
                    ratios.push(ratio);
                    if dist <= gamma * dataset.exact_nn(q).distance as f64 {
                        single_ok += 1;
                    }
                }
            }
            if let Some(dist) = dist {
                best = Some(best.map_or(dist, |b: f64| b.min(dist)));
            }
        }
        if let Some(best) = best {
            if best <= gamma * dataset.exact_nn(q).distance as f64 {
                boosted_ok += 1;
            }
        }
    }
    Row {
        success: single_ok as f64 / queries.len() as f64,
        boosted: boosted_ok as f64 / queries.len() as f64,
        mean_ratio: mean(&ratios),
        max_ratio: max(&ratios),
    }
}

fn main() {
    experiment_header(
        "E6",
        "success probability ≥ 2/3 (boostable) and approximation ratio vs γ",
    );
    let mut rng = StdRng::seed_from_u64(2);
    let n_queries = trials(48);

    for (workload, dataset) in [
        ("uniform", gen::uniform(N, D, &mut rng)),
        ("clustered", gen::clustered(N / 16, 16, D, 0.04, &mut rng)),
    ] {
        println!("## workload: {workload} (n = {N}, d = {D}, k = {K})\n");
        let queries: Vec<Point> = (0..n_queries)
            .map(|i| {
                if workload == "clustered" && i % 2 == 0 {
                    gen::corrupt(dataset.point(i * 13 % N), 0.03, &mut rng)
                } else {
                    Point::random(D, &mut rng)
                }
            })
            .collect();
        let mut table = MarkdownTable::new(&[
            "γ",
            "P[γ-approx]",
            "boosted (best of 3)",
            "mean ratio",
            "max ratio",
            "≥ 2/3?",
        ]);
        for gamma in [1.5f64, 2.0, 3.0, 4.0] {
            let row = measure(gamma, &dataset, &queries, 100 + gamma as u64);
            table.row(vec![
                format!("{gamma}"),
                format!("{:.2}", row.success),
                format!("{:.2}", row.boosted),
                format!("{:.2}", row.mean_ratio),
                format!("{:.2}", row.max_ratio),
                if row.success >= 2.0 / 3.0 {
                    "yes"
                } else {
                    "no"
                }
                .into(),
            ]);
        }
        table.print();
        println!();
    }
    println!("reading: single-copy success clears the paper's 2/3 at every γ;");
    println!("repetition pushes it toward 1 without adding rounds, exactly as §2");
    println!("describes. Observed ratios sit well inside the γ guarantee.\n");

    // --- Robustness: success under injected T-cell erasures (the
    // lower-violation direction of a Lemma 8 failure), single copy vs
    // best-of-3 boosting — repetition is exactly the paper's antidote. ---
    println!("## erasure robustness (γ = 2, k = {K}, uniform workload)\n");
    use anns_core::{BoostedIndex, ErasureModel};
    let mut rng = StdRng::seed_from_u64(71);
    let dataset = gen::uniform(N, D, &mut rng);
    let queries: Vec<Point> = (0..trials(32))
        .map(|_| Point::random(D, &mut rng))
        .collect();
    let mut table = MarkdownTable::new(&[
        "erasure p",
        "single-copy P[γ-approx]",
        "boosted (3 copies) P[γ-approx]",
    ]);
    for p in [0.0f64, 0.05, 0.2, 0.5] {
        let opts = |seed: u64| anns_core::BuildOptions {
            erasures: Some(ErasureModel {
                probability: p,
                seed,
            }),
            ..anns_core::BuildOptions::default()
        };
        let single = anns_core::AnnIndex::build(
            dataset.clone(),
            SketchParams::practical(2.0, 600),
            opts(41),
        );
        let boosted = BoostedIndex::build(
            dataset.clone(),
            SketchParams::practical(2.0, 700),
            3,
            opts(42),
        );
        let mut ok_single = 0usize;
        let mut ok_boost = 0usize;
        for q in &queries {
            let (o, _) = single.query(q, K);
            if single.verify_gamma(q, &o) {
                ok_single += 1;
            }
            let (o, _) = boosted.query(q, K);
            if boosted.verify_gamma(q, &o) {
                ok_boost += 1;
            }
        }
        table.row(vec![
            format!("{p}"),
            format!("{:.2}", ok_single as f64 / queries.len() as f64),
            format!("{:.2}", ok_boost as f64 / queries.len() as f64),
        ]);
    }
    table.print();
    println!("\n(erasures empty C_i cells at random; boosting recovers exactly as");
    println!("the §2 repetition argument predicts, since copies fail independently)");
}
