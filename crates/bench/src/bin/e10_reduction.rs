//! **E10 — Lemma 14/15/16:** the LPM → ANNS reduction, audited end to end.
//!
//! Three measurements:
//! 1. ball-tree construction: greedy Gilbert–Varshamov feasibility and the
//!    γ-separation margin at each (d, branching, depth);
//! 2. reduction soundness: over *all* query strings, every γ-approximate
//!    answer in the reduced instance attains the maximal LCP, and the
//!    soundness margin (how much bigger than γ the approximation could be
//!    before LPM answers break) is reported;
//! 3. the full pipeline: LPM solved through the paper's own AnnIndex.

use anns_bench::{experiment_header, trials, MarkdownTable};
use anns_core::{AnnIndex, BuildOptions};
use anns_lpm::{LpmInstance, LpmReduction};
use anns_sketch::SketchParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

const GAMMA: f64 = 2.0;

/// Enumerates all Σ^m query strings (small m only).
fn all_queries(sigma: u16, m: usize) -> Vec<Vec<u16>> {
    let mut out = vec![vec![]];
    for _ in 0..m {
        let mut next = Vec::new();
        for q in &out {
            for c in 0..sigma {
                let mut q2 = q.clone();
                q2.push(c);
                next.push(q2);
            }
        }
        out = next;
    }
    out
}

fn main() {
    experiment_header(
        "E10",
        "Lemma 14/16: γ-separated ball trees and the LPM → ANNS reduction",
    );

    println!("## tree construction + separation audit\n");
    let mut table = MarkdownTable::new(&[
        "d",
        "branching b",
        "depth m",
        "leaves",
        "built?",
        "sep margin (>1 required)",
    ]);
    let configs = [
        (1024u32, 8u16, 1usize),
        (2048, 4, 2),
        (2048, 8, 2),
        (4096, 4, 2),
        (4096, 16, 1),
    ];
    for (d, b, m) in configs {
        let mut rng = StdRng::seed_from_u64(u64::from(d) + u64::from(b));
        let inst = LpmInstance::random(b, m, (usize::from(b).pow(m as u32) / 2).max(2), &mut rng);
        match LpmReduction::build(inst, d, GAMMA, 50_000, &mut rng) {
            Some(red) => {
                let margin = red.tree().audit();
                table.row(vec![
                    d.to_string(),
                    b.to_string(),
                    m.to_string(),
                    red.tree().num_leaves().to_string(),
                    "yes".into(),
                    format!("{margin:.2}"),
                ]);
            }
            None => {
                table.row(vec![
                    d.to_string(),
                    b.to_string(),
                    m.to_string(),
                    "-".into(),
                    "no".into(),
                    "-".into(),
                ]);
            }
        }
    }
    table.print();

    println!("\n## reduction soundness over ALL queries (exhaustive)\n");
    let mut table = MarkdownTable::new(&[
        "Σ",
        "m",
        "n",
        "queries",
        "γ-approx ⇒ max LCP",
        "min soundness margin",
    ]);
    for (sigma, m, n, d) in [(4u16, 2usize, 10usize, 2048u32), (8, 2, 24, 4096)] {
        let mut rng = StdRng::seed_from_u64(u64::from(sigma) * 31);
        let inst = LpmInstance::random(sigma, m, n, &mut rng);
        let red = LpmReduction::build(inst, d, GAMMA, 50_000, &mut rng).expect("feasible");
        let queries = all_queries(sigma, m);
        let mut all_sound = true;
        let mut min_margin = f64::INFINITY;
        for q in &queries {
            let x = red.map_query(q);
            let opt = red.dataset().exact_nn(&x).distance;
            for i in 0..red.dataset().len() {
                let dist = x.distance(red.dataset().point(i));
                if f64::from(dist) <= GAMMA * f64::from(opt) && !red.instance().is_correct(q, i) {
                    all_sound = false;
                }
            }
            if let Some(margin) = red.soundness_margin(q) {
                min_margin = min_margin.min(margin);
            }
        }
        table.row(vec![
            sigma.to_string(),
            m.to_string(),
            n.to_string(),
            queries.len().to_string(),
            if all_sound {
                "all".into()
            } else {
                "VIOLATED".to_string()
            },
            if min_margin.is_finite() {
                format!("{min_margin:.2}")
            } else {
                "-".into()
            },
        ]);
    }
    table.print();

    println!("\n## full pipeline: LPM through the AnnIndex (k = 3)\n");
    let mut table = MarkdownTable::new(&["Σ", "m", "n", "queries", "LPM solved"]);
    for (sigma, m, n, d) in [(4u16, 2usize, 12usize, 2048u32), (8, 2, 24, 4096)] {
        let mut rng = StdRng::seed_from_u64(u64::from(sigma) * 77);
        let inst = LpmInstance::random(sigma, m, n, &mut rng);
        let red = LpmReduction::build(inst, d, GAMMA, 50_000, &mut rng).expect("feasible");
        let index = AnnIndex::build(
            red.dataset().clone(),
            SketchParams::practical(GAMMA, u64::from(sigma)),
            BuildOptions::default(),
        );
        let queries = all_queries(sigma, m);
        let sample: Vec<_> = queries.iter().take(trials(queries.len())).collect();
        let mut solved = 0usize;
        for q in &sample {
            let x = red.map_query(q);
            let (outcome, _) = index.query(&x, 3);
            if let Some(p) = index.outcome_point(&outcome) {
                if red.answer_is_correct(q, p) {
                    solved += 1;
                }
            }
        }
        table.row(vec![
            sigma.to_string(),
            m.to_string(),
            n.to_string(),
            sample.len().to_string(),
            format!("{solved}/{}", sample.len()),
        ]);
    }
    table.print();
    println!("\nreading: the constructive trees meet Lemma 16's separation with");
    println!("margin; exhaustively, every γ-approximate answer solves LPM (Lemma");
    println!("14's transport); and the paper's own index solves LPM through the");
    println!("reduction — the object the round-elimination lower bound reasons about.");
}
