//! **E5 — Lemma 8:** empirical validation of the sandwich
//! `B_i ⊆ C_i ⊆ B_{i+1}` and the `n^{-1/s}` fraction bounds.
//!
//! The paper's constants (`c₁, c₂ > 64/(1−e^{(1−α)/2})² ≈ 1800`) make
//! Lemma 8 hold by union bound at any `n`; the reproduction usually runs
//! with far smaller constants. This experiment measures the sandwich
//! success rate as a function of `c₁` (connecting the `practical()` and
//! `paper()` presets), the fraction-bound compliance as a function of `c₂`,
//! and includes ablation A3: the literal Definition 7 threshold (the gap
//! `δ` itself) against the corrected midpoint threshold.

use anns_bench::{experiment_header, trials, MarkdownTable};
use anns_hamming::{gen, Point};
use anns_sketch::{
    delta::recommended_c1, validate_fractions, validate_sandwich, DbSketches, SketchFamily,
    SketchParams, ThresholdMode,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const GAMMA: f64 = 2.0;
const N: usize = 256;
const D: u32 = 512;

/// Lemma 8's probability is over the *matrices* (the events are stated for
/// a fixed query/database, "with probability ≥ 3/4" over `M_i, N_i`), so a
/// trial = a freshly sampled family evaluated on a couple of queries;
/// fixing one family and averaging over queries would measure a different
/// (and highly correlated) quantity.
fn run_sandwich(c1: f64, mode: ThresholdMode, seed: u64, families: usize) -> (f64, usize, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    // Mixed workload: uniform queries see the top scales; near-cluster
    // queries populate small balls (the hard part for the lower inclusion).
    let ds = gen::clustered(N / 8, 8, D, 0.03, &mut rng);
    let mut trials = 0usize;
    let mut ok = 0usize;
    let mut lower = 0usize;
    let mut upper = 0usize;
    for f in 0..families {
        let params = SketchParams {
            gamma: GAMMA,
            c1,
            c2: c1,
            s: 2.0,
            threshold_mode: mode,
            seed: seed ^ (0xC0FFEE + 7919 * f as u64),
        };
        let family = SketchFamily::generate(D, N, &params);
        let db = DbSketches::build(&family, &ds, 4);
        let qs = vec![
            Point::random(D, &mut rng),
            gen::corrupt(ds.point(f % N), 0.02, &mut rng),
        ];
        let report = validate_sandwich(&ds, &family, &db, &qs);
        trials += report.trials;
        ok += report.all_scales_ok;
        lower += report.lower_violations.iter().sum::<usize>();
        upper += report.upper_violations.iter().sum::<usize>();
    }
    (ok as f64 / trials as f64, lower, upper)
}

fn main() {
    experiment_header(
        "E5",
        "Lemma 8: sandwich B_i ⊆ C_i ⊆ B_{i+1} and the n^{-1/s} fraction bounds",
    );
    let queries = trials(16);
    println!(
        "## sandwich success rate vs c₁ (n = {N}, d = {D}, {queries} fresh families × 2 queries)\n"
    );
    let c1_star = recommended_c1(N, u64::from(D), GAMMA.sqrt(), 0.125);
    println!("numerically sufficient c₁ for Lemma 8's 3/4 at this n,d: {c1_star:.0}\n");
    let mut table = MarkdownTable::new(&[
        "c₁",
        "P[sandwich ∀i]",
        "lower violations",
        "upper violations",
        "meets Lemma 8's 3/4?",
    ]);
    let mut c1_grid = vec![2.0f64, 4.0, 8.0, 16.0, 24.0, 48.0, 96.0];
    c1_grid.push(c1_star);
    for c1 in c1_grid {
        let (rate, lower, upper) = run_sandwich(c1, ThresholdMode::Midpoint, 7, queries);
        table.row(vec![
            format!("{c1:.0}"),
            format!("{rate:.2}"),
            lower.to_string(),
            upper.to_string(),
            if rate >= 0.75 { "yes" } else { "no" }.into(),
        ]);
    }
    table.print();

    println!("\n## A3 — literal Definition 7 threshold vs corrected midpoint (c₁ = 96)\n");
    let mut table =
        MarkdownTable::new(&["threshold", "P[sandwich ∀i]", "lower viol.", "upper viol."]);
    for (name, mode) in [
        ("midpoint f(β)+δ/2 (ours)", ThresholdMode::Midpoint),
        ("literal δ(β,α) (arXiv text)", ThresholdMode::LiteralDelta),
    ] {
        let (rate, lower, upper) = run_sandwich(96.0, mode, 11, queries);
        table.row(vec![
            name.into(),
            format!("{rate:.2}"),
            lower.to_string(),
            upper.to_string(),
        ]);
    }
    table.print();
    println!("\n(the literal threshold sits below the in-ball mean and empties C_i:");
    println!("massive lower violations — see DESIGN.md, threshold clarification)\n");

    println!("## fraction bounds (Lemma 8.2) vs c₂ (s = 2, bound n^{{-1/2}})\n");
    let mut table = MarkdownTable::new(&[
        "c₂",
        "pairs checked",
        "missing viol.",
        "spurious viol.",
        "max missing frac",
        "max spurious frac",
    ]);
    for c2 in [8.0f64, 24.0, 96.0, c1_star] {
        let mut rng = StdRng::seed_from_u64(13);
        let ds = gen::clustered(N / 8, 8, D, 0.03, &mut rng);
        let params = SketchParams {
            gamma: GAMMA,
            c1: c1_star,
            c2,
            s: 2.0,
            threshold_mode: ThresholdMode::Midpoint,
            seed: 17,
        };
        let family = SketchFamily::generate(D, N, &params);
        let db = DbSketches::build(&family, &ds, 4);
        let qs: Vec<Point> = (0..trials(6))
            .map(|i| gen::corrupt(ds.point(i * 7 % N), 0.02, &mut rng))
            .collect();
        let report = validate_fractions(&ds, &family, &db, &qs, 3);
        table.row(vec![
            format!("{c2:.0}"),
            report.pairs_checked.to_string(),
            report.missing_violations.to_string(),
            report.spurious_violations.to_string(),
            format!("{:.3}", report.max_missing_fraction),
            format!("{:.3}", report.max_spurious_fraction),
        ]);
    }
    table.print();
    println!("\nE5 complete.");
}
