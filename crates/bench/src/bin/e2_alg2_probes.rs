//! **E2 — Theorem 3:** Algorithm 2's probes vs `k`, and ablation A1
//! (what the coarse-ball machinery buys over Algorithm 1).
//!
//! The theorem claims `O(k + ((log d)/k)^{c/k})` probes for large `k`
//! (validity regime `k > 5c²/(c−2)`, i.e. `k > 45` at `c = 3`). The
//! experiment sweeps `k` across the regime boundary on synthetic instances
//! (point-mass and geometric profiles; the worst case is reported), prints
//! the theory form, the per-budget ratio `t/k` (the phase-transition
//! quantity), and Algorithm 1's totals at the same `k` for ablation A1.

use anns_bench::{experiment_header, worst_totals, MarkdownTable};
use anns_cellprobe::execute;
use anns_core::{
    alg2_s, choose_tau_alg2, Alg1Scheme, Alg2Config, Alg2Scheme, SyntheticInstance,
    SyntheticProfile,
};

fn profiles(top: u32) -> Vec<SyntheticProfile> {
    let mut out = Vec::new();
    for frac in [0.05f64, 0.3, 0.62, 0.95] {
        let i0 = ((f64::from(top) * frac) as u32).clamp(2, top);
        out.push(SyntheticProfile::point_mass(top, i0, 48.0));
        out.push(SyntheticProfile::geometric(top, i0, 0.4, 48.0));
    }
    out
}

fn alg2_worst(top: u32, k: u32) -> (usize, usize) {
    let cfg = Alg2Config::with_k(k);
    let mut ledgers = Vec::new();
    for profile in profiles(top) {
        let expected = profile.first_nonempty().unwrap();
        let inst = SyntheticInstance::new(profile, alg2_s(k, cfg.c));
        let scheme = Alg2Scheme {
            instance: &inst,
            config: cfg,
        };
        let (outcome, ledger) = execute(&scheme, &());
        assert_eq!(outcome.scale(), Some(expected), "k={k}");
        ledgers.push(ledger);
    }
    let (probes, rounds, _) = worst_totals(&ledgers);
    (probes, rounds)
}

fn alg1_worst(top: u32, k: u32) -> (usize, usize) {
    let mut ledgers = Vec::new();
    for profile in profiles(top) {
        let expected = profile.first_nonempty().unwrap();
        let inst = SyntheticInstance::new(profile, 2.0);
        let scheme = Alg1Scheme {
            instance: &inst,
            k,
            tau_override: None,
        };
        let (outcome, ledger) = execute(&scheme, &());
        assert_eq!(outcome.scale(), Some(expected));
        ledgers.push(ledger);
    }
    let (probes, rounds, _) = worst_totals(&ledgers);
    (probes, rounds)
}

fn main() {
    experiment_header(
        "E2",
        "Theorem 3: Algorithm 2 uses O(k + ((log d)/k)^{c/k}) probes for large k",
    );
    let c = 3.0f64;
    for log2_d in [1000u32, 4000] {
        let top = 2 * log2_d;
        println!("## log₂ d = {log2_d} (synthetic, top = {top}, c = {c})\n");
        let mut table = MarkdownTable::new(&[
            "k",
            "s",
            "τ",
            "alg2 probes",
            "alg2 rounds",
            "t/k",
            "theory k+((log d)/k)^{c/k}",
            "alg1 probes (A1)",
        ]);
        for k in [8u32, 16, 32, 46, 64, 100, 150, 220, 300] {
            let s = alg2_s(k, c);
            let tau = choose_tau_alg2(top, k, c);
            let (w2_probes, w2_rounds) = alg2_worst(top, k);
            let (w1_probes, _) = alg1_worst(top, k);
            let theory = f64::from(k) + (f64::from(log2_d) / f64::from(k)).powf(c / f64::from(k));
            let regime = if k > 45 { "" } else { "*" };
            table.row(vec![
                format!("{k}{regime}"),
                format!("{s:.1}"),
                tau.to_string(),
                w2_probes.to_string(),
                w2_rounds.to_string(),
                format!("{:.2}", w2_probes as f64 / f64::from(k)),
                format!("{theory:.1}"),
                w1_probes.to_string(),
            ]);
        }
        table.print();
        println!("\n(* below the theorem's validity regime k > 5c²/(c−2) = 45: the");
        println!("implementation falls back to an Algorithm 1-style grid there)\n");
    }
    println!("readings: t/k falls toward O(1) as k grows — the phase transition —");
    println!("while Algorithm 1 at the same k pays k·(log d)^{{1/k}} (A1: the coarse");
    println!("D_{{i,j}} machinery is what turns the extra rounds into savings).");
}
