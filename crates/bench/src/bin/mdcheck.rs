//! `mdcheck` — an offline markdown link checker for CI.
//!
//! ```text
//! mdcheck README.md ROADMAP.md docs
//! ```
//!
//! Walks the given files (and `.md` files under given directories) and
//! verifies every inline link `[text](target)` and reference definition
//! `[label]: target`:
//!
//! * relative file targets must exist on disk (resolved from the linking
//!   file's directory);
//! * `#anchor` fragments — bare or on a `.md` target — must match a
//!   heading in the target file (GitHub slug rules: lowercase, spaces to
//!   dashes, punctuation dropped);
//! * `http(s)://` and `mailto:` targets are skipped (CI has no network);
//! * fenced code blocks are ignored, so shell snippets with `](` inside
//!   strings cannot false-positive.
//!
//! Exits nonzero listing every broken link. No dependencies, no network —
//! the checker CI runs over `README.md`, `ROADMAP.md` and `docs/`.

use std::path::{Path, PathBuf};

/// One discovered link: where it was written and what it points at.
struct Link {
    file: PathBuf,
    line: usize,
    target: String,
}

fn collect_md_files(arg: &str, out: &mut Vec<PathBuf>) {
    let path = PathBuf::from(arg);
    if path.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&path)
            .unwrap_or_else(|e| fail(&format!("cannot read dir {arg}: {e}")))
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for entry in entries {
            if entry.is_dir() {
                collect_md_files(&entry.display().to_string(), out);
            } else if entry.extension().is_some_and(|ext| ext == "md") {
                out.push(entry);
            }
        }
    } else if path.is_file() {
        out.push(path);
    } else {
        fail(&format!("no such file or directory: {arg}"));
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("mdcheck: {msg}");
    std::process::exit(2);
}

/// GitHub-style heading slug: lowercase, keep alphanumerics and dashes,
/// spaces become dashes, everything else is dropped.
fn slugify(heading: &str) -> String {
    let mut slug = String::new();
    for c in heading.trim().chars() {
        if c.is_alphanumeric() {
            for lower in c.to_lowercase() {
                slug.push(lower);
            }
        } else if c == ' ' || c == '-' {
            slug.push('-');
        }
        // Other punctuation: dropped.
    }
    slug
}

/// Headings of a markdown file, as anchor slugs (fences excluded).
fn heading_slugs(path: &Path) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut slugs = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if !in_fence && trimmed.starts_with('#') {
            let heading = trimmed.trim_start_matches('#');
            slugs.push(slugify(heading));
        }
    }
    slugs
}

/// Extracts inline `[text](target)` links and `[label]: target`
/// reference definitions from one line.
fn links_in_line(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
            // Inline link: scan to the matching close paren (no nesting
            // in practice; stop at the first unbalanced `)`).
            let mut depth = 1usize;
            let start = i + 2;
            let mut j = start;
            while j < bytes.len() && depth > 0 {
                match bytes[j] {
                    b'(' => depth += 1,
                    b')' => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            if depth == 0 {
                let target = line[start..j - 1].trim();
                // Strip an optional `"title"` suffix.
                let target = target.split_whitespace().next().unwrap_or("");
                if !target.is_empty() {
                    out.push(target.to_string());
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    // Reference definition at line start: `[label]: target`.
    let trimmed = line.trim_start();
    if let Some(rest) = trimmed.strip_prefix('[') {
        if let Some((label, def)) = rest.split_once("]:") {
            if !label.contains('[') {
                let target = def.split_whitespace().next().unwrap_or("");
                if !target.is_empty() {
                    out.push(target.to_string());
                }
            }
        }
    }
    out
}

fn check_link(link: &Link) -> Option<String> {
    let target = link.target.as_str();
    if target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
    {
        return None; // External: out of scope for an offline checker.
    }
    let (path_part, anchor) = match target.split_once('#') {
        Some((p, a)) => (p, Some(a)),
        None => (target, None),
    };
    let base = link.file.parent().unwrap_or_else(|| Path::new("."));
    let resolved = if path_part.is_empty() {
        link.file.clone()
    } else {
        base.join(path_part)
    };
    if !resolved.exists() {
        return Some(format!("target {path_part:?} does not exist"));
    }
    if let Some(anchor) = anchor {
        if resolved.extension().is_some_and(|ext| ext == "md") {
            let slugs = heading_slugs(&resolved);
            if !slugs.iter().any(|s| s == anchor) {
                return Some(format!(
                    "anchor #{anchor} not found in {} (headings: {})",
                    resolved.display(),
                    slugs.join(", ")
                ));
            }
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        fail("usage: mdcheck <file.md | dir>…");
    }
    let mut files = Vec::new();
    for arg in &args {
        collect_md_files(arg, &mut files);
    }
    let mut links = Vec::new();
    for file in &files {
        let text = std::fs::read_to_string(file)
            .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", file.display())));
        let mut in_fence = false;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim_start().starts_with("```") {
                in_fence = !in_fence;
                continue;
            }
            if in_fence {
                continue;
            }
            for target in links_in_line(line) {
                links.push(Link {
                    file: file.clone(),
                    line: lineno + 1,
                    target,
                });
            }
        }
    }
    let mut broken = 0usize;
    for link in &links {
        if let Some(problem) = check_link(link) {
            broken += 1;
            eprintln!(
                "{}:{}: [{}] {problem}",
                link.file.display(),
                link.line,
                link.target
            );
        }
    }
    println!(
        "mdcheck: {} file(s), {} link(s), {broken} broken",
        files.len(),
        links.len()
    );
    if broken > 0 {
        std::process::exit(1);
    }
}
