//! **E9 — space accounting:** table size `n^{O(1)}`, word size `O(d)`,
//! and the public→private coin translation (Lemma 5 / Proposition 6).
//!
//! For each scheme: the model size (log₂ cells — what the paper's
//! accounting charges, i.e. the materialized table), the polynomial
//! exponent `log₂ cells / log₂ n`, the declared word size, and the actually
//! resident bytes of our lazy implementation (substitution S1's footprint).
//! The Newman translation column shows the private-coin table growth.

use anns_bench::{experiment_header, MarkdownTable};
use anns_cellprobe::{newman_private_coin_cells_log2, Table};
use anns_core::{AnnIndex, AnnsInstance, BuildOptions};
use anns_hamming::gen;
use anns_lsh::{LinearScan, LshIndex, LshParams};
use anns_sketch::SketchParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn resident_bytes_estimate(index: &AnnIndex) -> u64 {
    // Sketch storage dominates: (top+1)·n·(m_rows + n_rows) bits, plus the
    // raw points and the exact-membership map.
    let f = index.family();
    let n = index.dataset().len() as u64;
    let scales = u64::from(f.top()) + 1;
    let sketch_bits = scales * n * (u64::from(f.m_rows()) + u64::from(f.n_rows()));
    let point_bits = 2 * n * u64::from(index.dataset().dim()); // points + map keys
    (sketch_bits + point_bits) / 8
}

fn main() {
    experiment_header(
        "E9",
        "table size n^{O(1)}, word size O(d), Newman private-coin translation",
    );
    println!("## scheme space vs n (d = 512)\n");
    let d = 512u32;
    let mut table = MarkdownTable::new(&[
        "scheme",
        "n",
        "log₂ cells (model)",
        "exponent vs n",
        "word bits",
        "resident (lazy impl)",
        "log₂ cells (private coin)",
    ]);
    for n in [256usize, 1024, 4096] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let ds = gen::uniform(n, d, &mut rng);
        let log2n = (n as f64).log2();

        let index = AnnIndex::build(
            ds.clone(),
            SketchParams::practical(2.0, 3),
            BuildOptions::default(),
        );
        let m = index.table().space_model();
        let private =
            newman_private_coin_cells_log2(m.cells_log2, f64::from(d), f64::from(d) * n as f64);
        table.row(vec![
            "AnnIndex (paper)".into(),
            n.to_string(),
            format!("{:.1}", m.cells_log2),
            format!("{:.1}", m.cells_log2 / log2n),
            m.word_bits.to_string(),
            format!("{} KiB", resident_bytes_estimate(&index) / 1024),
            format!("{private:.1}"),
        ]);

        let lsh = LshIndex::build(
            ds.clone(),
            LshParams::for_radius(n, d, 8.0, 2.0, 1.0),
            &mut rng,
        );
        let lm = Table::space_model(&lsh);
        table.row(vec![
            "LSH".into(),
            n.to_string(),
            format!("{:.1}", lm.cells_log2),
            format!("{:.1}", lm.cells_log2 / log2n),
            lm.word_bits.to_string(),
            format!("{} buckets", lsh.populated_buckets()),
            format!(
                "{:.1}",
                newman_private_coin_cells_log2(
                    lm.cells_log2,
                    f64::from(d),
                    f64::from(d) * n as f64
                )
            ),
        ]);

        let scan = LinearScan::new(ds);
        let sm = Table::space_model(&scan);
        table.row(vec![
            "linear scan".into(),
            n.to_string(),
            format!("{:.1}", sm.cells_log2),
            format!("{:.1}", sm.cells_log2 / log2n),
            sm.word_bits.to_string(),
            "-".into(),
            "-".into(),
        ]);
    }
    table.print();

    println!("\n## word size is O(d) (AnnIndex, n = 1024)\n");
    let mut table = MarkdownTable::new(&["d", "word bits", "word bits / d"]);
    for d in [128u32, 512, 2048] {
        let mut rng = StdRng::seed_from_u64(u64::from(d));
        let ds = gen::uniform(1024, d, &mut rng);
        let index = AnnIndex::build(ds, SketchParams::practical(2.0, 4), BuildOptions::default());
        let w = index.word_bits();
        table.row(vec![
            d.to_string(),
            w.to_string(),
            format!("{:.2}", w as f64 / f64::from(d)),
        ]);
    }
    table.print();
    println!("\nreading: the model exponent is ≈ c₁ (the accurate-sketch constant) —");
    println!("polynomial as Theorems 2/3 require, with word size a small multiple of");
    println!("d. The lazy implementation's resident footprint is the sketches, not");
    println!("the n^{{c₁}} cells the model charges (substitution S1); the private-coin");
    println!("translation adds log₂(d + dn + O(1)) ≈ 20 bits of table, matching");
    println!("Proposition 6's O(dn·s).");
}
