//! `annsctl` — a small operator CLI over the library.
//!
//! ```text
//! annsctl build       --n 4096 --d 512 --gamma 2.0 --seed 7 --out index.json
//! annsctl query       --index index.json --k 3 [--flips 8] [--count 16]
//! annsctl lambda      --index index.json --lambda 8
//! annsctl stats       --index index.json
//! annsctl save        --out bundle.anns [--scheme all] [--n 1024 --d 256 | --index index.json]
//! annsctl load        --store bundle.anns [--store-backend heap|mmap] [--verify-queries 4]
//! annsctl inspect     --store bundle.anns
//! annsctl mount       --mounts a=x.anns,b=y.anns [--store-backend heap|mmap] [--verify-queries 4]
//! annsctl swap        --mounts a=x.anns,b=y.anns --swap a=x2.anns [--requests 256]
//! annsctl serve       [--from-store bundle.anns | --mounts a=x.anns,… | --index index.json] [--store-backend heap|mmap]
//! annsctl serve       --online 1 [--rate 4000] [--window 16] [--max-wait-us 500] [--queue-cap 256]
//! annsctl serve       --trace-out trace.jsonl [--trace-cap 4096] […]
//! annsctl server      --listen 127.0.0.1:0 [--addr-file addr.txt] [--tenants hot:0:8,…] [--max-conns 256] [--out report.json]
//! annsctl client      --addr 127.0.0.1:PORT [--tenant acme] [--count 4] [--shutdown 1]
//! annsctl trace       inspect --trace trace.jsonl [--limit 12] [--server-report report.json]
//! annsctl attack      [--scenario quick] [--rounds 240] [--seed 42] [--band 0.05] [--out report.json]
//! annsctl bench-attack [--seed 42] --out BENCH_attack_quick.json
//! annsctl bench-serve [--from-store bundle.anns | --index index.json] [--shards 4] --out BENCH_serve.json
//! annsctl bench-kernels [--dims 64,256,512] [--n 16384] --out BENCH_kernels.json
//! annsctl bench-obs   [--events 2000000] [--capacity 4096] --out BENCH_obs.json
//! annsctl bench-server --addr 127.0.0.1:PORT [--hot-requests 40] [--requests 12] --out BENCH_server.json
//! annsctl bench-store [--small-n 1024 --large-n 8192 --d 256] --out BENCH_store.json
//! annsctl bench-gate  --current BENCH_new.json --reference BENCH_serve.json [--tol-coalescing 0.1]
//! annsctl bench-gate  --kernels-current BENCH_k.json --kernels-reference BENCH_kernels_quick.json
//! annsctl bench-gate  --obs-current BENCH_o.json --obs-reference BENCH_obs_quick.json
//! annsctl bench-gate  --server-current BENCH_s.json --server-reference BENCH_server_quick.json
//! annsctl bench-gate  --attack-current BENCH_a.json --attack-reference BENCH_attack_quick.json
//! annsctl bench-gate  --store-current BENCH_st.json --store-reference BENCH_store_quick.json
//! annsctl lpm         --sigma 4 --m 8 --n 64 --k 2 --queries 32
//! annsctl lb          --log2n 1.3e24 --log2d 1.1e12 --gamma 4 --k 3
//! ```
//!
//! Exists so the index can be exercised without writing Rust: `build`
//! snapshots an index over a seeded uniform database to JSON, `query` /
//! `lambda` load it and run the paper's schemes, `stats` prints the space
//! model, `save` / `load` / `inspect` manage versioned **binary store
//! bundles** (`anns-store`: checksummed sections holding deduplicated
//! index payloads plus every registered scheme), `mount` assembles a
//! multi-bundle registry (one namespace per bundle, cross-bundle index
//! deduplication) and prints each mount's provenance manifest, `swap`
//! demonstrates the zero-downtime path — it serves a workload *while*
//! hot-swapping one namespace and exits nonzero unless every query
//! completed and the old mount fully retired, `serve` drives the
//! round-synchronous engine — warm-started from one bundle via
//! `--from-store` or several via `--mounts` — and exits nonzero on budget
//! violations or a failed round-integrity audit (`serve --online 1`
//! instead drives the *admission queue* with a Poisson-ish arrival stream
//! at `--rate` q/s, windows sealing at `--window` queries or the
//! `--max-wait-us` deadline, and reports admission-wait and latency
//! percentiles, exiting nonzero on any shed arrival, failed query, or
//! budget violation; either mode takes `--trace-out` to install a
//! flight-recording ring of `anns_obs::TraceEvent`s — the final ring is
//! written to the given path as JSON lines, and anomalies dump
//! mid-flight snapshots to `<path>.flight`), `trace inspect` summarizes
//! such a trace offline (event counts, sealed windows, per-generation
//! coalescing, per-query timelines, queue depth — and with
//! `--server-report` it reconciles the trace's per-tenant
//! `tenant_decision` events against a server drain report by exact
//! equality), `server` binds the framed TCP front (`anns-server`) over
//! the same serving surface with per-tenant token-bucket policies
//! (`--tenants name:rate:burst,…`) and serves until a `Shutdown` frame
//! drains it, `client` speaks the wire protocol from the other side —
//! each refusal class exits with its own code (3 overloaded, 4 closed,
//! 5 throttled, 6 transport, 7 other) so scripts can branch on the
//! verdict — `bench-server` drives a three-tenant workload (one hot,
//! two compliant) against a running server and records per-tenant
//! outcome counters plus socket-to-ticket / socket-to-answer latency
//! splits,
//! `bench-obs` times the recorder fast path (`NullRecorder` vs ring)
//! and writes `BENCH_obs.json`, `bench-serve` races coalesced engine serving
//! against per-query `run_batch` (optionally across `--shards N` mounted
//! namespaces), appends a deterministic admission-queue run on a virtual
//! clock, and writes `BENCH_serve.json`,
//! `bench-kernels` times the scalar per-`Point` distance loop against the
//! limb-major `PackedBlock` kernels and writes `BENCH_kernels.json`,
//! `attack` runs the adversarial-robustness suite (`anns-attack`:
//! adaptive attackers driven through the real engine + admission queue,
//! the subsampled-repetition defense under test) and exits nonzero if
//! the defended scheme's adaptive degradation exceeds `--band`,
//! `bench-attack` runs that suite twice, verifies the two traces are
//! byte-identical, and writes the committed `BENCH_attack_quick.json`
//! artifact the CI attack gate diffs against,
//! `bench-gate` compares such reports (serve and/or kernel) against
//! committed references with tolerance bands (the CI perf-regression,
//! microbench and attack gates), `lpm` runs the trie scheme end to end,
//! and `lb` invokes the round-elimination calculator.
//!
//! The operator-facing walkthrough of these commands lives in
//! `docs/SERVING.md`; the bundle format itself in `docs/STORE_FORMAT.md`.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use anns_attack::{run_suite, BenchAttackReport, RobustnessReport, ScenarioConfig};
use anns_bench::server_bench::{
    rtt_pct_us, BenchServerConfig, BenchServerReport, TenantBenchRow, TenantWorkloadSpec,
};
use anns_bench::{hot_set_workload, quick_mode, MarkdownTable};
use anns_cellprobe::{
    execute, execute_with, run_batch, CellProbeScheme, ExecOptions, RoundExecutor, Table,
};
use anns_core::serve::{ServableScheme, SoloServable};
use anns_core::{Alg2Config, AnnIndex, AnnsInstance, BuildOptions};
use anns_engine::{
    current_rss_bytes, AdmissionOptions, AdmissionQueue, Clock, Engine, EngineOptions,
    FlightRecorder, MountManifest, MountTable, NamedRequest, NullRecorder, QueryRequest, RealClock,
    Recorder, Registry, Resolution, RingRecorder, ServeReport, Served, ShardId, StoreBackend,
    Ticket, TraceCounters, TraceEvent, VirtualClock,
};
use anns_hamming::{gen, Point};
use anns_lpm::{certified_lower_bound, lower_bound_form, ElimParams, LpmInstance, TrieLpm};
use anns_server::{
    AnnsServer, Client, ClientError, ErrorCode, ServerOptions, ServerReport, TenantPolicy,
};
use anns_sketch::SketchParams;
use anns_store::Codec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parses `--key value` pairs after the subcommand.
fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .unwrap_or_else(|| die(&format!("expected --flag, got {}", args[i])));
        let value = args
            .get(i + 1)
            .unwrap_or_else(|| die(&format!("--{key} needs a value")));
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    flags
}

fn die(msg: &str) -> ! {
    eprintln!("annsctl: {msg}");
    eprintln!(
        "usage: annsctl <build|query|lambda|stats|save|load|inspect|mount|swap|serve|server|client|trace|attack|bench-attack|bench-serve|bench-kernels|bench-obs|bench-server|bench-store|bench-gate|lpm|lb> [--flag value]…"
    );
    std::process::exit(2);
}

/// Parses `--mounts ns=path[,ns=path…]` into `(namespace, path)` pairs.
fn parse_mounts(spec: &str) -> Vec<(String, String)> {
    spec.split(',')
        .map(str::trim)
        .filter(|part| !part.is_empty())
        .map(|part| {
            let (ns, path) = part
                .split_once('=')
                .unwrap_or_else(|| die(&format!("--mounts entry {part:?} must be ns=path")));
            (ns.to_string(), path.to_string())
        })
        .collect()
}

/// Parses `--store-backend {heap,mmap}` (default `heap`). `heap` reads,
/// verifies and decodes the whole bundle up front; `mmap` maps the file,
/// reads O(manifest) bytes eagerly and defers per-index verification to
/// first touch, so resident memory tracks the queried working set.
fn store_backend_flag(flags: &HashMap<String, String>) -> StoreBackend {
    match flags.get("store-backend") {
        Some(v) => StoreBackend::parse(v).unwrap_or_else(|e| die(&e)),
        None => StoreBackend::default(),
    }
}

/// Loads a bundle into a fresh registry through the selected backend.
fn load_bundle_with(path: &str, backend: StoreBackend) -> anns_engine::LoadedBundle {
    let result = match backend {
        StoreBackend::Heap => Registry::load_bundle(path),
        StoreBackend::Mmap => Registry::load_bundle_mapped(path),
    };
    result.unwrap_or_else(|e| {
        die(&format!(
            "cannot load store {path} ({backend} backend): {e}"
        ))
    })
}

/// Prints one mount's provenance manifest (shared by `mount`/`load`).
fn print_manifest(m: &MountManifest) {
    println!("  {}", m.summary());
    println!(
        "    format v{}, kind {}, tool {:?}",
        m.format_version, m.container_kind, m.tool
    );
    for digest in &m.sections {
        println!(
            "    section {} {:>10} bytes  crc32 {:#010x}",
            digest.tag_string(),
            digest.len,
            digest.crc
        );
    }
    for digest in &m.skipped {
        println!(
            "    skipped {} {:>10} bytes (unknown tag; newer writer?)",
            digest.tag_string(),
            digest.len
        );
    }
    for shard in &m.shards {
        println!("    shard   {shard}");
    }
}

fn flag<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    match flags.get(key) {
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| die(&format!("--{key}: cannot parse {v:?}"))),
        None => default,
    }
}

fn required(flags: &HashMap<String, String>, key: &str) -> String {
    flags
        .get(key)
        .cloned()
        .unwrap_or_else(|| die(&format!("--{key} is required")))
}

fn load_index(path: &str) -> AnnIndex {
    let json =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let snapshot =
        serde_json::from_str(&json).unwrap_or_else(|e| die(&format!("bad snapshot: {e}")));
    AnnIndex::from_snapshot(snapshot)
}

fn cmd_build(flags: HashMap<String, String>) {
    let n: usize = flag(&flags, "n", 1024);
    let d: u32 = flag(&flags, "d", 256);
    let gamma: f64 = flag(&flags, "gamma", 2.0);
    let seed: u64 = flag(&flags, "seed", 7);
    let out = required(&flags, "out");
    let mut rng = StdRng::seed_from_u64(seed);
    let ds = gen::uniform(n, d, &mut rng);
    let index = AnnIndex::build(
        ds,
        SketchParams::practical(gamma, seed),
        BuildOptions::default(),
    );
    let json = serde_json::to_string(&index.snapshot()).expect("serialize snapshot");
    std::fs::write(&out, json).unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
    println!(
        "built: n = {n}, d = {d}, γ = {gamma}, {} scales, snapshot → {out}",
        index.family().top() + 1
    );
}

fn cmd_query(flags: HashMap<String, String>) {
    let index = load_index(&required(&flags, "index"));
    let k: u32 = flag(&flags, "k", 3);
    let flips: u32 = flag(&flags, "flips", 8);
    let count: usize = flag(&flags, "count", 8);
    let seed: u64 = flag(&flags, "seed", 99);
    let mut rng = StdRng::seed_from_u64(seed);
    let d = index.dataset().dim();
    println!(
        "{:>4} {:>8} {:>8} {:>10} {:>8}",
        "#", "probes", "rounds", "distance", "γ-ok"
    );
    for i in 0..count {
        let base = rng.gen_range(0..index.dataset().len());
        let query = gen::point_at_distance(index.dataset().point(base), flips.min(d), &mut rng);
        let (outcome, ledger) = index.query(&query, k);
        let dist = index
            .outcome_point(&outcome)
            .map(|p| query.distance(p).to_string())
            .unwrap_or_else(|| "-".into());
        println!(
            "{i:>4} {:>8} {:>8} {dist:>10} {:>8}",
            ledger.total_probes(),
            ledger.rounds(),
            index.verify_gamma(&query, &outcome)
        );
    }
}

fn cmd_lambda(flags: HashMap<String, String>) {
    let index = load_index(&required(&flags, "index"));
    let lambda: f64 = flag(&flags, "lambda", 8.0);
    let seed: u64 = flag(&flags, "seed", 99);
    let mut rng = StdRng::seed_from_u64(seed);
    let d = index.dataset().dim();
    let query = Point::random(d, &mut rng);
    let (answer, ledger) = index.query_lambda(&query, lambda);
    println!("λ = {lambda}: {answer:?} ({} probe)", ledger.total_probes());
}

fn cmd_stats(flags: HashMap<String, String>) {
    let index = load_index(&required(&flags, "index"));
    let model = index.table().space_model();
    println!("n          : {}", index.dataset().len());
    println!("d          : {}", index.dataset().dim());
    println!("γ          : {}", index.family().params().gamma);
    println!("scales     : {}", index.family().top() + 1);
    println!("m-rows     : {}", index.family().m_rows());
    println!("n-rows     : {}", index.family().n_rows());
    println!("log₂ cells : {:.1} (model)", model.cells_log2);
    println!("word bits  : {}", model.word_bits);
}

/// Loads `--index`, or builds a fresh seeded-uniform instance from
/// `--n/--d/--gamma/--seed` when no snapshot is given.
fn load_or_build_index(
    flags: &HashMap<String, String>,
    n_default: usize,
    d_default: u32,
) -> Arc<AnnIndex> {
    if let Some(path) = flags.get("index") {
        return anns_engine::load_index_snapshot(path).unwrap_or_else(|e| die(&e));
    }
    let n: usize = flag(flags, "n", n_default);
    let d: u32 = flag(flags, "d", d_default);
    let gamma: f64 = flag(flags, "gamma", 2.0);
    let seed: u64 = flag(flags, "seed", 7);
    let mut rng = StdRng::seed_from_u64(seed);
    let ds = gen::uniform(n, d, &mut rng);
    Arc::new(AnnIndex::build(
        ds,
        SketchParams::practical(gamma, seed),
        BuildOptions::default(),
    ))
}

/// Registers the requested schemes (comma-separated list of
/// `alg1|alg2|lambda|lsh|linear|all`) over a shared index. Shared by
/// `serve` (cold start) and `save`, so a saved bundle serves exactly what
/// a cold-started registry would.
fn build_registry(flags: &HashMap<String, String>, index: &Arc<AnnIndex>) -> Registry {
    let scheme: String = flag(flags, "scheme", "all".to_string());
    let k: u32 = flag(flags, "k", 3);
    let lambda: f64 = flag(flags, "lambda", 8.0);
    let lsh_r: f64 = flag(flags, "lsh-r", 6.0);
    let seed: u64 = flag(flags, "seed", 99);
    // Algorithm 2 needs at least two rounds; an out-of-range --k is
    // clamped with a visible warning rather than silently rewritten.
    let alg2_k = k.max(2);
    let mut registry = Registry::new();
    let register_alg2 = |registry: &mut Registry| {
        if alg2_k != k {
            eprintln!(
                "warning: --k {k} is below Algorithm 2's minimum; serving alg2 at k = {alg2_k}"
            );
        }
        registry.register_alg2(
            format!("alg2-k{alg2_k}"),
            Arc::clone(index),
            Alg2Config::with_k(alg2_k),
        );
    };
    for part in scheme.split(',').map(str::trim) {
        match part {
            "alg1" => {
                registry.register_alg1(format!("alg1-k{k}"), Arc::clone(index), k);
            }
            "alg2" => register_alg2(&mut registry),
            "lambda" => {
                registry.register_lambda(format!("lambda-{lambda}"), Arc::clone(index), lambda);
            }
            "lsh" => {
                let (n, d) = (index.dataset().len(), index.dataset().dim());
                let gamma = index.family().params().gamma;
                let params = anns_lsh::LshParams::for_radius(n, d, lsh_r, gamma, 8.0);
                let mut rng = StdRng::seed_from_u64(seed ^ 0x15A);
                let lsh = anns_lsh::LshIndex::build(index.dataset().clone(), params, &mut rng);
                registry.register(
                    format!("lsh-K{}L{}", params.k_bits, params.l_tables),
                    Box::new(anns_lsh::ServeLsh {
                        index: Arc::new(lsh),
                    }),
                );
            }
            "linear" => {
                registry.register(
                    format!("linear-n{}", index.dataset().len()),
                    Box::new(anns_lsh::ServeLinear {
                        scan: Arc::new(anns_lsh::LinearScan::new(index.dataset().clone())),
                    }),
                );
            }
            "all" => {
                registry.register_alg1(format!("alg1-k{k}"), Arc::clone(index), k);
                register_alg2(&mut registry);
                registry.register_lambda(format!("lambda-{lambda}"), Arc::clone(index), lambda);
            }
            other => die(&format!(
                "--scheme must be a comma list of alg1|alg2|lambda|lsh|linear|all, got {other}"
            )),
        }
    }
    registry
}

/// The serving surface behind `serve`/`bench-serve`: a multi-bundle
/// mounted registry (`--mounts ns=path,…`), a single-bundle warm start
/// (`--from-store`), or a cold-built registry over a fresh/JSON-snapshot
/// index.
fn registry_and_index(flags: &HashMap<String, String>) -> (Registry, Arc<AnnIndex>) {
    let backend = store_backend_flag(flags);
    if let Some(spec) = flags.get("mounts") {
        let mut registry = Registry::new();
        for (ns, path) in parse_mounts(spec) {
            let manifest = match backend {
                StoreBackend::Heap => registry.mount(&ns, &path),
                StoreBackend::Mmap => registry.mount_mapped(&ns, &path),
            }
            .unwrap_or_else(|e| die(&format!("cannot mount {ns}={path}: {e}")));
            eprintln!("mounted {}", manifest.summary());
        }
        // One workload round-robins over every shard, so every mounted
        // dataset must share its query dimension.
        require_one_dimension(&registry);
        let index = registry
            .any_pooled_index()
            .unwrap_or_else(|| die("mounted bundles hold no AnnIndex-backed shard"));
        (registry, index)
    } else if let Some(path) = flags.get("from-store") {
        let bundle = load_bundle_with(path, backend);
        let index = bundle
            .indexes
            .first()
            .cloned()
            .or_else(|| bundle.registry.any_pooled_index())
            .unwrap_or_else(|| die(&format!("{path} holds no AnnIndex-backed shard")));
        eprintln!(
            "warm start: {} shard(s), {} pooled index(es) from {path} ({} backend)",
            bundle.registry.len(),
            bundle.registry.pooled_indexes().len(),
            bundle.report.backend
        );
        if !bundle.report.skipped.is_empty() {
            eprintln!(
                "warm start: {} unknown section(s) skipped — see `annsctl load` for details",
                bundle.report.skipped.len()
            );
        }
        (bundle.registry, index)
    } else {
        let index = load_or_build_index(flags, 1024, 256);
        (build_registry(flags, &index), index)
    }
}

/// Smoke-runs a few queries per shard through the solo executor, dying
/// if any shard exceeds its declared budgets — the shared post-load
/// verification behind `load` and `mount`. Queries are generated from
/// `index`, so it must come from the same bundle as the shards (query
/// dimension must match the dataset's).
fn verify_shard_budgets(registry: &Registry, index: &Arc<AnnIndex>, verify: usize, seed: u64) {
    let queries = hot_set_workload(index, verify, verify, 6, seed);
    for shard in 0..registry.len() {
        let scheme = registry.scheme(ShardId(shard));
        let mut within = true;
        for q in &queries {
            let (_, ledger) = execute(&SoloServable(scheme), q);
            within &= scheme.within_budget(&ledger);
        }
        println!(
            "  verify {}: {verify} queries, within budget = {within}",
            registry.name(ShardId(shard))
        );
        if !within {
            die("shard exceeded its declared budgets");
        }
    }
}

/// Dies unless every shard declares the same query dimension — the
/// precondition for generating one query workload that is valid on
/// every mounted shard (`serve --mounts`, `swap`). Checked per *shard*
/// (`ServableScheme::query_dim`), so foreign LSH/linear shards count
/// too, not just pool-backed `AnnIndex` schemes.
fn require_one_dimension(registry: &Registry) {
    let dims: std::collections::BTreeSet<u32> = (0..registry.len())
        .filter_map(|i| registry.scheme(ShardId(i)).query_dim())
        .collect();
    if dims.len() > 1 {
        die(&format!(
            "mounted bundles span multiple query dimensions {dims:?}; \
             one workload cannot query them all — mount same-dimension shards"
        ));
    }
}

fn cmd_mount(flags: HashMap<String, String>) {
    let spec = required(&flags, "mounts");
    let verify: usize = flag(&flags, "verify-queries", 4);
    let seed: u64 = flag(&flags, "seed", 99);
    let backend = store_backend_flag(&flags);
    let mounts = parse_mounts(&spec);
    let mut registry = Registry::new();
    let started = Instant::now();
    for (ns, path) in &mounts {
        match backend {
            StoreBackend::Heap => registry.mount(ns, path),
            StoreBackend::Mmap => registry.mount_mapped(ns, path),
        }
        .unwrap_or_else(|e| die(&format!("cannot mount {ns}={path}: {e}")));
    }
    let mount_ms = started.elapsed().as_secs_f64() * 1e3;
    let (eager, file): (u64, u64) = registry
        .mounts()
        .iter()
        .fold((0, 0), |(e, f), m| (e + m.eager_bytes, f + m.file_bytes));
    println!(
        "mounted {} bundle(s), {} shard(s), {} distinct pooled index(es) in {mount_ms:.1} ms \
         ({backend} backend: {eager} / {file} bytes eager, rss {} KiB)",
        registry.mounts().len(),
        registry.len(),
        registry.pooled_indexes().len(),
        current_rss_bytes() / 1024
    );
    for manifest in registry.mounts().to_vec() {
        print_manifest(&manifest);
    }
    // Per-bundle verification: each namespace's shards are queried at
    // *its own* dataset dimension (bundles of different dimensions mount
    // fine side by side; one shared workload would not fit them all).
    if verify > 0 {
        for (ns, path) in &mounts {
            let bundle = load_bundle_with(path, backend);
            let index = bundle
                .indexes
                .first()
                .cloned()
                .or_else(|| bundle.registry.any_pooled_index());
            let Some(index) = index else {
                println!("  verify {ns}: no pooled index, skipping query verification");
                continue;
            };
            println!("  namespace {ns}:");
            verify_shard_budgets(&bundle.registry, &index, verify, seed);
        }
    }
}

fn cmd_swap(flags: HashMap<String, String>) {
    let spec = required(&flags, "mounts");
    let swap_spec = required(&flags, "swap");
    let requests_n: usize = flag(&flags, "requests", 256);
    let batch: usize = flag(&flags, "batch", 16);
    let threads: usize = flag(&flags, "threads", 4);
    let flips: u32 = flag(&flags, "flips", 6);
    let seed: u64 = flag(&flags, "seed", 99);
    let swaps = parse_mounts(&swap_spec);
    let [(swap_ns, swap_path)] = &swaps[..] else {
        die("--swap takes exactly one ns=path");
    };

    let mounts = Arc::new(MountTable::new());
    for (ns, path) in parse_mounts(&spec) {
        let receipt = mounts
            .mount(&ns, &path)
            .unwrap_or_else(|e| die(&format!("cannot mount {ns}={path}: {e}")));
        eprintln!(
            "mounted {} (epoch {})",
            receipt.manifest.as_ref().expect("mount manifest").summary(),
            receipt.epoch
        );
    }
    let initial = mounts.current();
    if initial.manifest(swap_ns).is_none() {
        die(&format!("--swap namespace {swap_ns:?} is not in --mounts"));
    }
    // One named workload round-robins over every shard across the swap,
    // so every mounted dataset must share its query dimension.
    require_one_dimension(&initial);
    let index = initial
        .pooled_indexes()
        .first()
        .cloned()
        .unwrap_or_else(|| die("mounted bundles hold no AnnIndex-backed shard"));
    let shard_names: Vec<String> = initial
        .listing()
        .into_iter()
        .map(|(name, _)| name)
        .collect();
    drop(initial);

    // Serve a workload round-robin over every mounted shard *by name*
    // while the swap lands: names stay valid across the epoch flip.
    let queries = hot_set_workload(&index, requests_n, (requests_n / 4).max(1), flips, seed);
    let reqs: Vec<NamedRequest> = queries
        .into_iter()
        .enumerate()
        .map(|(i, query)| NamedRequest {
            shard: shard_names[i % shard_names.len()].clone(),
            query,
        })
        .collect();
    let engine = Engine::over(
        Arc::clone(&mounts),
        EngineOptions {
            generation: batch.max(1),
            exec: ExecOptions::default(),
            batch_threads: threads,
        },
    );
    eprintln!(
        "serving {} requests over {} shard(s) while swapping {swap_ns}={swap_path}…",
        reqs.len(),
        shard_names.len()
    );
    let started = Instant::now();
    let (served, receipt) = std::thread::scope(|scope| {
        let engine = &engine;
        let reqs = &reqs;
        let serve = scope.spawn(move || engine.submit_named(reqs));
        let swap = scope.spawn({
            let mounts = Arc::clone(&mounts);
            let (ns, path) = (swap_ns.clone(), swap_path.clone());
            move || mounts.swap(&ns, &path)
        });
        (
            serve.join().expect("serve thread"),
            swap.join().expect("swap thread"),
        )
    });
    let wall = started.elapsed();
    let receipt = receipt.unwrap_or_else(|e| die(&format!("swap failed: {e}")));
    let failed = served.iter().filter(|r| r.is_err()).count();
    let ok: Vec<Served> = served.into_iter().filter_map(Result::ok).collect();
    let old_epoch_queries = ok.iter().filter(|s| s.epoch < receipt.epoch).count();
    let retired = receipt.wait_retired(std::time::Duration::from_secs(10));
    let stats = engine.stats();
    println!(
        "swap {} → epoch {}: {} queries ok ({} on the old epoch, {} on the new), {} failed, \
         old mount retired = {retired}, wall {:.1} ms",
        swap_ns,
        receipt.epoch,
        ok.len(),
        old_epoch_queries,
        ok.len() - old_epoch_queries,
        failed,
        wall.as_secs_f64() * 1e3
    );
    println!(
        "epochs served = {}, budget violations = {}",
        stats.epochs_served, stats.budget_violations
    );
    if failed > 0 || !retired || stats.budget_violations > 0 {
        die("hot swap must complete with zero failed queries and a fully retired old mount");
    }
}

/// An online (admission-queue) serving run, JSON-emitted by
/// `serve --online` and embedded in the `bench-serve` report.
#[derive(serde::Serialize, serde::Deserialize)]
struct OnlineReport {
    /// Window width (`max_generation`).
    window: usize,
    /// Window deadline in microseconds.
    max_wait_us: u64,
    /// Queue capacity (backpressure bound).
    capacity: usize,
    /// Target arrival rate in q/s (0 = open loop: enqueue immediately).
    rate_qps: f64,
    /// Arrivals shed with `Overloaded` (must be 0 for a clean exit).
    shed: u64,
    /// Enqueued requests that resolved to an error.
    failed: u64,
    /// Windows sealed.
    windows: u64,
    /// … because they reached `window` queries.
    sealed_by_fill: u64,
    /// … because the oldest waiter hit the deadline.
    sealed_by_deadline: u64,
    /// … because the queue was closed (final flush).
    sealed_by_drain: u64,
    /// Mean queries per sealed window.
    mean_fill: f64,
    /// The serving metrics of the resolved queries. `wait` holds the
    /// admission-wait percentiles; `latency` the in-generation latency.
    report: ServeReport,
}

/// Runs a request stream through an [`AdmissionQueue`], returning the
/// per-ticket resolutions in enqueue order plus locally-observed sheds.
/// `pace` is called before each enqueue (arrival-process hook).
fn drive_admission_queue(
    queue: &Arc<AdmissionQueue>,
    requests: Vec<NamedRequest>,
    mut pace: impl FnMut(usize),
) -> (Vec<Resolution>, u64) {
    std::thread::scope(|scope| {
        let driver = {
            let queue = Arc::clone(queue);
            scope.spawn(move || queue.run())
        };
        let mut tickets: Vec<Ticket> = Vec::with_capacity(requests.len());
        let mut shed = 0u64;
        for (i, request) in requests.into_iter().enumerate() {
            pace(i);
            match queue.enqueue(request) {
                Ok(ticket) => tickets.push(ticket),
                Err(e) => {
                    eprintln!("online: arrival {i} shed: {e}");
                    shed += 1;
                }
            }
        }
        queue.close();
        let resolutions: Vec<Resolution> = tickets.into_iter().map(Ticket::wait).collect();
        driver.join().expect("admission driver thread");
        (resolutions, shed)
    })
}

/// Builds the [`OnlineReport`] for one finished admission-queue run,
/// patching in the engine-side coalescing accounting (the queue path has
/// no per-call `GenerationTrace`s; the cumulative stats carry them).
fn online_report(
    label: String,
    engine: &Engine,
    queue: &AdmissionQueue,
    resolutions: &[Resolution],
    rate_qps: f64,
    wall: Duration,
) -> OnlineReport {
    let ok: Vec<Served> = resolutions
        .iter()
        .filter_map(|r| r.result.as_ref().ok().cloned())
        .collect();
    let failed = (resolutions.len() - ok.len()) as u64;
    let waits: Vec<u64> = resolutions.iter().map(|r| r.wait_ns).collect();
    let stats = engine.stats();
    let mut report = ServeReport::from_run(label, &ok, &[], wall)
        .with_options(engine.options())
        .with_wait(&waits);
    if let Some(manifest) = engine.registry().mounts().first() {
        report = report.with_backend(manifest);
    }
    report.probes_submitted = stats.probes_submitted;
    report.probes_executed = stats.probes_executed;
    report.coalescing_ratio = stats.coalescing_ratio();
    OnlineReport {
        window: queue.options().max_generation,
        max_wait_us: queue.options().max_wait.as_micros() as u64,
        capacity: queue.options().capacity,
        rate_qps,
        shed: stats.online.shed,
        failed,
        windows: stats.online.windows,
        sealed_by_fill: stats.online.sealed_by_fill,
        sealed_by_deadline: stats.online.sealed_by_deadline,
        sealed_by_drain: stats.online.sealed_by_drain,
        mean_fill: stats.online.fill_hist.mean(),
        report,
    }
}

/// Builds the `--trace-out` flight recorder for a serve run: a bounded
/// ring of `--trace-cap` events on the real clock, with anomaly dumps
/// going to `<trace-out>.flight`. `None` when tracing is off.
fn trace_recorder(flags: &HashMap<String, String>) -> Option<(String, Arc<FlightRecorder>)> {
    let path = flags.get("trace-out")?.clone();
    let cap: usize = flag(flags, "trace-cap", 4096);
    let flight = Arc::new(FlightRecorder::new(
        cap,
        Arc::new(RealClock::new()) as Arc<dyn Clock>,
        format!("{path}.flight"),
    ));
    Some((path, flight))
}

/// Writes the final ring to `path` as JSON lines and returns the trace
/// counters for the report.
fn finish_trace(path: &str, flight: &FlightRecorder) -> TraceCounters {
    let jsonl = flight.ring().to_jsonl();
    std::fs::write(path, &jsonl).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
    let counters = flight.counters();
    eprintln!(
        "trace → {path} ({} event(s), {} dropped, {} flight dump(s))",
        counters.events,
        counters.dropped,
        flight.dumps()
    );
    counters
}

/// `serve --online 1`: the admission-queue serving loop under a
/// Poisson-ish arrival stream on the real clock. Exits nonzero on any
/// shed arrival, failed query, or budget violation — the CI smoke
/// contract.
fn cmd_serve_online(flags: HashMap<String, String>) {
    let (registry, index) = registry_and_index(&flags);
    let requests_n: usize = flag(&flags, "requests", 256);
    let distinct: usize = flag(&flags, "distinct", requests_n / 4);
    let flips: u32 = flag(&flags, "flips", 6);
    let window: usize = flag(&flags, "window", 16);
    let threads: usize = flag(&flags, "threads", 4);
    let seed: u64 = flag(&flags, "seed", 99);
    let max_wait_us: u64 = flag(&flags, "max-wait-us", 500);
    let capacity: usize = flag(&flags, "queue-cap", requests_n.max(1));
    let rate: f64 = flag(&flags, "rate", 4000.0);

    let trace = trace_recorder(&flags);
    let mut engine = Engine::new(
        registry,
        EngineOptions {
            generation: window.max(1),
            exec: ExecOptions::default(),
            batch_threads: threads,
        },
    );
    if let Some((_, flight)) = &trace {
        engine = engine.recorded(Arc::clone(flight) as Arc<dyn Recorder>);
    }
    let engine = Arc::new(engine);
    let shard_names: Vec<String> = engine
        .registry()
        .listing()
        .into_iter()
        .map(|(name, _)| name)
        .collect();
    if shard_names.is_empty() {
        die("nothing to serve: registry is empty");
    }
    let queue = Arc::new(AdmissionQueue::new(
        Arc::clone(&engine),
        AdmissionOptions {
            max_generation: window.max(1),
            max_wait: Duration::from_micros(max_wait_us),
            capacity,
        },
        Arc::new(RealClock::new()),
    ));
    let queries = hot_set_workload(&index, requests_n, distinct.max(1), flips, seed);
    let requests: Vec<NamedRequest> = queries
        .into_iter()
        .enumerate()
        .map(|(i, query)| NamedRequest {
            shard: shard_names[i % shard_names.len()].clone(),
            query,
        })
        .collect();
    eprintln!(
        "online: {requests_n} arrivals at ~{rate:.0} q/s over {} shard(s), \
         window {window}, deadline {max_wait_us} µs, capacity {capacity}…",
        shard_names.len()
    );

    let mut rng = StdRng::seed_from_u64(seed ^ 0xA771);
    let started = Instant::now();
    let (resolutions, _) = drive_admission_queue(&queue, requests, |_| {
        if rate > 0.0 {
            // Exponential inter-arrival times: a Poisson-ish open loop,
            // capped so one extreme draw cannot stall the stream.
            let u: f64 = rng.gen();
            let dt = (-(1.0 - u).ln() / rate).min(0.050);
            std::thread::sleep(Duration::from_secs_f64(dt));
        }
    });
    let wall = started.elapsed();
    let mut online = online_report(
        format!("online[window={window},rate={rate:.0}]"),
        &engine,
        &queue,
        &resolutions,
        rate,
        wall,
    );
    if let Some((path, flight)) = &trace {
        let counters = finish_trace(path, flight);
        online.report.trace_events = counters.events;
        online.report.trace_dropped = counters.dropped;
    }
    let json = serde_json::to_string(&online).expect("serialize online report");
    println!("{json}");
    if let Some(out) = flags.get("out") {
        std::fs::write(out, &json).unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
        eprintln!("report → {out}");
    }
    eprintln!(
        "online: {} ok, {} failed, {} shed; {} windows (fill {}, deadline {}, drain {}), \
         mean fill {:.1}; wait p50/p99 {:.0}/{:.0} µs; latency p50/p99 {:.0}/{:.0} µs",
        online.report.queries,
        online.failed,
        online.shed,
        online.windows,
        online.sealed_by_fill,
        online.sealed_by_deadline,
        online.sealed_by_drain,
        online.mean_fill,
        online.report.wait.p50_us,
        online.report.wait.p99_us,
        online.report.latency.p50_us,
        online.report.latency.p99_us,
    );
    if online.shed > 0 || online.failed > 0 || online.report.budget_violations > 0 {
        die("online serve must complete with zero shed arrivals, zero failures and zero budget violations");
    }
}

fn cmd_serve(flags: HashMap<String, String>) {
    // Every annsctl flag takes a value, so honor it: `--online 0` (or
    // `false`) is the batch path, anything else switches online.
    let online = flags
        .get("online")
        .is_some_and(|v| v != "0" && v != "false");
    if online {
        return cmd_serve_online(flags);
    }
    let (registry, index) = registry_and_index(&flags);
    let requests_n: usize = flag(&flags, "requests", 256);
    let distinct: usize = flag(&flags, "distinct", requests_n / 4);
    let flips: u32 = flag(&flags, "flips", 6);
    let batch: usize = flag(&flags, "batch", 64);
    let threads: usize = flag(&flags, "threads", 4);
    let seed: u64 = flag(&flags, "seed", 99);
    let audit_n: usize = flag(&flags, "audit", requests_n.min(32));

    // Transcripts stay on so the round-integrity audit below can compare
    // the engine's execution against solo replay, query for query.
    let trace = trace_recorder(&flags);
    let mut engine = Engine::new(
        registry,
        EngineOptions {
            generation: batch.max(1),
            exec: ExecOptions::with_transcript(),
            batch_threads: threads,
        },
    );
    if let Some((_, flight)) = &trace {
        engine = engine.recorded(Arc::clone(flight) as Arc<dyn Recorder>);
    }
    let engine = engine;
    let queries = hot_set_workload(&index, requests_n, distinct, flips, seed);
    let shards = engine.registry().len();
    if shards == 0 {
        die("nothing to serve: registry is empty");
    }
    let reqs: Vec<QueryRequest> = queries
        .into_iter()
        .enumerate()
        .map(|(i, query)| QueryRequest {
            shard: ShardId(i % shards),
            query,
        })
        .collect();
    eprintln!(
        "serving {} requests ({} distinct) over {} shard(s), generation width {batch}…",
        reqs.len(),
        distinct,
        shards
    );
    for (name, label) in engine.registry().listing() {
        eprintln!("  shard {name}: {label}");
    }
    let started = Instant::now();
    let (served, traces) = engine.submit_batch_traced(&reqs);
    let wall = started.elapsed();
    let mut report =
        ServeReport::from_run(format!("engine[batch={batch}]"), &served, &traces, wall)
            .with_options(engine.options());
    if let Some(manifest) = engine.registry().mounts().first() {
        report = report.with_backend(manifest);
    }
    if let Some((path, flight)) = &trace {
        report = report.with_trace(finish_trace(path, flight));
    }
    let json = serde_json::to_string(&report).expect("serialize serve report");
    println!("{json}");
    if let Some(out) = flags.get("out") {
        std::fs::write(out, &json).unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
        eprintln!("report → {out}");
    }

    // Round-integrity audit: replay a sample solo and demand identical
    // rounds and transcripts. Together with the budget verdicts this
    // decides the exit code — CI must fail on bad serving behavior, not
    // archive a green-looking artifact of it.
    let mut audit_ok = true;
    for (req, s) in reqs.iter().zip(served.iter()).take(audit_n) {
        let (_, solo_ledger, solo_transcript) = execute_with(
            &SoloServable(engine.registry().scheme(req.shard)),
            &req.query,
            ExecOptions::with_transcript(),
        );
        audit_ok &= s.ledger.rounds() == solo_ledger.rounds() && s.transcript == solo_transcript;
    }
    let mut failed = false;
    if !audit_ok {
        eprintln!("serve: round-integrity audit FAILED over {audit_n} queries");
        failed = true;
    } else {
        eprintln!("serve: round-integrity audit passed over {audit_n} queries");
    }
    if report.budget_violations > 0 {
        eprintln!(
            "serve: {} queries exceeded their declared budgets",
            report.budget_violations
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

/// Parses `--tenants name:rate:burst[,name:rate:burst…]` into
/// per-tenant token-bucket policies (`rate` tokens/s refill, `burst`
/// bucket capacity; rate 0 means the tenant gets exactly `burst`
/// tokens, ever).
fn parse_tenants(spec: &str) -> Vec<(String, TenantPolicy)> {
    spec.split(',')
        .map(str::trim)
        .filter(|part| !part.is_empty())
        .map(|part| {
            let fields: Vec<&str> = part.split(':').collect();
            let [name, rate, burst] = fields[..] else {
                die(&format!("--tenants entry {part:?} must be name:rate:burst"));
            };
            let rate: f64 = rate
                .parse()
                .unwrap_or_else(|_| die(&format!("--tenants {name}: cannot parse rate {rate:?}")));
            let burst: f64 = burst.parse().unwrap_or_else(|_| {
                die(&format!("--tenants {name}: cannot parse burst {burst:?}"))
            });
            (
                name.to_string(),
                TenantPolicy {
                    rate_per_sec: rate,
                    burst,
                },
            )
        })
        .collect()
}

/// `annsctl server`: binds the framed TCP front (`anns-server`) over an
/// engine built from the usual serving surface (`--from-store`,
/// `--mounts`, or a cold build) and serves until a `Shutdown` frame (or
/// signal-less drain via `annsctl client --shutdown 1`) arrives. The
/// bound address goes to stdout and — for scripts that must not parse
/// logs — to `--addr-file`; the drain report (global admission counters
/// plus per-tenant usage rows) is written as JSON to `--out`, and
/// `--trace-out` installs the same flight-recording ring `serve` takes.
fn cmd_server(flags: HashMap<String, String>) {
    let (registry, _index) = registry_and_index(&flags);
    let listen: String = flag(&flags, "listen", "127.0.0.1:0".to_string());
    let window: usize = flag(&flags, "window", 16);
    let max_wait_us: u64 = flag(&flags, "max-wait-us", 2_000);
    let capacity: usize = flag(&flags, "queue-cap", 256);
    let drivers: usize = flag(&flags, "drivers", 0);
    let threads: usize = flag(&flags, "threads", 2);
    let rate: f64 = flag(&flags, "rate", 1_000.0);
    let burst: f64 = flag(&flags, "burst", 256.0);
    let max_conns: usize = flag(&flags, "max-conns", 256);
    // The arrival-rate deadline adapter is on by default; `--adapt 0`
    // pins the configured cap (what the deterministic CI runs want).
    let adapt = flags.get("adapt").is_none_or(|v| v != "0" && v != "false");
    let policies = flags
        .get("tenants")
        .map(|s| parse_tenants(s))
        .unwrap_or_default();

    let trace = trace_recorder(&flags);
    let mut engine = Engine::new(
        registry,
        EngineOptions {
            generation: window.max(1),
            exec: ExecOptions::default(),
            batch_threads: threads,
        },
    );
    if let Some((_, flight)) = &trace {
        engine = engine.recorded(Arc::clone(flight) as Arc<dyn Recorder>);
    }
    let opts = ServerOptions {
        admission: AdmissionOptions {
            max_generation: window.max(1),
            max_wait: Duration::from_micros(max_wait_us),
            capacity,
        },
        drivers,
        default_policy: TenantPolicy {
            rate_per_sec: rate,
            burst,
        },
        policies: policies.clone(),
        adapt_max_wait: adapt,
        max_connections: max_conns,
    };
    let server = AnnsServer::bind(&listen, Arc::new(engine), opts, Arc::new(RealClock::new()))
        .unwrap_or_else(|e| die(&format!("cannot bind {listen}: {e}")));
    let addr = server.local_addr();
    println!("listening {addr}");
    if let Some(path) = flags.get("addr-file") {
        std::fs::write(path, addr.to_string())
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
    }
    eprintln!(
        "server: {} shard(s), {} driver(s), window {window}, deadline cap {max_wait_us} µs \
         ({}), capacity {capacity}, max-conns {max_conns}, default policy {rate}/s burst {burst}, \
         {} tenant override(s)",
        server.engine().registry().len(),
        server.drivers(),
        if adapt { "adaptive" } else { "pinned" },
        policies.len()
    );
    server.run();
    let report = server.report();
    if let Some((path, flight)) = &trace {
        finish_trace(path, flight);
    }
    let json = serde_json::to_string(&report).expect("serialize server report");
    if let Some(out) = flags.get("out") {
        std::fs::write(out, &json).unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
        eprintln!("report → {out}");
    } else {
        println!("{json}");
    }
    eprintln!(
        "server: drained; {} served, {} enqueued, {} shed, {} window(s), {} tenant(s), \
         max_wait settled at {} µs",
        report.queries,
        report.enqueued,
        report.shed,
        report.windows,
        report.tenants.len(),
        report.max_wait_us
    );
}

/// `annsctl client` exit codes: each refusal class is distinct so
/// scripts branch on the verdict, never on stderr text. (2 is `die`'s
/// usage-error code; 0 is success.)
const EXIT_OVERLOADED: i32 = 3;
const EXIT_CLOSED: i32 = 4;
const EXIT_THROTTLED: i32 = 5;
const EXIT_TRANSPORT: i32 = 6;
const EXIT_SERVER_OTHER: i32 = 7;

/// Prints the typed failure and exits with its class's code.
fn client_fail(context: &str, e: &ClientError) -> ! {
    eprintln!("annsctl client: {context}: {e}");
    let code = match e {
        ClientError::Server(fault) => match fault.code {
            ErrorCode::Overloaded => EXIT_OVERLOADED,
            ErrorCode::Closed => EXIT_CLOSED,
            ErrorCode::Throttled => EXIT_THROTTLED,
            _ => EXIT_SERVER_OTHER,
        },
        ClientError::Transport(_) | ClientError::Frame(_) | ClientError::Protocol(_) => {
            EXIT_TRANSPORT
        }
    };
    std::process::exit(code);
}

/// Resolves the server address from `--addr`, or from the `--addr-file`
/// that `annsctl server` writes once bound.
fn client_addr(flags: &HashMap<String, String>) -> String {
    if let Some(addr) = flags.get("addr") {
        return addr.clone();
    }
    if let Some(path) = flags.get("addr-file") {
        return std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")))
            .trim()
            .to_string();
    }
    die("--addr (or --addr-file) is required")
}

/// `annsctl client`: one framed TCP session against a running server —
/// handshake, `--count` queries as `--tenant`, and optionally a
/// `Shutdown` (`--shutdown 1`). Query points are random at the listed
/// shard's dimension: the client has no dataset; it exercises the
/// protocol and the admission tier, not recall.
fn cmd_client(flags: HashMap<String, String>) {
    let addr = client_addr(&flags);
    let tenant: String = flag(&flags, "tenant", "default".to_string());
    let count: usize = flag(&flags, "count", 1);
    let seed: u64 = flag(&flags, "seed", 99);
    let shutdown = flags
        .get("shutdown")
        .is_some_and(|v| v != "0" && v != "false");

    let (mut client, shards) = match Client::connect(addr.as_str()) {
        Ok(ok) => ok,
        Err(e) => client_fail("connect", &e),
    };
    let first = shards
        .first()
        .unwrap_or_else(|| die("server has no mounted shards"));
    let shard: String = flag(&flags, "shard", first.name.clone());
    // An unknown --shard still queries (the refusal must arrive typed,
    // that's the point); generate at the first shard's dimension then.
    let dim = shards
        .iter()
        .find(|s| s.name == shard)
        .map(|s| s.dim)
        .filter(|&d| d > 0)
        .unwrap_or(first.dim);
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..count {
        let point = Point::random(dim, &mut rng);
        match client.query(&tenant, &shard, &point) {
            Ok(reply) => println!(
                "query {i}: index {:?}, {} round(s), {} probe(s), depth {}, \
                 ticket {:.1} µs, answer {:.1} µs",
                reply.answer.index,
                reply.answer.rounds,
                reply.answer.probes,
                reply.depth,
                reply.ticket_rtt_ns as f64 / 1e3,
                reply.answer_rtt_ns as f64 / 1e3,
            ),
            Err(e) => client_fail(&format!("query {i}"), &e),
        }
    }
    if shutdown {
        match client.shutdown_server() {
            Ok(served) => println!("shutdown: server drained after {served} served"),
            Err(e) => client_fail("shutdown", &e),
        }
    }
}

/// `trace inspect`: offline summary of a JSON-lines trace written by
/// `serve --trace-out` (or dumped mid-flight to `<path>.flight`).
/// Renders event counts, the sealed-window history, per-generation
/// coalescing, per-query timelines, and the admission-queue depth the
/// arrivals observed — the debugging views the ring exists for.
fn cmd_trace(args: &[String]) {
    if args.first().map(String::as_str) != Some("inspect") {
        die("trace needs an action: annsctl trace inspect --trace <trace.jsonl> [--limit 12]");
    }
    let flags = parse_flags(&args[1..]);
    let path = required(&flags, "trace");
    let limit: usize = flag(&flags, "limit", 12);
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let records = anns_obs::parse_jsonl(&text)
        .unwrap_or_else(|(line, e)| die(&format!("{path}:{line}: bad trace record: {e}")));
    let Some(last) = records.last() else {
        println!("{path}: empty trace");
        return;
    };
    let anomalies = records
        .iter()
        .filter(|r| r.event.is_flight_trigger())
        .count();
    println!(
        "trace {path}: {} record(s), seq {}..{}, ts {}..{} ns, {anomalies} anomal{}",
        records.len(),
        records[0].seq,
        last.seq,
        records[0].ts_ns,
        last.ts_ns,
        if anomalies == 1 { "y" } else { "ies" }
    );

    // Event vocabulary: what happened, how often.
    let mut kinds: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for r in &records {
        *kinds.entry(r.event.kind()).or_insert(0) += 1;
    }
    let mut table = MarkdownTable::new(&["event", "count"]);
    for (kind, count) in &kinds {
        table.row(vec![kind.to_string(), count.to_string()]);
    }
    println!("\nevents:");
    table.print();

    // Sealed windows: why each generation window closed, how full it
    // was, and how long its oldest arrival waited.
    let windows: Vec<_> = records
        .iter()
        .filter_map(|r| match &r.event {
            TraceEvent::GenerationSealed {
                window,
                reason,
                fill,
                wait_ns,
            } => Some((*window, reason.clone(), *fill, *wait_ns)),
            _ => None,
        })
        .collect();
    if !windows.is_empty() {
        let mut table = MarkdownTable::new(&["window", "reason", "fill", "wait µs"]);
        for (window, reason, fill, wait_ns) in windows.iter().take(limit) {
            table.row(vec![
                window.to_string(),
                reason.clone(),
                fill.to_string(),
                format!("{:.1}", *wait_ns as f64 / 1e3),
            ]);
        }
        println!(
            "\nsealed windows (first {} of {}):",
            limit.min(windows.len()),
            windows.len()
        );
        table.print();
    }

    // Per-generation coalescing: submitted vs deduped across every
    // round dispatch of each generation.
    let mut gens: std::collections::BTreeMap<u64, (u64, u64, u64)> =
        std::collections::BTreeMap::new();
    for r in &records {
        if let TraceEvent::RoundDispatched {
            gen,
            submitted,
            deduped,
            ..
        } = &r.event
        {
            let e = gens.entry(*gen).or_insert((0, 0, 0));
            e.0 += 1;
            e.1 += submitted;
            e.2 += deduped;
        }
    }
    if !gens.is_empty() {
        let mut table = MarkdownTable::new(&["gen", "dispatches", "submitted", "deduped", "ratio"]);
        for (gen, (dispatches, submitted, deduped)) in gens.iter().take(limit) {
            table.row(vec![
                gen.to_string(),
                dispatches.to_string(),
                submitted.to_string(),
                deduped.to_string(),
                if *submitted > 0 {
                    format!("{:.3}", *deduped as f64 / *submitted as f64)
                } else {
                    "-".to_string()
                },
            ]);
        }
        println!(
            "\ncoalescing per generation (first {} of {}):",
            limit.min(gens.len()),
            gens.len()
        );
        table.print();
    }

    // Per-query timeline: one row per completion, in completion order.
    let served: Vec<_> = records
        .iter()
        .filter_map(|r| match &r.event {
            TraceEvent::QueryServed {
                gen,
                slot,
                rounds,
                probes,
                wait_ns,
                within_budget,
            } => Some((*gen, *slot, *rounds, *probes, *wait_ns, *within_budget)),
            _ => None,
        })
        .collect();
    if !served.is_empty() {
        let mut table =
            MarkdownTable::new(&["gen", "slot", "rounds", "probes", "wait µs", "in budget"]);
        for (gen, slot, rounds, probes, wait_ns, within) in served.iter().take(limit) {
            table.row(vec![
                gen.to_string(),
                slot.to_string(),
                rounds.to_string(),
                probes.to_string(),
                format!("{:.1}", *wait_ns as f64 / 1e3),
                within.to_string(),
            ]);
        }
        println!(
            "\nquery timeline (first {} of {}):",
            limit.min(served.len()),
            served.len()
        );
        table.print();
    }

    // Queue depth over time, as each arrival observed it.
    let depths: Vec<u64> = records
        .iter()
        .filter_map(|r| match &r.event {
            TraceEvent::QueryAdmitted { depth } | TraceEvent::Shed { depth, .. } => Some(*depth),
            _ => None,
        })
        .collect();
    if !depths.is_empty() {
        let shed = kinds.get("shed").copied().unwrap_or(0);
        println!(
            "\nqueue depth over {} arrival(s): max {}, mean {:.1}, {} shed",
            depths.len(),
            depths.iter().max().unwrap(),
            depths.iter().sum::<u64>() as f64 / depths.len() as f64,
            shed
        );
    }

    // `--server-report`: reconcile the trace's per-tenant
    // `tenant_decision` events against a server drain report, by exact
    // equality. Both sides are pure functions of the workload — one
    // event per decision, one counter bump per decision — so any drift
    // is an accounting bug, and this dies on it (the CI smoke step).
    if let Some(report_path) = flags.get("server-report") {
        let json = std::fs::read_to_string(report_path)
            .unwrap_or_else(|e| die(&format!("cannot read {report_path}: {e}")));
        let report: ServerReport = serde_json::from_str(&json)
            .unwrap_or_else(|e| die(&format!("bad server report {report_path}: {e}")));
        if report.trace_dropped != 0 {
            die(&format!(
                "{report_path}: {} trace event(s) dropped — a lossy ring cannot reconcile; \
                 raise --trace-cap on the server",
                report.trace_dropped
            ));
        }
        let mut counts: std::collections::BTreeMap<(String, String), u64> =
            std::collections::BTreeMap::new();
        for r in &records {
            if let TraceEvent::TenantDecision {
                tenant, decision, ..
            } = &r.event
            {
                *counts
                    .entry((tenant.clone(), decision.clone()))
                    .or_insert(0) += 1;
            }
        }
        let mut table = MarkdownTable::new(&["tenant", "decision", "trace", "report", "ok"]);
        let mut mismatches = 0u64;
        for row in &report.tenants {
            for (decision, expected) in [
                ("admitted", row.enqueued),
                ("throttled", row.throttled),
                ("shed", row.shed),
            ] {
                let got = counts
                    .remove(&(row.tenant.clone(), decision.to_string()))
                    .unwrap_or(0);
                let ok = got == expected;
                mismatches += u64::from(!ok);
                table.row(vec![
                    row.tenant.clone(),
                    decision.to_string(),
                    got.to_string(),
                    expected.to_string(),
                    ok.to_string(),
                ]);
            }
        }
        // Decisions for tenants the report does not list are drift too.
        for ((tenant, decision), got) in counts {
            mismatches += 1;
            table.row(vec![
                tenant,
                decision,
                got.to_string(),
                "-".into(),
                "false".into(),
            ]);
        }
        println!("\ntenant decisions vs {report_path}:");
        table.print();
        if mismatches > 0 {
            die(&format!(
                "{mismatches} tenant-decision mismatch(es): trace and report must reconcile exactly"
            ));
        }
        println!("tenant decisions reconcile exactly with {report_path}");
    }
}

/// `bench-serve` output: config, the per-query `run_batch` baseline, one
/// engine run per generation width, a deterministic admission-queue run,
/// and the round-integrity audit. Deserializable so `bench-gate` can
/// reload committed artifacts.
#[derive(serde::Serialize, serde::Deserialize)]
struct BenchServeReport {
    config: BenchServeConfig,
    baseline: ServeReport,
    engine: Vec<EngineRun>,
    /// The widest engine run repeated with a ring recorder installed:
    /// results must stay identical, the event count is a pure function
    /// of the workload (gated exactly), and the wall-clock overhead
    /// versus the untraced run at the same width is gated loosely.
    traced: TracedRun,
    /// The same request stream through the admission queue on a *virtual*
    /// clock, pre-enqueued so every window fill-seals at the widest batch
    /// width: its coalescing is deterministic and gated tightly.
    online: OnlineReport,
    audit: AuditReport,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct TracedRun {
    batch: usize,
    /// Traced wall clock / untraced wall clock at the same batch width.
    overhead_vs_untraced: f64,
    /// Ring counters after the run. `trace_events` is deterministic in
    /// the workload; `trace_dropped` must be 0 (the ring is sized for
    /// the whole run).
    trace_events: u64,
    trace_dropped: u64,
    report: ServeReport,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct BenchServeConfig {
    n: usize,
    d: u32,
    k: u32,
    requests: usize,
    distinct: usize,
    flips: u32,
    threads: usize,
    seed: u64,
    quick: bool,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct EngineRun {
    batch: usize,
    speedup_vs_baseline: f64,
    report: ServeReport,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct AuditReport {
    queries: usize,
    /// Engine round count per query equals the solo round count.
    rounds_identical: bool,
    /// Full (round, address, word) transcripts are byte-identical.
    transcripts_identical: bool,
}

fn cmd_bench_serve(flags: HashMap<String, String>) {
    let quick = quick_mode();
    // Defaults model a serving tier: an instance big enough that probes
    // cost real work (lazy oracles scan all n sketches per probe) and a
    // hot query pool (each distinct query ~16x in the stream) — the
    // traffic shape cross-query coalescing exists for. On this kind of
    // workload the coalesced engine overtakes per-query `run_batch` once
    // the generation window spans the hot set (batch ≥ 64 at defaults).
    let index = if let Some(path) = flags.get("from-store") {
        // Warm start: the whole point of the store — bench (and CI) reuse
        // one build instead of paying preprocessing per run.
        let bundle = Registry::load_bundle(path)
            .unwrap_or_else(|e| die(&format!("cannot load store {path}: {e}")));
        let index = bundle
            .indexes
            .first()
            .cloned()
            .unwrap_or_else(|| die(&format!("{path} holds no AnnIndex-backed shard")));
        eprintln!(
            "warm start: index n = {}, d = {} from {path}",
            index.dataset().len(),
            index.dataset().dim()
        );
        index
    } else {
        load_or_build_index(
            &flags,
            if quick { 256 } else { 8192 },
            if quick { 256 } else { 512 },
        )
    };
    let k: u32 = flag(&flags, "k", 3);
    let requests_n: usize = flag(&flags, "requests", if quick { 64 } else { 256 });
    let distinct: usize = flag(&flags, "distinct", (requests_n / 16).max(4));
    let flips: u32 = flag(&flags, "flips", 6);
    let threads: usize = flag(&flags, "threads", 4);
    let seed: u64 = flag(&flags, "seed", 99);
    let shards_n: usize = flag(&flags, "shards", 1);
    let out = flag(&flags, "out", "BENCH_serve.json".to_string());
    let batches_flag: String = flag(
        &flags,
        "batches",
        if quick {
            "4,16".to_string()
        } else {
            "8,64,256".to_string()
        },
    );
    let batches: Vec<usize> = batches_flag
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .unwrap_or_else(|_| die(&format!("--batches: cannot parse {s:?}")))
        })
        .collect();

    /// Times each query inside its `run_batch` worker thread, so baseline
    /// latencies describe the same (threaded, contended) execution the
    /// wall clock does.
    struct TimedSolo<'a>(SoloServable<'a>);
    impl CellProbeScheme for TimedSolo<'_> {
        type Query = Point;
        type Answer = (anns_core::ServedAnswer, u64);
        fn table(&self) -> &dyn Table {
            CellProbeScheme::table(&self.0)
        }
        fn word_bits(&self) -> u64 {
            CellProbeScheme::word_bits(&self.0)
        }
        fn run(&self, query: &Point, exec: &mut RoundExecutor<'_>) -> Self::Answer {
            let t0 = Instant::now();
            let answer = self.0.run(query, exec);
            (answer, t0.elapsed().as_nanos() as u64)
        }
    }

    let queries = hot_set_workload(&index, requests_n, distinct, flips, seed);
    let scheme_name = format!("alg1-k{k}");
    let servable = anns_core::ServeAlg1 {
        index: Arc::clone(&index),
        k,
        tau_override: None,
    };

    // Baseline: per-query `run_batch` over the same scheme object, with
    // each query timed *inside* its worker thread — latencies and wall
    // clock describe the same threaded execution.
    eprintln!(
        "baseline: run_batch over {} requests, {threads} threads…",
        queries.len()
    );
    let timed = TimedSolo(SoloServable(&servable));
    let started = Instant::now();
    let batch_items = run_batch(&timed, &queries, threads, ExecOptions::default());
    let baseline_wall = started.elapsed();
    let baseline_served: Vec<Served> = batch_items
        .into_iter()
        .map(|item| {
            let (answer, latency_ns) = item.answer;
            // Same budget verdict the engine computes, so the two reports
            // are comparable field for field.
            let within_budget = servable.within_budget(&item.ledger);
            Served {
                answer,
                ledger: item.ledger,
                transcript: None,
                latency_ns,
                within_budget,
                epoch: 0,
            }
        })
        .collect();
    let mut baseline = ServeReport::from_run(
        format!("run_batch[threads={threads}]"),
        &baseline_served,
        &[],
        baseline_wall,
    );
    // Per-query execution coalesces nothing: every submitted probe runs.
    let baseline_probes: u64 = baseline_served
        .iter()
        .map(|s| s.ledger.total_probes() as u64)
        .sum();
    baseline.probes_submitted = baseline_probes;
    baseline.probes_executed = baseline_probes;

    // Multi-shard mode: save the single-shard registry once and mount it
    // N times under namespaces s0..s{N-1}. Cross-bundle deduplication
    // shares the one index; each namespace is still its own shard, so
    // every generation-round dispatches one coalesced batch per shard —
    // the paper's parallel batch surface, scaled by the mount table.
    let shard_bundle: Option<Vec<u8>> = (shards_n > 1).then(|| {
        let mut single = Registry::new();
        single.register_alg1(scheme_name.clone(), Arc::clone(&index), k);
        let mut bytes = Vec::new();
        single
            .save_bundle_to(&mut bytes)
            .unwrap_or_else(|e| die(&format!("cannot bundle the shard registry: {e}")));
        bytes
    });
    let serving_registry = || -> (Registry, Vec<ShardId>) {
        match &shard_bundle {
            None => {
                let mut registry = Registry::new();
                let shard = registry.register_alg1(scheme_name.clone(), Arc::clone(&index), k);
                (registry, vec![shard])
            }
            Some(bytes) => {
                let mut registry = Registry::new();
                let mut ids = Vec::with_capacity(shards_n);
                for s in 0..shards_n {
                    let ns = format!("s{s}");
                    registry
                        .mount_from(&ns, &bytes[..], "<bench-serve>")
                        .unwrap_or_else(|e| die(&format!("cannot mount {ns}: {e}")));
                    ids.push(
                        registry
                            .resolve(&format!("{ns}/{scheme_name}"))
                            .expect("mounted shard resolves"),
                    );
                }
                (registry, ids)
            }
        }
    };

    // Engine runs: one per generation width, same request stream.
    let mut engine_runs = Vec::new();
    for &batch in &batches {
        let (registry, shard_ids) = serving_registry();
        let engine = Engine::new(
            registry,
            EngineOptions {
                generation: batch.max(1),
                exec: ExecOptions::default(),
                batch_threads: threads,
            },
        );
        let reqs: Vec<QueryRequest> = queries
            .iter()
            .enumerate()
            .map(|(i, query)| QueryRequest {
                shard: shard_ids[i % shard_ids.len()],
                query: query.clone(),
            })
            .collect();
        eprintln!("engine: generation width {batch}, {shards_n} shard(s)…");
        let started = Instant::now();
        let (served, traces) = engine.submit_batch_traced(&reqs);
        let wall = started.elapsed();
        // Correctness cross-check against the baseline run.
        for (s, b) in served.iter().zip(baseline_served.iter()) {
            assert_eq!(s.answer, b.answer, "engine answer diverged from run_batch");
            assert_eq!(s.ledger, b.ledger, "engine ledger diverged from run_batch");
        }
        let label = if shards_n > 1 {
            format!("engine[batch={batch},shards={shards_n}]")
        } else {
            format!("engine[batch={batch}]")
        };
        let report =
            ServeReport::from_run(label, &served, &traces, wall).with_options(engine.options());
        engine_runs.push(EngineRun {
            batch,
            speedup_vs_baseline: if report.wall_ms > 0.0 {
                baseline.wall_ms / report.wall_ms
            } else {
                0.0
            },
            report,
        });
    }

    // Traced re-run at the widest width: the observability layer's serve
    // contract, measured. Answers and ledgers must match the baseline
    // (tracing cannot perturb serving), and the wall-clock ratio against
    // the untraced run at the same width is the recorder's real cost.
    let traced = {
        let batch = batches.last().copied().unwrap_or(16).max(1);
        let untraced_wall_ms = engine_runs
            .iter()
            .find(|r| r.batch == batch)
            .map(|r| r.report.wall_ms)
            .unwrap_or(0.0);
        let (registry, shard_ids) = serving_registry();
        let ring = Arc::new(RingRecorder::new(
            65_536,
            Arc::new(RealClock::new()) as Arc<dyn Clock>,
        ));
        let engine = Engine::new(
            registry,
            EngineOptions {
                generation: batch,
                exec: ExecOptions::default(),
                batch_threads: threads,
            },
        )
        .recorded(Arc::clone(&ring) as Arc<dyn Recorder>);
        let reqs: Vec<QueryRequest> = queries
            .iter()
            .enumerate()
            .map(|(i, query)| QueryRequest {
                shard: shard_ids[i % shard_ids.len()],
                query: query.clone(),
            })
            .collect();
        eprintln!(
            "traced: generation width {batch}, ring capacity {}…",
            ring.capacity()
        );
        let started = Instant::now();
        let (served, traces) = engine.submit_batch_traced(&reqs);
        let wall = started.elapsed();
        for (s, b) in served.iter().zip(baseline_served.iter()) {
            assert_eq!(s.answer, b.answer, "traced answer diverged from run_batch");
            assert_eq!(s.ledger, b.ledger, "traced ledger diverged from run_batch");
        }
        let counters = ring.counters();
        let report = ServeReport::from_run(
            format!("engine[batch={batch},traced]"),
            &served,
            &traces,
            wall,
        )
        .with_options(engine.options())
        .with_trace(counters);
        TracedRun {
            batch,
            overhead_vs_untraced: if untraced_wall_ms > 0.0 {
                report.wall_ms / untraced_wall_ms
            } else {
                0.0
            },
            trace_events: counters.events,
            trace_dropped: counters.dropped,
            report,
        }
    };

    // Online admission run: same stream, pre-enqueued behind a parked
    // driver on a virtual clock, so every window fill-seals at the widest
    // batch width — the coalescing must be byte-for-byte the batch
    // engine's at that width, making it CI-gateable without wall-clock
    // noise (the deadline exists but virtual time never reaches it).
    let online = {
        let window = batches.last().copied().unwrap_or(16).max(1);
        let (registry, shard_ids) = serving_registry();
        let engine = Arc::new(Engine::new(
            registry,
            EngineOptions {
                generation: window,
                exec: ExecOptions::default(),
                batch_threads: threads,
            },
        ));
        let names: Vec<String> = shard_ids
            .iter()
            .map(|id| engine.registry().name(*id).to_string())
            .collect();
        let queue = Arc::new(AdmissionQueue::new(
            Arc::clone(&engine),
            AdmissionOptions {
                max_generation: window,
                max_wait: Duration::from_millis(1),
                capacity: queries.len().max(1),
            },
            Arc::new(VirtualClock::new()),
        ));
        let requests: Vec<NamedRequest> = queries
            .iter()
            .enumerate()
            .map(|(i, query)| NamedRequest {
                shard: names[i % names.len()].clone(),
                query: query.clone(),
            })
            .collect();
        eprintln!("online: admission queue, window {window} (virtual clock, saturated)…");
        let started = Instant::now();
        let (resolutions, shed) = drive_admission_queue(&queue, requests, |_| {});
        let wall = started.elapsed();
        if shed > 0 {
            die("bench-serve online run shed arrivals with capacity = request count");
        }
        // Correctness cross-check against the baseline run.
        for (r, b) in resolutions.iter().zip(baseline_served.iter()) {
            let s = r
                .result
                .as_ref()
                .unwrap_or_else(|e| die(&format!("online query failed: {e}")));
            assert_eq!(s.answer, b.answer, "online answer diverged from run_batch");
            assert_eq!(s.ledger, b.ledger, "online ledger diverged from run_batch");
        }
        online_report(
            format!("online[window={window}]"),
            &engine,
            &queue,
            &resolutions,
            0.0,
            wall,
        )
    };

    // Round-integrity audit: coalesced execution must use identical round
    // counts (and transcripts) per query versus solo execution.
    let audit_n = queries.len().min(2 * distinct);
    let mut registry = Registry::new();
    let shard = registry.register_alg1(scheme_name.clone(), Arc::clone(&index), k);
    let audit_engine = Engine::new(
        registry,
        EngineOptions {
            generation: audit_n.max(1),
            exec: ExecOptions::with_transcript(),
            batch_threads: threads,
        },
    );
    let audit_reqs: Vec<QueryRequest> = queries[..audit_n]
        .iter()
        .map(|query| QueryRequest {
            shard,
            query: query.clone(),
        })
        .collect();
    let audit_served = audit_engine.submit_batch(&audit_reqs);
    let mut rounds_identical = true;
    let mut transcripts_identical = true;
    for (req, s) in audit_reqs.iter().zip(audit_served.iter()) {
        let (_, solo_ledger, solo_transcript) = execute_with(
            &SoloServable(audit_engine.registry().scheme(shard)),
            &req.query,
            ExecOptions::with_transcript(),
        );
        rounds_identical &= s.ledger.rounds() == solo_ledger.rounds();
        transcripts_identical &= s.transcript == solo_transcript;
    }

    let report = BenchServeReport {
        config: BenchServeConfig {
            n: index.dataset().len(),
            d: index.dataset().dim(),
            k,
            requests: requests_n,
            distinct,
            flips,
            threads,
            seed,
            quick,
        },
        baseline,
        engine: engine_runs,
        traced,
        online,
        audit: AuditReport {
            queries: audit_n,
            rounds_identical,
            transcripts_identical,
        },
    };
    let json = serde_json::to_string(&report).expect("serialize bench-serve report");
    std::fs::write(&out, &json).unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
    println!(
        "baseline {:.0} qps; {}",
        report.baseline.qps,
        report
            .engine
            .iter()
            .map(|r| format!(
                "batch {}: {:.0} qps ({:.2}x, coalescing {:.2})",
                r.batch, r.report.qps, r.speedup_vs_baseline, r.report.coalescing_ratio
            ))
            .collect::<Vec<_>>()
            .join("; ")
    );
    println!(
        "traced batch {}: {:.0} qps, {:.2}x vs untraced, {} event(s), {} dropped",
        report.traced.batch,
        report.traced.report.qps,
        report.traced.overhead_vs_untraced,
        report.traced.trace_events,
        report.traced.trace_dropped
    );
    println!(
        "online window {}: {:.0} qps (coalescing {:.2}), {} windows ({} fill / {} drain), {} shed",
        report.online.window,
        report.online.report.qps,
        report.online.report.coalescing_ratio,
        report.online.windows,
        report.online.sealed_by_fill,
        report.online.sealed_by_drain,
        report.online.shed
    );
    println!(
        "audit over {} queries: rounds identical = {}, transcripts identical = {}",
        report.audit.queries, report.audit.rounds_identical, report.audit.transcripts_identical
    );
    println!("report → {out}");
    if !(report.audit.rounds_identical && report.audit.transcripts_identical) {
        die("round-integrity audit failed");
    }
}

/// `bench-kernels` output: one row per dimension comparing the scalar
/// per-`Point` distance loop against the limb-major `PackedBlock`
/// kernels. Deserializable so `bench-gate` can reload the committed
/// `BENCH_kernels_quick.json` reference.
#[derive(serde::Serialize, serde::Deserialize)]
struct BenchKernelsReport {
    config: BenchKernelsConfig,
    rows: Vec<KernelRow>,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct BenchKernelsConfig {
    n: usize,
    queries: usize,
    reps: usize,
    seed: u64,
    quick: bool,
    dims: Vec<u32>,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct KernelRow {
    d: u32,
    /// Best-of-reps ns per distance, scalar `Point::distance` loop.
    scalar_ns: f64,
    /// Best-of-reps ns per distance, one-vs-many `distances_into`.
    one_vs_many_ns: f64,
    /// Best-of-reps ns per distance, `many_distances_into`.
    many_vs_many_ns: f64,
    /// `scalar_ns / one_vs_many_ns`.
    one_vs_many_speedup: f64,
    /// `scalar_ns / many_vs_many_ns`.
    many_vs_many_speedup: f64,
}

fn cmd_bench_kernels(flags: HashMap<String, String>) {
    use std::hint::black_box;
    let quick = quick_mode();
    let n: usize = flag(&flags, "n", if quick { 2048 } else { 16384 });
    let queries_n: usize = flag(&flags, "queries", if quick { 8 } else { 16 });
    let reps: usize = flag(&flags, "reps", if quick { 3 } else { 5 });
    let seed: u64 = flag(&flags, "seed", 7);
    let out = flag(&flags, "out", "BENCH_kernels.json".to_string());
    let dims_flag: String = flag(&flags, "dims", "64,256,512".to_string());
    let dims: Vec<u32> = dims_flag
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .unwrap_or_else(|_| die(&format!("--dims: cannot parse {s:?}")))
        })
        .collect();

    /// Best-of-`reps` wall clock of `work`, as ns per distance over
    /// `pairs` evaluations (best-of: minimum over reps is the standard
    /// noise floor estimator on shared runners).
    fn best_ns_per_dist(reps: usize, pairs: usize, mut work: impl FnMut() -> u64) -> (f64, u64) {
        let mut best = f64::INFINITY;
        let mut checksum = 0u64;
        for _ in 0..reps {
            let t0 = Instant::now();
            checksum = work();
            let ns = t0.elapsed().as_nanos() as f64;
            best = best.min(ns / pairs as f64);
        }
        (best, checksum)
    }

    let mut rows = Vec::with_capacity(dims.len());
    for &d in &dims {
        let mut rng = StdRng::seed_from_u64(seed ^ u64::from(d));
        let ds = gen::uniform(n, d, &mut rng);
        let queries: Vec<Point> = (0..queries_n).map(|_| Point::random(d, &mut rng)).collect();
        let pairs = n * queries_n;

        let (scalar_ns, scalar_sum) = best_ns_per_dist(reps, pairs, || {
            let mut sum = 0u64;
            for q in &queries {
                for p in ds.points() {
                    sum += u64::from(black_box(q.distance(p)));
                }
            }
            sum
        });

        let block = ds.packed();
        let mut buf = vec![0u32; n];
        let (one_ns, one_sum) = best_ns_per_dist(reps, pairs, || {
            let mut sum = 0u64;
            for q in &queries {
                block.distances_into(q, &mut buf);
                sum += black_box(&buf).iter().map(|&x| u64::from(x)).sum::<u64>();
            }
            sum
        });

        let mut many_buf = vec![0u32; n * queries_n];
        let (many_ns, many_sum) = best_ns_per_dist(reps, pairs, || {
            block.many_distances_into(&queries, &mut many_buf);
            black_box(&many_buf).iter().map(|&x| u64::from(x)).sum()
        });

        // The kernels are byte-identical to the scalar path; a checksum
        // mismatch here means the benchmark itself is broken.
        assert_eq!(
            scalar_sum, one_sum,
            "one-vs-many checksum diverged at d={d}"
        );
        assert_eq!(
            scalar_sum, many_sum,
            "many-vs-many checksum diverged at d={d}"
        );

        let row = KernelRow {
            d,
            scalar_ns,
            one_vs_many_ns: one_ns,
            many_vs_many_ns: many_ns,
            one_vs_many_speedup: scalar_ns / one_ns,
            many_vs_many_speedup: scalar_ns / many_ns,
        };
        println!(
            "d={:>5}: scalar {:.2} ns/dist, one-vs-many {:.2} ({:.2}x), many-vs-many {:.2} ({:.2}x)",
            row.d,
            row.scalar_ns,
            row.one_vs_many_ns,
            row.one_vs_many_speedup,
            row.many_vs_many_ns,
            row.many_vs_many_speedup
        );
        rows.push(row);
    }

    let report = BenchKernelsReport {
        config: BenchKernelsConfig {
            n,
            queries: queries_n,
            reps,
            seed,
            quick,
            dims,
        },
        rows,
    };
    let json = serde_json::to_string(&report).expect("serialize bench-kernels report");
    std::fs::write(&out, &json).unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
    println!("report → {out}");
}

/// `bench-obs` output: the recorder fast-path microbenchmark.
/// Deserializable so `bench-gate` can reload the committed
/// `BENCH_obs_quick.json` reference.
#[derive(serde::Serialize, serde::Deserialize)]
struct BenchObsReport {
    config: BenchObsConfig,
    /// Best-of-reps ns per emission site with the `NullRecorder`: one
    /// virtual `enabled()` call, no event construction. This is what
    /// every instrumented hot loop pays when tracing is off.
    null_ns_per_event: f64,
    /// Best-of-reps ns per recorded event through a full `RingRecorder`
    /// (clock stamp + mutex + drop-oldest at capacity).
    ring_ns_per_event: f64,
    /// Ring counters after the run — a pure function of the config
    /// (`reps × events` recorded, all but `capacity` dropped), so the
    /// gate compares them exactly.
    ring_events: u64,
    ring_dropped: u64,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct BenchObsConfig {
    events: u64,
    reps: usize,
    capacity: usize,
    quick: bool,
}

fn cmd_bench_obs(flags: HashMap<String, String>) {
    use std::hint::black_box;
    let quick = quick_mode();
    let events: u64 = flag(&flags, "events", if quick { 200_000 } else { 2_000_000 });
    let reps: usize = flag(&flags, "reps", if quick { 3 } else { 5 });
    let capacity: usize = flag(&flags, "capacity", 4096);
    let out = flag(&flags, "out", "BENCH_obs.json".to_string());

    // Measures through `&dyn Recorder` behind the same guarded emission
    // site the engine uses, so the number is what instrumented code
    // actually pays — virtual dispatch included, event construction
    // skipped when disabled.
    let measure = |recorder: &dyn Recorder| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            for i in 0..events {
                if recorder.enabled() {
                    recorder.record(TraceEvent::ProbeBatchRead {
                        gen: i,
                        shard: 0,
                        tile: 64,
                        len: 8,
                    });
                }
                black_box(&recorder);
            }
            best = best.min(t0.elapsed().as_nanos() as f64 / events as f64);
        }
        best
    };
    eprintln!("bench-obs: {events} events × {reps} reps, ring capacity {capacity}…");
    let null_ns = measure(&NullRecorder);
    let ring = RingRecorder::new(capacity, Arc::new(RealClock::new()) as Arc<dyn Clock>);
    let ring_ns = measure(&ring);
    let counters = ring.counters();

    let report = BenchObsReport {
        config: BenchObsConfig {
            events,
            reps,
            capacity,
            quick,
        },
        null_ns_per_event: null_ns,
        ring_ns_per_event: ring_ns,
        ring_events: counters.events,
        ring_dropped: counters.dropped,
    };
    let json = serde_json::to_string(&report).expect("serialize bench-obs report");
    std::fs::write(&out, &json).unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
    println!(
        "null {null_ns:.2} ns/event, ring {ring_ns:.2} ns/event ({} recorded, {} dropped)",
        counters.events, counters.dropped
    );
    println!("report → {out}");
}

/// `bench-store` output: mount-cost accounting for both store backends
/// over two seeded bundles, one small and one several times larger. The
/// byte columns are pure functions of (seed, n, d, schemes) — the store
/// format is deterministic — so `bench-gate` diffs them *exactly*
/// against the committed artifact: any drift in `file_bytes` is a
/// format change, and any drift in `mmap_eager_bytes` is a change to
/// what the mapped mount reads up front. The O(manifest) claim itself
/// is gated structurally: the large bundle's eager bytes must stay
/// within a small factor of the small bundle's even as the files
/// diverge. Timings and RSS ride along as loose collapse detectors.
#[derive(serde::Serialize, serde::Deserialize)]
struct BenchStoreReport {
    config: BenchStoreConfig,
    small: StoreMountRow,
    large: StoreMountRow,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct BenchStoreConfig {
    small_n: usize,
    large_n: usize,
    d: u32,
    seed: u64,
    quick: bool,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct StoreMountRow {
    /// Total section payload bytes in the bundle (deterministic).
    file_bytes: u64,
    /// Bytes the heap load reads eagerly — the whole file, by design.
    heap_eager_bytes: u64,
    /// Bytes the mapped mount reads eagerly: header, preludes, MNFT,
    /// META, SHRD and the pool entry table (deterministic).
    mmap_eager_bytes: u64,
    /// Wall-clock mount times (machine dependent; loosely gated).
    heap_mount_ms: f64,
    mmap_mount_ms: f64,
    /// Process RSS after each load (informational, not gated).
    rss_after_heap_bytes: u64,
    rss_after_mmap_bytes: u64,
}

fn cmd_bench_store(flags: HashMap<String, String>) {
    let quick = quick_mode();
    let seed: u64 = flag(&flags, "seed", 4242);
    let d: u32 = flag(&flags, "d", 256);
    let small_n: usize = flag(&flags, "small-n", if quick { 512 } else { 1024 });
    let large_n: usize = flag(&flags, "large-n", if quick { 4096 } else { 8192 });
    let out = flag(&flags, "out", "BENCH_store.json".to_string());
    if large_n < small_n * 4 {
        die(
            "--large-n must be at least 4x --small-n for the O(manifest) contrast to mean anything",
        );
    }
    let dir = std::env::temp_dir().join(format!("annsctl-bench-store-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| die(&format!("cannot mkdir {dir:?}: {e}")));

    let measure = |n: usize, tag: &str| -> StoreMountRow {
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = gen::uniform(n, d, &mut rng);
        let index = Arc::new(AnnIndex::build(
            ds,
            SketchParams::practical(2.0, seed),
            BuildOptions::default(),
        ));
        let mut registry = Registry::new();
        registry.register_alg1("alg1-k3", Arc::clone(&index), 3);
        registry.register_lambda("lambda-8", Arc::clone(&index), 8.0);
        let path = dir.join(format!("{tag}.anns"));
        registry
            .save_bundle(&path)
            .unwrap_or_else(|e| die(&format!("cannot save {path:?}: {e}")));
        let path = path.to_string_lossy().into_owned();
        drop(registry);
        drop(index);

        // Mapped first, so the heap load's decoded pool cannot inflate
        // the mmap RSS reading.
        let mapped = load_bundle_with(&path, StoreBackend::Mmap);
        let rss_after_mmap_bytes = current_rss_bytes();
        let mmap_report = mapped.report.clone();
        drop(mapped);
        let heap = load_bundle_with(&path, StoreBackend::Heap);
        let rss_after_heap_bytes = current_rss_bytes();
        eprintln!(
            "bench-store: {tag} (n = {n}): file {} B, eager heap {} B / mmap {} B, \
             mount heap {:.2} ms / mmap {:.2} ms",
            heap.report.file_bytes,
            heap.report.eager_bytes,
            mmap_report.eager_bytes,
            heap.report.mount_ms,
            mmap_report.mount_ms
        );
        StoreMountRow {
            file_bytes: heap.report.file_bytes,
            heap_eager_bytes: heap.report.eager_bytes,
            mmap_eager_bytes: mmap_report.eager_bytes,
            heap_mount_ms: heap.report.mount_ms,
            mmap_mount_ms: mmap_report.mount_ms,
            rss_after_heap_bytes,
            rss_after_mmap_bytes,
        }
    };

    let small = measure(small_n, "small");
    let large = measure(large_n, "large");
    let report = BenchStoreReport {
        config: BenchStoreConfig {
            small_n,
            large_n,
            d,
            seed,
            quick,
        },
        small,
        large,
    };
    let json = serde_json::to_string(&report).expect("serialize bench-store report");
    std::fs::write(&out, &json).unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
    let _ = std::fs::remove_dir_all(&dir);
    println!("report → {out}");
}

/// `bench-server`: the multi-tenant workload against a *running*
/// `annsctl server` (CI starts one on a loopback ephemeral port).
/// Three tenants on three connections, submitted round-robin from one
/// thread — hot first each step, the worst case for the compliant
/// tenants' queue position: "hot" offers far beyond its token budget
/// (the server's `--tenants` policy for it should be `hot:0:8`-shaped
/// so its admitted count is `burst`, exactly, timing-free), while
/// "tenant-a"/"tenant-b" offer within their burst — any refusal they
/// see is a fairness bug, and `bench-gate` hard-fails on it.
fn cmd_bench_server(flags: HashMap<String, String>) {
    let quick = quick_mode();
    let addr = client_addr(&flags);
    let seed: u64 = flag(&flags, "seed", 99);
    let out = flag(&flags, "out", "BENCH_server.json".to_string());
    let hot_offered: u64 = flag(&flags, "hot-requests", if quick { 40 } else { 160 });
    let steady_offered: u64 = flag(&flags, "requests", if quick { 12 } else { 48 });
    let specs = [
        ("hot", hot_offered, true),
        ("tenant-a", steady_offered, false),
        ("tenant-b", steady_offered, false),
    ];

    struct TenantRun {
        name: &'static str,
        offered: u64,
        sent: u64,
        served: u64,
        throttled: u64,
        overloaded: u64,
        closed: u64,
        failed: u64,
        ticket_ns: Vec<u64>,
        answer_ns: Vec<u64>,
        client: Client,
        rng: StdRng,
    }

    let mut shard_dim: Option<(String, u32)> = None;
    let mut runs: Vec<TenantRun> = Vec::with_capacity(specs.len());
    for (i, (name, offered, _)) in specs.iter().enumerate() {
        let (client, shards) = match Client::connect(addr.as_str()) {
            Ok(ok) => ok,
            Err(e) => die(&format!("cannot connect to {addr}: {e}")),
        };
        if shard_dim.is_none() {
            let first = shards
                .first()
                .unwrap_or_else(|| die("server has no mounted shards"));
            let shard: String = flag(&flags, "shard", first.name.clone());
            let dim = shards
                .iter()
                .find(|s| s.name == shard)
                .map(|s| s.dim)
                .filter(|&d| d > 0)
                .unwrap_or_else(|| die(&format!("shard {shard:?} is not in the server's listing")));
            shard_dim = Some((shard, dim));
        }
        runs.push(TenantRun {
            name,
            offered: *offered,
            sent: 0,
            served: 0,
            throttled: 0,
            overloaded: 0,
            closed: 0,
            failed: 0,
            ticket_ns: Vec::new(),
            answer_ns: Vec::new(),
            client,
            rng: StdRng::seed_from_u64(seed ^ ((i as u64 + 1) << 32)),
        });
    }
    let (shard, dim) = shard_dim.expect("at least one tenant");
    eprintln!(
        "bench-server: {addr}, shard {shard} (d = {dim}), tenants {}…",
        specs
            .iter()
            .map(|(n, o, hot)| format!("{n}×{o}{}", if *hot { " (hot)" } else { "" }))
            .collect::<Vec<_>>()
            .join(", ")
    );

    let max_offered = specs.iter().map(|(_, o, _)| *o).max().unwrap_or(0);
    for _step in 0..max_offered {
        for run in &mut runs {
            if run.sent >= run.offered {
                continue;
            }
            run.sent += 1;
            let point = Point::random(dim, &mut run.rng);
            match run.client.query(run.name, &shard, &point) {
                Ok(reply) => {
                    run.served += 1;
                    run.ticket_ns.push(reply.ticket_rtt_ns);
                    run.answer_ns.push(reply.answer_rtt_ns);
                }
                Err(ClientError::Server(fault)) => match fault.code {
                    ErrorCode::Throttled => run.throttled += 1,
                    ErrorCode::Overloaded => run.overloaded += 1,
                    ErrorCode::Closed => run.closed += 1,
                    _ => run.failed += 1,
                },
                // Transport/frame/protocol failures are harness
                // breakage, not a measurable outcome: die loudly.
                Err(e) => die(&format!("bench-server: {} query failed: {e}", run.name)),
            }
        }
    }

    let mut table = MarkdownTable::new(&[
        "tenant",
        "offered",
        "served",
        "throttled",
        "overloaded",
        "failed",
        "ticket p50 µs",
        "answer p50 µs",
        "answer p99 µs",
    ]);
    let mut rows = Vec::with_capacity(runs.len());
    for run in &mut runs {
        run.ticket_ns.sort_unstable();
        run.answer_ns.sort_unstable();
        // Structural invariant of the loop above, kept as a real check:
        // every offer lands in exactly one outcome bucket.
        assert_eq!(
            run.served + run.throttled + run.overloaded + run.closed + run.failed,
            run.offered,
            "{}: outcomes must partition offered load",
            run.name
        );
        let row = TenantBenchRow {
            tenant: run.name.to_string(),
            offered: run.offered,
            served: run.served,
            throttled: run.throttled,
            overloaded: run.overloaded,
            closed: run.closed,
            failed: run.failed,
            ticket_p50_us: rtt_pct_us(&run.ticket_ns, 0.50),
            ticket_p99_us: rtt_pct_us(&run.ticket_ns, 0.99),
            ticket_max_us: rtt_pct_us(&run.ticket_ns, 1.0),
            answer_p50_us: rtt_pct_us(&run.answer_ns, 0.50),
            answer_p99_us: rtt_pct_us(&run.answer_ns, 0.99),
            answer_max_us: rtt_pct_us(&run.answer_ns, 1.0),
        };
        table.row(vec![
            row.tenant.clone(),
            row.offered.to_string(),
            row.served.to_string(),
            row.throttled.to_string(),
            row.overloaded.to_string(),
            row.failed.to_string(),
            format!("{:.1}", row.ticket_p50_us),
            format!("{:.1}", row.answer_p50_us),
            format!("{:.1}", row.answer_p99_us),
        ]);
        rows.push(row);
    }
    table.print();

    let report = BenchServerReport {
        config: BenchServerConfig {
            tenants: specs
                .iter()
                .map(|(name, offered, hot)| TenantWorkloadSpec {
                    name: name.to_string(),
                    offered: *offered,
                    hot: *hot,
                })
                .collect(),
            seed,
            quick,
        },
        tenants: rows,
    };
    let json = serde_json::to_string(&report).expect("serialize bench-server report");
    std::fs::write(&out, &json).unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
    println!("report → {out}");
}

fn cmd_save(flags: HashMap<String, String>) {
    let out = required(&flags, "out");
    let index = load_or_build_index(&flags, 1024, 256);
    let registry = build_registry(&flags, &index);
    if registry.is_empty() {
        die("nothing to save: no schemes registered");
    }
    registry
        .save_bundle(&out)
        .unwrap_or_else(|e| die(&format!("cannot save {out}: {e}")));
    let size = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    println!(
        "saved: n = {}, d = {}, {} shard(s) → {out} ({size} bytes)",
        index.dataset().len(),
        index.dataset().dim(),
        registry.len()
    );
    for (name, label) in registry.listing() {
        println!("  shard {name}: {label}");
    }
}

fn cmd_load(flags: HashMap<String, String>) {
    let path = required(&flags, "store");
    let verify: usize = flag(&flags, "verify-queries", 4);
    let seed: u64 = flag(&flags, "seed", 99);
    let backend = store_backend_flag(&flags);
    let bundle = load_bundle_with(&path, backend);
    println!(
        "loaded {path} in {:.1} ms: {} shard(s), {} pooled index(es) [{}]",
        bundle.report.mount_ms,
        bundle.registry.len(),
        bundle.meta.indexes,
        bundle.meta.tool
    );
    println!(
        "  {backend} backend: {} / {} bytes read eagerly, rss {} KiB",
        bundle.report.eager_bytes,
        bundle.report.file_bytes,
        current_rss_bytes() / 1024
    );
    println!(
        "  manifest {}; {} section(s), {} skipped",
        if bundle.report.manifest_verified {
            "verified"
        } else {
            "absent (pre-manifest bundle)"
        },
        bundle.report.sections.len(),
        bundle.report.skipped.len()
    );
    // Version-skew debugging must not be blind: anything the loader
    // skipped is reported, not silently dropped.
    for digest in &bundle.report.skipped {
        println!(
            "  skipped {} {:>10} bytes (unknown tag; written by a newer build?)",
            digest.tag_string(),
            digest.len
        );
    }
    for (id, index) in bundle.indexes.iter().enumerate() {
        println!(
            "  index {id}: n = {}, d = {}, γ = {}, {} scales",
            index.dataset().len(),
            index.dataset().dim(),
            index.family().params().gamma,
            index.family().top() + 1
        );
    }
    for (name, label) in bundle.registry.listing() {
        println!("  shard {name}: {label}");
    }
    // Smoke-run a few queries per shard through the solo executor so a
    // load that *parses* but cannot serve is caught here, not in prod.
    // On the mmap backend this is also the first touch: it decodes (and
    // verifies) exactly the shards it queries.
    if verify > 0 {
        let index = bundle
            .indexes
            .first()
            .cloned()
            .or_else(|| bundle.registry.any_pooled_index());
        let Some(index) = index else {
            println!("no pooled index: skipping query verification");
            return;
        };
        verify_shard_budgets(&bundle.registry, &index, verify, seed);
    }
}

fn cmd_inspect(flags: HashMap<String, String>) {
    let path = required(&flags, "store");
    let mut reader = anns_store::open_file(&path)
        .unwrap_or_else(|e| die(&format!("cannot open store {path}: {e}")));
    let header = *reader.header();
    let kind_name = if header.kind == anns_store::KIND_BUNDLE {
        "bundle".to_string()
    } else {
        format!(
            "single-scheme ({})",
            anns_store::scheme_kind::name(header.kind)
        )
    };
    println!("store      : {path}");
    println!("format     : v{} {kind_name}", header.version);
    println!("sections   : {}", header.sections);
    // Stream the sections: checksums verify as a side effect of reading,
    // and META yields the shard directory without instantiating indexes.
    loop {
        match reader.next_section() {
            Ok(None) => break,
            Ok(Some(section)) => {
                println!(
                    "  {} {:>10} bytes  crc32 {:#010x}  ok",
                    String::from_utf8_lossy(&section.tag),
                    section.payload.len(),
                    section.crc
                );
                if section.tag == anns_store::section_tag::META {
                    let meta = anns_engine::BundleMeta::from_bytes(&section.payload)
                        .unwrap_or_else(|e| die(&format!("bad META section: {e}")));
                    println!("    tool   : {}", meta.tool);
                    println!("    indexes: {}", meta.indexes);
                    for shard in &meta.shards {
                        println!(
                            "    shard  : {} [{}] {}",
                            shard.name,
                            anns_store::scheme_kind::name(shard.kind),
                            shard.label
                        );
                    }
                }
                if section.tag == anns_store::section_tag::MANIFEST {
                    let manifest = anns_store::Manifest::from_bytes(&section.payload)
                        .unwrap_or_else(|e| die(&format!("bad MNFT section: {e}")));
                    println!("    tool   : {}", manifest.tool);
                    for digest in &manifest.sections {
                        println!(
                            "    covers : {} {:>10} bytes  crc32 {:#010x}",
                            digest.tag_string(),
                            digest.len,
                            digest.crc
                        );
                    }
                }
            }
            Err(e) => die(&format!("store damaged: {e}")),
        }
    }
}

/// Renders one suite's arms as the attack summary table, and returns the
/// headline deltas: `(undefended adaptive delta, defended adaptive
/// delta)` — each is the hill-climb failure rate minus the control
/// failure rate on that shard.
fn print_attack_summary(report: &RobustnessReport) -> (f64, f64) {
    let mut table = MarkdownTable::new(&[
        "shard",
        "scheme",
        "strategy",
        "failures",
        "rate",
        "final bucket",
        "curve",
        "replays",
        "mismatches",
    ]);
    for arm in &report.arms {
        table.row(vec![
            arm.shard.clone(),
            arm.scheme.clone(),
            arm.strategy.clone(),
            format!("{}/{}", arm.failures, arm.rounds),
            format!("{:.3}", arm.failure_rate()),
            format!("{:.3}", arm.final_bucket_rate()),
            format!("{:?}", arm.bucket_failures),
            arm.replay_repeats.to_string(),
            arm.replay_mismatches.to_string(),
        ]);
    }
    table.print();
    let undefended = report.adaptive_delta("lsh").unwrap_or(0.0);
    let defended = report.adaptive_delta("lsh-sub").unwrap_or(0.0);
    let attacked = report
        .arm("lsh", "hillclimb")
        .map_or(0.0, |a| a.failure_rate());
    let attacked_defended = report
        .arm("lsh-sub", "hillclimb")
        .map_or(0.0, |a| a.failure_rate());
    println!();
    println!(
        "attacked-vs-control   (lsh):     {undefended:+.4} adaptive delta (hillclimb {:.3} vs control {:.3})",
        attacked,
        report.arm("lsh", "control").map_or(0.0, |a| a.failure_rate()),
    );
    println!(
        "defended-vs-undefended (hillclimb): {:+.4} ({:.3} defended vs {:.3} undefended)",
        attacked_defended - attacked,
        attacked_defended,
        attacked
    );
    println!("defended adaptive delta (lsh-sub): {defended:+.4}");
    (undefended, defended)
}

/// Resolves `--scenario` + overrides into a config.
fn attack_config(flags: &HashMap<String, String>) -> ScenarioConfig {
    let seed: u64 = flag(flags, "seed", 42);
    let scenario = flags.get("scenario").map_or("quick", String::as_str);
    let mut config = match scenario {
        "tiny" => ScenarioConfig::tiny(seed),
        "quick" => ScenarioConfig::quick(seed),
        "full" => ScenarioConfig::full(seed),
        other => die(&format!("--scenario must be tiny|quick|full, got {other}")),
    };
    config.rounds = flag(flags, "rounds", config.rounds);
    config.bucket = flag(flags, "bucket", config.bucket);
    if config.rounds == 0 || config.bucket == 0 {
        die("--rounds and --bucket must be positive");
    }
    config
}

fn cmd_attack(flags: HashMap<String, String>) {
    let config = attack_config(&flags);
    let band: f64 = flag(&flags, "band", 0.05);
    println!(
        "attack: scenario {} (n={} d={} r={} γ={} boost={}, defense R={} K={}), {} rounds/arm, seed {}",
        config.name,
        config.n,
        config.d,
        config.r,
        config.gamma,
        config.boost,
        config.replicas,
        config.sample,
        config.rounds,
        config.seed
    );
    let report = run_suite(&config);
    let (_, defended_delta) = print_attack_summary(&report);
    if let Some(out) = flags.get("out") {
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(out, json).unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
        println!("report written to {out}");
    }
    let mismatches: u64 = report.arms.iter().map(|a| a.replay_mismatches).sum();
    if mismatches > 0 {
        eprintln!("attack: FAIL — {mismatches} replayed queries answered differently (answer instability)");
        std::process::exit(1);
    }
    if defended_delta > band {
        eprintln!(
            "attack: FAIL — defended scheme degraded {defended_delta:+.4} under the adaptive attacker (band {band})"
        );
        std::process::exit(1);
    }
    println!("attack: pass (defended adaptive delta {defended_delta:+.4} within band {band})");
}

fn cmd_bench_attack(flags: HashMap<String, String>) {
    let seed: u64 = flag(&flags, "seed", 42);
    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "BENCH_attack_quick.json".into());
    // Quick mode is the committed-artifact configuration; full mode is
    // the same geometry with 4× the adaptive rounds.
    let config = if quick_mode() {
        ScenarioConfig::quick(seed)
    } else {
        ScenarioConfig::full(seed)
    };
    println!(
        "bench-attack: scenario {} ({} rounds/arm, seed {seed}), two verification runs",
        config.name, config.rounds
    );
    let start = Instant::now();
    let first = run_suite(&config);
    let wall_ns = start.elapsed().as_nanos() as u64;
    let second = run_suite(&config);
    let replay_verified = first == second;
    print_attack_summary(&first);
    println!();
    println!(
        "replay_verified: {replay_verified} (two runs {}), suite wall {:.2}s",
        if replay_verified {
            "byte-identical"
        } else {
            "DIVERGED"
        },
        wall_ns as f64 / 1e9
    );
    let report = BenchAttackReport {
        scenario: first.scenario.clone(),
        arms: first.arms,
        replay_verified,
        wall_ns,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json).unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
    println!("report written to {out}");
    if !replay_verified {
        eprintln!("bench-attack: FAIL — identical configs produced different traces");
        std::process::exit(1);
    }
}

/// One gated metric comparison in the `bench-gate` diff summary. `key` is
/// the engine batch width for serve metrics, the dimension `d` for kernel
/// metrics; `lower` says which direction of `bound` is passing.
struct GateRow {
    key: usize,
    metric: &'static str,
    reference: f64,
    current: f64,
    bound: f64,
    lower: bool,
    ok: bool,
}

fn cmd_bench_gate(flags: HashMap<String, String>) {
    let current_path = flags.get("current").cloned();
    let reference_path = flags.get("reference").cloned();
    let kernels_current_path = flags.get("kernels-current").cloned();
    let kernels_reference_path = flags.get("kernels-reference").cloned();
    let obs_current_path = flags.get("obs-current").cloned();
    let obs_reference_path = flags.get("obs-reference").cloned();
    let server_current_path = flags.get("server-current").cloned();
    let server_reference_path = flags.get("server-reference").cloned();
    let attack_current_path = flags.get("attack-current").cloned();
    let attack_reference_path = flags.get("attack-reference").cloned();
    let store_current_path = flags.get("store-current").cloned();
    let store_reference_path = flags.get("store-reference").cloned();
    if current_path.is_some() != reference_path.is_some() {
        die("--current and --reference must be given together");
    }
    if kernels_current_path.is_some() != kernels_reference_path.is_some() {
        die("--kernels-current and --kernels-reference must be given together");
    }
    if obs_current_path.is_some() != obs_reference_path.is_some() {
        die("--obs-current and --obs-reference must be given together");
    }
    if server_current_path.is_some() != server_reference_path.is_some() {
        die("--server-current and --server-reference must be given together");
    }
    if attack_current_path.is_some() != attack_reference_path.is_some() {
        die("--attack-current and --attack-reference must be given together");
    }
    if store_current_path.is_some() != store_reference_path.is_some() {
        die("--store-current and --store-reference must be given together");
    }
    if current_path.is_none()
        && kernels_current_path.is_none()
        && obs_current_path.is_none()
        && server_current_path.is_none()
        && attack_current_path.is_none()
        && store_current_path.is_none()
    {
        die("nothing to gate: pass --current/--reference, --kernels-current/--kernels-reference, --obs-current/--obs-reference, --server-current/--server-reference, --attack-current/--attack-reference and/or --store-current/--store-reference");
    }
    // Coalescing is deterministic in the workload, so its band is tight;
    // speedup is wall-clock on shared CI runners, so its band only
    // catches collapses (regression to well under the reference ratio).
    let tol_coalescing: f64 = flag(&flags, "tol-coalescing", 0.10);
    let tol_speedup: f64 = flag(&flags, "tol-speedup", 0.90);
    // Kernel-vs-scalar speedup is a ratio of two timings on the *same*
    // machine in the same process, so hardware variance mostly cancels:
    // its band is the tight one. Absolute ns/distance varies with the
    // runner's silicon, so its band is loose and only catches collapses.
    let tol_kernel_ratio: f64 = flag(&flags, "tol-kernel-ratio", 0.35);
    let tol_kernel_wall: f64 = flag(&flags, "tol-kernel-wall", 4.0);
    // Traced-run overhead is a same-process wall-clock ratio (traced /
    // untraced at one batch width) on a shared runner: loose band.
    let tol_trace_overhead: f64 = flag(&flags, "tol-trace-overhead", 1.0);
    // Recorder ns/event is absolute wall clock: loose collapse detector,
    // like the kernel wall band.
    let tol_obs_wall: f64 = flag(&flags, "tol-obs-wall", 4.0);
    // Server outcome counters are deterministic in the workload and the
    // server's tenant policies (exact when the hot tenant's refill rate
    // is 0), so the hot throttle counter gets a tight band; the
    // client-observed latency splits are wall clock over loopback on
    // shared runners, so they get the loose collapse-detector band.
    let tol_server_counter: f64 = flag(&flags, "tol-server-counter", 0.10);
    let tol_server_wall: f64 = flag(&flags, "tol-server-wall", 4.0);
    // Attack failure counts are deterministic in (scenario, seed) —
    // gated by exact equality, no tolerance flag. Suite wall-clock is
    // machine dependent: loose collapse-detector band like the others.
    let tol_attack_wall: f64 = flag(&flags, "tol-attack-wall", 4.0);
    // Store byte columns are deterministic — gated by exact equality.
    // The O(manifest) assertion allows the large bundle's eager bytes
    // this factor over the small bundle's (both are manifest-sized, but
    // the shard directory grows by a few entries). Mount wall clock is
    // machine dependent: loose collapse-detector band.
    let tol_store_eager_ratio: f64 = flag(&flags, "tol-store-eager-ratio", 2.0);
    let tol_store_wall: f64 = flag(&flags, "tol-store-wall", 4.0);

    let mut rows: Vec<GateRow> = Vec::new();
    let mut failed = false;

    if let (Some(current_path), Some(reference_path)) = (&current_path, &reference_path) {
        serve_gate_rows(
            current_path,
            reference_path,
            tol_coalescing,
            tol_speedup,
            tol_trace_overhead,
            &mut rows,
            &mut failed,
        );
    }
    if let (Some(kernels_current), Some(kernels_reference)) =
        (&kernels_current_path, &kernels_reference_path)
    {
        kernel_gate_rows(
            kernels_current,
            kernels_reference,
            tol_kernel_ratio,
            tol_kernel_wall,
            &mut rows,
            &mut failed,
        );
    }
    if let (Some(obs_current), Some(obs_reference)) = (&obs_current_path, &obs_reference_path) {
        obs_gate_rows(
            obs_current,
            obs_reference,
            tol_obs_wall,
            &mut rows,
            &mut failed,
        );
    }
    if let (Some(server_current), Some(server_reference)) =
        (&server_current_path, &server_reference_path)
    {
        server_gate_rows(
            server_current,
            server_reference,
            tol_server_counter,
            tol_server_wall,
            &mut rows,
            &mut failed,
        );
    }
    if let (Some(attack_current), Some(attack_reference)) =
        (&attack_current_path, &attack_reference_path)
    {
        attack_gate_rows(
            attack_current,
            attack_reference,
            tol_attack_wall,
            &mut rows,
            &mut failed,
        );
    }
    if let (Some(store_current), Some(store_reference)) =
        (&store_current_path, &store_reference_path)
    {
        store_gate_rows(
            store_current,
            store_reference,
            tol_store_eager_ratio,
            tol_store_wall,
            &mut rows,
            &mut failed,
        );
    }

    // The diff summary, markdown so CI step output renders it.
    println!("| key | metric | reference | current | allowed | verdict |");
    println!("|-----|--------|-----------|---------|---------|---------|");
    for row in &rows {
        failed |= !row.ok;
        println!(
            "| {} | {} | {:.4} | {:.4} | {} {:.4} | {} |",
            row.key,
            row.metric,
            row.reference,
            row.current,
            if row.lower { "≤" } else { "≥" },
            row.bound,
            if row.ok { "ok" } else { "REGRESSION" }
        );
    }
    if failed {
        println!(
            "bench-gate: REGRESSION (tolerances: coalescing {tol_coalescing}, speedup {tol_speedup}, kernel-ratio {tol_kernel_ratio}, kernel-wall {tol_kernel_wall}, trace-overhead {tol_trace_overhead}, obs-wall {tol_obs_wall}, server-counter {tol_server_counter}, server-wall {tol_server_wall}, attack-wall {tol_attack_wall}, store-eager-ratio {tol_store_eager_ratio}, store-wall {tol_store_wall}; attack failure counts and store bytes exact)"
        );
        std::process::exit(1);
    }
    println!("bench-gate: pass ({} comparisons)", rows.len());
}

/// Serve-report comparisons (`bench-serve` artifacts) for `bench-gate`.
fn serve_gate_rows(
    current_path: &str,
    reference_path: &str,
    tol_coalescing: f64,
    tol_speedup: f64,
    tol_trace_overhead: f64,
    rows: &mut Vec<GateRow>,
    failed: &mut bool,
) {
    let read = |path: &str| -> BenchServeReport {
        let json = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        serde_json::from_str(&json).unwrap_or_else(|e| die(&format!("bad report {path}: {e}")))
    };
    let current = read(current_path);
    let reference = read(reference_path);

    // Reports are only comparable when they measured the same workload —
    // including `threads`, which the baseline wall clock (and therefore
    // every speedup figure) depends on.
    let (c, r) = (&current.config, &reference.config);
    if (
        c.n, c.d, c.k, c.requests, c.distinct, c.flips, c.threads, c.seed, c.quick,
    ) != (
        r.n, r.d, r.k, r.requests, r.distinct, r.flips, r.threads, r.seed, r.quick,
    ) {
        eprintln!(
            "bench-gate: configs differ (current n={} d={} requests={} quick={}, reference n={} d={} requests={} quick={})",
            c.n, c.d, c.requests, c.quick, r.n, r.d, r.requests, r.quick
        );
        die("refusing to compare reports from different workloads");
    }

    if !(current.audit.rounds_identical && current.audit.transcripts_identical) {
        println!("FAIL: round-integrity audit failed in {current_path}");
        *failed = true;
    }
    let violations: u64 = current.baseline.budget_violations
        + current.online.report.budget_violations
        + current
            .engine
            .iter()
            .map(|e| e.report.budget_violations)
            .sum::<u64>();
    if violations > 0 {
        println!("FAIL: {violations} budget violations in {current_path}");
        *failed = true;
    }
    // The online run is saturated with capacity = request count: any shed
    // arrival or failed query is a queue bug, not load.
    if current.online.shed > 0 || current.online.failed > 0 {
        println!(
            "FAIL: online run shed {} / failed {} in {current_path}",
            current.online.shed, current.online.failed
        );
        *failed = true;
    }
    for reference_run in &reference.engine {
        let Some(current_run) = current
            .engine
            .iter()
            .find(|e| e.batch == reference_run.batch)
        else {
            println!(
                "FAIL: reference batch {} missing from {current_path}",
                reference_run.batch
            );
            *failed = true;
            continue;
        };
        // Coalescing ratio: executed/submitted, lower is better.
        let bound = reference_run.report.coalescing_ratio * (1.0 + tol_coalescing) + 1e-9;
        rows.push(GateRow {
            key: reference_run.batch,
            metric: "coalescing_ratio",
            reference: reference_run.report.coalescing_ratio,
            current: current_run.report.coalescing_ratio,
            bound,
            lower: true,
            ok: current_run.report.coalescing_ratio <= bound,
        });
        // Speedup vs baseline: higher is better.
        let bound = reference_run.speedup_vs_baseline * (1.0 - tol_speedup);
        rows.push(GateRow {
            key: reference_run.batch,
            metric: "speedup_vs_baseline",
            reference: reference_run.speedup_vs_baseline,
            current: current_run.speedup_vs_baseline,
            bound,
            lower: false,
            ok: current_run.speedup_vs_baseline >= bound,
        });
    }
    // Traced run: serving equivalence is asserted inside bench-serve
    // itself; here the gate holds tracing to its own contract — the
    // event count is a pure function of the workload (exact), nothing
    // may fall out of the ring, coalescing is unchanged (tight band),
    // and the recorder's wall-clock cost stays bounded (loose band).
    if current.traced.batch != reference.traced.batch {
        println!(
            "FAIL: traced batch differs (current {}, reference {})",
            current.traced.batch, reference.traced.batch
        );
        *failed = true;
    } else {
        if current.traced.trace_events != reference.traced.trace_events {
            println!(
                "FAIL: traced event count drifted (current {}, reference {}) — \
                 an emission site changed without regenerating the reference",
                current.traced.trace_events, reference.traced.trace_events
            );
            *failed = true;
        }
        if current.traced.trace_dropped != 0 {
            println!(
                "FAIL: traced run dropped {} event(s); the bench ring must hold the whole run",
                current.traced.trace_dropped
            );
            *failed = true;
        }
        let bound = reference.traced.report.coalescing_ratio * (1.0 + tol_coalescing) + 1e-9;
        rows.push(GateRow {
            key: reference.traced.batch,
            metric: "traced_coalescing_ratio",
            reference: reference.traced.report.coalescing_ratio,
            current: current.traced.report.coalescing_ratio,
            bound,
            lower: true,
            ok: current.traced.report.coalescing_ratio <= bound,
        });
        // A reference ratio under 1.0 is wall-clock noise (the traced
        // run happened to beat the untraced one); clamping keeps the
        // bound meaning "tracing may cost at most (1+tol)× a run".
        let bound = reference.traced.overhead_vs_untraced.max(1.0) * (1.0 + tol_trace_overhead);
        rows.push(GateRow {
            key: reference.traced.batch,
            metric: "traced_overhead",
            reference: reference.traced.overhead_vs_untraced,
            current: current.traced.overhead_vs_untraced,
            bound,
            lower: true,
            ok: current.traced.overhead_vs_untraced <= bound,
        });
    }
    // Online admission: the saturated virtual-clock run is deterministic
    // in the workload, so its coalescing gets the same tight band.
    if current.online.window != reference.online.window {
        println!(
            "FAIL: online window differs (current {}, reference {})",
            current.online.window, reference.online.window
        );
        *failed = true;
    } else {
        let bound = reference.online.report.coalescing_ratio * (1.0 + tol_coalescing) + 1e-9;
        rows.push(GateRow {
            key: reference.online.window,
            metric: "online_coalescing_ratio",
            reference: reference.online.report.coalescing_ratio,
            current: current.online.report.coalescing_ratio,
            bound,
            lower: true,
            ok: current.online.report.coalescing_ratio <= bound,
        });
    }
}

/// Kernel-report comparisons (`bench-kernels` artifacts) for `bench-gate`:
/// the microbench gate. Speedup ratios get the tight band, absolute
/// ns/distance the loose one.
fn kernel_gate_rows(
    current_path: &str,
    reference_path: &str,
    tol_ratio: f64,
    tol_wall: f64,
    rows: &mut Vec<GateRow>,
    failed: &mut bool,
) {
    let read = |path: &str| -> BenchKernelsReport {
        let json = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        serde_json::from_str(&json).unwrap_or_else(|e| die(&format!("bad report {path}: {e}")))
    };
    let current = read(current_path);
    let reference = read(reference_path);
    let (c, r) = (&current.config, &reference.config);
    if (c.n, c.queries, c.reps, c.seed, c.quick, &c.dims)
        != (r.n, r.queries, r.reps, r.seed, r.quick, &r.dims)
    {
        eprintln!(
            "bench-gate: kernel configs differ (current n={} queries={} reps={} quick={} dims={:?}, reference n={} queries={} reps={} quick={} dims={:?})",
            c.n, c.queries, c.reps, c.quick, c.dims, r.n, r.queries, r.reps, r.quick, r.dims
        );
        die("refusing to compare kernel reports from different workloads");
    }
    for reference_row in &reference.rows {
        let Some(current_row) = current.rows.iter().find(|x| x.d == reference_row.d) else {
            println!(
                "FAIL: reference dimension {} missing from {current_path}",
                reference_row.d
            );
            *failed = true;
            continue;
        };
        // Kernel-vs-scalar speedups: same-process ratios, tight band.
        let bound = reference_row.many_vs_many_speedup * (1.0 - tol_ratio);
        rows.push(GateRow {
            key: reference_row.d as usize,
            metric: "kernel_many_vs_many_speedup",
            reference: reference_row.many_vs_many_speedup,
            current: current_row.many_vs_many_speedup,
            bound,
            lower: false,
            ok: current_row.many_vs_many_speedup >= bound,
        });
        let bound = reference_row.one_vs_many_speedup * (1.0 - tol_ratio);
        rows.push(GateRow {
            key: reference_row.d as usize,
            metric: "kernel_one_vs_many_speedup",
            reference: reference_row.one_vs_many_speedup,
            current: current_row.one_vs_many_speedup,
            bound,
            lower: false,
            ok: current_row.one_vs_many_speedup >= bound,
        });
        // Absolute wall clock per distance: loose band, collapse detector.
        let bound = reference_row.many_vs_many_ns * (1.0 + tol_wall);
        rows.push(GateRow {
            key: reference_row.d as usize,
            metric: "kernel_many_vs_many_ns",
            reference: reference_row.many_vs_many_ns,
            current: current_row.many_vs_many_ns,
            bound,
            lower: true,
            ok: current_row.many_vs_many_ns <= bound,
        });
    }
}

/// Recorder-overhead comparisons (`bench-obs` artifacts) for
/// `bench-gate`. The ring counters are a pure function of the config
/// and compare exactly; the ns/event figures are absolute wall clock
/// on shared runners, so they get the loose collapse-detector band.
fn obs_gate_rows(
    current_path: &str,
    reference_path: &str,
    tol_wall: f64,
    rows: &mut Vec<GateRow>,
    failed: &mut bool,
) {
    let read = |path: &str| -> BenchObsReport {
        let json = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        serde_json::from_str(&json).unwrap_or_else(|e| die(&format!("bad report {path}: {e}")))
    };
    let current = read(current_path);
    let reference = read(reference_path);
    let (c, r) = (&current.config, &reference.config);
    if (c.events, c.reps, c.capacity, c.quick) != (r.events, r.reps, r.capacity, r.quick) {
        eprintln!(
            "bench-gate: obs configs differ (current events={} reps={} capacity={} quick={}, reference events={} reps={} capacity={} quick={})",
            c.events, c.reps, c.capacity, c.quick, r.events, r.reps, r.capacity, r.quick
        );
        die("refusing to compare obs reports from different workloads");
    }
    if current.ring_events != reference.ring_events {
        println!(
            "FAIL: obs ring recorded {} event(s), reference {} — same config must record the same count",
            current.ring_events, reference.ring_events
        );
        *failed = true;
    }
    if current.ring_dropped != reference.ring_dropped {
        println!(
            "FAIL: obs ring dropped {} event(s), reference {} — drop-oldest accounting drifted",
            current.ring_dropped, reference.ring_dropped
        );
        *failed = true;
    }
    let bound = reference.null_ns_per_event * (1.0 + tol_wall);
    rows.push(GateRow {
        key: current.config.capacity,
        metric: "obs_null_ns_per_event",
        reference: reference.null_ns_per_event,
        current: current.null_ns_per_event,
        bound,
        lower: true,
        ok: current.null_ns_per_event <= bound,
    });
    let bound = reference.ring_ns_per_event * (1.0 + tol_wall);
    rows.push(GateRow {
        key: current.config.capacity,
        metric: "obs_ring_ns_per_event",
        reference: reference.ring_ns_per_event,
        current: current.ring_ns_per_event,
        bound,
        lower: true,
        ok: current.ring_ns_per_event <= bound,
    });
}

/// Server-tier comparisons (`bench-server` artifacts) for `bench-gate`:
/// the network-tier gate. The hard rules come first — any refusal of a
/// compliant tenant, any queue shed or closed-queue error for *anyone*,
/// or an outcome partition that doesn't sum to the offered load is an
/// unconditional failure, not a band. The hot tenant's throttle counter
/// is the fairness signal and gets the tight band (exact when its
/// policy's refill rate is 0); latencies get the loose wall band.
fn server_gate_rows(
    current_path: &str,
    reference_path: &str,
    tol_counter: f64,
    tol_wall: f64,
    rows: &mut Vec<GateRow>,
    failed: &mut bool,
) {
    let read = |path: &str| -> BenchServerReport {
        let json = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        serde_json::from_str(&json).unwrap_or_else(|e| die(&format!("bad report {path}: {e}")))
    };
    let current = read(current_path);
    let reference = read(reference_path);
    if current.config != reference.config {
        eprintln!(
            "bench-gate: server configs differ (current {} tenant(s) seed={} quick={}, reference {} tenant(s) seed={} quick={})",
            current.config.tenants.len(),
            current.config.seed,
            current.config.quick,
            reference.config.tenants.len(),
            reference.config.seed,
            reference.config.quick
        );
        die("refusing to compare server reports from different workloads");
    }
    for (key, spec) in reference.config.tenants.iter().enumerate() {
        let Some(current_row) = current.tenants.iter().find(|t| t.tenant == spec.name) else {
            println!("FAIL: tenant {} missing from {current_path}", spec.name);
            *failed = true;
            continue;
        };
        let Some(reference_row) = reference.tenants.iter().find(|t| t.tenant == spec.name) else {
            println!("FAIL: tenant {} missing from {reference_path}", spec.name);
            *failed = true;
            continue;
        };
        let total = current_row.served
            + current_row.throttled
            + current_row.overloaded
            + current_row.closed
            + current_row.failed;
        if total != spec.offered {
            println!(
                "FAIL: {} outcomes sum to {total}, offered {} in {current_path}",
                spec.name, spec.offered
            );
            *failed = true;
        }
        // A healthy server refuses excess with `Throttled` only: queue
        // sheds or closed-queue errors mean the capacity plan is wrong.
        if current_row.overloaded + current_row.closed + current_row.failed > 0 {
            println!(
                "FAIL: {} saw {} overloaded / {} closed / {} failed in {current_path}",
                spec.name, current_row.overloaded, current_row.closed, current_row.failed
            );
            *failed = true;
        }
        if spec.hot {
            let bound = reference_row.throttled as f64 * (1.0 - tol_counter);
            rows.push(GateRow {
                key,
                metric: "server_hot_throttled_min",
                reference: reference_row.throttled as f64,
                current: current_row.throttled as f64,
                bound,
                lower: false,
                ok: current_row.throttled as f64 >= bound,
            });
            let bound = reference_row.throttled as f64 * (1.0 + tol_counter) + 1e-9;
            rows.push(GateRow {
                key,
                metric: "server_hot_throttled_max",
                reference: reference_row.throttled as f64,
                current: current_row.throttled as f64,
                bound,
                lower: true,
                ok: (current_row.throttled as f64) <= bound,
            });
        } else {
            // The satellite contract: ANY refusal of a compliant tenant
            // fails the gate outright.
            if current_row.throttled > 0 {
                println!(
                    "FAIL: compliant tenant {} was throttled {} time(s) in {current_path}",
                    spec.name, current_row.throttled
                );
                *failed = true;
            }
            if current_row.served != spec.offered {
                println!(
                    "FAIL: compliant tenant {} served {}/{} in {current_path}",
                    spec.name, current_row.served, spec.offered
                );
                *failed = true;
            }
        }
        let bound = reference_row.ticket_p50_us * (1.0 + tol_wall);
        rows.push(GateRow {
            key,
            metric: "server_ticket_p50_us",
            reference: reference_row.ticket_p50_us,
            current: current_row.ticket_p50_us,
            bound,
            lower: true,
            ok: current_row.ticket_p50_us <= bound,
        });
        let bound = reference_row.answer_p50_us * (1.0 + tol_wall);
        rows.push(GateRow {
            key,
            metric: "server_answer_p50_us",
            reference: reference_row.answer_p50_us,
            current: current_row.answer_p50_us,
            bound,
            lower: true,
            ok: current_row.answer_p50_us <= bound,
        });
    }
}

/// Attack-report comparisons (`bench-attack` artifacts) for
/// `bench-gate`. Failure counts are a pure function of (scenario, seed),
/// so both sides of every count band are the reference value itself —
/// any drift means the serving stack, a scheme, or an attacker changed
/// behavior without the reference being regenerated. Only the suite
/// wall-clock gets a tolerance.
fn attack_gate_rows(
    current_path: &str,
    reference_path: &str,
    tol_wall: f64,
    rows: &mut Vec<GateRow>,
    failed: &mut bool,
) {
    let read = |path: &str| -> BenchAttackReport {
        let json = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        serde_json::from_str(&json).unwrap_or_else(|e| die(&format!("bad report {path}: {e}")))
    };
    let current = read(current_path);
    let reference = read(reference_path);
    if current.scenario != reference.scenario {
        eprintln!(
            "bench-gate: attack scenarios differ (current {} n={} rounds={} seed={}, reference {} n={} rounds={} seed={})",
            current.scenario.name,
            current.scenario.n,
            current.scenario.rounds,
            current.scenario.seed,
            reference.scenario.name,
            reference.scenario.n,
            reference.scenario.rounds,
            reference.scenario.seed
        );
        die("refusing to compare attack reports from different scenarios");
    }
    if !current.replay_verified {
        println!("FAIL: {current_path} was not replay-verified (two runs diverged)");
        *failed = true;
    }
    for (key, reference_arm) in reference.arms.iter().enumerate() {
        let Some(current_arm) = current
            .arms
            .iter()
            .find(|a| a.shard == reference_arm.shard && a.strategy == reference_arm.strategy)
        else {
            println!(
                "FAIL: arm {}/{} missing from {current_path}",
                reference_arm.shard, reference_arm.strategy
            );
            *failed = true;
            continue;
        };
        let exact = current_arm.failures == reference_arm.failures;
        if !exact {
            println!(
                "FAIL: {}/{} failure count drifted (current {}, reference {}) — \
                 deterministic counts only move when code changes behavior; regenerate the reference deliberately",
                reference_arm.shard,
                reference_arm.strategy,
                current_arm.failures,
                reference_arm.failures
            );
        }
        rows.push(GateRow {
            key,
            metric: "attack_failures_exact",
            reference: reference_arm.failures as f64,
            current: current_arm.failures as f64,
            bound: reference_arm.failures as f64,
            lower: true,
            ok: exact,
        });
        if current_arm.replay_mismatches > 0 {
            println!(
                "FAIL: {}/{} answered {} replayed query(ies) differently in {current_path}",
                reference_arm.shard, reference_arm.strategy, current_arm.replay_mismatches
            );
            *failed = true;
        }
        if current_arm.fingerprint != reference_arm.fingerprint {
            println!(
                "FAIL: {}/{} trace fingerprint drifted (current {:#010x}, reference {:#010x})",
                reference_arm.shard,
                reference_arm.strategy,
                current_arm.fingerprint,
                reference_arm.fingerprint
            );
            *failed = true;
        }
    }
    let bound = reference.wall_ns as f64 * tol_wall;
    rows.push(GateRow {
        key: 0,
        metric: "attack_suite_wall_ns",
        reference: reference.wall_ns as f64,
        current: current.wall_ns as f64,
        bound,
        lower: true,
        ok: (current.wall_ns as f64) <= bound,
    });
}

/// Store mount-cost comparisons (`bench-store` artifacts) for
/// `bench-gate`. The byte columns are deterministic in the config, so
/// they are diffed exactly; the O(manifest) property is asserted
/// structurally on the *current* report (large eager ≈ small eager,
/// both well under their files); only wall clock gets a tolerance band.
fn store_gate_rows(
    current_path: &str,
    reference_path: &str,
    tol_eager_ratio: f64,
    tol_wall: f64,
    rows: &mut Vec<GateRow>,
    failed: &mut bool,
) {
    let read = |path: &str| -> BenchStoreReport {
        let json = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        serde_json::from_str(&json).unwrap_or_else(|e| die(&format!("bad report {path}: {e}")))
    };
    let current = read(current_path);
    let reference = read(reference_path);
    let (c, r) = (&current.config, &reference.config);
    if (c.small_n, c.large_n, c.d, c.seed, c.quick) != (r.small_n, r.large_n, r.d, r.seed, r.quick)
    {
        eprintln!(
            "bench-gate: store configs differ (current n={}/{} d={} seed={} quick={}, \
             reference n={}/{} d={} seed={} quick={})",
            c.small_n, c.large_n, c.d, c.seed, c.quick, r.small_n, r.large_n, r.d, r.seed, r.quick
        );
        die("refusing to compare store reports from different configs");
    }
    let mut exact = |key: usize, metric: &'static str, cur: u64, refv: u64| {
        let ok = cur == refv;
        if !ok {
            println!(
                "FAIL: {metric} drifted (current {cur}, reference {refv}) — store bytes are \
                 deterministic; a drift is a format change and needs a regenerated reference"
            );
        }
        rows.push(GateRow {
            key,
            metric,
            reference: refv as f64,
            current: cur as f64,
            bound: refv as f64,
            lower: true,
            ok,
        });
        *failed |= !ok;
    };
    exact(
        0,
        "store_small_file_bytes",
        current.small.file_bytes,
        reference.small.file_bytes,
    );
    exact(
        1,
        "store_large_file_bytes",
        current.large.file_bytes,
        reference.large.file_bytes,
    );
    exact(
        0,
        "store_small_mmap_eager_bytes",
        current.small.mmap_eager_bytes,
        reference.small.mmap_eager_bytes,
    );
    exact(
        1,
        "store_large_mmap_eager_bytes",
        current.large.mmap_eager_bytes,
        reference.large.mmap_eager_bytes,
    );
    // Heap reads the whole file, by definition of the backend.
    exact(
        0,
        "store_small_heap_eager_bytes",
        current.small.heap_eager_bytes,
        current.small.file_bytes,
    );
    exact(
        1,
        "store_large_heap_eager_bytes",
        current.large.heap_eager_bytes,
        current.large.file_bytes,
    );
    // The O(manifest) assertions: growing the dataset ~8x must not grow
    // the eagerly-read bytes beyond the shard-directory factor, and the
    // large mount's eager read must stay well under its file.
    let eager_bound = current.small.mmap_eager_bytes as f64 * tol_eager_ratio;
    rows.push(GateRow {
        key: 1,
        metric: "store_eager_is_o_manifest",
        reference: current.small.mmap_eager_bytes as f64,
        current: current.large.mmap_eager_bytes as f64,
        bound: eager_bound,
        lower: true,
        ok: (current.large.mmap_eager_bytes as f64) <= eager_bound,
    });
    let fraction_bound = current.large.file_bytes as f64 / 4.0;
    rows.push(GateRow {
        key: 1,
        metric: "store_eager_fraction_of_file",
        reference: current.large.file_bytes as f64,
        current: current.large.mmap_eager_bytes as f64,
        bound: fraction_bound,
        lower: true,
        ok: (current.large.mmap_eager_bytes as f64) <= fraction_bound,
    });
    // Wall clock: a mapped mount that regressed to heap-shaped work
    // shows up as mount time tracking the full decode.
    let wall_bound = current.large.heap_mount_ms * tol_wall;
    rows.push(GateRow {
        key: 1,
        metric: "store_mmap_mount_ms",
        reference: current.large.heap_mount_ms,
        current: current.large.mmap_mount_ms,
        bound: wall_bound,
        lower: true,
        ok: current.large.mmap_mount_ms <= wall_bound,
    });
}

fn cmd_lpm(flags: HashMap<String, String>) {
    let sigma: u16 = flag(&flags, "sigma", 4);
    let m: usize = flag(&flags, "m", 8);
    let n: usize = flag(&flags, "n", 64);
    let k: u32 = flag(&flags, "k", 2);
    let queries: usize = flag(&flags, "queries", 32);
    let seed: u64 = flag(&flags, "seed", 5);
    let mut rng = StdRng::seed_from_u64(seed);
    let instance = LpmInstance::random(sigma, m, n, &mut rng);
    let trie = TrieLpm::build(instance.clone(), k);
    let mut probes = 0usize;
    let mut ok = 0usize;
    for _ in 0..queries {
        let q: Vec<u16> = (0..m).map(|_| rng.gen_range(0..sigma)).collect();
        let ((idx, lcp), ledger) = execute(&trie, &q);
        probes += ledger.total_probes();
        if instance.is_correct(&q, idx) && lcp == instance.solve(&q).1 {
            ok += 1;
        }
    }
    println!(
        "LPM(Σ={sigma}, m={m}, n={n}) at k={k} (τ={}): {ok}/{queries} correct, avg {:.1} probes",
        trie.tau(),
        probes as f64 / queries as f64
    );
}

fn cmd_lb(flags: HashMap<String, String>) {
    let n_log2: f64 = flag(&flags, "log2n", 1.3e24);
    let d_log2: f64 = flag(&flags, "log2d", 1.1e12);
    let gamma: f64 = flag(&flags, "gamma", 4.0);
    let k: u32 = flag(&flags, "k", 2);
    let honest = !flags.contains_key("relaxed");
    let params = if honest {
        ElimParams::paper()
    } else {
        ElimParams::relaxed()
    };
    let cert = certified_lower_bound(n_log2, d_log2, gamma, k, 1 << 44, &params);
    let form = lower_bound_form(d_log2, gamma, k);
    println!(
        "k = {k}: certified t > {cert} ({} constants); form (1/k)(log_γ d)^(1/k) = {form:.2}",
        if honest { "honest" } else { "relaxed" }
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        die("missing subcommand");
    };
    // `trace` takes a positional action (`inspect`) before its flags.
    if cmd == "trace" {
        return cmd_trace(&args[1..]);
    }
    let flags = parse_flags(&args[1..]);
    match cmd.as_str() {
        "build" => cmd_build(flags),
        "query" => cmd_query(flags),
        "lambda" => cmd_lambda(flags),
        "stats" => cmd_stats(flags),
        "save" => cmd_save(flags),
        "load" => cmd_load(flags),
        "inspect" => cmd_inspect(flags),
        "mount" => cmd_mount(flags),
        "swap" => cmd_swap(flags),
        "serve" => cmd_serve(flags),
        "server" => cmd_server(flags),
        "client" => cmd_client(flags),
        "attack" => cmd_attack(flags),
        "bench-attack" => cmd_bench_attack(flags),
        "bench-serve" => cmd_bench_serve(flags),
        "bench-server" => cmd_bench_server(flags),
        "bench-kernels" => cmd_bench_kernels(flags),
        "bench-obs" => cmd_bench_obs(flags),
        "bench-store" => cmd_bench_store(flags),
        "bench-gate" => cmd_bench_gate(flags),
        "lpm" => cmd_lpm(flags),
        "lb" => cmd_lb(flags),
        other => die(&format!("unknown subcommand {other}")),
    }
}
