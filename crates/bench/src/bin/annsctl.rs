//! `annsctl` — a small operator CLI over the library.
//!
//! ```text
//! annsctl build    --n 4096 --d 512 --gamma 2.0 --seed 7 --out index.json
//! annsctl query    --index index.json --k 3 [--flips 8] [--count 16]
//! annsctl lambda   --index index.json --lambda 8
//! annsctl stats    --index index.json
//! annsctl lpm      --sigma 4 --m 8 --n 64 --k 2 --queries 32
//! annsctl lb       --log2n 1.3e24 --log2d 1.1e12 --gamma 4 --k 3
//! ```
//!
//! Exists so the index can be exercised without writing Rust: `build`
//! snapshots an index over a seeded uniform database to JSON, `query` /
//! `lambda` load it and run the paper's schemes, `stats` prints the space
//! model, `lpm` runs the trie scheme end to end, and `lb` invokes the
//! round-elimination calculator.

use std::collections::HashMap;

use anns_cellprobe::execute;
use anns_core::{AnnIndex, AnnsInstance, BuildOptions};
use anns_hamming::{gen, Point};
use anns_lpm::{certified_lower_bound, lower_bound_form, ElimParams, LpmInstance, TrieLpm};
use anns_sketch::SketchParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parses `--key value` pairs after the subcommand.
fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .unwrap_or_else(|| die(&format!("expected --flag, got {}", args[i])));
        let value = args
            .get(i + 1)
            .unwrap_or_else(|| die(&format!("--{key} needs a value")));
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    flags
}

fn die(msg: &str) -> ! {
    eprintln!("annsctl: {msg}");
    eprintln!("usage: annsctl <build|query|lambda|stats|lpm|lb> [--flag value]…");
    std::process::exit(2);
}

fn flag<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    match flags.get(key) {
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| die(&format!("--{key}: cannot parse {v:?}"))),
        None => default,
    }
}

fn required(flags: &HashMap<String, String>, key: &str) -> String {
    flags
        .get(key)
        .cloned()
        .unwrap_or_else(|| die(&format!("--{key} is required")))
}

fn load_index(path: &str) -> AnnIndex {
    let json =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let snapshot =
        serde_json::from_str(&json).unwrap_or_else(|e| die(&format!("bad snapshot: {e}")));
    AnnIndex::from_snapshot(snapshot)
}

fn cmd_build(flags: HashMap<String, String>) {
    let n: usize = flag(&flags, "n", 1024);
    let d: u32 = flag(&flags, "d", 256);
    let gamma: f64 = flag(&flags, "gamma", 2.0);
    let seed: u64 = flag(&flags, "seed", 7);
    let out = required(&flags, "out");
    let mut rng = StdRng::seed_from_u64(seed);
    let ds = gen::uniform(n, d, &mut rng);
    let index = AnnIndex::build(
        ds,
        SketchParams::practical(gamma, seed),
        BuildOptions::default(),
    );
    let json = serde_json::to_string(&index.snapshot()).expect("serialize snapshot");
    std::fs::write(&out, json).unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
    println!(
        "built: n = {n}, d = {d}, γ = {gamma}, {} scales, snapshot → {out}",
        index.family().top() + 1
    );
}

fn cmd_query(flags: HashMap<String, String>) {
    let index = load_index(&required(&flags, "index"));
    let k: u32 = flag(&flags, "k", 3);
    let flips: u32 = flag(&flags, "flips", 8);
    let count: usize = flag(&flags, "count", 8);
    let seed: u64 = flag(&flags, "seed", 99);
    let mut rng = StdRng::seed_from_u64(seed);
    let d = index.dataset().dim();
    println!(
        "{:>4} {:>8} {:>8} {:>10} {:>8}",
        "#", "probes", "rounds", "distance", "γ-ok"
    );
    for i in 0..count {
        let base = rng.gen_range(0..index.dataset().len());
        let query = gen::point_at_distance(index.dataset().point(base), flips.min(d), &mut rng);
        let (outcome, ledger) = index.query(&query, k);
        let dist = index
            .outcome_point(&outcome)
            .map(|p| query.distance(p).to_string())
            .unwrap_or_else(|| "-".into());
        println!(
            "{i:>4} {:>8} {:>8} {dist:>10} {:>8}",
            ledger.total_probes(),
            ledger.rounds(),
            index.verify_gamma(&query, &outcome)
        );
    }
}

fn cmd_lambda(flags: HashMap<String, String>) {
    let index = load_index(&required(&flags, "index"));
    let lambda: f64 = flag(&flags, "lambda", 8.0);
    let seed: u64 = flag(&flags, "seed", 99);
    let mut rng = StdRng::seed_from_u64(seed);
    let d = index.dataset().dim();
    let query = Point::random(d, &mut rng);
    let (answer, ledger) = index.query_lambda(&query, lambda);
    println!("λ = {lambda}: {answer:?} ({} probe)", ledger.total_probes());
}

fn cmd_stats(flags: HashMap<String, String>) {
    let index = load_index(&required(&flags, "index"));
    let model = index.table().space_model();
    println!("n          : {}", index.dataset().len());
    println!("d          : {}", index.dataset().dim());
    println!("γ          : {}", index.family().params().gamma);
    println!("scales     : {}", index.family().top() + 1);
    println!("m-rows     : {}", index.family().m_rows());
    println!("n-rows     : {}", index.family().n_rows());
    println!("log₂ cells : {:.1} (model)", model.cells_log2);
    println!("word bits  : {}", model.word_bits);
}

fn cmd_lpm(flags: HashMap<String, String>) {
    let sigma: u16 = flag(&flags, "sigma", 4);
    let m: usize = flag(&flags, "m", 8);
    let n: usize = flag(&flags, "n", 64);
    let k: u32 = flag(&flags, "k", 2);
    let queries: usize = flag(&flags, "queries", 32);
    let seed: u64 = flag(&flags, "seed", 5);
    let mut rng = StdRng::seed_from_u64(seed);
    let instance = LpmInstance::random(sigma, m, n, &mut rng);
    let trie = TrieLpm::build(instance.clone(), k);
    let mut probes = 0usize;
    let mut ok = 0usize;
    for _ in 0..queries {
        let q: Vec<u16> = (0..m).map(|_| rng.gen_range(0..sigma)).collect();
        let ((idx, lcp), ledger) = execute(&trie, &q);
        probes += ledger.total_probes();
        if instance.is_correct(&q, idx) && lcp == instance.solve(&q).1 {
            ok += 1;
        }
    }
    println!(
        "LPM(Σ={sigma}, m={m}, n={n}) at k={k} (τ={}): {ok}/{queries} correct, avg {:.1} probes",
        trie.tau(),
        probes as f64 / queries as f64
    );
}

fn cmd_lb(flags: HashMap<String, String>) {
    let n_log2: f64 = flag(&flags, "log2n", 1.3e24);
    let d_log2: f64 = flag(&flags, "log2d", 1.1e12);
    let gamma: f64 = flag(&flags, "gamma", 4.0);
    let k: u32 = flag(&flags, "k", 2);
    let honest = !flags.contains_key("relaxed");
    let params = if honest {
        ElimParams::paper()
    } else {
        ElimParams::relaxed()
    };
    let cert = certified_lower_bound(n_log2, d_log2, gamma, k, 1 << 44, &params);
    let form = lower_bound_form(d_log2, gamma, k);
    println!(
        "k = {k}: certified t > {cert} ({} constants); form (1/k)(log_γ d)^(1/k) = {form:.2}",
        if honest { "honest" } else { "relaxed" }
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        die("missing subcommand");
    };
    let flags = parse_flags(&args[1..]);
    match cmd.as_str() {
        "build" => cmd_build(flags),
        "query" => cmd_query(flags),
        "lambda" => cmd_lambda(flags),
        "stats" => cmd_stats(flags),
        "lpm" => cmd_lpm(flags),
        "lb" => cmd_lb(flags),
        other => die(&format!("unknown subcommand {other}")),
    }
}
