//! **E4 — the phase transition** at `k = Θ(log log d / log log log d)`.
//!
//! The paper's corollary: within that regime, a small-constant `k₁` forces
//! `(log log d)^{Ω(1)}` probes per round on average, while a larger-constant
//! `k₂` gets away with `O(1)` per round. The experiment fixes huge synthetic
//! dimensions, sweeps `k` as multiples of `k* = log log d / log log log d`,
//! and prints the average probes-per-budget `t/k` for both algorithms next
//! to the lower-bound average `(1/k²)(log d)^{1/k}`.

use anns_bench::{experiment_header, worst_totals, MarkdownTable};
use anns_cellprobe::execute;
use anns_core::{alg2_s, Alg1Scheme, Alg2Config, Alg2Scheme, SyntheticInstance, SyntheticProfile};
use anns_lpm::lower_bound_form;

fn worst_total(top: u32, k: u32, use_alg2: bool) -> usize {
    let grid: Vec<u32> = (0..6).map(|i| 2 + i * (top - 2) / 5).collect();
    let mut ledgers = Vec::new();
    for i0 in grid {
        let profile = SyntheticProfile::point_mass(top, i0, 48.0);
        let ledger = if use_alg2 {
            let cfg = Alg2Config::with_k(k);
            let inst = SyntheticInstance::new(profile, alg2_s(k, cfg.c));
            let scheme = Alg2Scheme {
                instance: &inst,
                config: cfg,
            };
            let (o, l) = execute(&scheme, &());
            assert_eq!(o.scale(), Some(i0));
            l
        } else {
            let inst = SyntheticInstance::new(profile, 2.0);
            let scheme = Alg1Scheme {
                instance: &inst,
                k,
                tau_override: None,
            };
            let (o, l) = execute(&scheme, &());
            assert_eq!(o.scale(), Some(i0));
            l
        };
        ledgers.push(ledger);
    }
    worst_totals(&ledgers).0
}

fn main() {
    experiment_header(
        "E4",
        "phase transition at k = Θ(log log d / log log log d): probes-per-round drops to O(1)",
    );
    for log2_d_exp in [16u32, 20] {
        // log₂ d = 2^exp, so log log d = exp.
        let log2_d: u32 = 1 << log2_d_exp;
        let top = 2 * log2_d;
        let ll = f64::from(log2_d_exp);
        let lll = ll.log2();
        let k_star = (ll / lll).round().max(2.0) as u32;
        println!(
            "## log₂ d = 2^{log2_d_exp} (top = {top}); k* = loglog d/logloglog d ≈ {k_star}\n"
        );
        let mut table = MarkdownTable::new(&[
            "k (multiple of k*)",
            "alg1 t/k",
            "alg2 t/k",
            "LB avg (1/k²)(log d)^{1/k}",
        ]);
        for mult in [1u32, 2, 4, 8, 16, 32, 64] {
            let k = k_star * mult;
            let a1 = worst_total(top, k, false);
            let a2 = worst_total(top, k, true);
            let lb = lower_bound_form(f64::from(log2_d), 2.0, k) / f64::from(k);
            table.row(vec![
                format!("{k} ({mult}×)"),
                format!("{:.2}", a1 as f64 / f64::from(k)),
                format!("{:.2}", a2 as f64 / f64::from(k)),
                format!("{lb:.3}"),
            ]);
        }
        table.print();
        println!();
    }
    println!("reading: at small multiples of k* every algorithm needs ≫ 1 probes per");
    println!("round of budget (the lower-bound average is itself > 1 there); by large");
    println!("multiples Algorithm 2's t/k ≈ 1 — one probe per round suffices, while");
    println!("Algorithm 1 keeps paying (log d)^{{1/k}} per round. That asymmetry is the");
    println!("paper's phase transition.\n");

    // The paper's remark made literal: serializing Algorithm 2's probes
    // realizes an actual 1-probe-per-round schedule within the budget.
    use anns_cellprobe::{execute_with, ExecOptions};
    let top = 1 << 17;
    let k = 256u32;
    let cfg = Alg2Config::with_k(k);
    let inst = SyntheticInstance::new(
        SyntheticProfile::point_mass(top, top / 3, 48.0),
        alg2_s(k, cfg.c),
    );
    let scheme = Alg2Scheme {
        instance: &inst,
        config: cfg,
    };
    let (outcome, ledger, _) = execute_with(&scheme, &(), ExecOptions::serialized());
    assert_eq!(outcome.scale(), Some(top / 3));
    println!("## serialized implementation (Theorem 3's extreme, k = {k})\n");
    println!(
        "Algorithm 2 with every probe in its own round: {} rounds × 1 probe, within the k = {k} budget: {}",
        ledger.rounds(),
        if ledger.rounds() <= k as usize { "yes" } else { "NO" }
    );
}
