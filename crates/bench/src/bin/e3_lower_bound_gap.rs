//! **E3 — Theorem 4:** the `Ω((1/k)(log d)^{1/k})` lower bound against
//! both upper bounds.
//!
//! Three tables:
//! 1. the constant-free lower-bound form vs the measured probes of
//!    Algorithms 1 and 2 at plottable synthetic dimensions — exhibiting the
//!    claimed optimality: Algorithm 1's probes / the form ≈ `k²`
//!    (i.e. matching up to the `Θ(k²)` factor between `k·(log d)^{1/k}`
//!    and `(1/k)(log d)^{1/k}`, which is a constant for constant `k` —
//!    "Algorithm 1 is asymptotically optimal for any constant k");
//! 2. the **certified** lower bound from the round-elimination calculator
//!    with the paper's honest constants, at the galactic sizes those
//!    constants require;
//! 3. the certified bound with relaxed constants at smaller (still huge)
//!    sizes, showing the same `k`-decay shape.

use anns_bench::{experiment_header, worst_totals, MarkdownTable};
use anns_cellprobe::execute;
use anns_core::{alg2_s, Alg1Scheme, Alg2Config, Alg2Scheme, SyntheticInstance, SyntheticProfile};
use anns_lpm::{certified_lower_bound, lower_bound_form, ElimParams};

fn alg1_probes(top: u32, k: u32) -> usize {
    let grid: Vec<u32> = (0..8).map(|i| 2 + i * (top - 2) / 7).collect();
    let mut ledgers = Vec::new();
    for i0 in grid {
        let inst = SyntheticInstance::new(SyntheticProfile::point_mass(top, i0, 40.0), 2.0);
        let scheme = Alg1Scheme {
            instance: &inst,
            k,
            tau_override: None,
        };
        let (o, l) = execute(&scheme, &());
        assert_eq!(o.scale(), Some(i0));
        ledgers.push(l);
    }
    worst_totals(&ledgers).0
}

fn alg2_probes(top: u32, k: u32) -> usize {
    let cfg = Alg2Config::with_k(k);
    let grid: Vec<u32> = (0..8).map(|i| 2 + i * (top - 2) / 7).collect();
    let mut ledgers = Vec::new();
    for i0 in grid {
        let inst = SyntheticInstance::new(
            SyntheticProfile::point_mass(top, i0, 40.0),
            alg2_s(k, cfg.c),
        );
        let scheme = Alg2Scheme {
            instance: &inst,
            config: cfg,
        };
        let (o, l) = execute(&scheme, &());
        assert_eq!(o.scale(), Some(i0));
        ledgers.push(l);
    }
    worst_totals(&ledgers).0
}

fn main() {
    experiment_header(
        "E3",
        "Theorem 4: Ω((1/k)(log d)^{1/k}) vs the measured upper bounds",
    );

    // --- Table 1: form vs measurements. ---
    for log2_d in [256u32, 4096] {
        let top = 2 * log2_d;
        println!("## upper bounds vs lower-bound form — log₂ d = {log2_d}\n");
        let mut table = MarkdownTable::new(&[
            "k",
            "LB form (1/k)(log_γ d)^{1/k}",
            "alg1 probes",
            "alg1/LB",
            "alg1/(k²·LB)",
            "alg2 probes",
        ]);
        for k in 1..=8u32 {
            let lb = lower_bound_form(f64::from(log2_d), 2.0, k);
            let a1 = alg1_probes(top, k);
            let a2 = if k >= 2 {
                alg2_probes(top, k).to_string()
            } else {
                "-".into()
            };
            table.row(vec![
                k.to_string(),
                format!("{lb:.2}"),
                a1.to_string(),
                format!("{:.1}", a1 as f64 / lb),
                format!("{:.2}", a1 as f64 / (f64::from(k * k) * lb)),
                a2,
            ]);
        }
        table.print();
        println!("\n(the alg1/(k²·LB) column is ≈ constant: upper and lower bounds");
        println!("match in the (log d)^{{1/k}} factor, as Theorem 4 claims for constant k)\n");
    }

    // --- Table 2: honest certification at galactic sizes. ---
    println!("## certified lower bound, honest constants (log₂ d = 1.1e12, log₂ n = 1.3e24)\n");
    let honest = ElimParams::paper();
    let (n_log2, d_log2) = (1.3e24f64, 1.1e12f64);
    let ll = d_log2.log2();
    let k_cap = ll / (2.0 * ll.log2());
    let mut table = MarkdownTable::new(&[
        "k",
        "in theorem range?",
        "certified t >",
        "form (1/k)(log_γ d)^{1/k}",
    ]);
    for k in 1..=6u32 {
        let cert = certified_lower_bound(n_log2, d_log2, 4.0, k, 1 << 44, &honest);
        let form = lower_bound_form(d_log2, 4.0, k);
        table.row(vec![
            k.to_string(),
            if f64::from(k) <= k_cap { "yes" } else { "no" }.into(),
            cert.to_string(),
            format!("{form:.2}"),
        ]);
    }
    table.print();
    println!("\n(theorem range: k ≤ log log d/(2·log log log d) = {k_cap:.2} here. The");
    println!("recurrence certifies positive bounds exactly within that range and the");
    println!("band empties beyond it — the theorem's own k-precondition, observed");
    println!("numerically. The certified constants shrink with k as the e^{{Θ(k)}}");
    println!("inflation of the compression lemma bites, as round elimination always");
    println!("pays.)\n");

    // --- Table 3: relaxed constants at smaller sizes. ---
    println!("## certified lower bound, relaxed constants (log₂ d = 1e8, log₂ n = 1e16)\n");
    let relaxed = ElimParams::relaxed();
    let mut table = MarkdownTable::new(&["k", "certified t >", "form", "cert/form"]);
    for k in 1..=5u32 {
        let cert = certified_lower_bound(1e16, 1e8, 4.0, k, 1 << 40, &relaxed);
        let form = lower_bound_form(1e8, 4.0, k);
        table.row(vec![
            k.to_string(),
            cert.to_string(),
            format!("{form:.2}"),
            if cert > 0 {
                format!("{:.2e}", cert as f64 / form)
            } else {
                "band empty".into()
            },
        ]);
    }
    table.print();
    println!("\nE3 complete.");
}
