//! **E8 — the §1 positioning:** LSH vs Algorithm 1 vs the fully adaptive
//! baseline vs linear scan.
//!
//! The paper's introduction frames its contribution against LSH (1 round,
//! `O~(n^ρ)` probes, near-linear table) and the fully adaptive
//! `O(log log d)` regime. This experiment runs all of them on one planted
//! workload per n and reports probes, rounds, bits read, space and wall
//! time — the full tradeoff surface.

use std::time::Instant;

use anns_bench::{experiment_header, quick_mode, trials, MarkdownTable};
use anns_cellprobe::{execute, Table};
use anns_core::{Alg1Scheme, AnnIndex, AnnsInstance, BuildOptions};
use anns_hamming::gen;
use anns_lsh::{LinearScan, LshIndex, LshParams, MultiRadiusLsh, MultiRadiusParams};
use anns_sketch::SketchParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

const D: u32 = 512;
const R: u32 = 8; // planted radius
const GAMMA: f64 = 2.0;

fn main() {
    experiment_header(
        "E8",
        "LSH O~(n^ρ) vs Algorithm 1 O(log d) (both 1-round), the adaptive baseline and linear scan",
    );
    let reps = trials(16);
    // Quick mode (CI smoke): the largest instances dominate wall time —
    // LSH's table count L grows as n^ρ — so shrink the n grid, not just
    // the repetition count.
    let n_grid: &[usize] = if quick_mode() {
        &[256, 1024]
    } else {
        &[1024, 4096, 16384]
    };
    for &n in n_grid {
        println!("## n = {n}, d = {D}, planted distance {R}, γ = {GAMMA}\n");
        let mut rng = StdRng::seed_from_u64(n as u64);
        let planted = gen::planted(n, D, R, &mut rng);
        let queries: Vec<_> = (0..reps)
            .map(|_| {
                gen::point_at_distance(planted.dataset.point(planted.planted_index), R, &mut rng)
            })
            .collect();

        let lsh_params = LshParams::for_radius(n, D, f64::from(R), GAMMA, 4.0);
        let lsh = LshIndex::build(planted.dataset.clone(), lsh_params, &mut rng);
        let index = AnnIndex::build(
            planted.dataset.clone(),
            SketchParams::practical(GAMMA, n as u64),
            BuildOptions::default(),
        );
        let scan = LinearScan::new(planted.dataset.clone());

        let mut table = MarkdownTable::new(&[
            "scheme",
            "rounds",
            "probes",
            "bits read",
            "log₂ cells",
            "μs/query",
            "success",
        ]);

        // LSH.
        {
            let t0 = Instant::now();
            let mut probes = 0usize;
            let mut bits = 0u64;
            let mut rounds = 0usize;
            let mut ok = 0usize;
            for q in &queries {
                let (ans, ledger) = lsh.query(q);
                probes += ledger.total_probes();
                bits += ledger.word_bits_read;
                rounds = rounds.max(ledger.rounds());
                if let Some((idx, _)) = ans {
                    if planted
                        .dataset
                        .is_gamma_approximate_nn(q, planted.dataset.point(idx), GAMMA)
                    {
                        ok += 1;
                    }
                }
            }
            table.row(vec![
                format!(
                    "LSH (K={},L={})",
                    lsh.params().k_bits,
                    lsh.params().l_tables
                ),
                rounds.to_string(),
                (probes / reps).to_string(),
                (bits / reps as u64).to_string(),
                format!("{:.1}", Table::space_model(&lsh).cells_log2),
                format!("{:.0}", t0.elapsed().as_micros() as f64 / reps as f64),
                format!("{ok}/{reps}"),
            ]);
        }

        // Algorithm 1 at k = 1 (non-adaptive like LSH) and k = 3; plus the
        // fully adaptive τ = 2 baseline.
        for (name, k, tau) in [
            ("Alg 1 (k=1)", 1u32, None),
            ("Alg 1 (k=3)", 3, None),
            ("adaptive τ=2", 64, Some(2u32)),
        ] {
            let scheme = Alg1Scheme {
                instance: &index,
                k,
                tau_override: tau,
            };
            let t0 = Instant::now();
            let mut probes = 0usize;
            let mut bits = 0u64;
            let mut rounds = 0usize;
            let mut ok = 0usize;
            for q in &queries {
                let (outcome, ledger) = execute(&scheme, q);
                probes += ledger.total_probes();
                bits += ledger.word_bits_read;
                rounds = rounds.max(ledger.rounds());
                if index.verify_gamma(q, &outcome) {
                    ok += 1;
                }
            }
            table.row(vec![
                name.into(),
                rounds.to_string(),
                (probes / reps).to_string(),
                (bits / reps as u64).to_string(),
                format!("{:.1}", index.table().space_model().cells_log2),
                format!("{:.0}", t0.elapsed().as_micros() as f64 / reps as f64),
                format!("{ok}/{reps}"),
            ]);
        }

        // Multi-radius LSH ladders: LSH's own limited-adaptivity curve.
        for rungs_per_round in [1u32, 4] {
            let mut rng2 = StdRng::seed_from_u64(n as u64 ^ 0xABC);
            let ladder = MultiRadiusLsh::build(
                planted.dataset.clone(),
                MultiRadiusParams {
                    rungs_per_round,
                    ..MultiRadiusParams::default()
                },
                &mut rng2,
            );
            let t0 = Instant::now();
            let mut probes = 0usize;
            let mut bits = 0u64;
            let mut rounds = 0usize;
            let mut ok = 0usize;
            for q in &queries {
                let (ans, ledger) = ladder.query(q);
                probes += ledger.total_probes();
                bits += ledger.word_bits_read;
                rounds = rounds.max(ledger.rounds());
                if let Some((idx, _)) = ans {
                    if planted
                        .dataset
                        .is_gamma_approximate_nn(q, planted.dataset.point(idx), GAMMA)
                    {
                        ok += 1;
                    }
                }
            }
            table.row(vec![
                format!("multi-r LSH ({rungs_per_round}/round)"),
                rounds.to_string(),
                (probes / reps).to_string(),
                (bits / reps as u64).to_string(),
                format!("{:.1}", Table::space_model(&ladder).cells_log2),
                format!("{:.0}", t0.elapsed().as_micros() as f64 / reps as f64),
                format!("{ok}/{reps}"),
            ]);
        }

        // Linear scan.
        {
            let t0 = Instant::now();
            let mut probes = 0usize;
            let mut bits = 0u64;
            for q in &queries {
                let (_, ledger) = scan.query(q);
                probes += ledger.total_probes();
                bits += ledger.word_bits_read;
            }
            table.row(vec![
                "linear scan".into(),
                "1".into(),
                (probes / reps).to_string(),
                (bits / reps as u64).to_string(),
                format!("{:.1}", Table::space_model(&scan).cells_log2),
                format!("{:.0}", t0.elapsed().as_micros() as f64 / reps as f64),
                format!("{reps}/{reps}"),
            ]);
        }
        table.print();
        println!();
    }
    println!("reading: at 1 round, Algorithm 1 probes O(log d) cells vs LSH's");
    println!("O~(n^ρ) — the probe gap grows with n while the space gap (log₂ cells)");
    println!("is the price; the adaptive baseline reads O(log log d)-ish probes at");
    println!("maximal rounds. Who wins depends on which resource binds — the");
    println!("tradeoff the paper quantifies.");
}
