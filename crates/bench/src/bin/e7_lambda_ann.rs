//! **E7 — Theorem 11:** the 1-probe λ-ANNS scheme on a YES/NO grid.
//!
//! For every (planted distance, λ) cell the scheme must, with one probe:
//! return a witness within γλ when a point lies within λ (YES side), and
//! answer NO when nothing lies within γλ (strong NO side); the promise gap
//! in between is unconstrained. The table reports compliance rates over
//! independently re-seeded instances.

use anns_bench::{experiment_header, trials, MarkdownTable};
use anns_core::lambda::LambdaAnswer;
use anns_core::{AnnIndex, BuildOptions};
use anns_hamming::gen;
use anns_sketch::SketchParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

const GAMMA: f64 = 2.0;
const N: usize = 1024;
const D: u32 = 512;

fn main() {
    experiment_header("E7", "Theorem 11: 1-probe λ-ANNS search");
    let reps = trials(16);
    println!(
        "n = {N}, d = {D}, γ = {GAMMA}; {reps} re-seeded instances per cell; every query costs exactly 1 probe\n"
    );
    let mut table = MarkdownTable::new(&[
        "planted dist",
        "λ",
        "side",
        "compliant",
        "witness ≤ γλ always",
    ]);
    for planted_dist in [4u32, 8, 16, 32] {
        for lambda in [
            f64::from(planted_dist) / 4.0,
            f64::from(planted_dist) / GAMMA - 1.0,
            f64::from(planted_dist),
            f64::from(planted_dist) * 2.0,
            f64::from(planted_dist) * 8.0,
        ] {
            if lambda < 1.0 {
                continue;
            }
            let side = if f64::from(planted_dist) <= lambda {
                "YES"
            } else if f64::from(planted_dist) > GAMMA * lambda {
                "strong NO"
            } else {
                "gap"
            };
            let mut compliant = 0usize;
            let mut witness_ok = true;
            for rep in 0..reps {
                let mut rng = StdRng::seed_from_u64(1000 * u64::from(planted_dist) + rep as u64);
                let planted = gen::planted(N, D, planted_dist, &mut rng);
                let opt = planted.dataset.exact_nn(&planted.query).distance;
                let index = AnnIndex::build(
                    planted.dataset,
                    SketchParams::practical(GAMMA, 77 + rep as u64),
                    BuildOptions::default(),
                );
                let (answer, ledger) = index.query_lambda(&planted.query, lambda);
                assert_eq!(ledger.total_probes(), 1);
                assert_eq!(ledger.rounds(), 1);
                match (&answer, side) {
                    (LambdaAnswer::Neighbor { index: idx, .. }, _) => {
                        let dist = planted.query.distance(index.dataset().point(*idx as usize));
                        if f64::from(dist) > GAMMA * lambda {
                            witness_ok = false;
                        } else if side == "YES" || side == "gap" {
                            compliant += 1;
                        }
                    }
                    (LambdaAnswer::No, "strong NO") => compliant += 1,
                    (LambdaAnswer::No, "gap") => compliant += 1,
                    (LambdaAnswer::No, _) => {
                        // YES side answered NO: non-compliant unless the
                        // instance degenerated (opt > λ can't happen for
                        // planted instances, but guard anyway).
                        if f64::from(opt) > lambda {
                            compliant += 1;
                        }
                    }
                }
            }
            table.row(vec![
                planted_dist.to_string(),
                format!("{lambda:.0}"),
                side.into(),
                format!("{compliant}/{reps}"),
                if witness_ok { "yes" } else { "NO" }.into(),
            ]);
        }
    }
    table.print();
    println!("\nreading: YES and strong-NO cells comply at (near-)full rate with a");
    println!("single probe — the reason the paper's lower bound must target the");
    println!("*search* problem rather than the decision problem (§3.3).");
}
