//! The `annsctl bench-server` artifact: the multi-tenant loopback
//! workload's client-observed outcome counters and latency splits, one
//! row per tenant. Shared between the binary that writes it, the
//! `bench-gate --server-*` comparison that reloads the committed
//! `BENCH_server_quick.json` reference, and the end-to-end tests that
//! doctor artifacts to prove the gate trips.
//!
//! The counters are designed to be *deterministic* under the CI tenant
//! policies: a hot tenant whose bucket never refills (`hot:0:B`) is
//! admitted exactly `B` times and throttled `offered − B` times,
//! timing-free; compliant tenants offering within their burst see zero
//! refusals. Only the latency columns are runner-speed-dependent.

use serde::{Deserialize, Serialize};

/// `bench-server` output: workload config plus one row per tenant.
#[derive(Clone, Serialize, Deserialize)]
pub struct BenchServerReport {
    /// The workload that produced the rows; [`PartialEq`] so the gate
    /// can refuse to compare artifacts from different workloads.
    pub config: BenchServerConfig,
    /// Per-tenant outcomes, in submission order.
    pub tenants: Vec<TenantBenchRow>,
}

impl BenchServerReport {
    /// The row for `tenant`, if the run included it.
    pub fn tenant(&self, name: &str) -> Option<&TenantBenchRow> {
        self.tenants.iter().find(|t| t.tenant == name)
    }
}

/// The workload shape: which tenants offered how much, under which
/// seed, in which mode.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchServerConfig {
    /// Per-tenant offered load, in submission (round-robin) order.
    pub tenants: Vec<TenantWorkloadSpec>,
    pub seed: u64,
    pub quick: bool,
}

/// One tenant's place in the workload.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantWorkloadSpec {
    pub name: String,
    /// Queries this tenant offers over the run.
    pub offered: u64,
    /// Whether this tenant intentionally offers beyond its token
    /// budget. The gate bands the hot tenant's throttle counter; for
    /// any other tenant a single refusal is a hard failure.
    pub hot: bool,
}

/// One tenant's client-observed outcomes and latency distribution.
#[derive(Clone, Serialize, Deserialize)]
pub struct TenantBenchRow {
    pub tenant: String,
    pub offered: u64,
    pub served: u64,
    /// Typed `Throttled` refusals (token bucket empty).
    pub throttled: u64,
    /// Typed `Overloaded` refusals (shared queue at capacity).
    pub overloaded: u64,
    /// Typed `Closed` refusals (queue draining).
    pub closed: u64,
    /// Other typed server errors (unknown shard, bad request).
    pub failed: u64,
    /// Socket-to-ticket round trip: how long admission took.
    pub ticket_p50_us: f64,
    pub ticket_p99_us: f64,
    pub ticket_max_us: f64,
    /// Socket-to-answer round trip: admission plus window wait plus
    /// execution.
    pub answer_p50_us: f64,
    pub answer_p99_us: f64,
    pub answer_max_us: f64,
}

/// Percentile over sorted client-side RTT samples, in µs (0 if empty).
/// Nearest-rank on the already-sorted slice.
pub fn rtt_pct_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64 / 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_over_sorted_samples() {
        assert_eq!(rtt_pct_us(&[], 0.5), 0.0);
        assert_eq!(rtt_pct_us(&[2_000], 0.99), 2.0);
        let xs: Vec<u64> = (1..=100).map(|i| i * 1_000).collect();
        assert_eq!(rtt_pct_us(&xs, 0.0), 1.0);
        assert_eq!(rtt_pct_us(&xs, 1.0), 100.0);
        assert_eq!(rtt_pct_us(&xs, 0.5), 51.0, "nearest rank, not interp");
    }

    #[test]
    fn artifact_roundtrips_and_configs_compare() {
        let report = BenchServerReport {
            config: BenchServerConfig {
                tenants: vec![TenantWorkloadSpec {
                    name: "hot".into(),
                    offered: 40,
                    hot: true,
                }],
                seed: 99,
                quick: true,
            },
            tenants: vec![TenantBenchRow {
                tenant: "hot".into(),
                offered: 40,
                served: 8,
                throttled: 32,
                overloaded: 0,
                closed: 0,
                failed: 0,
                ticket_p50_us: 10.0,
                ticket_p99_us: 20.0,
                ticket_max_us: 30.0,
                answer_p50_us: 100.0,
                answer_p99_us: 200.0,
                answer_max_us: 300.0,
            }],
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: BenchServerReport = serde_json::from_str(&json).unwrap();
        assert!(back.config == report.config);
        assert_eq!(back.tenant("hot").unwrap().throttled, 32);
        assert!(back.tenant("cold").is_none());
        let mut other = report.config.clone();
        other.seed = 7;
        assert!(other != report.config, "seed is part of the workload");
    }
}
