//! Kernel throughput: the limb-major `PackedBlock` batch distance kernels
//! vs the scalar per-`Point` loop, at the d = 512 shape `annsctl
//! bench-kernels` headlines (8 limbs — the fully unrolled chunk).
//!
//! The CI `microbench-gate` job runs this in quick mode alongside
//! `annsctl bench-kernels`, whose JSON output is what `annsctl bench-gate
//! --kernels-current … --kernels-reference BENCH_kernels_quick.json`
//! actually compares; the criterion numbers are the human-readable side
//! of the same measurement.

use criterion::{criterion_group, criterion_main, Criterion};

use anns_hamming::{gen, PackedBlock, Point};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 4096;
const D: u32 = 512;
const QUERIES: usize = 8;

struct Fixture {
    points: Vec<Point>,
    block: PackedBlock,
    queries: Vec<Point>,
}

fn fixture() -> Fixture {
    let mut rng = StdRng::seed_from_u64(7);
    let ds = gen::uniform(N, D, &mut rng);
    let points = ds.points().to_vec();
    let block = PackedBlock::from_points(D, &points);
    let queries = (0..QUERIES).map(|_| Point::random(D, &mut rng)).collect();
    Fixture {
        points,
        block,
        queries,
    }
}

fn bench_kernels(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group("kernel_throughput");
    group.sample_size(20);

    group.bench_function("scalar_point_distance", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for q in &f.queries {
                for p in &f.points {
                    sum += u64::from(q.distance(p));
                }
            }
            sum
        })
    });

    group.bench_function("one_vs_many", |b| {
        let mut out = vec![0u32; N];
        b.iter(|| {
            let mut sum = 0u64;
            for q in &f.queries {
                f.block.distances_into(q, &mut out);
                sum += out.iter().map(|&x| u64::from(x)).sum::<u64>();
            }
            sum
        })
    });

    group.bench_function("many_vs_many", |b| {
        let mut out = vec![0u32; N * QUERIES];
        b.iter(|| {
            f.block.many_distances_into(&f.queries, &mut out);
            out.iter().map(|&x| u64::from(x)).sum::<u64>()
        })
    });

    group.bench_function("within_radius_early_exit", |b| {
        b.iter(|| {
            f.queries
                .iter()
                .map(|q| f.block.within_indices(q, D / 8).len())
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
