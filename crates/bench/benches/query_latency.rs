//! Wall-clock query latency of every scheme on one workload
//! (n = 4096, d = 512, planted distance 8).
//!
//! Complements the probe-count experiments: probes are the model cost,
//! these are the engineering costs of the lazy-oracle implementation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use anns_cellprobe::{execute, ExecOptions};
use anns_core::{Alg1Scheme, Alg2Config, AnnIndex, BuildOptions};
use anns_hamming::{gen, Point};
use anns_lsh::{LinearScan, LshIndex, LshParams};
use anns_sketch::SketchParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 4096;
const D: u32 = 512;

struct Fixture {
    index: AnnIndex,
    lsh: LshIndex,
    scan: LinearScan,
    queries: Vec<Point>,
}

fn fixture() -> Fixture {
    let mut rng = StdRng::seed_from_u64(1);
    let planted = gen::planted(N, D, 8, &mut rng);
    let index = AnnIndex::build(
        planted.dataset.clone(),
        SketchParams::practical(2.0, 1),
        BuildOptions::default(),
    );
    let lsh = LshIndex::build(
        planted.dataset.clone(),
        LshParams::for_radius(N, D, 8.0, 2.0, 2.0),
        &mut rng,
    );
    let scan = LinearScan::new(planted.dataset.clone());
    let queries = (0..64)
        .map(|_| gen::point_at_distance(planted.dataset.point(planted.planted_index), 8, &mut rng))
        .collect();
    Fixture {
        index,
        lsh,
        scan,
        queries,
    }
}

fn bench_queries(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group("query_latency");
    group.sample_size(20);

    let queries = f.queries.clone();
    let make_next = || {
        let qs = queries.clone();
        let mut qi = 0usize;
        move || {
            qi = (qi + 1) % qs.len();
            qs[qi].clone()
        }
    };

    for k in [1u32, 3] {
        group.bench_function(format!("alg1_k{k}"), |b| {
            b.iter_batched(make_next(), |q| f.index.query(&q, k), BatchSize::SmallInput)
        });
    }
    group.bench_function("alg1_k3_parallel_probes", |b| {
        b.iter_batched(
            make_next(),
            |q| {
                f.index
                    .query_with(&q, 3, ExecOptions::parallel_probes(4, 4))
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("alg2_k8", |b| {
        b.iter_batched(
            make_next(),
            |q| f.index.query_alg2(&q, Alg2Config::with_k(8)),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("lambda_ann", |b| {
        b.iter_batched(
            make_next(),
            |q| f.index.query_lambda(&q, 8.0),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("adaptive_tau2", |b| {
        let scheme = Alg1Scheme {
            instance: &f.index,
            k: 64,
            tau_override: Some(2),
        };
        b.iter_batched(make_next(), |q| execute(&scheme, &q), BatchSize::SmallInput)
    });
    group.bench_function("lsh", |b| {
        b.iter_batched(make_next(), |q| f.lsh.query(&q), BatchSize::SmallInput)
    });
    group.bench_function("linear_scan", |b| {
        b.iter_batched(make_next(), |q| f.scan.query(&q), BatchSize::SmallInput)
    });
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
