//! Micro-benchmarks of the hot kernels: Hamming distance, GF(2) sketching,
//! sketch distance, and one lazy-table cell evaluation (a `C_i` scan).

use criterion::{criterion_group, criterion_main, Criterion};

use anns_hamming::{gen, Point};
use anns_sketch::{DbSketches, SketchFamily, SketchParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let d = 1024u32;
    let a = Point::random(d, &mut rng);
    let b = Point::random(d, &mut rng);

    c.bench_function("hamming_distance_d1024", |bch| {
        bch.iter(|| std::hint::black_box(&a).distance(std::hint::black_box(&b)))
    });

    let n = 4096usize;
    let ds = gen::uniform(n, d, &mut rng);
    let family = SketchFamily::generate(d, n, &SketchParams::practical(2.0, 5));
    let db = DbSketches::build(&family, &ds, 4);
    let mid_scale = family.top() / 2;

    c.bench_function("sketch_point_d1024", |bch| {
        bch.iter(|| family.sketch_m(mid_scale, std::hint::black_box(&a)))
    });

    let sa = family.sketch_m(mid_scale, &a);
    let sb = family.sketch_m(mid_scale, &b);
    c.bench_function("sketch_distance", |bch| {
        bch.iter(|| std::hint::black_box(&sa).distance(std::hint::black_box(&sb)))
    });

    c.bench_function("c_first_scan_n4096", |bch| {
        bch.iter(|| db.c_first(&family, mid_scale, std::hint::black_box(&sa)))
    });

    c.bench_function("exact_nn_n4096_d1024", |bch| {
        bch.iter(|| ds.exact_nn(std::hint::black_box(&a)))
    });
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
