//! Serving throughput: coalesced round-synchronous engine vs per-query
//! `run_batch`, on a hot-set workload (requests repeat over a small pool
//! of distinct queries — the traffic shape a serving tier actually sees).
//!
//! The engine's edge is structural: within a generation-round, identical
//! probe addresses from different queries are executed once. At 4x
//! request repetition the engine does roughly a quarter of the oracle
//! work per round; `run_batch` recomputes every query independently.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use anns_bench::hot_set_workload;
use anns_cellprobe::{run_batch, ExecOptions};
use anns_core::serve::SoloServable;
use anns_core::{AnnIndex, BuildOptions, ServeAlg1};
use anns_engine::{Engine, EngineOptions, QueryRequest, Registry};
use anns_hamming::{gen, Point};
use anns_sketch::SketchParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 4096;
const D: u32 = 512;
const K: u32 = 3;
const REQUESTS: usize = 128;
const DISTINCT: usize = 8;
const THREADS: usize = 4;

struct Fixture {
    index: Arc<AnnIndex>,
    queries: Vec<Point>,
}

fn fixture() -> Fixture {
    let mut rng = StdRng::seed_from_u64(5);
    let ds = gen::uniform(N, D, &mut rng);
    let index = Arc::new(AnnIndex::build(
        ds,
        SketchParams::practical(2.0, 5),
        BuildOptions::default(),
    ));
    let queries = hot_set_workload(&index, REQUESTS, DISTINCT, 6, 5);
    Fixture { index, queries }
}

fn bench_serving(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);

    group.bench_function("run_batch_per_query", |b| {
        let servable = ServeAlg1 {
            index: Arc::clone(&f.index),
            k: K,
            tau_override: None,
        };
        let solo = SoloServable(&servable);
        b.iter(|| run_batch(&solo, &f.queries, THREADS, ExecOptions::default()))
    });

    for batch in [16usize, 64, 128] {
        group.bench_function(format!("engine_coalesced_gen{batch}"), |b| {
            let mut registry = Registry::new();
            let shard = registry.register_alg1("alg1", Arc::clone(&f.index), K);
            let engine = Engine::new(
                registry,
                EngineOptions {
                    generation: batch,
                    exec: ExecOptions::default(),
                    batch_threads: THREADS,
                },
            );
            let requests: Vec<QueryRequest> = f
                .queries
                .iter()
                .map(|query| QueryRequest {
                    shard,
                    query: query.clone(),
                })
                .collect();
            b.iter(|| engine.submit_batch(&requests))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
