//! Preprocessing cost: index construction across n and thread counts.
//!
//! The paper charges preprocessing nothing (the cell-probe model measures
//! queries); the lazy-oracle implementation's real build cost is sketching
//! the database — embarrassingly parallel across scales, which is what the
//! thread sweep shows.

use criterion::{criterion_group, criterion_main, Criterion};

use anns_core::{AnnIndex, BuildOptions};
use anns_hamming::gen;
use anns_lsh::{LshIndex, LshParams};
use anns_sketch::SketchParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_builds(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_throughput");
    group.sample_size(10);
    for n in [512usize, 2048] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let ds = gen::uniform(n, 256, &mut rng);
        for threads in [1usize, 4] {
            let ds2 = ds.clone();
            group.bench_function(format!("ann_index_n{n}_t{threads}"), move |b| {
                b.iter(|| {
                    AnnIndex::build(
                        ds2.clone(),
                        SketchParams::practical(2.0, 7),
                        BuildOptions {
                            threads,
                            ..BuildOptions::default()
                        },
                    )
                })
            });
        }
        let ds3 = ds.clone();
        group.bench_function(format!("lsh_n{n}"), move |b| {
            let params = LshParams::for_radius(n, 256, 8.0, 2.0, 1.0);
            b.iter(|| {
                let mut rng2 = StdRng::seed_from_u64(9);
                LshIndex::build(ds3.clone(), params, &mut rng2)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_builds);
criterion_main!(benches);
