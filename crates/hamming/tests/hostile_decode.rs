//! Hostile-count fuzz over the [`Dataset`] codec — the substrate every
//! persisted index decodes through. The count and dimension prefixes
//! are attacker-controlled in a corrupted-but-checksummed (or
//! adversarially authored) bundle, so any value they can take must
//! yield a typed [`StoreError`], never a panic and never an allocation
//! sized by the prefix instead of by the bytes actually present.

use anns_hamming::{gen, Dataset};
use anns_store::{Codec, StoreError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn encoded(seed: u64, n: usize, d: u32) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    gen::uniform(n, d, &mut rng).to_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The `u64` point count at bytes `[4..12]`: any inflated value —
    /// one past the truth up to `u64::MAX` — is "impossible in the
    /// remaining bytes" and must be rejected before any reservation.
    #[test]
    fn inflated_count_prefix_is_a_typed_error(
        seed in any::<u64>(),
        n in 1usize..24,
        delta in 1u64..u64::MAX / 2,
    ) {
        let mut bytes = encoded(seed, n, 96);
        let count = (n as u64).saturating_add(delta);
        bytes[4..12].copy_from_slice(&count.to_le_bytes());
        match Dataset::from_bytes(&bytes) {
            Err(StoreError::Malformed(_) | StoreError::Truncated { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error {other}"),
            Ok(_) => prop_assert!(false, "hostile count decoded"),
        }
    }

    /// The `u32` dimension at bytes `[0..4]`: a huge dimension implies
    /// a huge per-point limb count, which must fail the bytes-present
    /// check instead of reserving `dim/8` bytes per point.
    #[test]
    fn inflated_dim_prefix_is_a_typed_error(
        seed in any::<u64>(),
        n in 1usize..24,
        dim in 1u32 << 20..u32::MAX,
    ) {
        let mut bytes = encoded(seed, n, 96);
        bytes[0..4].copy_from_slice(&dim.to_le_bytes());
        match Dataset::from_bytes(&bytes) {
            Err(StoreError::Malformed(_) | StoreError::Truncated { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error {other}"),
            Ok(_) => prop_assert!(false, "hostile dim decoded"),
        }
    }

    /// Arbitrary damage anywhere in the 12-byte header region never
    /// panics: every outcome is a dataset or a typed error.
    #[test]
    fn header_region_fuzz_never_panics(
        seed in any::<u64>(),
        offset in 0usize..12,
        value in any::<u8>(),
    ) {
        let mut bytes = encoded(seed, 8, 64);
        bytes[offset] = value;
        let _ = Dataset::from_bytes(&bytes);
    }
}
