//! Property-based equivalence tests for the bit-sliced kernel layer.
//!
//! Every kernel in [`anns_hamming::kernel`] must be byte-identical to the
//! scalar [`Point::distance`] loop — across the tail-limb boundary (d = 63,
//! 64, 65, …), for every limb-chunk width the tuned entry point accepts,
//! and through the `Dataset` surfaces (`exact_nn`, `within`, `k_nearest`,
//! `DistanceHistogram`) that now route over the packed view.

use anns_hamming::{gen, k_nearest, Dataset, DistanceHistogram, PackedBlock, Point};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Scalar reference: one-vs-many distances via `Point::distance`.
fn scalar_distances(query: &Point, points: &[Point]) -> Vec<u32> {
    points.iter().map(|p| query.distance(p)).collect()
}

fn random_points(n: usize, d: u32, seed: u64) -> (Vec<Point>, Point) {
    let mut rng = StdRng::seed_from_u64(seed);
    let points: Vec<Point> = (0..n).map(|_| Point::random(d, &mut rng)).collect();
    let query = Point::random(d, &mut rng);
    (points, query)
}

/// Strategy: dimensions covering the whole 1..=1024 range so the tail limb
/// takes every possible width, plus a point count and a seed.
fn shape() -> impl Strategy<Value = (u32, usize, u64)> {
    (1u32..=1024, 1usize..80, any::<u64>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// One-vs-many kernel equals the scalar loop for arbitrary shapes.
    #[test]
    fn distances_match_scalar((d, n, seed) in shape()) {
        let (points, query) = random_points(n, d, seed);
        let block = PackedBlock::from_points(d, &points);
        prop_assert_eq!(block.distances(&query), scalar_distances(&query, &points));
    }

    /// The tuned entry point is invariant under every tile size and limb
    /// chunk width — including widths past the fixed-width unrolled arms.
    #[test]
    fn tuned_sweep_is_invariant((d, n, seed) in shape()) {
        let (points, query) = random_points(n, d, seed);
        let block = PackedBlock::from_points(d, &points);
        let reference = scalar_distances(&query, &points);
        let mut out = vec![0u32; n];
        for limb_chunk in 1..=9usize {
            for tile in [1usize, 2, 7, n, n + 13, 1024] {
                block.distances_into_tuned(&query, &mut out, tile, limb_chunk);
                prop_assert_eq!(&out, &reference, "tile {} chunk {}", tile, limb_chunk);
            }
        }
    }

    /// Many-vs-many kernel equals per-query scalar loops, in query order.
    #[test]
    fn many_distances_match_scalar((d, n, seed) in shape(), q in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let points: Vec<Point> = (0..n).map(|_| Point::random(d, &mut rng)).collect();
        let queries: Vec<Point> = (0..q).map(|_| Point::random(d, &mut rng)).collect();
        let block = PackedBlock::from_points(d, &points);
        let mut out = vec![0u32; q * n];
        block.many_distances_into(&queries, &mut out);
        for (qi, query) in queries.iter().enumerate() {
            prop_assert_eq!(&out[qi * n..(qi + 1) * n], &scalar_distances(query, &points)[..]);
        }
    }

    /// The threshold-early-exit radius kernel returns exactly the scalar
    /// filter, in index order, for every radius.
    #[test]
    fn within_indices_match_scalar((d, n, seed) in shape(), r_frac in 0.0f64..=1.0) {
        let (points, query) = random_points(n, d, seed);
        let block = PackedBlock::from_points(d, &points);
        let radius = ((d as f64) * r_frac).floor() as u32;
        let expect: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| query.distance(p) <= radius)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(block.within_indices(&query, radius), expect);
    }

    /// Heap-based kNN over the kernel output equals sort-and-truncate over
    /// scalar distances, including the (distance, index) tie-break.
    #[test]
    fn k_nearest_matches_sorted_scan((d, n, seed) in shape(), k in 0usize..90) {
        let (points, query) = random_points(n, d, seed);
        let ds = Dataset::new(points.clone());
        let got = k_nearest(&ds, &query, k);
        let mut expect: Vec<(u32, usize)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (query.distance(p), i))
            .collect();
        expect.sort_unstable();
        expect.truncate(k);
        prop_assert_eq!(got.len(), expect.len());
        for (g, (dist, idx)) in got.iter().zip(&expect) {
            prop_assert_eq!((g.distance, g.index), (*dist, *idx));
        }
    }

    /// The kernelized histogram still counts every point exactly once and
    /// buckets it by its scalar distance.
    #[test]
    fn histogram_matches_scalar((d, n, seed) in shape(), width in 1u32..64) {
        let (points, query) = random_points(n, d, seed);
        let ds = Dataset::new(points.clone());
        let hist = DistanceHistogram::build(&ds, &query, width);
        prop_assert_eq!(hist.total(), n);
        let mut expect = vec![0usize; hist.counts.len()];
        for p in &points {
            expect[(query.distance(p) / width) as usize] += 1;
        }
        prop_assert_eq!(&hist.counts, &expect);
    }

    /// `Dataset` survives a serde round-trip and rebuilds an identical
    /// packed view lazily (the cache itself is never serialized).
    #[test]
    fn dataset_serde_roundtrip(seed in any::<u64>(), n in 1usize..40, d in 1u32..256) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = gen::uniform(n, d, &mut rng);
        let query = Point::random(d, &mut rng);
        let json = serde_json::to_string(&ds).unwrap();
        let back: Dataset = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back.points(), ds.points());
        prop_assert_eq!(back.packed().distances(&query), ds.packed().distances(&query));
    }
}

/// The tail-limb boundary dims, pinned explicitly: one limb exactly full,
/// one bit either side, and the two headline full-limb shapes.
#[test]
fn boundary_dims_exhaustive() {
    for d in [1u32, 63, 64, 65, 127, 128, 129, 512, 1024] {
        let (points, query) = random_points(33, d, u64::from(d) * 1009 + 17);
        let block = PackedBlock::from_points(d, &points);
        assert_eq!(
            block.distances(&query),
            scalar_distances(&query, &points),
            "d = {d}"
        );
        let mut out = vec![0u32; points.len()];
        for limb_chunk in 1..=9usize {
            block.distances_into_tuned(&query, &mut out, 8, limb_chunk);
            assert_eq!(
                out,
                scalar_distances(&query, &points),
                "d = {d} chunk {limb_chunk}"
            );
        }
    }
}
