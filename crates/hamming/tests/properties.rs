//! Property-based tests for the Hamming substrate.

use anns_hamming::{ball, ceil_log_alpha, gen, scale_radius, Dataset, Point};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a dimension and a pair of seeds.
fn dim_and_seed() -> impl Strategy<Value = (u32, u64)> {
    (1u32..600, any::<u64>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hamming distance is a metric: identity, symmetry, triangle inequality.
    #[test]
    fn distance_is_a_metric((d, seed) in dim_and_seed()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Point::random(d, &mut rng);
        let b = Point::random(d, &mut rng);
        let c = Point::random(d, &mut rng);
        prop_assert_eq!(a.distance(&a), 0);
        prop_assert_eq!(a.distance(&b), b.distance(&a));
        prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c));
        // Distance zero implies equality (positivity).
        if a.distance(&b) == 0 {
            prop_assert_eq!(&a, &b);
        }
    }

    /// XOR is addition: dist(a, b) = weight(a ⊕ b), and ⊕ is an involution.
    #[test]
    fn xor_is_group_action((d, seed) in dim_and_seed()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Point::random(d, &mut rng);
        let b = Point::random(d, &mut rng);
        let mut x = a.clone();
        x.xor_assign(&b);
        prop_assert_eq!(x.weight(), a.distance(&b));
        x.xor_assign(&b);
        prop_assert_eq!(x, a);
    }

    /// Flipping any subset of coordinates moves the point by exactly the
    /// subset size.
    #[test]
    fn flips_move_exactly((d, seed) in dim_and_seed(), flips in prop::collection::btree_set(0u32..600, 0..40)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Point::random(d, &mut rng);
        let valid: Vec<u32> = flips.into_iter().filter(|&i| i < d).collect();
        let mut b = a.clone();
        for &i in &valid {
            b.flip(i);
        }
        prop_assert_eq!(a.distance(&b) as usize, valid.len());
    }

    /// `point_at_distance` hits the shell exactly, for every radius.
    #[test]
    fn shell_sampler_is_exact((d, seed) in dim_and_seed(), frac in 0.0f64..=1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let center = Point::random(d, &mut rng);
        let r = ((d as f64) * frac).floor() as u32;
        let p = gen::point_at_distance(&center, r, &mut rng);
        prop_assert_eq!(center.distance(&p), r);
    }

    /// The ball profile is monotone, ends at n, and its first non-empty
    /// scale is consistent with the exact NN distance.
    #[test]
    fn ball_profile_invariants(seed in any::<u64>(), n in 1usize..60, d in 2u32..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = gen::uniform(n, d, &mut rng);
        let q = Point::random(d, &mut rng);
        let alpha = std::f64::consts::SQRT_2;
        let prof = ds.ball_profile(&q, alpha);
        for w in prof.sizes.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        prop_assert_eq!(*prof.sizes.last().unwrap(), n);
        let first = prof.first_nonempty() as u32;
        // NN distance lies in (radius(first-1), radius(first)].
        prop_assert!(prof.nn_distance <= scale_radius(first, alpha));
        if first > 0 {
            prop_assert!(prof.nn_distance > scale_radius(first - 1, alpha));
        }
    }

    /// Ball volumes: log2-volume of radius-d ball is exactly d; volumes are
    /// monotone in the radius.
    #[test]
    fn ball_volume_consistency(d in 1u64..400, r_frac in 0.0f64..=1.0) {
        let r = ((d as f64) * r_frac).floor() as u64;
        let v = ball::ball_volume_log2(d, r);
        prop_assert!(v <= d as f64 + 1e-6);
        if r < d {
            prop_assert!(ball::ball_volume_log2(d, r + 1) >= v - 1e-9);
        }
    }

    /// `ceil_log_alpha` really is the minimal exponent.
    #[test]
    fn ceil_log_alpha_minimal(d in 1u64..1_000_000, alpha_milli in 1001u32..1999) {
        let alpha = alpha_milli as f64 / 1000.0;
        let k = ceil_log_alpha(d, alpha);
        prop_assert!(alpha.powi(k as i32) >= d as f64);
        if k > 0 {
            prop_assert!(alpha.powi(k as i32 - 1) < d as f64);
        }
    }

    /// Exact NN scan is correct against a direct minimum.
    #[test]
    fn exact_nn_is_minimum(seed in any::<u64>(), n in 1usize..50, d in 1u32..128) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = gen::uniform(n, d, &mut rng);
        let q = Point::random(d, &mut rng);
        let nn = ds.exact_nn(&q);
        let direct = ds.points().iter().map(|p| q.distance(p)).min().unwrap();
        prop_assert_eq!(nn.distance, direct);
        prop_assert_eq!(q.distance(ds.point(nn.index)), direct);
    }
}

#[test]
fn n1_membership_exhaustive_small() {
    // Exhaustive check in dimension 10 with a 5-point database.
    let mut rng = StdRng::seed_from_u64(99);
    let ds = gen::uniform(5, 10, &mut rng);
    for mask in 0u32..1024 {
        let q = Point::from_fn(10, |i| (mask >> i) & 1 == 1);
        let expect = ds.points().iter().any(|p| p.distance(&q) <= 1);
        let got = ball::n1_member(ds.points(), &q).is_some();
        assert_eq!(got, expect, "mask {mask}");
    }
    let _ = Dataset::new(ds.points().to_vec()); // exercise re-wrap
}
