//! Greedy Gilbert–Varshamov style codes: sets of well-separated centers.
//!
//! Lemma 15 of the paper (due to Chakrabarti–Chazelle–Gum–Lvov) asserts that
//! inside a Hamming ball of radius `r ≥ d^0.995` there is a γ-separated
//! family of `⌈2^{d^0.99}⌉` balls of radius `r/(8γ)`. The existence proof is
//! probabilistic; at laptop scale we realize the same object constructively
//! for the LPM → ANNS reduction (crate `anns-lpm`): a [`GreedyCode`] is a
//! maximal set of centers inside a given ball with pairwise distance above a
//! prescribed minimum, grown by rejection sampling — exactly the
//! Gilbert–Varshamov argument run forward.

use rand::Rng;

use crate::gen::point_at_distance;
use crate::point::Point;

/// A set of pairwise well-separated points inside a Hamming ball.
#[derive(Clone, Debug)]
pub struct GreedyCode {
    center: Point,
    radius: u32,
    min_distance: u32,
    words: Vec<Point>,
}

impl GreedyCode {
    /// Greedily grows a code of `target` points inside `Ball(center, radius)`
    /// with pairwise distances `> min_distance`.
    ///
    /// Candidates are sampled uniformly from the shell at distance `radius`
    /// (the boundary maximizes mutual distances); a candidate is kept iff it
    /// is farther than `min_distance` from every kept word. Gives up after
    /// `max_attempts` consecutive rejections and returns what it has — the
    /// caller checks [`GreedyCode::len`].
    ///
    /// # Panics
    /// Panics if `radius > center.dim()`.
    pub fn grow<R: Rng + ?Sized>(
        center: &Point,
        radius: u32,
        min_distance: u32,
        target: usize,
        max_attempts: usize,
        rng: &mut R,
    ) -> Self {
        assert!(radius <= center.dim());
        let mut words: Vec<Point> = Vec::with_capacity(target);
        let mut misses = 0usize;
        while words.len() < target && misses < max_attempts {
            let cand = point_at_distance(center, radius, rng);
            if words.iter().all(|w| w.distance(&cand) > min_distance) {
                words.push(cand);
                misses = 0;
            } else {
                misses += 1;
            }
        }
        GreedyCode {
            center: center.clone(),
            radius,
            min_distance,
            words,
        }
    }

    /// Number of codewords found.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the code is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The codewords.
    pub fn words(&self) -> &[Point] {
        &self.words
    }

    /// The enclosing ball's center.
    pub fn center(&self) -> &Point {
        &self.center
    }

    /// The enclosing ball's radius.
    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// The guaranteed pairwise separation (distances are `> min_distance`).
    pub fn min_distance(&self) -> u32 {
        self.min_distance
    }

    /// Verifies the construction invariants (containment + separation);
    /// returns the smallest pairwise distance, or `None` for codes of size
    /// < 2. Used by the reduction audit in E10.
    pub fn audit(&self) -> Option<u32> {
        for w in &self.words {
            assert!(
                self.center.distance(w) <= self.radius,
                "codeword escapes the ball"
            );
        }
        let mut min = None;
        for i in 0..self.words.len() {
            for j in (i + 1)..self.words.len() {
                let dist = self.words[i].distance(&self.words[j]);
                assert!(
                    dist > self.min_distance,
                    "separation violated: {dist} <= {}",
                    self.min_distance
                );
                min = Some(min.map_or(dist, |m: u32| m.min(dist)));
            }
        }
        min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn grow_respects_separation_and_containment() {
        let mut rng = StdRng::seed_from_u64(1);
        let center = Point::random(512, &mut rng);
        let code = GreedyCode::grow(&center, 200, 100, 16, 10_000, &mut rng);
        assert_eq!(code.len(), 16, "GV bound easily admits 16 words here");
        let min = code.audit().unwrap();
        assert!(min > 100);
    }

    #[test]
    fn grow_from_shell_keeps_radius() {
        let mut rng = StdRng::seed_from_u64(2);
        let center = Point::random(256, &mut rng);
        let code = GreedyCode::grow(&center, 64, 30, 8, 10_000, &mut rng);
        for w in code.words() {
            assert_eq!(center.distance(w), 64, "codewords sampled on the shell");
        }
    }

    #[test]
    fn impossible_separation_returns_partial() {
        let mut rng = StdRng::seed_from_u64(3);
        let center = Point::random(32, &mut rng);
        // Separation 32 within radius 4 shell: at most one word fits
        // (pairwise distances on the shell are ≤ 8).
        let code = GreedyCode::grow(&center, 4, 32, 10, 200, &mut rng);
        assert!(code.len() <= 1, "got {}", code.len());
    }

    #[test]
    fn zero_target_is_empty() {
        let mut rng = StdRng::seed_from_u64(4);
        let center = Point::random(64, &mut rng);
        let code = GreedyCode::grow(&center, 10, 5, 0, 10, &mut rng);
        assert!(code.is_empty());
        assert_eq!(code.audit(), None);
    }
}
