//! Databases of Hamming points with exact ground truth.
//!
//! [`Dataset`] is the `B ⊆ {0,1}^d, |B| = n` of the paper. Besides storage
//! it provides the two oracles every experiment needs:
//!
//! * exact nearest neighbors (brute force — the ground truth all approximate
//!   answers are judged against), and
//! * the *ball profile* of a query: the sizes of
//!   `B_i = {y ∈ B : dist(x, y) ≤ α^i}` for `i = 0..⌈log_α d⌉` (paper §3
//!   eq. (1)), which drives both the correctness proofs and the synthetic
//!   instance backend.

use std::sync::OnceLock;

use serde::{obj_get, Deserialize, Serialize, Value};

use crate::ceil_log_alpha;
use crate::kernel::PackedBlock;
use crate::point::Point;

/// An exact nearest neighbor: index into the dataset plus its distance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExactNeighbor {
    /// Index of the nearest database point.
    pub index: usize,
    /// Its Hamming distance to the query.
    pub distance: u32,
}

/// The sizes of the paper's distance balls `B_i` around one query.
///
/// `sizes[i] = |{y ∈ B : dist(x,y) ≤ α^i}|` for `i = 0..=⌈log_α d⌉`.
/// `B_{⌈log_α d⌉}` always equals the whole database since `α^{⌈log_α d⌉} ≥ d`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BallProfile {
    /// `|B_i|` for each scale `i`.
    pub sizes: Vec<usize>,
    /// The exact nearest-neighbor distance (`min_z dist(x,z)`).
    pub nn_distance: u32,
}

impl BallProfile {
    /// Smallest scale `i` with `B_i` non-empty.
    pub fn first_nonempty(&self) -> usize {
        self.sizes
            .iter()
            .position(|&s| s > 0)
            .expect("profile of a non-empty database has a non-empty top ball")
    }

    /// Number of scales (`⌈log_α d⌉ + 1`).
    pub fn num_scales(&self) -> usize {
        self.sizes.len()
    }
}

/// A database of `n` points in `{0,1}^d`.
///
/// Carries a lazily built limb-major [`PackedBlock`] view so the batch
/// kernels (exact NN, kNN, histograms, ball profiles) pay the transpose
/// once per database instead of once per query. The cache is derived
/// state: it is skipped by serialization (hand-written impls below — the
/// vendored serde shim has no `#[serde(skip)]`) and rebuilt on demand,
/// which is sound because points are immutable after construction.
#[derive(Clone, Debug)]
pub struct Dataset {
    dim: u32,
    points: Vec<Point>,
    packed: OnceLock<PackedBlock>,
}

/// Serializes as the plain `{dim, points}` object the former derived impl
/// produced — committed JSON artifacts stay readable; the packed cache is
/// never written.
impl Serialize for Dataset {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("dim".to_string(), self.dim.to_value()),
            ("points".to_string(), self.points.to_value()),
        ])
    }
}

impl Deserialize for Dataset {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let Value::Object(fields) = v else {
            return Err(serde::Error::custom("expected object for Dataset"));
        };
        Ok(Dataset {
            dim: u32::from_value(obj_get(fields, "dim")?)?,
            points: Vec::<Point>::from_value(obj_get(fields, "points")?)?,
            packed: OnceLock::new(),
        })
    }
}

impl Dataset {
    /// Wraps a vector of points; all must share the same dimension.
    ///
    /// # Panics
    /// Panics if `points` is empty or dimensions are inconsistent.
    pub fn new(points: Vec<Point>) -> Self {
        assert!(!points.is_empty(), "database must be non-empty");
        let dim = points[0].dim();
        assert!(
            points.iter().all(|p| p.dim() == dim),
            "all database points must share one dimension"
        );
        Dataset {
            dim,
            points,
            packed: OnceLock::new(),
        }
    }

    /// The limb-major kernel view of the database, built on first use and
    /// cached for the dataset's lifetime.
    pub fn packed(&self) -> &PackedBlock {
        self.packed
            .get_or_init(|| PackedBlock::from_points(self.dim, &self.points))
    }

    /// Ambient dimension `d`.
    #[inline]
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Database size `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always false (construction rejects empty databases); provided for
    /// clippy-idiomatic pairing with [`Dataset::len`].
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Point by index.
    #[inline]
    pub fn point(&self, i: usize) -> &Point {
        &self.points[i]
    }

    /// Exact nearest neighbor by brute force over the batched kernel
    /// distances (ties broken by lowest index — the first strict minimum
    /// in index order, exactly as the scalar scan resolved them).
    pub fn exact_nn(&self, query: &Point) -> ExactNeighbor {
        let dists = self.packed().distances(query);
        let mut best = ExactNeighbor {
            index: 0,
            distance: u32::MAX,
        };
        for (i, &dist) in dists.iter().enumerate() {
            if dist < best.distance {
                best = ExactNeighbor {
                    index: i,
                    distance: dist,
                };
                if dist == 0 {
                    break;
                }
            }
        }
        best
    }

    /// All indices within distance `r` of the query (the ball `B` at radius
    /// `r`), ascending — the kernel's threshold-early-exit radius filter.
    pub fn within(&self, query: &Point, r: u32) -> Vec<usize> {
        self.packed().within_indices(query, r)
    }

    /// The paper's ball profile `i ↦ |B_i|` for `B_i = {y : dist ≤ α^i}`,
    /// `i = 0..=⌈log_α d⌉`.
    pub fn ball_profile(&self, query: &Point, alpha: f64) -> BallProfile {
        let top = ceil_log_alpha(self.dim as u64, alpha) as usize;
        let mut sizes = vec![0usize; top + 1];
        let mut nn = u32::MAX;
        for &dist in &self.packed().distances(query) {
            nn = nn.min(dist);
            // Smallest scale i with scale_radius(i) ≥ dist (see
            // `crate::scale_radius` for the integer-radius convention):
            // dist 0 → B_0, dist 1 → B_1, dist ≥ 2 → ⌈log_α dist⌉.
            let first = if dist <= 1 {
                dist as usize
            } else {
                ceil_log_alpha(dist as u64, alpha) as usize
            };
            if first <= top {
                sizes[first] += 1;
            }
        }
        // Prefix sums: a point inside B_i is inside every larger ball.
        for i in 1..=top {
            sizes[i] += sizes[i - 1];
        }
        BallProfile {
            sizes,
            nn_distance: nn,
        }
    }

    /// Checks whether `candidate` is a γ-approximate nearest neighbor of
    /// `query` in this database (`dist(x, z) ≤ γ · min_y dist(x, y)`).
    pub fn is_gamma_approximate_nn(&self, query: &Point, candidate: &Point, gamma: f64) -> bool {
        let opt = self.exact_nn(query).distance as f64;
        let got = query.distance(candidate) as f64;
        got <= gamma * opt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_ds(seed: u64, n: usize, d: u32) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::new((0..n).map(|_| Point::random(d, &mut rng)).collect())
    }

    #[test]
    fn exact_nn_finds_identical_point() {
        let ds = small_ds(1, 50, 64);
        for i in 0..ds.len() {
            let nn = ds.exact_nn(ds.point(i));
            assert_eq!(nn.distance, 0);
            assert_eq!(ds.point(nn.index), ds.point(i));
        }
    }

    #[test]
    fn exact_nn_matches_full_scan_minimum() {
        let ds = small_ds(2, 80, 96);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let q = Point::random(96, &mut rng);
            let nn = ds.exact_nn(&q);
            let min = ds.points().iter().map(|p| q.distance(p)).min().unwrap();
            assert_eq!(nn.distance, min);
        }
    }

    #[test]
    fn within_agrees_with_exact_distances() {
        let ds = small_ds(4, 60, 64);
        let mut rng = StdRng::seed_from_u64(5);
        let q = Point::random(64, &mut rng);
        for r in [0u32, 5, 20, 32, 64] {
            let inside = ds.within(&q, r);
            for (i, p) in ds.points().iter().enumerate() {
                assert_eq!(inside.contains(&i), q.distance(p) <= r);
            }
        }
    }

    #[test]
    fn ball_profile_is_monotone_and_tops_at_n() {
        let ds = small_ds(6, 100, 128);
        let mut rng = StdRng::seed_from_u64(7);
        let alpha = std::f64::consts::SQRT_2;
        for _ in 0..10 {
            let q = Point::random(128, &mut rng);
            let prof = ds.ball_profile(&q, alpha);
            for w in prof.sizes.windows(2) {
                assert!(w[0] <= w[1], "profile must be monotone");
            }
            assert_eq!(*prof.sizes.last().unwrap(), ds.len());
        }
    }

    #[test]
    fn ball_profile_matches_direct_counts() {
        let ds = small_ds(8, 40, 64);
        let mut rng = StdRng::seed_from_u64(9);
        let alpha = 1.3f64;
        let q = Point::random(64, &mut rng);
        let prof = ds.ball_profile(&q, alpha);
        for (i, &size) in prof.sizes.iter().enumerate() {
            let radius = crate::scale_radius(i as u32, alpha);
            let direct = ds.within(&q, radius).len();
            assert_eq!(size, direct, "scale {i} (radius {radius})");
        }
    }

    #[test]
    fn ball_profile_nn_distance_matches_exact() {
        let ds = small_ds(10, 70, 80);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let q = Point::random(80, &mut rng);
            let prof = ds.ball_profile(&q, 1.5);
            assert_eq!(prof.nn_distance, ds.exact_nn(&q).distance);
        }
    }

    #[test]
    fn gamma_approximation_check() {
        let ds = small_ds(12, 30, 64);
        let mut rng = StdRng::seed_from_u64(13);
        let q = Point::random(64, &mut rng);
        let nn = ds.exact_nn(&q);
        assert!(ds.is_gamma_approximate_nn(&q, ds.point(nn.index), 1.0));
        // A far random point is (whp) not a 1.01-approx NN unless it ties.
        let far = Point::ones(64);
        let is_approx = ds.is_gamma_approximate_nn(&q, &far, 1.01);
        let ratio = q.distance(&far) as f64 / nn.distance.max(1) as f64;
        assert_eq!(is_approx, ratio <= 1.01 || q.distance(&far) == 0);
    }

    #[test]
    #[should_panic]
    fn rejects_empty_database() {
        let _ = Dataset::new(vec![]);
    }

    #[test]
    #[should_panic]
    fn rejects_mixed_dimensions() {
        let _ = Dataset::new(vec![Point::zeros(8), Point::zeros(9)]);
    }
}
