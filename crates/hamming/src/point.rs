//! Bit-packed points of the Hamming cube `{0,1}^d`.
//!
//! A [`Point`] stores its `d` bits in `⌈d/64⌉` little-endian `u64` limbs.
//! The unused high bits of the last limb are kept at zero as an invariant,
//! so equality, hashing and popcount work limb-wise without masking.

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Number of bits per storage limb.
pub const LIMB_BITS: u32 = 64;

/// A point of the Hamming cube `{0,1}^d`, bit-packed into `u64` limbs.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Point {
    dim: u32,
    limbs: Box<[u64]>,
}

impl Point {
    /// The all-zeros point of dimension `dim`.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn zeros(dim: u32) -> Self {
        assert!(dim > 0, "Point dimension must be positive");
        let n_limbs = dim.div_ceil(LIMB_BITS) as usize;
        Point {
            dim,
            limbs: vec![0u64; n_limbs].into_boxed_slice(),
        }
    }

    /// The all-ones point of dimension `dim`.
    pub fn ones(dim: u32) -> Self {
        let mut p = Self::zeros(dim);
        for limb in p.limbs.iter_mut() {
            *limb = u64::MAX;
        }
        p.mask_tail();
        p
    }

    /// Builds a point from a boolean slice (`bits[i]` is coordinate `i`).
    pub fn from_bits(bits: &[bool]) -> Self {
        assert!(!bits.is_empty(), "Point dimension must be positive");
        let mut p = Self::zeros(bits.len() as u32);
        for (i, &b) in bits.iter().enumerate() {
            if b {
                p.set(i as u32, true);
            }
        }
        p
    }

    /// Builds a point by evaluating `f` on every coordinate.
    pub fn from_fn(dim: u32, mut f: impl FnMut(u32) -> bool) -> Self {
        let mut p = Self::zeros(dim);
        for i in 0..dim {
            if f(i) {
                p.set(i, true);
            }
        }
        p
    }

    /// Builds a point directly from limbs; tail bits beyond `dim` are masked.
    pub fn from_limbs(dim: u32, limbs: Vec<u64>) -> Self {
        assert!(dim > 0, "Point dimension must be positive");
        assert_eq!(
            limbs.len(),
            dim.div_ceil(LIMB_BITS) as usize,
            "limb count must match dimension"
        );
        let mut p = Point {
            dim,
            limbs: limbs.into_boxed_slice(),
        };
        p.mask_tail();
        p
    }

    /// A uniformly random point of dimension `dim`.
    pub fn random<R: Rng + ?Sized>(dim: u32, rng: &mut R) -> Self {
        let n_limbs = dim.div_ceil(LIMB_BITS) as usize;
        let mut limbs = Vec::with_capacity(n_limbs);
        for _ in 0..n_limbs {
            limbs.push(rng.gen::<u64>());
        }
        Self::from_limbs(dim, limbs)
    }

    /// Dimension `d` of the ambient cube.
    #[inline]
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Raw limbs (little-endian bit order; tail bits are zero).
    #[inline]
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Reads coordinate `i`.
    #[inline]
    pub fn get(&self, i: u32) -> bool {
        debug_assert!(i < self.dim, "coordinate {i} out of range {}", self.dim);
        let limb = self.limbs[(i / LIMB_BITS) as usize];
        (limb >> (i % LIMB_BITS)) & 1 == 1
    }

    /// Writes coordinate `i`.
    #[inline]
    pub fn set(&mut self, i: u32, value: bool) {
        debug_assert!(i < self.dim, "coordinate {i} out of range {}", self.dim);
        let mask = 1u64 << (i % LIMB_BITS);
        let limb = &mut self.limbs[(i / LIMB_BITS) as usize];
        if value {
            *limb |= mask;
        } else {
            *limb &= !mask;
        }
    }

    /// Flips coordinate `i` in place.
    #[inline]
    pub fn flip(&mut self, i: u32) {
        debug_assert!(i < self.dim, "coordinate {i} out of range {}", self.dim);
        self.limbs[(i / LIMB_BITS) as usize] ^= 1u64 << (i % LIMB_BITS);
    }

    /// Returns a copy with coordinate `i` flipped.
    pub fn flipped(&self, i: u32) -> Self {
        let mut p = self.clone();
        p.flip(i);
        p
    }

    /// Hamming weight (number of ones).
    #[inline]
    pub fn weight(&self) -> u32 {
        self.limbs.iter().map(|l| l.count_ones()).sum()
    }

    /// Hamming distance to `other`.
    ///
    /// This is the hot loop of the whole workspace: XOR + popcount over the
    /// shared limbs, no allocation, no branches.
    ///
    /// # Panics
    /// Panics if dimensions differ.
    #[inline]
    pub fn distance(&self, other: &Point) -> u32 {
        assert_eq!(self.dim, other.dim, "distance between mismatched dims");
        let mut acc = 0u32;
        for (a, b) in self.limbs.iter().zip(other.limbs.iter()) {
            acc += (a ^ b).count_ones();
        }
        acc
    }

    /// XORs `other` into `self` (coordinate-wise addition over GF(2)).
    pub fn xor_assign(&mut self, other: &Point) {
        assert_eq!(self.dim, other.dim, "xor between mismatched dims");
        for (a, b) in self.limbs.iter_mut().zip(other.limbs.iter()) {
            *a ^= *b;
        }
    }

    /// Parity of the AND with `other` — the GF(2) inner product `⟨self, other⟩`.
    ///
    /// This is how one row of a sketch matrix maps a point to one sketch bit.
    #[inline]
    pub fn inner_product_parity(&self, other: &Point) -> bool {
        assert_eq!(self.dim, other.dim, "inner product between mismatched dims");
        let mut acc = 0u32;
        for (a, b) in self.limbs.iter().zip(other.limbs.iter()) {
            acc ^= (a & b).count_ones() & 1;
        }
        acc & 1 == 1
    }

    /// Iterator over the indices of set coordinates, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = u32> + '_ {
        self.limbs.iter().enumerate().flat_map(|(li, &limb)| {
            let base = li as u32 * LIMB_BITS;
            IterOnesLimb { limb, base }
        })
    }

    /// The point's coordinates as a boolean vector.
    pub fn to_bits(&self) -> Vec<bool> {
        (0..self.dim).map(|i| self.get(i)).collect()
    }

    /// Zeroes the storage bits beyond `dim` (invariant restoration).
    fn mask_tail(&mut self) {
        let rem = self.dim % LIMB_BITS;
        if rem != 0 {
            if let Some(last) = self.limbs.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

struct IterOnesLimb {
    limb: u64,
    base: u32,
}

impl Iterator for IterOnesLimb {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.limb == 0 {
            return None;
        }
        let tz = self.limb.trailing_zeros();
        self.limb &= self.limb - 1;
        Some(self.base + tz)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.limb.count_ones() as usize;
        (n, Some(n))
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point(d={}, ", self.dim)?;
        if self.dim <= 128 {
            for i in 0..self.dim {
                write!(f, "{}", self.get(i) as u8)?;
            }
        } else {
            write!(f, "weight={}", self.weight())?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_ones_weights() {
        for d in [1u32, 7, 63, 64, 65, 100, 128, 1000] {
            assert_eq!(Point::zeros(d).weight(), 0);
            assert_eq!(Point::ones(d).weight(), d, "ones weight at d={d}");
        }
    }

    #[test]
    fn tail_mask_invariant_after_ones() {
        let p = Point::ones(65);
        assert_eq!(p.limbs()[1], 1, "tail bits must be masked");
    }

    #[test]
    fn set_get_flip_roundtrip() {
        let mut p = Point::zeros(130);
        p.set(0, true);
        p.set(64, true);
        p.set(129, true);
        assert!(p.get(0) && p.get(64) && p.get(129));
        assert_eq!(p.weight(), 3);
        p.flip(64);
        assert!(!p.get(64));
        assert_eq!(p.weight(), 2);
        p.flip(64);
        assert_eq!(p.weight(), 3);
    }

    #[test]
    fn distance_is_metric_on_samples() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let d = rng.gen_range(1..300);
            let a = Point::random(d, &mut rng);
            let b = Point::random(d, &mut rng);
            let c = Point::random(d, &mut rng);
            assert_eq!(a.distance(&a), 0);
            assert_eq!(a.distance(&b), b.distance(&a));
            assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c));
        }
    }

    #[test]
    fn distance_counts_flips_exactly() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = Point::random(257, &mut rng);
        let mut b = a.clone();
        let mut flipped = std::collections::HashSet::new();
        while flipped.len() < 40 {
            let i = rng.gen_range(0..257);
            if flipped.insert(i) {
                b.flip(i);
            }
        }
        assert_eq!(a.distance(&b), 40);
    }

    #[test]
    fn xor_assign_matches_distance() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Point::random(200, &mut rng);
        let b = Point::random(200, &mut rng);
        let mut x = a.clone();
        x.xor_assign(&b);
        assert_eq!(x.weight(), a.distance(&b));
    }

    #[test]
    fn inner_product_parity_matches_naive() {
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..30 {
            let d = rng.gen_range(1..200);
            let a = Point::random(d, &mut rng);
            let b = Point::random(d, &mut rng);
            let naive = (0..d).filter(|&i| a.get(i) && b.get(i)).count() % 2 == 1;
            assert_eq!(a.inner_product_parity(&b), naive);
        }
    }

    #[test]
    fn iter_ones_matches_get() {
        let mut rng = StdRng::seed_from_u64(11);
        let p = Point::random(300, &mut rng);
        let ones: Vec<u32> = p.iter_ones().collect();
        let expect: Vec<u32> = (0..300).filter(|&i| p.get(i)).collect();
        assert_eq!(ones, expect);
    }

    #[test]
    fn from_bits_roundtrip() {
        let mut rng = StdRng::seed_from_u64(12);
        let p = Point::random(99, &mut rng);
        assert_eq!(Point::from_bits(&p.to_bits()), p);
    }

    #[test]
    fn from_fn_matches_from_bits() {
        let bits: Vec<bool> = (0..77).map(|i| i % 3 == 0).collect();
        assert_eq!(Point::from_fn(77, |i| i % 3 == 0), Point::from_bits(&bits));
    }

    #[test]
    #[should_panic]
    fn mismatched_distance_panics() {
        let a = Point::zeros(10);
        let b = Point::zeros(11);
        let _ = a.distance(&b);
    }

    #[test]
    fn serde_roundtrip() {
        let mut rng = StdRng::seed_from_u64(13);
        let p = Point::random(130, &mut rng);
        let enc = serde_json::to_string(&p).unwrap();
        let back: Point = serde_json::from_str(&enc).unwrap();
        assert_eq!(back, p);
    }
}
