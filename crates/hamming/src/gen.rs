//! Seeded workload generators.
//!
//! The paper evaluates nothing empirically, so the reproduction needs
//! workloads that exercise the interesting regimes:
//!
//! * **uniform** — in high dimension (`d ≫ log n`) uniform points concentrate
//!   at pairwise distance `≈ d/2`; queries see a sharp ball profile (all of
//!   `B` appears at the top few scales), the regime the lower bound lives in;
//! * **planted** — a query at a controlled exact distance from one database
//!   point, with everything else far: the canonical "needle" instance where
//!   approximation quality is measurable;
//! * **clustered** — databases with geometric structure, so intermediate
//!   balls `B_i` are non-trivially populated at many scales;
//! * **shells** — points at an exact prescribed distance, the building block
//!   for all of the above and for the `λ`-ANN YES/NO instances.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::dataset::Dataset;
use crate::point::Point;

/// A planted-neighbor instance: a database, a query, and where the needle is.
#[derive(Clone, Debug)]
pub struct PlantedInstance {
    /// The database (needle included).
    pub dataset: Dataset,
    /// The query point.
    pub query: Point,
    /// Index of the planted near neighbor in the database.
    pub planted_index: usize,
    /// Exact Hamming distance from the query to the planted point.
    pub planted_distance: u32,
}

/// `n` uniformly random points in `{0,1}^d`.
pub fn uniform<R: Rng + ?Sized>(n: usize, d: u32, rng: &mut R) -> Dataset {
    Dataset::new((0..n).map(|_| Point::random(d, rng)).collect())
}

/// A point at *exactly* distance `r` from `center` (uniform over the shell).
///
/// # Panics
/// Panics if `r > d`.
pub fn point_at_distance<R: Rng + ?Sized>(center: &Point, r: u32, rng: &mut R) -> Point {
    let d = center.dim();
    assert!(r <= d, "cannot flip {r} coordinates in dimension {d}");
    let mut coords: Vec<u32> = (0..d).collect();
    // partial_shuffle returns the uniformly chosen sample as the FIRST
    // element of the tuple (it lives at the tail of the slice).
    let (sample, _) = coords.partial_shuffle(rng, r as usize);
    let mut p = center.clone();
    for &c in sample.iter() {
        p.flip(c);
    }
    p
}

/// Flips each coordinate of `point` independently with probability `p`.
pub fn corrupt<R: Rng + ?Sized>(point: &Point, p: f64, rng: &mut R) -> Point {
    assert!(
        (0.0..=1.0).contains(&p),
        "flip probability must be in [0,1]"
    );
    let mut out = point.clone();
    for i in 0..point.dim() {
        if rng.gen_bool(p) {
            out.flip(i);
        }
    }
    out
}

/// A planted-neighbor instance: `n - 1` uniform points plus one needle at
/// exact distance `planted_distance` from the (uniform random) query.
///
/// For `d ≥ 4·log₂ n + planted_distance·γ`-ish regimes the uniform points sit
/// at distance ≈ d/2, so the needle is the unique approximate answer; the
/// caller is responsible for choosing sensible parameters (the function makes
/// no attempt to verify uniqueness — use [`Dataset::exact_nn`] in tests).
pub fn planted<R: Rng + ?Sized>(
    n: usize,
    d: u32,
    planted_distance: u32,
    rng: &mut R,
) -> PlantedInstance {
    assert!(n >= 1, "database must be non-empty");
    let query = Point::random(d, rng);
    let needle = point_at_distance(&query, planted_distance, rng);
    let mut points: Vec<Point> = (0..n - 1).map(|_| Point::random(d, rng)).collect();
    let planted_index = rng.gen_range(0..=points.len());
    points.insert(planted_index, needle);
    PlantedInstance {
        dataset: Dataset::new(points),
        query,
        planted_index,
        planted_distance,
    }
}

/// A clustered database: `n_clusters` uniform centers, each with
/// `per_cluster` points obtained by iid flips with probability `flip_p`.
///
/// Cluster `c` occupies indices `c*per_cluster .. (c+1)*per_cluster`.
pub fn clustered<R: Rng + ?Sized>(
    n_clusters: usize,
    per_cluster: usize,
    d: u32,
    flip_p: f64,
    rng: &mut R,
) -> Dataset {
    assert!(n_clusters > 0 && per_cluster > 0);
    let mut points = Vec::with_capacity(n_clusters * per_cluster);
    for _ in 0..n_clusters {
        let center = Point::random(d, rng);
        for _ in 0..per_cluster {
            points.push(corrupt(&center, flip_p, rng));
        }
    }
    Dataset::new(points)
}

/// A database whose ball profile around `query` is controlled exactly:
/// `shell_sizes[j]` points are placed at exact distance `radii[j]`.
///
/// This is how concrete tests pin down which `B_i` are empty/non-empty.
///
/// # Panics
/// Panics if lengths mismatch, any radius exceeds `d`, or the total is zero.
pub fn shells<R: Rng + ?Sized>(
    query: &Point,
    radii: &[u32],
    shell_sizes: &[usize],
    rng: &mut R,
) -> Dataset {
    assert_eq!(radii.len(), shell_sizes.len(), "radii/sizes mismatch");
    let total: usize = shell_sizes.iter().sum();
    assert!(total > 0, "database must be non-empty");
    let mut points = Vec::with_capacity(total);
    for (&r, &s) in radii.iter().zip(shell_sizes.iter()) {
        for _ in 0..s {
            points.push(point_at_distance(query, r, rng));
        }
    }
    points.shuffle(rng);
    Dataset::new(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn point_at_distance_is_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        let center = Point::random(200, &mut rng);
        for r in [0u32, 1, 5, 50, 199, 200] {
            let p = point_at_distance(&center, r, &mut rng);
            assert_eq!(center.distance(&p), r, "radius {r}");
        }
    }

    #[test]
    #[should_panic]
    fn point_at_distance_rejects_r_above_d() {
        let mut rng = StdRng::seed_from_u64(2);
        let center = Point::zeros(10);
        let _ = point_at_distance(&center, 11, &mut rng);
    }

    #[test]
    fn planted_instance_has_needle_at_distance() {
        let mut rng = StdRng::seed_from_u64(3);
        let inst = planted(100, 256, 7, &mut rng);
        assert_eq!(
            inst.query.distance(inst.dataset.point(inst.planted_index)),
            7
        );
        assert_eq!(inst.dataset.len(), 100);
    }

    #[test]
    fn planted_needle_is_exact_nn_in_high_dim() {
        // d = 512, n = 128: uniform points concentrate near 256; the needle
        // at distance 10 is the unique nearest neighbor with overwhelming
        // probability at this seed.
        let mut rng = StdRng::seed_from_u64(4);
        let inst = planted(128, 512, 10, &mut rng);
        let nn = inst.dataset.exact_nn(&inst.query);
        assert_eq!(nn.index, inst.planted_index);
        assert_eq!(nn.distance, 10);
    }

    #[test]
    fn uniform_pairwise_distances_concentrate() {
        let mut rng = StdRng::seed_from_u64(5);
        let ds = uniform(40, 1024, &mut rng);
        for i in 0..ds.len() {
            for j in (i + 1)..ds.len() {
                let dist = ds.point(i).distance(ds.point(j));
                // Chernoff: |dist - 512| < 150 except with prob << 1e-12.
                assert!((362..=662).contains(&dist), "outlier distance {dist}");
            }
        }
    }

    #[test]
    fn clustered_layout_and_radii() {
        let mut rng = StdRng::seed_from_u64(6);
        let ds = clustered(4, 10, 512, 0.02, &mut rng);
        assert_eq!(ds.len(), 40);
        // Points in the same cluster are near (≈ 2*0.02*512 ≈ 20),
        // points across clusters are far (≈ 256).
        let same = ds.point(0).distance(ds.point(1));
        let cross = ds.point(0).distance(ds.point(11));
        assert!(same < 80, "same-cluster distance {same}");
        assert!(cross > 150, "cross-cluster distance {cross}");
    }

    #[test]
    fn shells_controls_profile_exactly() {
        let mut rng = StdRng::seed_from_u64(7);
        let q = Point::random(300, &mut rng);
        let ds = shells(&q, &[3, 40, 150], &[2, 5, 13], &mut rng);
        assert_eq!(ds.len(), 20);
        assert_eq!(ds.within(&q, 3).len(), 2);
        assert_eq!(ds.within(&q, 39).len(), 2);
        assert_eq!(ds.within(&q, 40).len(), 7);
        assert_eq!(ds.within(&q, 150).len(), 20);
        assert_eq!(ds.exact_nn(&q).distance, 3);
    }

    #[test]
    fn corrupt_zero_and_one_probabilities() {
        let mut rng = StdRng::seed_from_u64(8);
        let p = Point::random(128, &mut rng);
        assert_eq!(corrupt(&p, 0.0, &mut rng), p);
        let inverted = corrupt(&p, 1.0, &mut rng);
        assert_eq!(p.distance(&inverted), 128);
    }
}
