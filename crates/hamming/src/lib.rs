//! Hamming-space substrate for the limited-adaptivity ANNS reproduction.
//!
//! Everything in the paper lives in the d-dimensional Hamming cube
//! `{0,1}^d`: the database is a set of `n` points, the query is a point, and
//! distances are Hamming distances. This crate provides that metric space as
//! an efficient, well-tested foundation:
//!
//! * [`Point`] — bit-packed points with O(d/64) distance via XOR+popcount;
//! * [`Dataset`] — a database of points with exact nearest-neighbor ground
//!   truth and ball-profile queries (the `B_i = {y : dist(x,y) ≤ α^i}` sets
//!   of the paper, §3 eq. (1));
//! * [`kernel`] — limb-major [`PackedBlock`] batch distance kernels: the
//!   bit-sliced SoA layer the exact-NN, kNN and LSH candidate hot paths
//!   route through, byte-identical to the scalar distances;
//! * [`gen`] — seeded workload generators (uniform, planted-neighbor,
//!   clustered, exact-distance shells);
//! * [`ball`] — Hamming balls, 1-neighborhoods `N1(B)` (used by the paper's
//!   degenerate-case handling) and log-volume arithmetic;
//! * [`code`] — greedy Gilbert–Varshamov style codes, the constructive
//!   ingredient behind the γ-separated ball families of Lemma 15/16.
//!
//! All randomness is taken from caller-provided [`rand::Rng`] instances so
//! every experiment in the workspace is reproducible from a seed.
//!
//! # Example
//!
//! Plant a near neighbor at a known distance and recover it with the
//! exact ground-truth oracle (the reference every scheme in the
//! workspace — Algorithm 1/2, λ-ANNS, LSH — is checked against):
//!
//! ```
//! use anns_hamming::{gen, Point};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! // 32 points in {0,1}^64, one planted neighbor at distance 3.
//! let planted = gen::planted(32, 64, 3, &mut rng);
//! let nn = planted.dataset.exact_nn(&planted.query);
//! assert_eq!(nn.index, planted.planted_index);
//! assert_eq!(nn.distance, 3);
//!
//! // Bit-packed distance: XOR + popcount over u64 limbs.
//! let x = Point::zeros(64);
//! assert_eq!(x.distance(&x.flipped(5)), 1);
//! ```

pub mod ball;
pub mod code;
pub mod dataset;
pub mod gen;
pub mod kernel;
pub mod knn;
pub mod point;
pub mod store;

pub use ball::{ball_volume_log2, N1Iter};
pub use code::GreedyCode;
pub use dataset::{BallProfile, Dataset, ExactNeighbor};
pub use kernel::PackedBlock;
pub use knn::{k_nearest, DistanceHistogram, PairwiseStats};
pub use point::Point;

/// Effective integer radius of the paper's scale-`i` ball `B_i`.
///
/// The paper defines `B_i = {y ∈ B : dist(x,y) ≤ α^i}` over real radii, but
/// reads `B_0 ≠ ∅` as "`x ∈ B`" and `B_1 ≠ ∅` as "`x` within distance 1 of
/// `B`" (§3.1 degenerate cases). With integer Hamming distances and
/// `1 < α < 2` the consistent integer radii are therefore
/// `r_0 = 0` and `r_i = ⌊α^i⌋` for `i ≥ 1` (flooring is exact for integer
/// distances: `dist ≤ α^i ⇔ dist ≤ ⌊α^i⌋`).
pub fn scale_radius(i: u32, alpha: f64) -> u32 {
    assert!(alpha > 1.0, "alpha must exceed 1 (paper: 1 < α < 2)");
    if i == 0 {
        0
    } else {
        alpha.powi(i as i32).floor() as u32
    }
}

/// `⌈log_α d⌉` — the number of ball scales the paper's algorithms search
/// over (indices `0..=ceil_log_alpha(d, α)`).
///
/// Returns the smallest `k ≥ 0` with `α^k ≥ d`.
///
/// # Panics
/// Panics if `alpha <= 1` or `d == 0`; the paper fixes `1 < α = √γ < 2`.
pub fn ceil_log_alpha(d: u64, alpha: f64) -> u32 {
    assert!(alpha > 1.0, "alpha must exceed 1 (paper: 1 < α < 2)");
    assert!(d > 0, "dimension must be positive");
    if d == 1 {
        return 0;
    }
    let raw = (d as f64).ln() / alpha.ln();
    let mut k = raw.ceil() as u32;
    // Guard against floating point rounding on exact powers.
    while alpha.powi(k as i32) < d as f64 {
        k += 1;
    }
    while k > 0 && alpha.powi(k as i32 - 1) >= d as f64 {
        k -= 1;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log_alpha_matches_definition() {
        // Smallest k with alpha^k >= d.
        for &d in &[1u64, 2, 3, 10, 64, 100, 1024, 65536] {
            for &alpha in &[1.2f64, std::f64::consts::SQRT_2, 1.9] {
                let k = ceil_log_alpha(d, alpha);
                assert!(alpha.powi(k as i32) >= d as f64, "alpha^k < d for d={d}");
                if k > 0 {
                    assert!(
                        alpha.powi(k as i32 - 1) < d as f64,
                        "k not minimal for d={d}, alpha={alpha}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn ceil_log_alpha_rejects_bad_alpha() {
        ceil_log_alpha(10, 1.0);
    }

    #[test]
    #[should_panic]
    fn ceil_log_alpha_rejects_zero_dim() {
        ceil_log_alpha(0, 1.5);
    }

    #[test]
    fn scale_radius_convention() {
        let alpha = std::f64::consts::SQRT_2;
        assert_eq!(scale_radius(0, alpha), 0, "B_0 is x itself");
        assert_eq!(scale_radius(1, alpha), 1, "B_1 is the 1-neighborhood");
        assert_eq!(scale_radius(2, alpha), 2);
        assert_eq!(scale_radius(4, alpha), 4);
        // Radii are non-decreasing in the scale.
        for i in 0..40 {
            assert!(scale_radius(i, alpha) <= scale_radius(i + 1, alpha));
        }
    }

    #[test]
    fn top_scale_radius_covers_dimension() {
        for &d in &[2u64, 10, 100, 1024] {
            for &alpha in &[1.2f64, std::f64::consts::SQRT_2] {
                let top = ceil_log_alpha(d, alpha);
                assert!(u64::from(scale_radius(top, alpha)) >= d);
            }
        }
    }
}
