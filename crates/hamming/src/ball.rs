//! Hamming balls, neighborhoods and volume arithmetic.
//!
//! Two pieces of the paper live here:
//!
//! * the 1-neighborhood `N1(B) = {y : ∃z ∈ B, dist(y,z) ≤ 1}` used by the
//!   degenerate-case handling of Algorithm 1 (§3.1) — at most `(d+1)·n`
//!   points, resolved by perfect hashing in the paper and by a membership
//!   oracle here;
//! * log-volume arithmetic `log₂ |Ball(d, r)| = log₂ Σ_{i≤r} C(d,i)`, needed
//!   by the γ-separated ball-family constructions (Lemma 15) and by space
//!   accounting.

use crate::point::Point;

/// Iterator over the closed 1-ball around a point: the point itself followed
/// by its `d` single-coordinate flips. Yields `d + 1` points.
pub struct N1Iter<'a> {
    center: &'a Point,
    next_flip: u32,
    yielded_center: bool,
}

impl<'a> N1Iter<'a> {
    /// Iterates the closed radius-1 ball around `center`.
    pub fn new(center: &'a Point) -> Self {
        N1Iter {
            center,
            next_flip: 0,
            yielded_center: false,
        }
    }
}

impl Iterator for N1Iter<'_> {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        if !self.yielded_center {
            self.yielded_center = true;
            return Some(self.center.clone());
        }
        if self.next_flip < self.center.dim() {
            let p = self.center.flipped(self.next_flip);
            self.next_flip += 1;
            return Some(p);
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining =
            (self.center.dim() - self.next_flip) as usize + usize::from(!self.yielded_center);
        (remaining, Some(remaining))
    }
}

/// Whether `query` lies in the 1-neighborhood of any point in `points`
/// — i.e. membership in `N1(B)` — together with the witness index.
///
/// This is the database-side computation behind the paper's second
/// degenerate-case table: the table stores, for every `y ∈ N1(B)`, a nearest
/// database point. A lazy oracle computes the same content per probe.
pub fn n1_member(points: &[Point], query: &Point) -> Option<usize> {
    // Exact hits first (they give distance 0 < 1).
    if let Some(i) = points.iter().position(|p| p == query) {
        return Some(i);
    }
    points.iter().position(|p| p.distance(query) <= 1)
}

/// Natural log of the binomial coefficient `C(d, i)` (exact iterative form,
/// no Stirling error).
fn ln_binomial(d: u64, i: u64) -> f64 {
    assert!(i <= d);
    let i = i.min(d - i);
    let mut acc = 0.0f64;
    for j in 0..i {
        acc += ((d - j) as f64).ln() - ((j + 1) as f64).ln();
    }
    acc
}

/// `log₂ |Ball(d, r)| = log₂ Σ_{i=0..r} C(d, i)` via stable log-sum-exp.
///
/// # Panics
/// Panics if `r > d`.
pub fn ball_volume_log2(d: u64, r: u64) -> f64 {
    assert!(r <= d, "radius exceeds dimension");
    // Σ exp(ln C(d,i)); run the recurrence ln C(d,i+1) = ln C(d,i) +
    // ln(d-i) - ln(i+1) and log-sum-exp against the running max.
    let mut terms = Vec::with_capacity(r as usize + 1);
    let mut ln_c = 0.0f64; // ln C(d, 0)
    terms.push(ln_c);
    for i in 0..r {
        ln_c += ((d - i) as f64).ln() - ((i + 1) as f64).ln();
        terms.push(ln_c);
    }
    let max = terms.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let sum: f64 = terms.iter().map(|t| (t - max).exp()).sum();
    (max + sum.ln()) / std::f64::consts::LN_2
}

/// `log₂ C(d, r)` — exposed for the space-accounting experiments.
pub fn binomial_log2(d: u64, r: u64) -> f64 {
    ln_binomial(d, r) / std::f64::consts::LN_2
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn n1_iter_yields_d_plus_one_distinct_points() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = Point::random(40, &mut rng);
        let all: Vec<Point> = N1Iter::new(&c).collect();
        assert_eq!(all.len(), 41);
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), 41, "all neighborhood points distinct");
        for p in &all {
            assert!(c.distance(p) <= 1);
        }
    }

    #[test]
    fn n1_member_detects_exact_and_one_flip() {
        let mut rng = StdRng::seed_from_u64(2);
        let points: Vec<Point> = (0..10).map(|_| Point::random(64, &mut rng)).collect();
        // Exact member.
        assert_eq!(n1_member(&points, &points[3]), Some(3));
        // One flip away.
        let near = points[7].flipped(13);
        let witness = n1_member(&points, &near).expect("must be a member");
        assert!(points[witness].distance(&near) <= 1);
        // Far point (whp at distance > 1 from 10 random points in d=64).
        let far = Point::from_fn(64, |i| i % 2 == 0);
        let dmin = points.iter().map(|p| p.distance(&far)).min().unwrap();
        assert_eq!(n1_member(&points, &far).is_some(), dmin <= 1);
    }

    #[test]
    fn ball_volume_small_cases_exact() {
        // |Ball(5, 0)| = 1, |Ball(5, 1)| = 6, |Ball(5, 2)| = 16,
        // |Ball(5, 5)| = 32.
        let cases = [
            (5u64, 0u64, 1.0f64),
            (5, 1, 6.0),
            (5, 2, 16.0),
            (5, 5, 32.0),
        ];
        for (d, r, v) in cases {
            let got = ball_volume_log2(d, r);
            assert!(
                (got - v.log2()).abs() < 1e-9,
                "Ball({d},{r}): got 2^{got}, want {v}"
            );
        }
    }

    #[test]
    fn ball_volume_monotone_and_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let d = rng.gen_range(2u64..2000);
            let r = rng.gen_range(0..=d);
            let v = ball_volume_log2(d, r);
            assert!(v <= d as f64 + 1e-9, "volume exceeds cube");
            if r > 0 {
                assert!(v >= ball_volume_log2(d, r - 1) - 1e-12, "not monotone");
            }
        }
        // Full ball is the entire cube.
        assert!((ball_volume_log2(100, 100) - 100.0).abs() < 1e-6);
    }

    #[test]
    fn binomial_log2_symmetry() {
        for d in [10u64, 37, 64] {
            for r in 0..=d {
                let a = binomial_log2(d, r);
                let b = binomial_log2(d, d - r);
                assert!((a - b).abs() < 1e-9, "C({d},{r}) symmetry");
            }
        }
    }
}
