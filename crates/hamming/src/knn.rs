//! Exact k-nearest-neighbor search and distance statistics.
//!
//! Ground-truth utilities used across the experiment suite: top-k exact
//! neighbors (the reference every approximate answer is judged against
//! when one neighbor is not enough), distance histograms (how a workload's
//! ball profile fills — the shape that decides which algorithm branch
//! fires), and pairwise-distance summaries for dataset characterization.

use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use crate::dataset::{Dataset, ExactNeighbor};
use crate::point::Point;

/// The `k` exact nearest neighbors of a query, ascending by distance (ties
/// broken by index).
///
/// Distances come from one batched kernel pass over the dataset's
/// [`crate::PackedBlock`]; selection is a bounded max-heap keyed
/// `(distance, index)` — O(n log k) with no per-candidate clones or
/// shifts, replacing the former O(n·k) sorted-insert. The `(distance,
/// index)` key is a total order, so the ascending unload is exactly the
/// full sort-and-truncate reference answer.
pub fn k_nearest(dataset: &Dataset, query: &Point, k: usize) -> Vec<ExactNeighbor> {
    assert!(k >= 1, "k must be positive");
    let k = k.min(dataset.len());
    let dists = dataset.packed().distances(query);
    let mut heap: BinaryHeap<(u32, usize)> = BinaryHeap::with_capacity(k + 1);
    for (index, &distance) in dists.iter().enumerate() {
        if heap.len() < k {
            heap.push((distance, index));
        } else if let Some(&worst) = heap.peek() {
            if (distance, index) < worst {
                heap.pop();
                heap.push((distance, index));
            }
        }
    }
    heap.into_sorted_vec()
        .into_iter()
        .map(|(distance, index)| ExactNeighbor { index, distance })
        .collect()
}

/// Histogram of query-to-database distances with fixed-width buckets.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DistanceHistogram {
    /// Bucket width in distance units.
    pub bucket_width: u32,
    /// `counts[b]` = points with distance in `[b·width, (b+1)·width)`.
    pub counts: Vec<usize>,
    /// Smallest observed distance.
    pub min: u32,
    /// Largest observed distance.
    pub max: u32,
}

impl DistanceHistogram {
    /// Builds the histogram of distances from `query` to every database
    /// point (one batched kernel pass over the packed view).
    pub fn build(dataset: &Dataset, query: &Point, bucket_width: u32) -> Self {
        assert!(bucket_width >= 1);
        let n_buckets = (dataset.dim() / bucket_width + 1) as usize;
        let mut counts = vec![0usize; n_buckets];
        let mut min = u32::MAX;
        let mut max = 0u32;
        for &d in &dataset.packed().distances(query) {
            counts[(d / bucket_width) as usize] += 1;
            min = min.min(d);
            max = max.max(d);
        }
        while counts.last() == Some(&0) && counts.len() > 1 {
            counts.pop();
        }
        DistanceHistogram {
            bucket_width,
            counts,
            min,
            max,
        }
    }

    /// Total points counted.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }
}

/// Summary statistics of a sample of pairwise distances.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PairwiseStats {
    /// Pairs sampled.
    pub pairs: usize,
    /// Smallest sampled pairwise distance.
    pub min: u32,
    /// Mean of the sample.
    pub mean: f64,
    /// Largest sampled pairwise distance.
    pub max: u32,
}

/// Pairwise-distance statistics over the first `max_pairs` index pairs
/// (deterministic: lexicographic pair order — callers wanting random
/// samples shuffle the dataset first).
pub fn pairwise_stats(dataset: &Dataset, max_pairs: usize) -> PairwiseStats {
    assert!(dataset.len() >= 2, "need at least two points");
    let mut pairs = 0usize;
    let mut min = u32::MAX;
    let mut max = 0u32;
    let mut sum = 0u64;
    'outer: for i in 0..dataset.len() {
        for j in (i + 1)..dataset.len() {
            let d = dataset.point(i).distance(dataset.point(j));
            min = min.min(d);
            max = max.max(d);
            sum += u64::from(d);
            pairs += 1;
            if pairs >= max_pairs {
                break 'outer;
            }
        }
    }
    PairwiseStats {
        pairs,
        min,
        mean: sum as f64 / pairs as f64,
        max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn k_nearest_matches_sorted_scan() {
        let mut rng = StdRng::seed_from_u64(1);
        let ds = gen::uniform(80, 96, &mut rng);
        let q = Point::random(96, &mut rng);
        for k in [1usize, 3, 10, 80, 200] {
            let got = k_nearest(&ds, &q, k);
            let mut all: Vec<ExactNeighbor> = ds
                .points()
                .iter()
                .enumerate()
                .map(|(index, p)| ExactNeighbor {
                    index,
                    distance: q.distance(p),
                })
                .collect();
            all.sort_by_key(|e| (e.distance, e.index));
            all.truncate(k.min(ds.len()));
            assert_eq!(got, all, "k={k}");
        }
    }

    #[test]
    fn k_nearest_first_equals_exact_nn() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = gen::uniform(60, 64, &mut rng);
        for _ in 0..10 {
            let q = Point::random(64, &mut rng);
            let top = k_nearest(&ds, &q, 1);
            assert_eq!(top[0].distance, ds.exact_nn(&q).distance);
        }
    }

    #[test]
    fn histogram_counts_everything_once() {
        let mut rng = StdRng::seed_from_u64(3);
        let ds = gen::uniform(100, 128, &mut rng);
        let q = Point::random(128, &mut rng);
        for width in [1u32, 4, 16] {
            let h = DistanceHistogram::build(&ds, &q, width);
            assert_eq!(h.total(), 100, "width {width}");
            assert!(h.min <= h.max);
            // Min/max land in the right buckets.
            assert!(h.counts[(h.min / width) as usize] > 0);
            assert!(h.counts[(h.max / width) as usize] > 0);
        }
    }

    #[test]
    fn histogram_of_planted_instance_shows_the_needle() {
        let mut rng = StdRng::seed_from_u64(4);
        let planted = gen::planted(256, 512, 5, &mut rng);
        let h = DistanceHistogram::build(&planted.dataset, &planted.query, 8);
        assert_eq!(h.min, 5);
        assert_eq!(h.counts[0], 1, "exactly the needle below distance 8");
    }

    #[test]
    fn pairwise_stats_concentrate_for_uniform_data() {
        let mut rng = StdRng::seed_from_u64(5);
        let ds = gen::uniform(50, 1024, &mut rng);
        let stats = pairwise_stats(&ds, 500);
        assert_eq!(stats.pairs, 500);
        assert!((stats.mean - 512.0).abs() < 30.0, "mean {}", stats.mean);
        assert!(stats.min > 380 && stats.max < 650);
    }

    #[test]
    fn pairwise_stats_caps_pairs() {
        let mut rng = StdRng::seed_from_u64(6);
        let ds = gen::uniform(10, 32, &mut rng);
        let stats = pairwise_stats(&ds, 7);
        assert_eq!(stats.pairs, 7);
        let all = pairwise_stats(&ds, usize::MAX);
        assert_eq!(all.pairs, 45);
    }
}
