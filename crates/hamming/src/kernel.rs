//! Bit-sliced batch distance kernels over a limb-major point block.
//!
//! [`Point::distance`] is the hot loop of the whole workspace, but it is
//! called one pair at a time over `Box<[u64]>` allocations scattered on
//! the heap: every candidate costs a pointer chase, a dimension assert and
//! a short dependent loop. [`PackedBlock`] transposes `n` points into a
//! *limb-major* structure-of-arrays — limb `l` of every point stored
//! contiguously — so batch kernels stream long rows of `u64`s per limb,
//! XOR them against one broadcast query limb and accumulate popcounts into
//! per-point counters. The layout keeps the inner loop free of pointer
//! indirection and branch-free, which is what lets the compiler unroll and
//! autovectorize it; fixed-width limb chunks (4 and 8 limbs per pass) keep
//! a small number of query limbs in registers across a whole tile.
//!
//! Three kernels cover the workspace's batch shapes:
//!
//! * [`PackedBlock::distances_into`] — one query vs. all points (exact NN,
//!   kNN, histograms, ball profiles, LSH candidate scans);
//! * [`PackedBlock::many_distances_into`] — many queries vs. all points,
//!   tiled so a data tile is reused across every query while it is hot in
//!   cache (`annsctl bench-kernels`' throughput headline);
//! * [`PackedBlock::within_indices`] — radius filter with a
//!   *threshold early exit*: popcount contributions are nonnegative, so a
//!   tile whose smallest partial sum already exceeds the radius can skip
//!   its remaining limb chunks without changing the answer.
//!
//! On x86-64 the kernels runtime-dispatch to copies compiled with the
//! `popcnt` (and, when present, `avx2`) target features: the default
//! x86-64 baseline is SSE2-only, which lowers `u64::count_ones` to a
//! ~12-op SWAR sequence, so hardware popcount alone is worth several× on
//! popcount-bound batches. Dispatch happens once per kernel call (the
//! feature test is a cached atomic load), never inside the hot loop, and
//! every dispatched copy runs the *same* Rust body — hardware popcount
//! computes the same value, so answers cannot depend on the CPU.
//!
//! Every kernel is **byte-identical** to the scalar [`Point::distance`]
//! path — same distances, and (because callers keep their visitation
//! order) the same tie-breaks — which the proptests in
//! `tests/kernel_properties.rs` enforce for every dimension across the
//! tail-limb boundary and every block width.

use crate::point::{Point, LIMB_BITS};

/// Points per cache tile: 1024 `u32` accumulators (4 KiB) plus one 8 KiB
/// limb row stay comfortably inside L1 while a tile is being accumulated.
pub const DEFAULT_TILE: usize = 1024;

/// Limbs consumed per unrolled pass of the inner loop (512 bits).
pub const DEFAULT_LIMB_CHUNK: usize = 8;

/// `n` points of one dimension, bit-packed limb-major: limb `l` of point
/// `i` lives at `limbs[l * n + i]`, tail bits beyond `dim` zero (inherited
/// from the [`Point`] invariant, so distances need no masking).
#[derive(Clone, Debug)]
pub struct PackedBlock {
    n: usize,
    dim: u32,
    n_limbs: usize,
    limbs: Box<[u64]>,
}

impl PackedBlock {
    /// Packs a slice of points (all of dimension `dim`) into a block.
    ///
    /// # Panics
    /// Panics if `dim == 0` or any point has a different dimension.
    pub fn from_points(dim: u32, points: &[Point]) -> Self {
        Self::build(dim, points.len(), |i| &points[i])
    }

    /// Packs borrowed points — the scratch path for candidate batches that
    /// were decoded elsewhere (LSH bucket scans).
    pub fn from_refs(dim: u32, points: &[&Point]) -> Self {
        Self::build(dim, points.len(), |i| points[i])
    }

    fn build<'a>(dim: u32, n: usize, point: impl Fn(usize) -> &'a Point) -> Self {
        assert!(dim > 0, "block dimension must be positive");
        let n_limbs = dim.div_ceil(LIMB_BITS) as usize;
        let mut limbs = vec![0u64; n_limbs * n].into_boxed_slice();
        for i in 0..n {
            let p = point(i);
            assert_eq!(p.dim(), dim, "all block points must share one dimension");
            for (l, &limb) in p.limbs().iter().enumerate() {
                limbs[l * n + i] = limb;
            }
        }
        PackedBlock {
            n,
            dim,
            n_limbs,
            limbs,
        }
    }

    /// Number of points in the block.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the block holds no points (an empty candidate batch).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Ambient dimension `d`.
    #[inline]
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Reconstructs point `i` (test/debug path; the kernels never do this).
    pub fn point(&self, i: usize) -> Point {
        assert!(i < self.n, "point {i} out of range {}", self.n);
        let limbs = (0..self.n_limbs)
            .map(|l| self.limbs[l * self.n + i])
            .collect();
        Point::from_limbs(self.dim, limbs)
    }

    /// One-vs-many distances: `out[i] = dist(query, point i)`, identical to
    /// the scalar [`Point::distance`] for every point.
    ///
    /// # Panics
    /// Panics if the query dimension differs or `out.len() != self.len()`.
    pub fn distances_into(&self, query: &Point, out: &mut [u32]) {
        self.distances_into_tuned(query, out, DEFAULT_TILE, DEFAULT_LIMB_CHUNK);
    }

    /// Convenience wrapper allocating the output vector.
    pub fn distances(&self, query: &Point) -> Vec<u32> {
        let mut out = vec![0u32; self.n];
        self.distances_into(query, &mut out);
        out
    }

    /// [`PackedBlock::distances_into`] with explicit tile size and limb
    /// chunk width — exposed so the equivalence proptests and the
    /// microbench can sweep every block width; `tile`/`limb_chunk` are
    /// clamped to at least 1. Results never depend on the tuning.
    pub fn distances_into_tuned(
        &self,
        query: &Point,
        out: &mut [u32],
        tile: usize,
        limb_chunk: usize,
    ) {
        assert_eq!(query.dim(), self.dim, "distance between mismatched dims");
        assert_eq!(out.len(), self.n, "output slice must cover the block");
        let tile = tile.max(1);
        let limb_chunk = limb_chunk.max(1);
        let q = query.limbs();
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: avx2 (which implies popcnt on every shipping
                // CPU, and we enable both explicitly) verified at runtime.
                return unsafe { self.distances_core_avx2(q, out, tile, limb_chunk) };
            }
            if std::arch::is_x86_feature_detected!("popcnt") {
                // SAFETY: popcnt verified at runtime.
                return unsafe { self.distances_core_popcnt(q, out, tile, limb_chunk) };
            }
        }
        self.distances_core(q, out, tile, limb_chunk);
    }

    /// The one-vs-many tile loop; inlined into each dispatched copy.
    #[inline(always)]
    fn distances_core(&self, q: &[u64], out: &mut [u32], tile: usize, limb_chunk: usize) {
        let mut start = 0usize;
        while start < self.n {
            let width = tile.min(self.n - start);
            let acc = &mut out[start..start + width];
            acc.fill(0);
            let mut l = 0usize;
            while l < self.n_limbs {
                let step = limb_chunk.min(self.n_limbs - l);
                self.accumulate_chunk(q, l, step, start, acc);
                l += step;
            }
            start += width;
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2", enable = "popcnt")]
    unsafe fn distances_core_avx2(&self, q: &[u64], out: &mut [u32], tile: usize, chunk: usize) {
        self.distances_core(q, out, tile, chunk);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "popcnt")]
    unsafe fn distances_core_popcnt(&self, q: &[u64], out: &mut [u32], tile: usize, chunk: usize) {
        self.distances_core(q, out, tile, chunk);
    }

    /// Adds the popcount contribution of limbs `[l, l + step)` to `acc`
    /// (the accumulators of points `[start, start + acc.len())`).
    /// Fixed-width unrolled bodies for the common 4- and 8-limb chunks keep
    /// the query limbs in registers; any other width takes the row-at-a-
    /// time path. All bodies compute exactly the same sums.
    /// `inline(always)` so each feature-dispatched caller gets its own copy
    /// compiled with that caller's target features.
    #[inline(always)]
    fn accumulate_chunk(&self, q: &[u64], l: usize, step: usize, start: usize, acc: &mut [u32]) {
        let width = acc.len();
        let n = self.n;
        let row = |k: usize| &self.limbs[(l + k) * n + start..(l + k) * n + start + width];
        match step {
            4 => {
                let (r0, r1, r2, r3) = (row(0), row(1), row(2), row(3));
                let (q0, q1, q2, q3) = (q[l], q[l + 1], q[l + 2], q[l + 3]);
                for i in 0..width {
                    acc[i] += (r0[i] ^ q0).count_ones()
                        + (r1[i] ^ q1).count_ones()
                        + (r2[i] ^ q2).count_ones()
                        + (r3[i] ^ q3).count_ones();
                }
            }
            8 => {
                let (r0, r1, r2, r3) = (row(0), row(1), row(2), row(3));
                let (r4, r5, r6, r7) = (row(4), row(5), row(6), row(7));
                let (q0, q1, q2, q3) = (q[l], q[l + 1], q[l + 2], q[l + 3]);
                let (q4, q5, q6, q7) = (q[l + 4], q[l + 5], q[l + 6], q[l + 7]);
                for i in 0..width {
                    acc[i] += (r0[i] ^ q0).count_ones()
                        + (r1[i] ^ q1).count_ones()
                        + (r2[i] ^ q2).count_ones()
                        + (r3[i] ^ q3).count_ones()
                        + (r4[i] ^ q4).count_ones()
                        + (r5[i] ^ q5).count_ones()
                        + (r6[i] ^ q6).count_ones()
                        + (r7[i] ^ q7).count_ones();
                }
            }
            _ => {
                for k in 0..step {
                    let r = row(k);
                    let ql = q[l + k];
                    for i in 0..width {
                        acc[i] += (r[i] ^ ql).count_ones();
                    }
                }
            }
        }
    }

    /// Many-vs-many distances: `out[qi * n + i] = dist(queries[qi], point
    /// i)`. Tiles over the *data* points on the outside and loops queries
    /// on the inside, so each data tile is reused by every query while it
    /// is hot in cache — the layout win that makes batch probes cheaper
    /// than `queries × distances_into` on large blocks.
    ///
    /// # Panics
    /// Panics on any dimension mismatch or if
    /// `out.len() != queries.len() * self.len()`.
    pub fn many_distances_into(&self, queries: &[Point], out: &mut [u32]) {
        assert_eq!(
            out.len(),
            queries.len() * self.n,
            "output must hold queries × points distances"
        );
        for query in queries {
            assert_eq!(query.dim(), self.dim, "distance between mismatched dims");
        }
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: avx2+popcnt verified at runtime.
                return unsafe { self.many_core_avx2(queries, out) };
            }
            if std::arch::is_x86_feature_detected!("popcnt") {
                // SAFETY: popcnt verified at runtime.
                return unsafe { self.many_core_popcnt(queries, out) };
            }
        }
        self.many_core(queries, out);
    }

    /// The many-vs-many tile loop; inlined into each dispatched copy.
    #[inline(always)]
    fn many_core(&self, queries: &[Point], out: &mut [u32]) {
        let n = self.n;
        let mut start = 0usize;
        while start < n {
            let width = DEFAULT_TILE.min(n - start);
            for (qi, query) in queries.iter().enumerate() {
                let q = query.limbs();
                let acc = &mut out[qi * n + start..qi * n + start + width];
                acc.fill(0);
                let mut l = 0usize;
                while l < self.n_limbs {
                    let step = DEFAULT_LIMB_CHUNK.min(self.n_limbs - l);
                    self.accumulate_chunk(q, l, step, start, acc);
                    l += step;
                }
            }
            start += width;
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2", enable = "popcnt")]
    unsafe fn many_core_avx2(&self, queries: &[Point], out: &mut [u32]) {
        self.many_core(queries, out);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "popcnt")]
    unsafe fn many_core_popcnt(&self, queries: &[Point], out: &mut [u32]) {
        self.many_core(queries, out);
    }

    /// Indices of all points within distance `radius` of the query,
    /// ascending — identical to filtering on scalar distances.
    ///
    /// Early exit: partial per-point sums only grow as limb chunks are
    /// added, so once *every* accumulator of a tile exceeds `radius` the
    /// remaining limb chunks of that tile are skipped — no point it could
    /// still admit exists.
    pub fn within_indices(&self, query: &Point, radius: u32) -> Vec<usize> {
        assert_eq!(query.dim(), self.dim, "distance between mismatched dims");
        let q = query.limbs();
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: avx2+popcnt verified at runtime.
                return unsafe { self.within_core_avx2(q, radius) };
            }
            if std::arch::is_x86_feature_detected!("popcnt") {
                // SAFETY: popcnt verified at runtime.
                return unsafe { self.within_core_popcnt(q, radius) };
            }
        }
        self.within_core(q, radius)
    }

    /// The radius-filter tile loop; inlined into each dispatched copy.
    #[inline(always)]
    fn within_core(&self, q: &[u64], radius: u32) -> Vec<usize> {
        let mut out = Vec::new();
        let mut acc = vec![0u32; DEFAULT_TILE.min(self.n.max(1))];
        let mut start = 0usize;
        while start < self.n {
            let width = DEFAULT_TILE.min(self.n - start);
            let acc = &mut acc[..width];
            acc.fill(0);
            let mut l = 0usize;
            let mut live = true;
            while l < self.n_limbs {
                let step = DEFAULT_LIMB_CHUNK.min(self.n_limbs - l);
                self.accumulate_chunk(q, l, step, start, acc);
                l += step;
                if l < self.n_limbs && acc.iter().all(|&a| a > radius) {
                    live = false;
                    break;
                }
            }
            if live {
                for (i, &d) in acc.iter().enumerate() {
                    if d <= radius {
                        out.push(start + i);
                    }
                }
            }
            start += width;
        }
        out
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2", enable = "popcnt")]
    unsafe fn within_core_avx2(&self, q: &[u64], radius: u32) -> Vec<usize> {
        self.within_core(q, radius)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "popcnt")]
    unsafe fn within_core_popcnt(&self, q: &[u64], radius: u32) -> Vec<usize> {
        self.within_core(q, radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_points(n: usize, d: u32, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Point::random(d, &mut rng)).collect()
    }

    #[test]
    fn roundtrips_points_through_the_block() {
        for d in [1u32, 63, 64, 65, 130, 512] {
            let pts = random_points(7, d, u64::from(d));
            let block = PackedBlock::from_points(d, &pts);
            assert_eq!(block.len(), 7);
            assert_eq!(block.dim(), d);
            for (i, p) in pts.iter().enumerate() {
                assert_eq!(&block.point(i), p, "d={d} i={i}");
            }
        }
    }

    #[test]
    fn one_vs_many_matches_scalar_across_tail_boundary() {
        let mut rng = StdRng::seed_from_u64(1);
        for d in [1u32, 2, 63, 64, 65, 127, 128, 129, 512, 1000] {
            let pts = random_points(50, d, u64::from(d) + 1);
            let q = Point::random(d, &mut rng);
            let block = PackedBlock::from_points(d, &pts);
            let got = block.distances(&q);
            for (i, p) in pts.iter().enumerate() {
                assert_eq!(got[i], q.distance(p), "d={d} i={i}");
            }
        }
    }

    #[test]
    fn tuned_kernels_agree_for_every_block_width() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = 519;
        let pts = random_points(33, d, 3);
        let q = Point::random(d, &mut rng);
        let block = PackedBlock::from_points(d, &pts);
        let reference = block.distances(&q);
        let mut out = vec![0u32; pts.len()];
        for tile in [1usize, 2, 7, 33, 64, 4096] {
            for chunk in 1..=9 {
                block.distances_into_tuned(&q, &mut out, tile, chunk);
                assert_eq!(out, reference, "tile={tile} chunk={chunk}");
            }
        }
    }

    #[test]
    fn many_vs_many_matches_scalar() {
        let d = 200;
        let pts = random_points(70, d, 4);
        let queries = random_points(5, d, 5);
        let block = PackedBlock::from_points(d, &pts);
        let mut out = vec![0u32; queries.len() * pts.len()];
        block.many_distances_into(&queries, &mut out);
        for (qi, q) in queries.iter().enumerate() {
            for (i, p) in pts.iter().enumerate() {
                assert_eq!(out[qi * pts.len() + i], q.distance(p), "q={qi} i={i}");
            }
        }
    }

    #[test]
    fn within_indices_matches_scalar_filter() {
        let mut rng = StdRng::seed_from_u64(6);
        let d = 320;
        let pts = random_points(60, d, 7);
        let q = Point::random(d, &mut rng);
        let block = PackedBlock::from_points(d, &pts);
        for r in [0u32, 5, 100, 150, 160, 200, 320] {
            let got = block.within_indices(&q, r);
            let expect: Vec<usize> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| q.distance(p) <= r)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got, expect, "r={r}");
        }
    }

    #[test]
    fn empty_block_is_fine() {
        let block = PackedBlock::from_points(64, &[]);
        assert!(block.is_empty());
        let q = Point::zeros(64);
        assert!(block.distances(&q).is_empty());
        assert!(block.within_indices(&q, 10).is_empty());
    }

    #[test]
    #[should_panic(expected = "mismatched dims")]
    fn mismatched_query_dimension_panics() {
        let block = PackedBlock::from_points(64, &random_points(3, 64, 8));
        let q = Point::zeros(65);
        let _ = block.distances(&q);
    }

    #[test]
    #[should_panic(expected = "share one dimension")]
    fn mixed_point_dimensions_panic() {
        let _ = PackedBlock::from_points(64, &[Point::zeros(64), Point::zeros(65)]);
    }
}
