//! Binary store codecs for the Hamming substrate ([`Point`], [`Dataset`]).
//!
//! Points encode as `dim: u32` followed by their raw little-endian limbs
//! (the limb count is implied by the dimension). A [`Dataset`] encodes its
//! shared dimension once, then each point's limbs back to back — the
//! densest representation the bit-packed invariant allows, decodable in a
//! single forward pass.

use anns_store::{ByteReader, ByteWriter, Codec, StoreError};

use crate::point::{Point, LIMB_BITS};
use crate::Dataset;

fn limbs_for(dim: u32) -> usize {
    dim.div_ceil(LIMB_BITS) as usize
}

fn encode_limbs(p: &Point, w: &mut ByteWriter) {
    for limb in p.limbs() {
        w.put_u64(*limb);
    }
}

fn decode_limbs(dim: u32, r: &mut ByteReader<'_>) -> Result<Point, StoreError> {
    let n_limbs = limbs_for(dim);
    // Validate the implied byte count before reserving: a hostile dim
    // must be a typed error, not a half-gigabyte allocation.
    if n_limbs * 8 > r.remaining() {
        return Err(StoreError::Malformed(format!(
            "point of dim {dim} needs {} bytes, {} left",
            n_limbs * 8,
            r.remaining()
        )));
    }
    let mut limbs = Vec::with_capacity(n_limbs);
    for _ in 0..n_limbs {
        limbs.push(r.u64()?);
    }
    Ok(Point::from_limbs(dim, limbs))
}

fn decode_dim(r: &mut ByteReader<'_>) -> Result<u32, StoreError> {
    let dim = r.u32()?;
    if dim == 0 {
        return Err(StoreError::Malformed("point dimension 0".into()));
    }
    Ok(dim)
}

impl Codec for Point {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.dim());
        encode_limbs(self, w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let dim = decode_dim(r)?;
        decode_limbs(dim, r)
    }
}

impl Codec for Dataset {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.dim());
        w.put_u64(self.len() as u64);
        for p in self.points() {
            encode_limbs(p, w);
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let dim = decode_dim(r)?;
        let count = r.count_prefix(limbs_for(dim) * 8)?;
        if count == 0 {
            return Err(StoreError::Malformed("empty dataset".into()));
        }
        let mut points = Vec::with_capacity(count);
        for _ in 0..count {
            points.push(decode_limbs(dim, r)?);
        }
        Ok(Dataset::new(points))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn point_roundtrip_across_dims() {
        let mut rng = StdRng::seed_from_u64(1);
        for d in [1u32, 63, 64, 65, 300] {
            let p = Point::random(d, &mut rng);
            assert_eq!(Point::from_bytes(&p.to_bytes()).unwrap(), p, "d={d}");
        }
    }

    #[test]
    fn dataset_roundtrip_is_exact() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = gen::uniform(40, 130, &mut rng);
        let back = Dataset::from_bytes(&ds.to_bytes()).unwrap();
        assert_eq!(back.dim(), ds.dim());
        assert_eq!(back.len(), ds.len());
        for (a, b) in back.points().iter().zip(ds.points()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn zero_dim_and_empty_dataset_are_malformed() {
        let mut w = ByteWriter::new();
        w.put_u32(0);
        assert!(matches!(
            Point::from_bytes(&w.into_bytes()),
            Err(StoreError::Malformed(_))
        ));
        let mut w = ByteWriter::new();
        w.put_u32(8);
        w.put_u64(0);
        assert!(matches!(
            Dataset::from_bytes(&w.into_bytes()),
            Err(StoreError::Malformed(_))
        ));
    }

    #[test]
    fn hostile_count_is_rejected_without_allocating() {
        let mut w = ByteWriter::new();
        w.put_u32(64);
        w.put_u64(u64::MAX / 2);
        assert!(matches!(
            Dataset::from_bytes(&w.into_bytes()),
            Err(StoreError::Malformed(_))
        ));
    }

    #[test]
    fn hostile_point_dim_is_rejected_without_allocating() {
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX); // implies ~512 MiB of limbs
        w.put_u64(0);
        assert!(matches!(
            Point::from_bytes(&w.into_bytes()),
            Err(StoreError::Malformed(_))
        ));
    }
}
