//! Attack strategies: how the adversary turns answers into queries.
//!
//! All strategies craft queries at Hamming distance exactly `r` from a
//! planted target point, so every crafted query has a database point
//! within `r` and a γ-correct scheme must answer within `γr` — the
//! harness's judge needs no per-query ground-truth search. What differs
//! is *adaptivity*: the control arm ignores answers entirely, the
//! hill-climber folds observed failures back into its next query, and
//! the repetition prober replays old queries verbatim.

use anns_core::ServedAnswer;
use anns_hamming::{gen, Point};
use rand::rngs::StdRng;
use rand::Rng;

/// An adaptive attacker: crafts one query per round, sees the served
/// answer (and the judge's verdict) before crafting the next.
///
/// Implementations must be deterministic given the harness-provided RNG:
/// no interior randomness, no wall-clock — that is what makes attack
/// traces byte-replayable.
pub trait AttackStrategy {
    /// Stable strategy name (report key, e.g. `"hillclimb"`).
    fn name(&self) -> &'static str;

    /// Crafts the next query. `round` is 0-based.
    fn craft(&mut self, round: usize, rng: &mut StdRng) -> Point;

    /// Observes the served answer to the query this strategy just
    /// crafted, plus the judge's verdict (`failed` = the scheme missed
    /// the γ-approximation band).
    fn observe(&mut self, query: &Point, failed: bool, answer: &ServedAnswer);
}

/// The non-adaptive control arm: a fresh uniform point on the distance-`r`
/// shell around the target every round, answers ignored. Its failure
/// rate is the scheme's *oblivious* failure probability — the baseline
/// the adaptive arms are compared against.
pub struct NonAdaptiveControl {
    target: Point,
    r: u32,
}

impl NonAdaptiveControl {
    /// A control attacker around `target` at shell radius `r`.
    pub fn new(target: Point, r: u32) -> Self {
        NonAdaptiveControl { target, r }
    }
}

impl AttackStrategy for NonAdaptiveControl {
    fn name(&self) -> &'static str {
        "control"
    }

    fn craft(&mut self, _round: usize, rng: &mut StdRng) -> Point {
        gen::point_at_distance(&self.target, self.r, rng)
    }

    fn observe(&mut self, _query: &Point, _failed: bool, _answer: &ServedAnswer) {}
}

/// Answer-guided bit-flip hill-climbing toward the scheme's failure
/// boundary.
///
/// Until a failure is observed, behaves like the control arm. The first
/// failing query is *latched* as a base; afterwards every query is a
/// two-coordinate lateral move from the base — un-flip one coordinate
/// where the base differs from the target, flip one where it agrees —
/// which stays on the distance-`r` shell while exploring the failure's
/// Hamming neighborhood. A later failure re-latches onto it, so the walk
/// tracks the failure region. Against a *fixed* randomized structure
/// (LSH tables drawn once at build) failures are spatially correlated
/// and the post-latch failure rate climbs far above the oblivious rate;
/// against the subsampled-repetition defense each distinct query is
/// answered by a fresh replica subsample and the latch learns almost
/// nothing.
pub struct BitFlipHillClimb {
    target: Point,
    r: u32,
    latched: Option<Point>,
}

impl BitFlipHillClimb {
    /// A hill-climbing attacker around `target` at shell radius `r`.
    pub fn new(target: Point, r: u32) -> Self {
        BitFlipHillClimb {
            target,
            r,
            latched: None,
        }
    }

    /// The currently latched failing query, if any.
    pub fn latched(&self) -> Option<&Point> {
        self.latched.as_ref()
    }
}

impl AttackStrategy for BitFlipHillClimb {
    fn name(&self) -> &'static str {
        "hillclimb"
    }

    fn craft(&mut self, _round: usize, rng: &mut StdRng) -> Point {
        let Some(base) = &self.latched else {
            return gen::point_at_distance(&self.target, self.r, rng);
        };
        let d = self.target.dim();
        let mut differing = Vec::new();
        let mut agreeing = Vec::new();
        for i in 0..d {
            if base.get(i) == self.target.get(i) {
                agreeing.push(i);
            } else {
                differing.push(i);
            }
        }
        let mut next = base.clone();
        if !differing.is_empty() && !agreeing.is_empty() {
            next.flip(differing[rng.gen_range(0..differing.len())]);
            next.flip(agreeing[rng.gen_range(0..agreeing.len())]);
        }
        next
    }

    fn observe(&mut self, query: &Point, failed: bool, _answer: &ServedAnswer) {
        if failed {
            self.latched = Some(query.clone());
        }
    }
}

/// The repetition prober: alternates fresh shell queries with verbatim
/// replays of earlier ones, hunting for answer instability (a scheme
/// that re-randomizes per query would answer a replayed query
/// differently — a side channel, and a correctness bug under this
/// workspace's determinism contract). The harness counts replays and
/// answer mismatches; the strategy itself is answer-oblivious.
pub struct RepetitionProbe {
    target: Point,
    r: u32,
    pool: Vec<Point>,
    cursor: usize,
}

impl RepetitionProbe {
    /// A repetition prober around `target` at shell radius `r`.
    pub fn new(target: Point, r: u32) -> Self {
        RepetitionProbe {
            target,
            r,
            pool: Vec::new(),
            cursor: 0,
        }
    }
}

impl AttackStrategy for RepetitionProbe {
    fn name(&self) -> &'static str {
        "replay"
    }

    fn craft(&mut self, round: usize, rng: &mut StdRng) -> Point {
        if round.is_multiple_of(2) || self.pool.is_empty() {
            let fresh = gen::point_at_distance(&self.target, self.r, rng);
            self.pool.push(fresh.clone());
            fresh
        } else {
            let pick = self.pool[self.cursor % self.pool.len()].clone();
            self.cursor += 1;
            pick
        }
    }

    fn observe(&mut self, _query: &Point, _failed: bool, _answer: &ServedAnswer) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn target() -> Point {
        let mut rng = StdRng::seed_from_u64(3);
        Point::random(128, &mut rng)
    }

    #[test]
    fn control_stays_on_the_shell_and_is_deterministic() {
        let t = target();
        let mut a = NonAdaptiveControl::new(t.clone(), 8);
        let mut b = NonAdaptiveControl::new(t.clone(), 8);
        let mut rng_a = StdRng::seed_from_u64(11);
        let mut rng_b = StdRng::seed_from_u64(11);
        for round in 0..32 {
            let qa = a.craft(round, &mut rng_a);
            let qb = b.craft(round, &mut rng_b);
            assert_eq!(qa, qb);
            assert_eq!(qa.distance(&t), 8);
        }
    }

    #[test]
    fn hillclimb_latches_failures_and_moves_laterally() {
        let t = target();
        let mut attacker = BitFlipHillClimb::new(t.clone(), 8);
        let mut rng = StdRng::seed_from_u64(12);
        let first = attacker.craft(0, &mut rng);
        assert!(attacker.latched().is_none());
        attacker.observe(&first, true, &ServedAnswer::Candidate(None));
        assert_eq!(attacker.latched(), Some(&first));
        for round in 1..32 {
            let q = attacker.craft(round, &mut rng);
            // Lateral move: still on the shell, and a 2-flip neighbor of
            // the latched base.
            assert_eq!(q.distance(&t), 8);
            assert_eq!(q.distance(&first), 2);
            attacker.observe(&q, false, &ServedAnswer::Candidate(None));
            assert_eq!(
                attacker.latched(),
                Some(&first),
                "non-failures never re-latch"
            );
        }
    }

    #[test]
    fn replay_probe_repeats_earlier_queries_verbatim() {
        let t = target();
        let mut attacker = RepetitionProbe::new(t.clone(), 6);
        let mut rng = StdRng::seed_from_u64(13);
        let mut fresh = Vec::new();
        let mut replays = Vec::new();
        for round in 0..16 {
            let q = attacker.craft(round, &mut rng);
            assert_eq!(q.distance(&t), 6);
            if round % 2 == 0 {
                fresh.push(q);
            } else {
                replays.push(q);
            }
        }
        // Every odd round replayed an earlier fresh query verbatim.
        for r in &replays {
            assert!(fresh.contains(r));
        }
    }
}
