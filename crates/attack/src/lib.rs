//! `anns-attack` — the adversarial-robustness scenario suite.
//!
//! The paper's guarantees (and every LSH-style baseline's) are stated
//! against an *oblivious* adversary: queries are fixed before the
//! structure's random coins are drawn. A real serving deployment leaks
//! information with every answer, and an **adaptive** adversary can fold
//! those answers back into its next query — walking along the recall
//! boundary of a fixed randomized structure until it concentrates its
//! queries where that one structure fails. This crate measures exactly
//! that gap, end to end through the real serving stack:
//!
//! * [`strategy`] — the [`strategy::AttackStrategy`] trait and three
//!   reference attackers: a non-adaptive control arm
//!   ([`strategy::NonAdaptiveControl`]), answer-guided bit-flip
//!   hill-climbing that latches observed failures and explores their
//!   Hamming neighborhood ([`strategy::BitFlipHillClimb`]), and a
//!   repetition prober that replays earlier queries to hunt for answer
//!   instability ([`strategy::RepetitionProbe`]);
//! * [`harness`] — [`harness::AttackHarness`]: every crafted query goes
//!   through the real `anns_engine::Registry` → `Engine` →
//!   `AdmissionQueue` path on an injectable `VirtualClock` with seeded
//!   RNG, so an attack trace is *byte-replayable* — the same seed
//!   reproduces the same queries, answers, ledgers and fingerprints;
//! * [`scenario`] — canned scenarios ([`scenario::ScenarioConfig`])
//!   registering the arms under attack: an undefended LSH baseline, the
//!   same baseline wrapped in the `anns_core::SubsampledRepetition`
//!   defense (R independently-built replicas, each query answered by a
//!   per-query pseudorandom subsample of K), and the paper's
//!   Algorithm 1;
//! * [`report`] — [`report::RobustnessReport`] /
//!   [`report::BenchAttackReport`]: per-arm failure counts, bucketed
//!   failure curves over adaptive rounds, replay-consistency counters
//!   and a CRC-32 trace fingerprint, all `serde`-serializable for
//!   `annsctl attack` / `annsctl bench-attack` and the CI attack gate.
//!
//! The defense's point, observable here: against the *undefended* LSH
//! arm the hill-climber's failure rate climbs well above the control arm
//! once it latches a boundary query, while the subsampled wrapper keeps
//! the adaptive and control curves statistically indistinguishable —
//! each distinct query draws a fresh subsample of replicas, so a failure
//! observed against one subsample says nearly nothing about its
//! neighbors'.
//!
//! # Example
//!
//! Run a miniature suite twice and check the traces are byte-identical:
//!
//! ```
//! use anns_attack::{run_suite, ScenarioConfig};
//!
//! let config = ScenarioConfig {
//!     rounds: 12,
//!     ..ScenarioConfig::tiny(7)
//! };
//! let a = run_suite(&config);
//! let b = run_suite(&config);
//! assert_eq!(a, b, "same seed, same trace");
//! // One arm per (scheme, strategy) pair.
//! assert_eq!(a.arms.len(), 9);
//! // The deterministic Algorithm 1 arm never fails the judge.
//! for arm in a.arms.iter().filter(|arm| arm.shard == "alg1") {
//!     assert_eq!(arm.failures, 0, "{}", arm.strategy);
//! }
//! ```

pub mod harness;
pub mod report;
pub mod scenario;
pub mod strategy;

pub use harness::{AttackHarness, Judge};
pub use report::{ArmReport, BenchAttackReport, RobustnessReport};
pub use scenario::{
    build_scenario, default_strategies, run_suite, Scenario, ScenarioConfig, SHARDS,
};
pub use strategy::{AttackStrategy, BitFlipHillClimb, NonAdaptiveControl, RepetitionProbe};

/// SplitMix64 step: the crate's deterministic seed-derivation primitive
/// (arm seeds, replica build seeds) — never wall-clock, never shared
/// mutable state, so every derived stream is a pure function of the
/// scenario seed.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}
