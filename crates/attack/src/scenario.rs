//! Canned attack scenarios: the fixture, the arms, the suite runner.
//!
//! A scenario plants one target point in a uniform database and
//! registers three shards over that *same* database:
//!
//! * `"lsh"` — an undefended bit-sampling LSH index, tables drawn once
//!   at build: the structure whose fixed coins an adaptive attacker can
//!   learn;
//! * `"lsh-sub"` — the defense under test: `replicas` independently
//!   built LSH indexes wrapped in
//!   [`anns_core::SubsampledRepetition`], each query answered by the
//!   best of a per-query pseudorandom subsample of `sample` replicas;
//! * `"alg1"` — the paper's Algorithm 1 over a sketch index, the
//!   deterministic comparison arm.
//!
//! [`run_suite`] drives every strategy against every shard and returns
//! the [`RobustnessReport`]; two calls with equal configs return equal
//! reports — that equality is asserted by `annsctl bench-attack` and
//! re-asserted by the CI attack gate against the committed artifact.

use std::sync::Arc;

use anns_core::serve::ServableScheme;
use anns_core::{Aggregation, AnnIndex, BuildOptions, SubsampledRepetition};
use anns_engine::Registry;
use anns_hamming::{gen, Dataset, Point};
use anns_lsh::{LshIndex, LshParams, ServeLsh};
use anns_sketch::SketchParams;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::harness::{AttackHarness, Judge};
use crate::report::RobustnessReport;
use crate::splitmix64;
use crate::strategy::{AttackStrategy, BitFlipHillClimb, NonAdaptiveControl, RepetitionProbe};

/// Everything that determines an attack run, and therefore everything
/// the gate refuses to compare across: two reports are comparable only
/// if their configs are equal.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Scenario name (`"tiny"`, `"quick"`, `"full"`).
    pub name: String,
    /// Database size.
    pub n: usize,
    /// Dimension.
    pub d: u32,
    /// Planted/attack shell radius `r`.
    pub r: u32,
    /// Approximation factor γ; the judge's band is `⌊γ·r⌋`.
    pub gamma: f64,
    /// LSH table boost (success-probability knob for the baselines).
    pub boost: f64,
    /// Defense: independently built replicas `R`.
    pub replicas: u32,
    /// Defense: per-query subsample size `K`.
    pub sample: u32,
    /// Adaptive rounds per arm.
    pub rounds: usize,
    /// Failure-curve bucket width, in rounds.
    pub bucket: usize,
    /// Master seed: fixture, index builds, defense subsampling and every
    /// strategy RNG stream derive from it.
    pub seed: u64,
}

impl ScenarioConfig {
    /// A seconds-scale scenario for doctests and unit tests.
    pub fn tiny(seed: u64) -> Self {
        ScenarioConfig {
            name: "tiny".into(),
            n: 64,
            d: 64,
            r: 4,
            gamma: 2.0,
            boost: 2.0,
            replicas: 4,
            sample: 2,
            rounds: 24,
            bucket: 8,
            seed,
        }
    }

    /// The CI-gated quick scenario (`BENCH_attack_quick.json`).
    pub fn quick(seed: u64) -> Self {
        ScenarioConfig {
            name: "quick".into(),
            n: 512,
            d: 128,
            r: 8,
            gamma: 2.0,
            boost: 4.0,
            replicas: 8,
            sample: 3,
            rounds: 240,
            bucket: 40,
            seed,
        }
    }

    /// The full scenario: same geometry as quick, more adaptive rounds
    /// for smoother curves.
    pub fn full(seed: u64) -> Self {
        ScenarioConfig {
            rounds: 960,
            bucket: 80,
            name: "full".into(),
            ..ScenarioConfig::quick(seed)
        }
    }

    /// The judge's acceptance band, `⌊γ·r⌋`.
    pub fn band(&self) -> u32 {
        (self.gamma * f64::from(self.r)).floor() as u32
    }
}

/// A built scenario: the fixture plus the registry of shards to attack.
pub struct Scenario {
    /// The generating config.
    pub config: ScenarioConfig,
    /// The shared database (needle included).
    pub dataset: Dataset,
    /// The planted target the strategies orbit.
    pub target: Point,
    /// The target's database index.
    pub target_index: usize,
    /// Shards under attack, registered as `"lsh"`, `"lsh-sub"`,
    /// `"alg1"`.
    pub registry: Registry,
}

/// The shard names every scenario registers, in report order.
pub const SHARDS: [&str; 3] = ["lsh", "lsh-sub", "alg1"];

/// Builds the scenario fixture and registry for a config.
pub fn build_scenario(config: &ScenarioConfig) -> Scenario {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let inst = gen::planted(config.n, config.d, config.r, &mut rng);
    let target = inst.dataset.point(inst.planted_index).clone();
    let params = LshParams::for_radius(
        config.n,
        config.d,
        f64::from(config.r),
        config.gamma,
        config.boost,
    );

    let mut registry = Registry::new();
    let lsh = LshIndex::build(
        inst.dataset.clone(),
        params,
        &mut StdRng::seed_from_u64(splitmix64(config.seed ^ 0x15A)),
    );
    registry.register(
        "lsh",
        Box::new(ServeLsh {
            index: Arc::new(lsh),
        }),
    );

    let inners: Vec<Arc<dyn ServableScheme>> = (0..config.replicas)
        .map(|i| {
            let replica = LshIndex::build(
                inst.dataset.clone(),
                params,
                &mut StdRng::seed_from_u64(splitmix64(config.seed ^ (0x5AB + u64::from(i)))),
            );
            Arc::new(ServeLsh {
                index: Arc::new(replica),
            }) as Arc<dyn ServableScheme>
        })
        .collect();
    let defended = SubsampledRepetition::new(
        inners,
        config.sample,
        splitmix64(config.seed ^ 0xDEF),
        Aggregation::BestOf,
    )
    .expect("scenario defense parameters are valid");
    registry.register("lsh-sub", Box::new(defended));

    let index = Arc::new(AnnIndex::build(
        inst.dataset.clone(),
        SketchParams::practical(config.gamma, splitmix64(config.seed ^ 0xA1)),
        BuildOptions::default(),
    ));
    registry.register_alg1("alg1", index, 2);

    Scenario {
        config: config.clone(),
        dataset: inst.dataset,
        target,
        target_index: inst.planted_index,
        registry,
    }
}

/// The strategy lineup every shard faces, in report order.
pub fn default_strategies(target: &Point, r: u32) -> Vec<Box<dyn AttackStrategy>> {
    vec![
        Box::new(NonAdaptiveControl::new(target.clone(), r)),
        Box::new(BitFlipHillClimb::new(target.clone(), r)),
        Box::new(RepetitionProbe::new(target.clone(), r)),
    ]
}

/// Builds the scenario and drives every (shard, strategy) arm through
/// the serving stack. Pure in `config`: equal configs produce equal
/// reports.
pub fn run_suite(config: &ScenarioConfig) -> RobustnessReport {
    let scenario = build_scenario(config);
    let judge = Judge::new(scenario.dataset.clone(), config.band());
    let harness = AttackHarness::new(scenario.registry, judge);
    let mut arms = Vec::new();
    for shard in SHARDS {
        for mut strategy in default_strategies(&scenario.target, config.r) {
            let arm_seed = splitmix64(
                config.seed
                    ^ u64::from(anns_store::crc32(shard.as_bytes()))
                    ^ (u64::from(anns_store::crc32(strategy.name().as_bytes())) << 32),
            );
            arms.push(harness.run_arm(
                shard,
                strategy.as_mut(),
                config.rounds,
                config.bucket,
                arm_seed,
            ));
        }
    }
    RobustnessReport {
        scenario: config.clone(),
        arms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_suite_registers_all_arms_and_replays() {
        let config = ScenarioConfig::tiny(9);
        let report = run_suite(&config);
        assert_eq!(report.arms.len(), SHARDS.len() * 3);
        for shard in SHARDS {
            for strategy in ["control", "hillclimb", "replay"] {
                let arm = report.arm(shard, strategy).expect("arm present");
                assert_eq!(arm.rounds, config.rounds);
            }
        }
        assert_eq!(run_suite(&config), report, "byte-replayable");
    }

    #[test]
    fn defended_label_names_the_wrapper() {
        let scenario = build_scenario(&ScenarioConfig::tiny(10));
        let id = scenario.registry.resolve("lsh-sub").unwrap();
        let label = scenario.registry.scheme(id).label();
        assert!(label.starts_with("subsampled["), "{label}");
    }
}
