//! The attack harness: strategies driven through the real serving stack.
//!
//! Nothing here shortcuts the production path. Every crafted query is
//! wrapped in an `anns_engine::NamedRequest`, enqueued into an
//! [`AdmissionQueue`] bounded exactly like a deployment's, sealed into a
//! generation ([`AdmissionQueue::pump_now`]) and executed by the
//! [`Engine`] — probe ledgers, budgets, epochs and all. Time is a
//! [`VirtualClock`] advanced a fixed tick per round and randomness is a
//! per-arm seeded [`StdRng`], so a full attack trace is a pure function
//! of `(scenario, seed)` — replaying it is an equality check, not a
//! statistical one.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use anns_engine::{
    AdmissionOptions, AdmissionQueue, Engine, EngineOptions, NamedRequest, Registry, VirtualClock,
};
use anns_hamming::{Dataset, Point};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::report::{fold_fingerprint, ArmReport};
use crate::strategy::AttackStrategy;

/// Scores served answers against planted ground truth.
///
/// Strategies only craft queries at distance ≤ `r` from a database
/// point, so a γ-correct scheme must return *some* point within `γ·r`;
/// the judge resolves the answered index against the dataset and calls
/// anything absent or farther a failure.
pub struct Judge {
    dataset: Dataset,
    /// The `γr` acceptance band (inclusive).
    pub band: u32,
}

impl Judge {
    /// A judge over `dataset` accepting answers within `band` of the
    /// query.
    pub fn new(dataset: Dataset, band: u32) -> Self {
        Judge { dataset, band }
    }

    /// `true` if the answer misses the acceptance band: no index, an
    /// out-of-range index, or an answered point farther than `band`
    /// from the query.
    pub fn failed(&self, query: &Point, answer: &anns_core::ServedAnswer) -> bool {
        match answer.index() {
            None => true,
            Some(index) => match usize::try_from(index) {
                Ok(i) if i < self.dataset.len() => {
                    query.distance(self.dataset.point(i)) > self.band
                }
                _ => true,
            },
        }
    }
}

/// The per-round clock tick the harness advances its [`VirtualClock`] by.
pub const ROUND_TICK: Duration = Duration::from_micros(50);

/// An engine + admission queue + virtual clock bundle the strategies
/// attack through.
pub struct AttackHarness {
    engine: Arc<Engine>,
    queue: AdmissionQueue,
    clock: Arc<VirtualClock>,
    judge: Judge,
}

impl AttackHarness {
    /// Stands the serving stack up over `registry`: single-query
    /// generations (every round is its own sealed window, the
    /// deterministic serving configuration) on a fresh virtual clock.
    pub fn new(registry: Registry, judge: Judge) -> Self {
        let engine = Arc::new(Engine::new(
            registry,
            EngineOptions {
                generation: 1,
                exec: anns_cellprobe::ExecOptions::default(),
                batch_threads: 1,
            },
        ));
        let clock = Arc::new(VirtualClock::new());
        let queue = AdmissionQueue::new(
            Arc::clone(&engine),
            AdmissionOptions {
                max_generation: 1,
                max_wait: Duration::from_millis(1),
                capacity: 64,
            },
            clock.clone(),
        );
        AttackHarness {
            engine,
            queue,
            clock,
            judge,
        }
    }

    /// The engine under attack (for stats inspection after a run).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Drives one strategy against one shard for `rounds` rounds and
    /// reports the arm. `arm_seed` seeds the strategy's RNG stream;
    /// `bucket` sets the failure-curve resolution.
    pub fn run_arm(
        &self,
        shard: &str,
        strategy: &mut dyn AttackStrategy,
        rounds: usize,
        bucket: usize,
        arm_seed: u64,
    ) -> ArmReport {
        assert!(bucket > 0, "bucket must be positive");
        let mut rng = StdRng::seed_from_u64(arm_seed);
        let mut failures = 0u64;
        let mut bucket_failures = vec![0u64; rounds.div_ceil(bucket)];
        let mut total_probes = 0u64;
        let mut fingerprint = 0u32;
        let mut replay_repeats = 0u64;
        let mut replay_mismatches = 0u64;
        // First-serving answer fingerprint per distinct query, keyed by
        // its exact limb content — strategy-agnostic replay tracking.
        let mut first_answers: HashMap<Vec<u64>, u32> = HashMap::new();
        let mut scheme_label = String::new();

        for round in 0..rounds {
            let query = strategy.craft(round, &mut rng);
            let ticket = self
                .queue
                .enqueue(NamedRequest {
                    shard: shard.into(),
                    query: query.clone(),
                })
                .expect("attack harness never overfills its queue");
            self.queue
                .pump_now()
                .expect("a single-query window seals by fill");
            let served = ticket
                .wait()
                .result
                .unwrap_or_else(|e| panic!("shard {shard:?} failed to serve: {e:?}"));
            if scheme_label.is_empty() {
                let id = self
                    .engine
                    .registry()
                    .resolve(shard)
                    .expect("served shard resolves");
                scheme_label = self.engine.registry().scheme(id).label();
            }
            let failed = self.judge.failed(&query, &served.answer);
            let answer_debug = format!("{:?}", served.answer);
            let answer_digest = anns_store::crc32(answer_debug.as_bytes());
            match first_answers.entry(query.limbs().to_vec()) {
                std::collections::hash_map::Entry::Occupied(first) => {
                    replay_repeats += 1;
                    if *first.get() != answer_digest {
                        replay_mismatches += 1;
                    }
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(answer_digest);
                }
            }
            failures += u64::from(failed);
            bucket_failures[round / bucket] += u64::from(failed);
            total_probes += served.ledger.total_probes() as u64;
            fingerprint = fold_fingerprint(fingerprint, query.limbs(), &answer_debug, failed);
            strategy.observe(&query, failed, &served.answer);
            self.clock.advance(ROUND_TICK);
        }

        ArmReport {
            shard: shard.into(),
            scheme: scheme_label,
            strategy: strategy.name().into(),
            rounds,
            failures,
            bucket,
            bucket_failures,
            replay_repeats,
            replay_mismatches,
            total_probes,
            fingerprint,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{NonAdaptiveControl, RepetitionProbe};
    use anns_core::{AnnIndex, BuildOptions};
    use anns_hamming::gen;
    use anns_sketch::SketchParams;

    fn fixture() -> (Registry, Judge, Point) {
        let mut rng = StdRng::seed_from_u64(21);
        let inst = gen::planted(64, 96, 4, &mut rng);
        let target = inst.dataset.point(inst.planted_index).clone();
        let judge = Judge::new(inst.dataset.clone(), 8);
        let index = Arc::new(AnnIndex::build(
            inst.dataset,
            SketchParams::practical(2.0, 21),
            BuildOptions::default(),
        ));
        let mut registry = Registry::new();
        registry.register_alg1("alg1", index, 2);
        (registry, judge, target)
    }

    #[test]
    fn arm_traces_replay_byte_identically() {
        let run = || {
            let (registry, judge, target) = fixture();
            let harness = AttackHarness::new(registry, judge);
            let mut strategy = NonAdaptiveControl::new(target, 4);
            harness.run_arm("alg1", &mut strategy, 24, 8, 5)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.bucket_failures.len(), 3);
        assert_eq!(
            a.bucket_failures.iter().sum::<u64>(),
            a.failures,
            "curve sums to the total"
        );
    }

    #[test]
    fn deterministic_scheme_answers_replays_identically() {
        let (registry, judge, target) = fixture();
        let harness = AttackHarness::new(registry, judge);
        let mut strategy = RepetitionProbe::new(target, 4);
        let arm = harness.run_arm("alg1", &mut strategy, 30, 10, 6);
        assert!(arm.replay_repeats > 0, "the prober replayed something");
        assert_eq!(arm.replay_mismatches, 0, "alg1 is deterministic");
        assert_eq!(arm.failures, 0, "alg1 is γ-correct on planted shells");
    }

    #[test]
    #[should_panic(expected = "failed to serve")]
    fn unknown_shards_panic_loudly() {
        let (registry, judge, target) = fixture();
        let harness = AttackHarness::new(registry, judge);
        let mut strategy = NonAdaptiveControl::new(target, 4);
        harness.run_arm("nope", &mut strategy, 1, 1, 7);
    }
}
