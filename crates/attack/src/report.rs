//! Attack-run reports: the serializable output of the harness.
//!
//! Reports are plain data — failure counts, bucketed failure curves,
//! replay counters and a CRC-32 trace fingerprint per arm — and they are
//! `PartialEq`, which is the replay contract made executable: two runs
//! of the same scenario at the same seed must produce *equal* reports,
//! and `annsctl bench-attack` checks exactly that before committing an
//! artifact the CI attack gate compares against.

use serde::{Deserialize, Serialize};

use crate::scenario::ScenarioConfig;

/// One (scheme, strategy) arm's measured outcome.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArmReport {
    /// Registry shard name the arm attacked (e.g. `"lsh-sub"`).
    pub shard: String,
    /// The shard scheme's label at attack time.
    pub scheme: String,
    /// Strategy name (`"control"`, `"hillclimb"`, `"replay"`).
    pub strategy: String,
    /// Adaptive rounds driven (one query per round).
    pub rounds: usize,
    /// Rounds the judge scored as failures (no answer, or answer outside
    /// the `γr` band).
    pub failures: u64,
    /// Rounds per bucket of the failure curve.
    pub bucket: usize,
    /// Failure count per consecutive bucket of `bucket` rounds — the
    /// failure-probability curve vs adaptive rounds.
    pub bucket_failures: Vec<u64>,
    /// Queries that were byte-identical replays of an earlier query in
    /// this arm.
    pub replay_repeats: u64,
    /// Replays whose answer fingerprint differed from the first
    /// serving of the same query. Nonzero means answer instability —
    /// always a bug under this workspace's determinism contract.
    pub replay_mismatches: u64,
    /// Total cell-probes charged across the arm's queries.
    pub total_probes: u64,
    /// CRC-32 fold over every round's (query limbs, answer, verdict) —
    /// the byte-replayability witness.
    pub fingerprint: u32,
}

impl ArmReport {
    /// Failures as a fraction of rounds.
    pub fn failure_rate(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.failures as f64 / self.rounds as f64
        }
    }

    /// Failure rate over the final bucket only — where an adaptive
    /// attacker has had the most answers to learn from.
    pub fn final_bucket_rate(&self) -> f64 {
        match self.bucket_failures.last() {
            Some(&fails) if self.bucket > 0 => fails as f64 / self.bucket as f64,
            _ => 0.0,
        }
    }
}

/// A full suite run: every (scheme, strategy) arm under one scenario.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RobustnessReport {
    /// The scenario that produced this report.
    pub scenario: ScenarioConfig,
    /// One report per arm, in deterministic (shard, strategy) order.
    pub arms: Vec<ArmReport>,
}

impl RobustnessReport {
    /// Looks an arm up by shard and strategy name.
    pub fn arm(&self, shard: &str, strategy: &str) -> Option<&ArmReport> {
        self.arms
            .iter()
            .find(|a| a.shard == shard && a.strategy == strategy)
    }

    /// The adaptive degradation of one shard: hill-climb failure rate
    /// minus control failure rate. Near zero for a robust scheme;
    /// strongly positive for a fixed randomized structure under an
    /// adaptive attacker.
    pub fn adaptive_delta(&self, shard: &str) -> Option<f64> {
        let climb = self.arm(shard, "hillclimb")?;
        let control = self.arm(shard, "control")?;
        Some(climb.failure_rate() - control.failure_rate())
    }
}

/// The committed `bench-attack` artifact the CI attack gate diffs
/// against: a suite run plus its replay verification and wall-clock.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchAttackReport {
    /// The scenario that produced this report.
    pub scenario: ScenarioConfig,
    /// Per-arm outcomes (from the first of the two verification runs).
    pub arms: Vec<ArmReport>,
    /// Whether a second run of the identical scenario reproduced every
    /// arm byte-for-byte. Committed artifacts must say `true`.
    pub replay_verified: bool,
    /// Wall-clock of one suite run, nanoseconds. Gated loosely (machine
    /// dependent); the failure counts are gated exactly.
    pub wall_ns: u64,
}

/// Folds one round's observation into a running CRC-32 trace
/// fingerprint: query limbs, the answer's debug form, and the judge's
/// verdict.
pub fn fold_fingerprint(fp: u32, query_limbs: &[u64], answer_debug: &str, failed: bool) -> u32 {
    let mut bytes = Vec::with_capacity(query_limbs.len() * 8 + answer_debug.len() + 5);
    bytes.extend_from_slice(&fp.to_le_bytes());
    for limb in query_limbs {
        bytes.extend_from_slice(&limb.to_le_bytes());
    }
    bytes.extend_from_slice(answer_debug.as_bytes());
    bytes.push(u8::from(failed));
    anns_store::crc32(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_order_and_content_sensitive() {
        let a = fold_fingerprint(0, &[1, 2], "Candidate(None)", false);
        let b = fold_fingerprint(0, &[2, 1], "Candidate(None)", false);
        let c = fold_fingerprint(0, &[1, 2], "Candidate(None)", true);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, fold_fingerprint(0, &[1, 2], "Candidate(None)", false));
        // Folding chains: a different prior fingerprint changes the fold.
        assert_ne!(
            fold_fingerprint(a, &[3], "x", false),
            fold_fingerprint(b, &[3], "x", false)
        );
    }

    #[test]
    fn rates_handle_empty_arms() {
        let arm = ArmReport {
            shard: "s".into(),
            scheme: "l".into(),
            strategy: "control".into(),
            rounds: 0,
            failures: 0,
            bucket: 0,
            bucket_failures: vec![],
            replay_repeats: 0,
            replay_mismatches: 0,
            total_probes: 0,
            fingerprint: 0,
        };
        assert_eq!(arm.failure_rate(), 0.0);
        assert_eq!(arm.final_bucket_rate(), 0.0);
    }
}
