//! The defense survives persistence: a scenario registry — undefended
//! LSH, the `SubsampledRepetition` wrapper over independently built
//! replicas, and Algorithm 1 — saved to a store bundle and loaded back
//! answers an identical attack replay *byte-for-byte*: same failure
//! counts, same bucketed curves, same replay counters, same CRC-32
//! trace fingerprints. And a bundle with any byte flipped (or the tail
//! cut off) loads as a typed [`anns_store::StoreError`], never as a
//! silently different defense.

use anns_attack::{
    build_scenario, default_strategies, ArmReport, AttackHarness, Judge, ScenarioConfig, SHARDS,
};
use anns_engine::Registry;
use anns_hamming::{Dataset, Point};
use proptest::prelude::*;

/// A persistence-sized scenario: tiny geometry, few rounds — each
/// proptest case builds 1 + replicas LSH indexes and runs 18 arms.
fn config(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        rounds: 10,
        bucket: 5,
        ..ScenarioConfig::tiny(seed)
    }
}

/// Runs the full strategy lineup against every shard of `registry`
/// with fixed per-arm seeds; the trace is a pure function of the
/// registry's serving behavior.
fn attack_all(
    registry: Registry,
    dataset: Dataset,
    target: &Point,
    cfg: &ScenarioConfig,
) -> Vec<ArmReport> {
    let harness = AttackHarness::new(registry, Judge::new(dataset, cfg.band()));
    let mut arms = Vec::new();
    for (si, shard) in SHARDS.iter().enumerate() {
        for (ti, mut strategy) in default_strategies(target, cfg.r).into_iter().enumerate() {
            let arm_seed = cfg.seed ^ ((si * 8 + ti) as u64) << 17;
            arms.push(harness.run_arm(shard, strategy.as_mut(), cfg.rounds, cfg.bucket, arm_seed));
        }
    }
    arms
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// build → save → load → attack: the loaded registry's attack trace
    /// is byte-identical to the original's.
    #[test]
    fn loaded_bundle_replays_the_attack_byte_identically(seed in any::<u64>()) {
        let cfg = config(seed);
        let scenario = build_scenario(&cfg);
        let mut bytes = Vec::new();
        scenario.registry.save_bundle_to(&mut bytes).expect("save bundle");
        let loaded = Registry::load_bundle_from(bytes.as_slice()).expect("load bundle");
        prop_assert_eq!(loaded.registry.listing(), scenario.registry.listing());

        let original = attack_all(
            scenario.registry,
            scenario.dataset.clone(),
            &scenario.target,
            &cfg,
        );
        let replayed = attack_all(loaded.registry, scenario.dataset, &scenario.target, &cfg);
        prop_assert_eq!(original, replayed);
    }

    /// Any flipped byte past the container header makes the load fail
    /// typed — every section byte is pinned by a CRC (and the closing
    /// manifest pins the sections), so corruption can never load as a
    /// subtly different scheme.
    #[test]
    fn corrupted_bundles_are_rejected_typed(seed in 0u64..64, flip in any::<u64>(), bit in 0u8..8) {
        let scenario = build_scenario(&config(seed));
        let mut bytes = Vec::new();
        scenario.registry.save_bundle_to(&mut bytes).expect("save bundle");
        const HEADER: usize = 16;
        prop_assume!(bytes.len() > HEADER);
        let at = HEADER + (flip as usize) % (bytes.len() - HEADER);
        bytes[at] ^= 1 << bit;
        let result = Registry::load_bundle_from(bytes.as_slice());
        prop_assert!(
            result.is_err(),
            "flipping bit {bit} of byte {at} must not load cleanly"
        );
    }

    /// A truncated bundle is a typed error too, at every cut point.
    #[test]
    fn truncated_bundles_are_rejected_typed(cut in any::<u64>()) {
        let scenario = build_scenario(&config(3));
        let mut bytes = Vec::new();
        scenario.registry.save_bundle_to(&mut bytes).expect("save bundle");
        let keep = (cut as usize) % bytes.len().max(1);
        bytes.truncate(keep);
        prop_assert!(
            Registry::load_bundle_from(bytes.as_slice()).is_err(),
            "a bundle cut to {keep} bytes must not load"
        );
    }
}
