//! Cell contents.
//!
//! A cell stores a *word* of `w` bits (paper §2: alphabet `Σ = {0,1}^w`).
//! Schemes encode their own semantics into the payload (a database point, an
//! `EMPTY` marker, a small integer, …); this module only fixes the container
//! and the bit accounting, so the executor can enforce the declared word
//! size uniformly across schemes.

use serde::{Deserialize, Serialize};

/// The content of one table cell: an opaque byte payload of bounded width.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Word(Vec<u8>);

impl Word {
    /// An empty (zero-length) word. Distinct from a scheme-level `EMPTY`
    /// marker, which is an encoding convention of the scheme.
    pub fn empty() -> Self {
        Word(Vec::new())
    }

    /// Wraps a byte payload.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Word(bytes)
    }

    /// Encodes a `u64` (little-endian, trimmed of trailing zero bytes so the
    /// bit accounting reflects the magnitude actually stored).
    pub fn from_u64(v: u64) -> Self {
        let mut bytes = v.to_le_bytes().to_vec();
        while bytes.last() == Some(&0) {
            bytes.pop();
        }
        Word(bytes)
    }

    /// Decodes a word previously produced by [`Word::from_u64`].
    pub fn to_u64(&self) -> u64 {
        let mut buf = [0u8; 8];
        let n = self.0.len().min(8);
        buf[..n].copy_from_slice(&self.0[..n]);
        u64::from_le_bytes(buf)
    }

    /// The payload bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.0
    }

    /// Consumes the word, returning the payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.0
    }

    /// Width of this word in bits (for ledger accounting).
    pub fn bits(&self) -> u64 {
        self.0.len() as u64 * 8
    }
}

impl From<Vec<u8>> for Word {
    fn from(bytes: Vec<u8>) -> Self {
        Word(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        for v in [0u64, 1, 255, 256, u32::MAX as u64, u64::MAX] {
            assert_eq!(Word::from_u64(v).to_u64(), v, "value {v}");
        }
    }

    #[test]
    fn u64_trimming_minimizes_bits() {
        assert_eq!(Word::from_u64(0).bits(), 0);
        assert_eq!(Word::from_u64(1).bits(), 8);
        assert_eq!(Word::from_u64(300).bits(), 16);
        assert_eq!(Word::from_u64(u64::MAX).bits(), 64);
    }

    #[test]
    fn bytes_roundtrip() {
        let w = Word::from_bytes(vec![1, 2, 3]);
        assert_eq!(w.bytes(), &[1, 2, 3]);
        assert_eq!(w.bits(), 24);
        assert_eq!(w.clone().into_bytes(), vec![1, 2, 3]);
        assert_eq!(Word::from(vec![1, 2, 3]), w);
    }

    #[test]
    fn empty_word_has_zero_bits() {
        assert_eq!(Word::empty().bits(), 0);
        assert_eq!(Word::empty().to_u64(), 0);
    }
}
