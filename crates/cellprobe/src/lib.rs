//! An executable version of Yao's cell-probe model with *limited adaptivity*.
//!
//! The paper (§2) refines the classic cell-probe model by organizing the
//! query algorithm's probes into `k` **rounds**: the addresses probed in
//! round `i` may depend on the query and on the contents read in rounds
//! `< i`, but not on each other. The complexity of a scheme is the triple
//! (table size `s`, word size `w`, total probes `t = t₁ + … + t_k`).
//!
//! This crate makes that model a concrete, enforceable API:
//!
//! * [`Word`] / [`Address`] — cell contents and multi-table addressing;
//! * [`Table`] — the data-structure side: an oracle mapping addresses to
//!   words. Implementations may be materialized ([`MaterializedTable`]) or
//!   lazy (computed on demand — see substitution S1 in `DESIGN.md`);
//! * [`RoundExecutor`] — the *only* way a scheme reads cells. One call to
//!   [`RoundExecutor::round`] is one round of parallel probes; the API shape
//!   itself enforces the round discipline (all addresses of a round are
//!   produced before any of its contents are visible), and every probe is
//!   charged to a [`ProbeLedger`];
//! * [`CellProbeScheme`] — the trait shared by Algorithms 1/2, λ-ANNS, LSH
//!   and the adaptive baseline, so complexity accounting is uniform;
//! * [`space`] — table-size accounting, including the public-coin →
//!   private-coin translation of Lemma 5 / Proposition 6 (Newman's theorem);
//! * [`batch`] — a crossbeam-based parallel driver for query batches.
//!
//! Probes inside one round are *independent by definition of the model*;
//! [`RoundExecutor`] optionally executes them on parallel threads
//! (crossbeam scoped threads), which is precisely the parallelism the paper
//! says limited adaptivity exposes ("the ability to be implemented in
//! parallel", §1).
//!
//! # Example
//!
//! A two-round scheme (`k = 2`): round 2's address depends on round 1's
//! contents, and the ledger charges exactly what the model defines:
//!
//! ```
//! use anns_cellprobe::{
//!     execute, Address, CellProbeScheme, MaterializedTable, RoundExecutor, SpaceModel,
//!     Table, Word,
//! };
//!
//! struct Chase {
//!     table: MaterializedTable,
//! }
//! impl CellProbeScheme for Chase {
//!     type Query = u64;
//!     type Answer = u64;
//!     fn table(&self) -> &dyn Table { &self.table }
//!     fn word_bits(&self) -> u64 { 64 }
//!     fn run(&self, query: &u64, exec: &mut RoundExecutor<'_>) -> u64 {
//!         let first = exec.round(&[Address::with_u64(0, *query)]);
//!         let second = exec.round(&[Address::with_u64(0, first[0].to_u64())]);
//!         second[0].to_u64()
//!     }
//! }
//!
//! let table = MaterializedTable::new(SpaceModel::from_exact_cells(4, 64));
//! table.write(Address::with_u64(0, 0), Word::from_u64(1));
//! table.write(Address::with_u64(0, 1), Word::from_u64(42));
//! let (answer, ledger) = execute(&Chase { table }, &0);
//! assert_eq!(answer, 42);
//! assert_eq!((ledger.rounds(), ledger.total_probes()), (2, 2));
//! ```

pub mod audit;
pub mod batch;
pub mod executor;
pub mod scheme;
pub mod space;
pub mod table;
pub mod word;

pub use audit::{CountingTable, PurityAuditTable};
pub use batch::{run_batch, run_one, worst_case_ledger, BatchItem};
pub use executor::{
    chunked_parallel_map, read_batch, read_batch_observed, read_batch_tiled, ExecOptions,
    ProbeLedger, RoundExecutor, RoundSource, Transcript, TranscriptEntry, DEFAULT_PROBE_TILE,
};
pub use scheme::{execute, execute_on, execute_with, CellProbeScheme};
pub use space::{newman_private_coin_cells_log2, SpaceModel};
pub use table::{Address, MaterializedTable, Table, TableId};
pub use word::Word;
