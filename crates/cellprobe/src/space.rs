//! Table-size accounting.
//!
//! The paper measures data structures by table size `s` (number of cells)
//! and word size `w` (bits per cell). Because the honest `s` of the paper's
//! schemes is an enormous polynomial (`n^{c₁}` with `c₁` in the thousands),
//! sizes are tracked in log₂ throughout — a [`SpaceModel`] is
//! `(log₂ s, w)` — and only converted to absolute numbers for display.
//!
//! The module also implements the accounting side of Lemma 5 /
//! Proposition 6: a *public-coin* scheme with table size `s` becomes a
//! standard *private-coin* scheme with table size
//! `s·(log|A| + log|B| + O(1))` by Newman's theorem, with probes, rounds
//! and word size unchanged. We implement all schemes public-coin
//! (substitution S3 in `DESIGN.md`) and report the translated size.

use serde::{Deserialize, Serialize};

/// Log-domain size of a data structure: `log₂(cells)` plus word width.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SpaceModel {
    /// `log₂` of the number of cells (`-inf`-free: zero cells is represented
    /// by `f64::NEG_INFINITY`).
    pub cells_log2: f64,
    /// Declared word size `w` in bits.
    pub word_bits: u64,
}

impl SpaceModel {
    /// The empty data structure.
    pub fn zero() -> Self {
        SpaceModel {
            cells_log2: f64::NEG_INFINITY,
            word_bits: 0,
        }
    }

    /// A table of `2^cells_log2` cells of `word_bits` bits each.
    pub fn from_cells(cells_log2: f64, word_bits: u64) -> Self {
        SpaceModel {
            cells_log2,
            word_bits,
        }
    }

    /// A table of exactly `cells` cells.
    pub fn from_exact_cells(cells: u64, word_bits: u64) -> Self {
        let log2 = if cells == 0 {
            f64::NEG_INFINITY
        } else {
            (cells as f64).log2()
        };
        SpaceModel::from_cells(log2, word_bits)
    }

    /// Combines two structures: cell counts add (log-sum-exp), word size is
    /// the maximum (the model charges the widest word).
    pub fn combine(self, other: SpaceModel) -> SpaceModel {
        let cells_log2 = log2_add(self.cells_log2, other.cells_log2);
        SpaceModel {
            cells_log2,
            word_bits: self.word_bits.max(other.word_bits),
        }
    }

    /// Total size in bits, log₂ (cells × word).
    pub fn total_bits_log2(&self) -> f64 {
        if self.word_bits == 0 {
            return self.cells_log2; // degenerate: count cells only
        }
        self.cells_log2 + (self.word_bits as f64).log2()
    }

    /// Whether the structure is polynomial in `n`: `log₂ s ≤ exponent_cap ·
    /// log₂ n`. This is the check E9 runs against every scheme.
    pub fn is_poly_in(&self, n: u64, exponent_cap: f64) -> bool {
        if self.cells_log2 == f64::NEG_INFINITY {
            return true;
        }
        self.cells_log2 <= exponent_cap * (n.max(2) as f64).log2()
    }
}

/// `log₂(2^a + 2^b)` without overflow.
fn log2_add(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (1.0 + (lo - hi).exp2()).log2()
}

/// Newman translation of Lemma 5 / Proposition 6: the private-coin table
/// size (in log₂ cells) of a public-coin scheme with `cells_log2` cells on a
/// problem with query universe of `log_a_bits = log₂|A|` and database
/// universe of `log_b_bits = log₂|B|`.
///
/// For `ANNS(γ,d,n)`: `log|A| = d`, `log|B| = log₂ C(2^d, n) ≤ dn`, giving
/// the `O(dn·s)` of Proposition 6.
pub fn newman_private_coin_cells_log2(cells_log2: f64, log_a_bits: f64, log_b_bits: f64) -> f64 {
    // s · (log|A| + log|B| + O(1)); the O(1) is folded as +2 bits.
    cells_log2 + (log_a_bits + log_b_bits + 2.0).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_adds_cells() {
        let a = SpaceModel::from_exact_cells(8, 32);
        let b = SpaceModel::from_exact_cells(8, 64);
        let c = a.combine(b);
        assert!((c.cells_log2 - 4.0).abs() < 1e-12, "8+8 = 16 cells");
        assert_eq!(c.word_bits, 64);
    }

    #[test]
    fn combine_with_zero_is_identity() {
        let a = SpaceModel::from_exact_cells(1000, 16);
        let c = a.combine(SpaceModel::zero());
        assert!((c.cells_log2 - a.cells_log2).abs() < 1e-12);
        assert_eq!(c.word_bits, 16);
    }

    #[test]
    fn log2_add_is_commutative_and_correct() {
        for (a, b) in [(3.0f64, 3.0f64), (10.0, 0.0), (0.0, 0.0), (20.0, 19.0)] {
            let direct = (a.exp2() + b.exp2()).log2();
            assert!((log2_add(a, b) - direct).abs() < 1e-9);
            assert!((log2_add(a, b) - log2_add(b, a)).abs() < 1e-12);
        }
    }

    #[test]
    fn poly_check() {
        // n^3 cells is polynomial with cap 4, not with cap 2.
        let n = 1024u64;
        let m = SpaceModel::from_cells(3.0 * 10.0, 64); // (2^10)^3
        assert!(m.is_poly_in(n, 4.0));
        assert!(!m.is_poly_in(n, 2.0));
        assert!(SpaceModel::zero().is_poly_in(n, 0.1));
    }

    #[test]
    fn newman_translation_matches_proposition6_shape() {
        // s cells → s·(d + dn + O(1)) cells: log grows by log(d + dn + 2).
        let s_log2 = 30.0;
        let d = 512.0;
        let n = 1_000.0;
        let out = newman_private_coin_cells_log2(s_log2, d, d * n);
        assert!((out - (s_log2 + (d + d * n + 2.0).log2())).abs() < 1e-9);
        assert!(out > s_log2);
    }

    #[test]
    fn total_bits_accounting() {
        let m = SpaceModel::from_exact_cells(1 << 20, 128);
        assert!((m.total_bits_log2() - 27.0).abs() < 1e-9); // 2^20 × 2^7
    }
}
